//! Exhaustiveness and pruning-soundness tests for the explorer.

use sfs_asys::{
    Context, FaultPlan, FixedLatency, Process, ProcessId, Sim, TraceEventKind, VirtualTime,
};
use sfs_explore::{class_fingerprint, explore, ExploreConfig, Pruning};
use sfs_history::History;
use std::collections::BTreeSet;

/// Each of two processes sends one message to the other.
struct PingPeer;
impl Process<u8> for PingPeer {
    fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
        let other = ProcessId::new(1 - ctx.id().index());
        ctx.send(other, ctx.id().index() as u8);
    }
    fn on_message(&mut self, _: &mut Context<'_, u8>, _: ProcessId, _: u8) {}
}

fn two_process() -> Sim<u8> {
    Sim::<u8>::builder(2)
        .latency(FixedLatency(1))
        .build(|_| Box::new(PingPeer))
}

#[test]
fn two_process_toy_visits_every_interleaving_exactly_once() {
    // Two concurrent deliveries (p0's message to p1, p1's to p0): the
    // schedule tree has exactly 2! = 2 interleavings.
    let cfg = ExploreConfig {
        pruning: Pruning::None,
        ..ExploreConfig::default()
    };
    let mut orders = Vec::new();
    let stats = explore(&cfg, two_process, |run| {
        let recvs: Vec<usize> = run
            .trace
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::Recv { by, .. } => Some(by.index()),
                _ => None,
            })
            .collect();
        orders.push(recvs);
    });
    assert!(stats.complete, "tiny tree must be fully enumerated");
    assert_eq!(stats.visited, 2, "exactly every interleaving, once");
    orders.sort();
    assert_eq!(orders, vec![vec![0, 1], vec![1, 0]]);
}

/// Three processes: p0 and p1 each send one message to p2 AND exchange a
/// message with each other — a mix of dependent and independent steps.
struct Mesh;
impl Process<u8> for Mesh {
    fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
        let i = ctx.id().index();
        if i < 2 {
            ctx.send(ProcessId::new(2), 0);
            ctx.send(ProcessId::new(1 - i), 1);
        }
    }
    fn on_message(&mut self, _: &mut Context<'_, u8>, _: ProcessId, _: u8) {}
}

fn mesh() -> Sim<u8> {
    Sim::<u8>::builder(3)
        .latency(FixedLatency(1))
        .build(|_| Box::new(Mesh))
}

#[test]
fn sleep_set_pruning_preserves_class_coverage() {
    // Soundness: the pruned exploration must reach exactly the same set
    // of commutation classes (happens-before fingerprints) as the full
    // enumeration — with fewer executions.
    let classes = |pruning| {
        let mut set = BTreeSet::new();
        let stats = explore(
            &ExploreConfig {
                pruning,
                ..ExploreConfig::default()
            },
            mesh,
            |run| {
                set.insert(class_fingerprint(&History::from_trace_full(&run.trace)));
            },
        );
        assert!(stats.complete);
        (set, stats)
    };
    let (full, full_stats) = classes(Pruning::None);
    let (pruned, pruned_stats) = classes(Pruning::SleepSets);
    assert_eq!(full, pruned, "pruning must not lose a class");
    assert!(
        pruned_stats.visited < full_stats.visited,
        "pruning must help on independent steps: {} vs {}",
        pruned_stats.visited,
        full_stats.visited
    );
}

/// One sender floods p1; a crash injection for p1 is in the plan.
struct Flood;
impl Process<u8> for Flood {
    fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
        if ctx.id().index() == 0 {
            ctx.send(ProcessId::new(1), 0);
            ctx.send(ProcessId::new(1), 1);
        }
    }
    fn on_message(&mut self, _: &mut Context<'_, u8>, _: ProcessId, _: u8) {}
}

fn crashy() -> Sim<u8> {
    Sim::<u8>::builder(2)
        .latency(FixedLatency(1))
        .faults(FaultPlan::new().crash_at(ProcessId::new(1), VirtualTime::from_ticks(50)))
        .build(|_| Box::new(Flood))
}

#[test]
fn crash_placements_are_enumerated() {
    // FIFO fixes the delivery order of the two messages, but the crash
    // may land before either, between them, or after both: the explorer
    // must produce all three outcomes (0, 1, or 2 messages received).
    let cfg = ExploreConfig {
        pruning: Pruning::None,
        ..ExploreConfig::default()
    };
    let mut received = BTreeSet::new();
    let stats = explore(&cfg, crashy, |run| {
        received.insert(run.trace.stats().messages_delivered);
    });
    assert!(stats.complete);
    assert_eq!(
        received.into_iter().collect::<Vec<_>>(),
        vec![0, 1, 2],
        "every crash placement relative to the deliveries"
    );
    // And pruning reaches the same three outcomes.
    let mut pruned = BTreeSet::new();
    let stats = explore(&ExploreConfig::default(), crashy, |run| {
        pruned.insert(run.trace.stats().messages_delivered);
    });
    assert!(stats.complete);
    assert_eq!(pruned.into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
}
