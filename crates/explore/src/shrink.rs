//! Counterexample shrinking: delta debugging over recorded choice traces.
//!
//! A violating schedule found by [`explore`](crate::explore) or
//! [`random_walks`](crate::random_walks) is replayable but rarely
//! *readable*: its [`ChoiceTrace`] interleaves the few decisions that
//! matter with hundreds that do not. This module reduces such a witness
//! to a minimal one by the classic delta-debugging loop (Zeller &
//! Hildebrandt's ddmin, adapted to schedules):
//!
//! 1. **Tail truncation** — a safety violation is already present in some
//!    prefix; exponentially probe shorter and shorter prefixes.
//! 2. **Chunk deletion** — splice out windows of decisions
//!    ([`surgery::without_range`](sfs_asys::strategy::surgery)), halving
//!    the window size down to single decisions.
//! 3. **Choice canonicalization** — rewrite surviving decisions to `0`
//!    (the first enabled step), which empties the trace's information
//!    content position by position and often unlocks further deletions.
//!
//! Deleting a decision changes which steps are enabled at every later
//! point, so a spliced trace is only a *guess*. Every candidate is
//! therefore **re-validated by replay**: it is re-executed under a
//! tolerant strategy (out-of-range choices clamp to the enabled range),
//! the engine's [`ScheduleLog`] of that execution
//! becomes the candidate's canonical form, and the candidate is accepted
//! only if the caller's predicate still holds on the re-executed trace.
//! Accepted witnesses are thus always exact: the returned choice trace
//! replays byte-identically through the strict
//! [`ReplayStrategy`](sfs_asys::ReplayStrategy) (see
//! [`replay`](crate::replay)), never relying on clamping.

use crate::dfs::ScheduleRun;
use sfs_asys::strategy::surgery;
use sfs_asys::{ChoiceTrace, EnabledStep, ScheduleLog, Sim, StopReason, Strategy};
use std::fmt;

/// Replays a candidate choice sequence leniently: out-of-range choices
/// clamp to the last enabled step, choices past the end fall back to the
/// first enabled step. Only used to *generate* candidates; accepted
/// witnesses are the engine's own record of the clamped run, which
/// replays strictly.
struct TolerantReplay {
    choices: ChoiceTrace,
    pos: usize,
}

impl Strategy for TolerantReplay {
    fn choose(&mut self, enabled: &[EnabledStep]) -> usize {
        let c = self.choices.get(self.pos).copied().unwrap_or(0) as usize;
        self.pos += 1;
        c.min(enabled.len() - 1)
    }
}

/// Budgets for one shrink.
#[derive(Debug, Clone, Copy)]
pub struct ShrinkConfig {
    /// Maximum candidate re-executions (each candidate costs one full
    /// replay of the instance).
    pub max_replays: usize,
    /// Whether pass 3 (rewriting choices to the canonical first-enabled
    /// step) runs. It does not shorten the trace by itself but usually
    /// enables further deletions and makes the witness deterministic to
    /// read; switch it off for very wide instances where replays are
    /// expensive.
    pub canonicalize: bool,
}

impl Default for ShrinkConfig {
    fn default() -> Self {
        ShrinkConfig {
            max_replays: 4096,
            canonicalize: true,
        }
    }
}

/// Counters and result of one shrink.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimal witness: re-validated, strictly replayable.
    pub run: ScheduleRun,
    /// Decisions in the witness as given.
    pub initial_len: usize,
    /// Decisions in the minimal witness.
    pub final_len: usize,
    /// Candidate re-executions spent.
    pub replays: usize,
    /// Full passes over the ddmin loop until fixpoint (or budget).
    pub rounds: usize,
}

impl ShrinkOutcome {
    /// `initial_len → final_len` as a ratio, for reporting.
    pub fn reduction(&self) -> f64 {
        if self.initial_len == 0 {
            1.0
        } else {
            self.final_len as f64 / self.initial_len as f64
        }
    }
}

/// One tolerant re-execution of `candidate`, capped at its own length so
/// recordings of early-quiescing candidates stay short.
fn execute<M, F>(build: &mut F, candidate: &[u32]) -> (ScheduleRun, ScheduleLog)
where
    M: Clone + fmt::Debug + 'static,
    F: FnMut() -> Sim<M>,
{
    let mut sim = build();
    sim.set_max_steps(candidate.len());
    sim.set_strategy(TolerantReplay {
        choices: candidate.to_vec(),
        pos: 0,
    });
    let (trace, log) = sim.run_scheduled();
    let truncated = trace.stop_reason() == StopReason::MaxSteps;
    (
        ScheduleRun {
            choices: log.choices(),
            truncated,
            trace,
        },
        log,
    )
}

/// Shrinks `witness` to a minimal choice trace whose replay still
/// satisfies `violates`, by delta debugging with replay re-validation
/// (see the module docs for the passes).
///
/// `build` must produce the same system every time (the contract of
/// [`explore`](crate::explore)); `violates` judges a re-executed
/// candidate — typically "property P is violated on this trace".
///
/// Returns `None` when the *original* witness does not reproduce under
/// re-execution (a conformance failure in its own right — the
/// differential oracle reports it separately). Otherwise the returned
/// witness is at most as long as the original and strictly replayable.
pub fn shrink<M, F, P>(
    config: &ShrinkConfig,
    mut build: F,
    witness: &[u32],
    mut violates: P,
) -> Option<ShrinkOutcome>
where
    M: Clone + fmt::Debug + 'static,
    F: FnMut() -> Sim<M>,
    P: FnMut(&ScheduleRun) -> bool,
{
    let initial_len = witness.len();
    let mut replays = 0usize;
    // Baseline: canonicalize the witness itself by re-execution.
    let (mut best, mut best_log) = execute(&mut build, witness);
    replays += 1;
    if !violates(&best) {
        return None;
    }

    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let len_at_round_start = best.choices.len();

        // Pass 1: tail truncation, probing exponentially shorter prefixes.
        let mut cut = best.choices.len() / 2;
        while cut >= 1 && replays < config.max_replays {
            let keep = best.choices.len().saturating_sub(cut);
            let candidate = surgery::truncated(&best.choices, keep);
            let (run, log) = execute(&mut build, &candidate);
            replays += 1;
            if violates(&run) {
                best = run;
                best_log = log;
                cut = best.choices.len() / 2;
            } else {
                cut /= 2;
            }
        }

        // Pass 2: ddmin chunk deletion, windows halving to single steps.
        let mut chunk = (best.choices.len() / 2).max(1);
        while chunk >= 1 && replays < config.max_replays {
            let mut i = 0;
            let mut deleted_any = false;
            while i < best.choices.len() && replays < config.max_replays {
                let candidate = surgery::without_range(&best.choices, i..i + chunk);
                if candidate.len() == best.choices.len() {
                    break;
                }
                let (run, log) = execute(&mut build, &candidate);
                replays += 1;
                if violates(&run) && run.choices.len() < best.choices.len() {
                    best = run;
                    best_log = log;
                    deleted_any = true;
                    // The trace shifted under us; rescan from the same
                    // offset (the next chunk now sits there).
                } else {
                    i += chunk;
                }
            }
            if !deleted_any || chunk == 1 {
                if chunk == 1 {
                    break;
                }
                chunk /= 2;
            }
        }

        // Pass 3: canonicalize remaining free choices to 0. Forced
        // decisions (width 1) are skipped — rewriting them is a no-op.
        if config.canonicalize {
            let mut pos = 0;
            while pos < best.choices.len() && replays < config.max_replays {
                let width = best_log.steps.get(pos).map_or(1, |s| s.enabled.len());
                if best.choices[pos] != 0 && width > 1 {
                    let candidate = surgery::with_choice(&best.choices, pos, 0);
                    let (run, log) = execute(&mut build, &candidate);
                    replays += 1;
                    if violates(&run) && run.choices.len() <= best.choices.len() {
                        best = run;
                        best_log = log;
                    }
                }
                pos += 1;
            }
        }

        if best.choices.len() >= len_at_round_start || replays >= config.max_replays {
            break;
        }
    }

    let final_len = best.choices.len();
    Some(ShrinkOutcome {
        run: best,
        initial_len,
        final_len,
        replays,
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{explore, replay, ExploreConfig, Pruning};
    use sfs_asys::{Context, FixedLatency, Process, ProcessId, Trace, TraceEventKind};

    /// p1..p_{n-1} each send one message to p0; p0 crashes itself upon
    /// receiving from the HIGHEST-index sender. The "violation" is p0's
    /// crash — most schedules reach it, but deliveries from other senders
    /// are noise a shrinker must remove.
    struct Trigger {
        n: usize,
    }
    impl Process<u8> for Trigger {
        fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
            if ctx.id().index() > 0 {
                ctx.send(ProcessId::new(0), ctx.id().index() as u8);
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_, u8>, _: ProcessId, msg: u8) {
            if msg as usize == self.n - 1 {
                ctx.crash_self();
            }
        }
    }

    fn sys(n: usize) -> Sim<u8> {
        Sim::<u8>::builder(n)
            .latency(FixedLatency(1))
            .build(move |_| Box::new(Trigger { n }))
    }

    fn crashed(trace: &Trace) -> bool {
        trace
            .events()
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::Crash { .. }))
    }

    #[test]
    fn shrinks_noise_deliveries_out_of_the_witness() {
        let n = 5;
        // Find a deliberately long witness: the last explored schedule
        // delivers the trigger message last.
        let mut witness: Option<ChoiceTrace> = None;
        explore(
            &ExploreConfig {
                pruning: Pruning::None,
                ..ExploreConfig::default()
            },
            || sys(n),
            |run| {
                if crashed(&run.trace) && run.choices.len() >= n - 1 {
                    witness = Some(run.choices.clone());
                }
            },
        );
        let witness = witness.expect("some schedule crashes p0");
        let out = shrink(
            &ShrinkConfig::default(),
            || sys(n),
            &witness,
            |run| crashed(&run.trace),
        )
        .expect("witness reproduces");
        // Minimal: deliver the trigger message, nothing else.
        assert_eq!(out.final_len, 1, "minimal witness is one delivery");
        assert!(out.final_len < out.initial_len);
        assert!(crashed(&out.run.trace));
        // Strict replayability of the shrunk witness.
        let replayed = replay(sys(n), &out.run.choices);
        assert_eq!(replayed, out.run.trace);
    }

    #[test]
    fn non_reproducing_witness_is_rejected() {
        // A predicate the witness's re-execution does not satisfy must be
        // rejected up front, not "shrunk" into vacuity.
        let never = shrink(&ShrinkConfig::default(), || sys(2), &[0], |_| false);
        assert!(never.is_none());
    }

    #[test]
    fn shrink_respects_the_replay_budget() {
        let out = shrink(
            &ShrinkConfig {
                max_replays: 3,
                canonicalize: true,
            },
            || sys(6),
            &[4, 3, 2, 1, 0],
            |run| crashed(&run.trace),
        );
        if let Some(out) = out {
            assert!(out.replays <= 3 + 1, "{}", out.replays);
        }
    }
}
