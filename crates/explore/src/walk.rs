//! The random-walk fallback for instances too large to enumerate.
//!
//! The schedule tree grows factorially; past a handful of concurrent
//! steps, bounded-exhaustive DFS stops being feasible and the explorer
//! degrades to sampling: independent depth-bounded walks, each driven by
//! a seeded [`RandomStrategy`] that picks uniformly among the enabled
//! steps. Unlike the latency-randomized default engine, the walk
//! adversary ignores virtual time entirely, so it reaches schedules
//! (long starvations, pathological reorderings) that no latency draw
//! makes likely. Walks can only *find* violations, never certify their
//! absence — [`ExploreStats::complete`] is always `false` here.

use crate::dfs::{ExploreStats, ScheduleRun};
use sfs_asys::{RandomStrategy, Sim};
use std::fmt;

/// Budgets for a random-walk sweep.
#[derive(Debug, Clone, Copy)]
pub struct WalkConfig {
    /// Number of independent walks.
    pub walks: usize,
    /// Depth bound per walk (scheduling decisions).
    pub max_steps: usize,
    /// Base seed; walk `i` uses `seed + i`, so a sweep is fully
    /// deterministic and any single walk can be re-run in isolation.
    pub seed: u64,
}

impl Default for WalkConfig {
    fn default() -> Self {
        WalkConfig {
            walks: 64,
            max_steps: 4096,
            seed: 0,
        }
    }
}

/// Runs `config.walks` random schedules of the system produced by
/// `build`, invoking `visit` for each. Every walk's choices are recorded,
/// so a violating walk replays exactly via [`replay`](crate::replay).
pub fn random_walks<M, F>(
    config: &WalkConfig,
    mut build: F,
    mut visit: impl FnMut(ScheduleRun),
) -> ExploreStats
where
    M: Clone + fmt::Debug + 'static,
    F: FnMut() -> Sim<M>,
{
    let mut stats = ExploreStats::default();
    for walk in 0..config.walks {
        let mut sim = build();
        sim.set_max_steps(config.max_steps);
        sim.set_strategy(RandomStrategy::new(config.seed.wrapping_add(walk as u64)));
        let (trace, log) = sim.run_scheduled();
        stats.schedules += 1;
        stats.visited += 1;
        stats.steps += log.len() as u64;
        let truncated = !trace.stop_reason().is_complete();
        if truncated {
            stats.truncated += 1;
        }
        visit(ScheduleRun {
            trace,
            choices: log.choices(),
            truncated,
        });
    }
    // Sampling never certifies.
    stats.complete = false;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay;
    use sfs_asys::{Context, FixedLatency, Process, ProcessId};

    struct Chat;
    impl Process<u8> for Chat {
        fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
            ctx.broadcast(0, false);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, u8>, from: ProcessId, msg: u8) {
            if msg < 2 {
                ctx.send(from, msg + 1);
            }
        }
    }

    fn sim() -> Sim<u8> {
        Sim::<u8>::builder(3)
            .latency(FixedLatency(1))
            .build(|_| Box::new(Chat))
    }

    #[test]
    fn walks_are_deterministic_and_replayable() {
        let collect = || {
            let mut runs = Vec::new();
            random_walks(
                &WalkConfig {
                    walks: 8,
                    ..WalkConfig::default()
                },
                sim,
                |r| runs.push(r),
            );
            runs
        };
        let a = collect();
        let b = collect();
        assert_eq!(a.len(), 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.trace, y.trace, "sweep must be deterministic");
        }
        for run in &a {
            assert_eq!(replay(sim(), &run.choices), run.trace);
        }
    }

    #[test]
    fn walks_never_claim_completeness() {
        let stats = random_walks(&WalkConfig::default(), sim, |_| {});
        assert!(!stats.complete);
        assert_eq!(stats.schedules, WalkConfig::default().walks);
    }
}
