//! Differential conformance checking across execution backends.
//!
//! The workspace executes the same protocol three ways: the deterministic
//! [`Sim`] under any [`Strategy`](sfs_asys::Strategy), the
//! explorer's stateless replay of recorded
//! [`ScheduleLog`](sfs_asys::ScheduleLog)s, and the real-concurrency
//! threaded [`Runtime`](sfs_asys::net::Runtime). This module is the
//! oracle that checks they *agree* — not event-for-event (different
//! backends legitimately pick different schedules) but on everything a
//! schedule may not change:
//!
//! * **Class membership.** A complete exploration enumerates every
//!   happens-before class of the instance ([`class_fingerprint`]). Any
//!   execution of the same instance — however scheduled, including on
//!   real threads — is just one more schedule, so its class fingerprint
//!   must be a member of the enumerated set. An unknown class means one
//!   backend runs a different protocol than the other.
//! * **Verdict envelope.** A property the exploration *certified* (holds
//!   on every class) may not be violated by any backend; a property
//!   violated on *every* class must be violated by every complete
//!   backend run. In between — violated on some classes — either outcome
//!   is legitimate and the oracle says nothing.
//! * **Replay fidelity.** Re-executing a recorded schedule through the
//!   strict [`ReplayStrategy`](sfs_asys::ReplayStrategy) must reproduce
//!   its trace byte-for-byte ([`replay_fidelity`]).
//!
//! Every disagreement is a [`Divergence`] carrying the diverging
//! backend's full trace plus a replayable reference witness when one
//! exists — a conformance failure is itself a counterexample, and the
//! [`shrink`](mod@crate::shrink) module minimizes it like any other.
//!
//! The protocol-specific wiring (which properties, which backends, how
//! threaded runs are driven) lives in `sfs-apps::scenarios`; this module
//! is generic over an *evaluator* — a function from a trace to named
//! verdicts.

use crate::canon::class_fingerprint;
use crate::dfs::ScheduleRun;
use sfs_asys::{ChoiceTrace, Sim, Trace};
use sfs_history::History;
use sfs_tlogic::Verdict;
use std::fmt;

/// What the reference exploration promises about one property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyEnvelope {
    /// Property name as the evaluator reports it (e.g. `"sFS2b"`,
    /// `"Theorem5"`).
    pub property: String,
    /// Complete exploration, zero violating classes: **no** schedule of
    /// the instance violates the property.
    pub certified: bool,
    /// Complete exploration, *every* class violating: **every** complete
    /// run of the instance violates the property.
    pub always_violated: bool,
    /// A replayable violating schedule, when the exploration found one —
    /// attached to divergences as the reference counterexample.
    pub witness: Option<ChoiceTrace>,
}

/// The reference envelope one instance's exploration establishes: the
/// set of schedule classes plus per-property expectations. Built by the
/// caller from an exploration outcome (see
/// `sfs-apps::scenarios::ExploreOutcome`), consumed by
/// [`DifferentialOracle`].
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Whether the reference exploration enumerated the entire schedule
    /// space. Only then do class membership and the certified/universal
    /// verdict bounds carry any force.
    pub complete: bool,
    /// Sorted, deduplicated class fingerprints of every explored class.
    pub fingerprints: Vec<u64>,
    /// Per-property expectations.
    pub properties: Vec<PropertyEnvelope>,
}

impl Envelope {
    /// Whether `fingerprint` names an explored class.
    pub fn knows_class(&self, fingerprint: u64) -> bool {
        self.fingerprints.binary_search(&fingerprint).is_ok()
    }

    /// The envelope entry for `property`, if present.
    pub fn property(&self, property: &str) -> Option<&PropertyEnvelope> {
        self.properties.iter().find(|p| p.property == property)
    }
}

/// How one backend run disagreed with the reference envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DivergenceKind {
    /// A complete backend run produced a happens-before class the
    /// complete exploration never enumerated.
    UnknownClass {
        /// The unknown class fingerprint.
        fingerprint: u64,
    },
    /// A property certified over the whole schedule space was violated
    /// by a backend run.
    CertifiedViolated {
        /// The property.
        property: String,
    },
    /// A property violated on every explored class held on a complete
    /// backend run.
    UniversalViolationMissed {
        /// The property.
        property: String,
    },
    /// Strict replay of a recorded schedule did not reproduce its trace.
    ReplayMismatch,
}

impl fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DivergenceKind::UnknownClass { fingerprint } => {
                write!(f, "unknown schedule class {fingerprint:#018x}")
            }
            DivergenceKind::CertifiedViolated { property } => {
                write!(f, "certified property {property} violated")
            }
            DivergenceKind::UniversalViolationMissed { property } => {
                write!(f, "universally-violated property {property} held")
            }
            DivergenceKind::ReplayMismatch => write!(f, "replay diverged from its recording"),
        }
    }
}

/// One conformance failure: a backend run disagreeing with the reference
/// envelope (or with its own recording), with both sides attached.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Which backend diverged (e.g. `"sim:time-ordered"`, `"threaded"`).
    pub backend: String,
    /// The disagreement.
    pub kind: DivergenceKind,
    /// The diverging run's full trace.
    pub trace: Trace,
    /// A replayable reference witness, when one exists: the envelope's
    /// violating schedule for verdict divergences, the original recording
    /// for replay mismatches.
    pub reference: Option<ChoiceTrace>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.backend, self.kind)
    }
}

/// The differential oracle for one instance: the reference [`Envelope`]
/// plus the evaluator that turns any backend trace into per-property
/// verdicts (the same evaluator the reference was built with, or the
/// comparison is meaningless).
///
/// The evaluator receives the trace and whether the run was *complete*
/// (quiescent / maximal), so liveness obligations on truncated prefixes
/// come back [`Verdict::Vacuous`] and never conflict.
pub struct DifferentialOracle<E>
where
    E: Fn(&Trace, bool) -> Vec<(String, Verdict)>,
{
    envelope: Envelope,
    evaluate: E,
}

impl<E> fmt::Debug for DifferentialOracle<E>
where
    E: Fn(&Trace, bool) -> Vec<(String, Verdict)>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DifferentialOracle")
            .field("envelope", &self.envelope)
            .finish_non_exhaustive()
    }
}

impl<E> DifferentialOracle<E>
where
    E: Fn(&Trace, bool) -> Vec<(String, Verdict)>,
{
    /// An oracle for `envelope`, judging runs with `evaluate`.
    pub fn new(envelope: Envelope, evaluate: E) -> Self {
        DifferentialOracle { envelope, evaluate }
    }

    /// The reference envelope.
    pub fn envelope(&self) -> &Envelope {
        &self.envelope
    }

    /// Checks one backend run against the envelope. `complete` is the
    /// run's own maximality: `true` for a quiescent simulator run or a
    /// threaded run whose channels drained
    /// ([`Trace::channels_drained`]), `false` for
    /// truncated prefixes (which are only held to safety bounds).
    ///
    /// Returns every divergence found (empty = conformant).
    pub fn check(&self, backend: &str, trace: &Trace, complete: bool) -> Vec<Divergence> {
        let mut divergences = Vec::new();
        // Class membership: only a complete enumeration knows all classes,
        // and only a maximal run is a full schedule of the instance.
        if self.envelope.complete && complete {
            let fingerprint = class_fingerprint(&History::from_trace(trace));
            if !self.envelope.knows_class(fingerprint) {
                divergences.push(Divergence {
                    backend: backend.to_owned(),
                    kind: DivergenceKind::UnknownClass { fingerprint },
                    trace: trace.clone(),
                    reference: None,
                });
            }
        }
        // Verdict envelope.
        for (property, verdict) in (self.evaluate)(trace, complete) {
            let Some(bound) = self.envelope.property(&property) else {
                continue;
            };
            if bound.certified && verdict == Verdict::Violated {
                divergences.push(Divergence {
                    backend: backend.to_owned(),
                    kind: DivergenceKind::CertifiedViolated { property },
                    trace: trace.clone(),
                    reference: None,
                });
            } else if self.envelope.complete
                && bound.always_violated
                && complete
                && verdict == Verdict::Holds
            {
                divergences.push(Divergence {
                    backend: backend.to_owned(),
                    kind: DivergenceKind::UniversalViolationMissed { property },
                    trace: trace.clone(),
                    reference: bound.witness.clone(),
                });
            }
        }
        divergences
    }
}

/// Checks replay fidelity of one recorded schedule: strict re-execution
/// of `run.choices` against a fresh instance must reproduce `run.trace`
/// byte-for-byte. Returns the divergence if it does not.
///
/// This is the oracle for the *replay* backend: it holds on every
/// recording the engine produces, and a failure means the engine is not
/// deterministic (or `build` does not rebuild the same system).
pub fn replay_fidelity<M, F>(backend: &str, mut build: F, run: &ScheduleRun) -> Option<Divergence>
where
    M: Clone + fmt::Debug + 'static,
    F: FnMut() -> Sim<M>,
{
    let replayed = crate::dfs::replay(build(), &run.choices);
    if replayed == run.trace {
        None
    } else {
        Some(Divergence {
            backend: backend.to_owned(),
            kind: DivergenceKind::ReplayMismatch,
            trace: replayed,
            reference: Some(run.choices.clone()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{explore, ExploreConfig, Pruning};
    use sfs_asys::{Context, FixedLatency, Process, ProcessId, TimeOrderedStrategy};
    use std::collections::BTreeSet;

    /// Every process > 0 sends one message to p0.
    struct Star;
    impl Process<u8> for Star {
        fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
            if ctx.id().index() > 0 {
                ctx.send(ProcessId::new(0), 1);
            }
        }
        fn on_message(&mut self, _: &mut Context<'_, u8>, _: ProcessId, _: u8) {}
    }

    /// Like Star, but p0 sends one extra message to p1 — a different
    /// protocol, hence a different class universe.
    struct StarPlus;
    impl Process<u8> for StarPlus {
        fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
            if ctx.id().index() > 0 {
                ctx.send(ProcessId::new(0), 1);
            } else {
                ctx.send(ProcessId::new(1), 7);
            }
        }
        fn on_message(&mut self, _: &mut Context<'_, u8>, _: ProcessId, _: u8) {}
    }

    fn star(n: usize) -> Sim<u8> {
        Sim::<u8>::builder(n)
            .latency(FixedLatency(1))
            .build(|_| Box::new(Star))
    }

    fn star_plus(n: usize) -> Sim<u8> {
        Sim::<u8>::builder(n)
            .latency(FixedLatency(1))
            .build(|_| Box::new(StarPlus))
    }

    /// "delivered-all": holds iff every send was received.
    fn evaluator(trace: &Trace, complete: bool) -> Vec<(String, Verdict)> {
        let verdict = if trace.stats().messages_sent == trace.stats().messages_delivered {
            Verdict::Holds
        } else if complete {
            Verdict::Violated
        } else {
            Verdict::Vacuous
        };
        vec![("delivered-all".to_owned(), verdict)]
    }

    fn envelope_of(n: usize) -> Envelope {
        let mut fingerprints = BTreeSet::new();
        let stats = explore(
            &ExploreConfig {
                pruning: Pruning::None,
                ..ExploreConfig::default()
            },
            || star(n),
            |run| {
                // Full-alphabet fingerprints: these test systems have no
                // classifier, so from_trace keeps everything.
                fingerprints.insert(class_fingerprint(&History::from_trace(&run.trace)));
            },
        );
        assert!(stats.complete);
        Envelope {
            complete: true,
            fingerprints: fingerprints.into_iter().collect(),
            properties: vec![PropertyEnvelope {
                property: "delivered-all".to_owned(),
                certified: true,
                always_violated: false,
                witness: None,
            }],
        }
    }

    #[test]
    fn conformant_backend_run_raises_nothing() {
        let oracle = DifferentialOracle::new(envelope_of(4), evaluator);
        let mut sim = star(4);
        sim.set_strategy(TimeOrderedStrategy);
        let (trace, _) = sim.run_scheduled();
        let complete = trace.stop_reason().is_complete();
        assert!(oracle
            .check("sim:time-ordered", &trace, complete)
            .is_empty());
    }

    #[test]
    fn foreign_system_is_an_unknown_class() {
        let oracle = DifferentialOracle::new(envelope_of(4), evaluator);
        let trace = star_plus(4).run();
        let divergences = oracle.check("sim:foreign", &trace, true);
        assert!(
            divergences
                .iter()
                .any(|d| matches!(d.kind, DivergenceKind::UnknownClass { .. })),
            "{divergences:?}"
        );
        // The divergence carries the diverging trace.
        assert_eq!(divergences[0].trace, trace);
    }

    #[test]
    fn certified_property_violation_is_reported() {
        let oracle = DifferentialOracle::new(envelope_of(4), evaluator);
        // A run of a 5-process star truncated so hard nothing delivers:
        // complete=false keeps liveness vacuous, so force the conflict by
        // lying about completeness of a partial run.
        let mut sim = star(4);
        sim.set_max_steps(0);
        sim.set_strategy(TimeOrderedStrategy);
        let (trace, _) = sim.run_scheduled();
        assert!(trace.stats().messages_sent > trace.stats().messages_delivered);
        let divergences = oracle.check("sim:truncated", &trace, true);
        assert!(divergences
            .iter()
            .any(|d| matches!(&d.kind, DivergenceKind::CertifiedViolated { property } if property == "delivered-all")));
        // Honest completeness: the truncated run is held to safety only.
        let honest = oracle.check("sim:truncated", &trace, false);
        assert!(honest
            .iter()
            .all(|d| !matches!(d.kind, DivergenceKind::CertifiedViolated { .. })));
    }

    #[test]
    fn universal_violation_must_reproduce() {
        let mut envelope = envelope_of(3);
        envelope.properties.push(PropertyEnvelope {
            property: "never-holds".to_owned(),
            certified: false,
            always_violated: true,
            witness: Some(vec![0]),
        });
        let oracle = DifferentialOracle::new(envelope, |_t: &Trace, _c| {
            vec![("never-holds".to_owned(), Verdict::Holds)]
        });
        let trace = star(3).run();
        let divergences = oracle.check("sim", &trace, true);
        assert_eq!(divergences.len(), 1);
        assert!(matches!(
            &divergences[0].kind,
            DivergenceKind::UniversalViolationMissed { property } if property == "never-holds"
        ));
        assert_eq!(divergences[0].reference, Some(vec![0]));
    }

    #[test]
    fn replay_fidelity_accepts_recordings_and_rejects_foreign_builds() {
        let mut runs = Vec::new();
        explore(
            &ExploreConfig {
                pruning: Pruning::None,
                ..ExploreConfig::default()
            },
            || star(3),
            |run| runs.push(run),
        );
        for run in &runs {
            assert!(replay_fidelity("replay", || star(3), run).is_none());
        }
        // Replaying against a different system must be caught.
        let mismatch = runs
            .iter()
            .find_map(|run| replay_fidelity("replay", || star_plus(3), run));
        let mismatch = mismatch.expect("foreign build diverges");
        assert_eq!(mismatch.kind, DivergenceKind::ReplayMismatch);
        assert!(mismatch.reference.is_some());
    }
}
