//! # sfs-explore — schedule-space exploration for the fail-stop simulation
//!
//! The paper's central claims (Sabel & Marzullo 1994) quantify over *all*
//! runs: FS1 and sFS2a–d (Figure 1) must hold on every schedule, the
//! necessary Conditions 1–3 (Theorem 2) on every run of any
//! indistinguishable model, and the lower bounds (Theorems 6–7) assert
//! what *some* adversarial schedule can force. The seeded-random
//! simulator of `sfs-asys` samples that schedule space; this crate
//! searches it:
//!
//! * [`explore`] — bounded-exhaustive depth-first enumeration of every
//!   delivery order and crash placement, by stateless re-execution over
//!   the [`Strategy`](sfs_asys::Strategy) seam, with
//!   [sleep-set pruning](Pruning::SleepSets) (a DPOR-lite over the
//!   locus-disjointness independence relation) so only one
//!   representative per commutation-equivalence class is executed;
//! * [`class_fingerprint`] — canonical 64-bit class ids built from the
//!   per-process projections plus [`HappensBefore`](sfs_history::HappensBefore)'s
//!   flat vector-clock arena, for O(1) semantic dedup of explored
//!   histories;
//! * [`random_walks`] — the depth/branch-budgeted sampling fallback for
//!   instances past exhaustion, driven by the uniformly-random scheduler;
//! * [`replay`] — byte-exact reproduction of any explored schedule from
//!   its recorded [`ChoiceTrace`](sfs_asys::ChoiceTrace);
//! * [`conform`] — the differential oracle: cross-checks the simulator,
//!   the replay engine, and the threaded runtime against the envelope a
//!   complete exploration establishes (class membership, certified and
//!   universal verdicts, replay fidelity), reporting any disagreement as
//!   a [`Divergence`] with both traces attached;
//! * [`shrink`](mod@shrink) — delta debugging over recorded choice
//!   traces: reduces any violating schedule to a minimal witness, every
//!   candidate re-validated by replay.
//!
//! On a **complete** exploration ([`ExploreStats::complete`]) a property
//! that holds on every visited schedule holds on *every* schedule of the
//! instance — the explorer turns the property checkers of `sfs-tlogic`
//! from violation exhibitors into certifiers (experiment E9). The
//! soundness argument for pruning lives in the [`dfs`] module docs;
//! in one line: every certified verdict is invariant under swapping
//! adjacent concurrent steps, which is the same invariance Theorem 5's
//! rearrangement engine is built on.
//!
//! # Examples
//!
//! Certify a property over every schedule of a two-process handshake:
//!
//! ```
//! use sfs_asys::{Context, FixedLatency, Process, ProcessId, Sim};
//! use sfs_explore::{explore, ExploreConfig};
//! use sfs_history::History;
//! use sfs_tlogic::{properties, Verdict};
//!
//! struct Hello;
//! impl Process<&'static str> for Hello {
//!     fn on_start(&mut self, ctx: &mut Context<'_, &'static str>) {
//!         if ctx.id().index() == 0 {
//!             ctx.send(ProcessId::new(1), "hello");
//!         }
//!     }
//!     fn on_message(&mut self, ctx: &mut Context<'_, &'static str>, from: ProcessId, msg: &'static str) {
//!         if msg == "hello" {
//!             ctx.send(from, "ack");
//!         }
//!     }
//! }
//!
//! let build = || Sim::<&'static str>::builder(2)
//!     .latency(FixedLatency(1))
//!     .build(|_| Box::new(Hello));
//! let mut all_ok = true;
//! let stats = explore(&ExploreConfig::default(), build, |run| {
//!     let h = History::from_trace(&run.trace);
//!     all_ok &= properties::check_fs2(&h).verdict == Verdict::Holds;
//! });
//! // No schedule of this (crash-free) system can violate FS2:
//! assert!(stats.complete && all_ok);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod canon;
pub mod conform;
pub mod dfs;
pub mod shrink;
mod walk;

pub use canon::class_fingerprint;
pub use conform::{
    replay_fidelity, DifferentialOracle, Divergence, DivergenceKind, Envelope, PropertyEnvelope,
};
pub use dfs::{
    explore, explore_with_prefix, probe_width, replay, ExploreConfig, ExploreStats, Pruning,
    ScheduleRun,
};
pub use shrink::{shrink, ShrinkConfig, ShrinkOutcome};
pub use walk::{random_walks, WalkConfig};
