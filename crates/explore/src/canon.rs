//! Canonical fingerprints of schedule-equivalence classes.
//!
//! Two explored schedules are *equivalent* when one is reachable from
//! the other by swapping adjacent concurrent steps — the reordering the
//! paper's Theorem 5 engine performs, under which every certified
//! property is invariant (see the `dfs` module docs). A class is
//! canonically described by what commutation cannot change: the
//! per-process event sequences and the happens-before relation. This
//! module condenses exactly that into a 64-bit fingerprint by hashing,
//! process by process, each event together with its vector clock row
//! from [`HappensBefore`]'s flat clock arena.
//!
//! The fingerprint gives explorers an O(1) semantic dedup: sleep sets
//! already eliminate most redundant schedules *before* executing them,
//! and fingerprint dedup catches equivalent schedules that still slip
//! through (e.g. across the pinned root branches of a parallel
//! exploration, where sleep sets cannot propagate), so the
//! rearrange-and-check pipeline runs once per class.

use sfs_history::{HappensBefore, History};

/// FNV-1a, the classic 64-bit flavour: tiny state, no allocation, stable
/// across runs (unlike `DefaultHasher`, which is seeded per process).
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(Self::PRIME);
        }
    }
}

/// The commutation-class fingerprint of a history: equal for any two
/// interleavings of the same per-process behaviour, (collision-aside)
/// distinct otherwise.
///
/// # Examples
///
/// Reordering concurrent events preserves the fingerprint; changing a
/// process's behaviour does not:
///
/// ```
/// use sfs_asys::ProcessId;
/// use sfs_history::{Event, History};
/// use sfs_explore::class_fingerprint;
///
/// let p0 = ProcessId::new(0);
/// let p1 = ProcessId::new(1);
/// let a = History::new(2, vec![
///     Event::Internal { pid: p0, tag: 7 },
///     Event::Internal { pid: p1, tag: 9 },
/// ]);
/// let b = History::new(2, vec![
///     Event::Internal { pid: p1, tag: 9 },
///     Event::Internal { pid: p0, tag: 7 },
/// ]);
/// assert_eq!(class_fingerprint(&a), class_fingerprint(&b));
///
/// let c = History::new(2, vec![Event::Internal { pid: p0, tag: 8 }]);
/// assert_ne!(class_fingerprint(&a), class_fingerprint(&c));
/// ```
pub fn class_fingerprint(h: &History) -> u64 {
    let hb = HappensBefore::compute(h);
    let n = h.n();
    let mut fnv = Fnv::new();
    fnv.write_u64(n as u64);
    // Canonical event order: by owning process, then per-process program
    // order (the order they appear in the history, which commutation
    // cannot change). The clock row pins cross-process causality.
    for p in 0..n {
        fnv.write_u64(0x5eed ^ p as u64);
        for (i, e) in h.events().iter().enumerate() {
            if e.process().index() != p {
                continue;
            }
            hash_event(&mut fnv, e);
            for &c in hb.clock(i) {
                fnv.write_u64(u64::from(c));
            }
        }
    }
    fnv.0
}

fn hash_event(fnv: &mut Fnv, e: &sfs_history::Event) {
    use sfs_history::Event;
    match *e {
        Event::Send { from, to, msg } => {
            fnv.write_u64(1);
            fnv.write_u64(from.index() as u64);
            fnv.write_u64(to.index() as u64);
            fnv.write_u64(msg.seq());
        }
        Event::Recv { by, from, msg } => {
            fnv.write_u64(2);
            fnv.write_u64(by.index() as u64);
            fnv.write_u64(from.index() as u64);
            fnv.write_u64(msg.seq());
        }
        Event::Crash { pid } => {
            fnv.write_u64(3);
            fnv.write_u64(pid.index() as u64);
        }
        Event::Failed { by, of } => {
            fnv.write_u64(4);
            fnv.write_u64(by.index() as u64);
            fnv.write_u64(of.index() as u64);
        }
        Event::Internal { pid, tag } => {
            fnv.write_u64(5);
            fnv.write_u64(pid.index() as u64);
            fnv.write_u64(tag);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_asys::{MsgId, ProcessId};
    use sfs_history::Event;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn send_recv_chains_fingerprint_by_causality() {
        let m = MsgId::new(p(0), 0);
        // Crash of p2 concurrent with the message: position is free.
        let a = History::new(
            3,
            vec![
                Event::crash(p(2)),
                Event::send(p(0), p(1), m),
                Event::recv(p(1), p(0), m),
            ],
        );
        let b = History::new(
            3,
            vec![
                Event::send(p(0), p(1), m),
                Event::recv(p(1), p(0), m),
                Event::crash(p(2)),
            ],
        );
        assert_eq!(class_fingerprint(&a), class_fingerprint(&b));
    }

    #[test]
    fn detection_order_within_a_process_matters() {
        let a = History::new(
            3,
            vec![Event::failed(p(0), p(1)), Event::failed(p(0), p(2))],
        );
        let b = History::new(
            3,
            vec![Event::failed(p(0), p(2)), Event::failed(p(0), p(1))],
        );
        assert_ne!(
            class_fingerprint(&a),
            class_fingerprint(&b),
            "program order is not a commutation"
        );
    }

    #[test]
    fn distinct_message_flows_differ() {
        let a = History::new(2, vec![Event::send(p(0), p(1), MsgId::new(p(0), 0))]);
        let b = History::new(2, vec![Event::send(p(1), p(0), MsgId::new(p(1), 0))]);
        assert_ne!(class_fingerprint(&a), class_fingerprint(&b));
    }
}
