//! Bounded-exhaustive depth-first exploration of the schedule tree.
//!
//! # The schedule tree
//!
//! A scheduled run of [`Sim`] is a path in a tree: each node is a global
//! state, each edge one enabled step (a deliverable channel head, an
//! armed timer, a pending crash/stimulus injection). The simulator cannot
//! be snapshotted — processes are opaque boxed automata — so the explorer
//! is **stateless** in the model-checking sense: every schedule is
//! produced by re-executing the system from its initial state under a
//! guided strategy that follows a prescribed choice prefix and then
//! free-runs. Determinism of the engine guarantees that equal prefixes
//! reach equal states, which is what makes the recorded
//! [`ScheduleLog`](sfs_asys::ScheduleLog)s comparable across executions
//! and every explored schedule replayable from its [`ChoiceTrace`].
//!
//! # Partial-order pruning (sleep sets)
//!
//! Exhaustive enumeration is factorial in the number of concurrent
//! steps, but most interleavings are equivalent: two enabled steps with
//! distinct *loci* (the process whose state they touch, see
//! [`StepKind::locus`](sfs_asys::StepKind::locus)) commute — executing them in either order yields
//! the same global state, the same per-process event sequences, and
//! therefore the same happens-before relation (`hb.rs` proves HB depends
//! only on per-process order and send/receive matching). Every property
//! the explorer certifies is invariant under such commutations: FS1 and
//! sFS2a–c depend on the event set and per-process order, sFS2d and
//! Condition 3 on happens-before, and "does an isomorphic fail-stop run
//! exist" ([`rearrange_to_fs`]) on the constraint graph built from
//! happens-before — the paper's own Theorem 5 rests on exactly this
//! invariance. (Raw FS2 *is* interleaving-sensitive, which is why the
//! explorer reports rearrangeability, the isomorphism-invariant version
//! of it, instead.)
//!
//! [`Pruning::SleepSets`] exploits this with Godefroid-style sleep sets:
//! after a child `a` of node `s` is fully explored, `a` is put to sleep
//! at `s`; siblings explored later pass the sleep set down, waking any
//! step that is *dependent* on (shares a locus with) the step taken.
//! Schedules that begin with a sleeping step are exactly those
//! equivalent, by a sequence of adjacent commutations, to one already
//! explored, so subtrees whose every enabled step sleeps are skipped
//! entirely. One representative per Mazurkiewicz trace class survives;
//! verdicts are unchanged. On top of this, *no-op steps* (deliveries,
//! timers, and injections whose target already crashed or whose timer
//! was cancelled — see [`EnabledStep::noop`]) are executed immediately
//! without branching: they run no process code, record no event, and
//! commute with everything.
//!
//! [`rearrange_to_fs`]: sfs_history::rearrange_to_fs
//! [`Sim`]: sfs_asys::Sim

use sfs_asys::{ChoiceTrace, EnabledStep, ProcessId, Sim, Strategy, Trace};
use std::fmt;

/// Which redundant-schedule elimination the DFS applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pruning {
    /// Enumerate every interleaving (no equivalence reduction). The
    /// choice for differential tests and for counting interleavings.
    None,
    /// Sleep-set pruning over the locus-disjointness independence
    /// relation, plus forced execution of no-op steps: one
    /// representative per commutation-equivalence class. Sound for every
    /// interleaving-invariant verdict (see the module docs) — **provided
    /// process handlers are functions of (local state, delivered event)
    /// alone**, the determinism the paper's model and the
    /// [`Process`](sfs_asys::Process) contract already assume. Handlers
    /// that read ambient simulator state — the virtual clock
    /// ([`Context::now`](sfs_asys::Context::now)), a shared
    /// [`CrashRegistry`](sfs_asys::CrashRegistry), the shared RNG — can
    /// observe *when* their step ran relative to steps at other loci, so
    /// commuting locus-disjoint steps stops being behaviour-preserving
    /// and a "complete" pruned exploration could falsely certify. For
    /// such systems use [`Pruning::None`] or [`random_walks`].
    ///
    /// [`random_walks`]: crate::random_walks
    #[default]
    SleepSets,
}

/// Budgets and policy for one exploration.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Per-schedule depth bound: scheduling decisions before the run is
    /// truncated ([`StopReason::MaxSteps`](sfs_asys::StopReason)).
    pub max_steps: usize,
    /// Total executed-schedule budget; exploration reports
    /// `complete = false` when it runs out.
    pub max_schedules: usize,
    /// Redundancy elimination.
    pub pruning: Pruning,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_steps: 256,
            max_schedules: 1_000_000,
            pruning: Pruning::SleepSets,
        }
    }
}

/// Aggregate counters for one exploration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Schedules executed (including redundant ones cut before visiting).
    pub schedules: usize,
    /// Schedules handed to the visitor.
    pub visited: usize,
    /// Total scheduling decisions across all executions.
    pub steps: u64,
    /// Children skipped because they were asleep when their node was
    /// exhausted — interleavings proven redundant without executing them.
    pub sleep_skips: u64,
    /// Siblings never branched on because a no-op step was forced.
    pub forced_skips: u64,
    /// Executed schedules discarded as redundant (every enabled step of
    /// some reached node was asleep).
    pub redundant: usize,
    /// Schedules truncated by the depth bound (or an engine budget).
    pub truncated: usize,
    /// Whether the (pruned) tree was fully enumerated: no truncation and
    /// the schedule budget was not exhausted. Only a `complete`
    /// exploration certifies a property.
    pub complete: bool,
}

impl ExploreStats {
    /// Folds another exploration's counters into this one — the
    /// order-preserving reduction step when a tree is explored one root
    /// branch per task. The merged result is `complete` only if every
    /// part was.
    pub fn absorb(&mut self, other: &ExploreStats) {
        self.schedules += other.schedules;
        self.visited += other.visited;
        self.steps += other.steps;
        self.sleep_skips += other.sleep_skips;
        self.forced_skips += other.forced_skips;
        self.redundant += other.redundant;
        self.truncated += other.truncated;
        self.complete &= other.complete;
    }
}

/// One explored schedule, as handed to the visitor.
#[derive(Debug, Clone)]
pub struct ScheduleRun {
    /// The trace of the execution.
    pub trace: Trace,
    /// The choice sequence that reproduces it (feed to
    /// [`ReplayStrategy`](sfs_asys::ReplayStrategy), or to
    /// [`replay`]).
    pub choices: ChoiceTrace,
    /// Whether the run hit the depth bound (its verdict on liveness
    /// properties is then only partial).
    pub truncated: bool,
}

/// A sleeping or explored step identity: `(order, locus)`. The engine's
/// creation-sequence `order` is unique per step and stable across
/// executions sharing the choice prefix that created the step.
type StepId = (u64, ProcessId);

fn id_of(step: &EnabledStep) -> StepId {
    (step.order, step.kind.locus())
}

fn contains(set: &[StepId], step: &EnabledStep) -> bool {
    set.iter().any(|&(order, _)| order == step.order)
}

/// Sleep-set propagation: executing `chosen` wakes (removes) every
/// sleeping step dependent on it — those sharing its locus.
fn propagate(sleep: &mut Vec<StepId>, chosen: &EnabledStep) {
    let locus = chosen.kind.locus();
    sleep.retain(|&(_, l)| l != locus);
}

/// One node of the current DFS path.
#[derive(Debug, Clone)]
struct Frame {
    enabled: Vec<EnabledStep>,
    /// Steps asleep on entry to this node.
    sleep_in: Vec<StepId>,
    /// Children fully explored from this node (they join the sleep set
    /// for later siblings).
    done: Vec<StepId>,
    /// Index (into `enabled`) of the child currently being explored.
    chosen: usize,
    /// A no-op step was executed here without branching; the node has
    /// exactly one child.
    forced: bool,
    /// Pinned by an external prefix (root-branch parallelism): never
    /// advanced past its prescribed child.
    pinned: bool,
}

/// The guided strategy: follows the prescribed prefix, then free-runs —
/// forcing no-op steps and respecting the propagated sleep set when
/// pruning is on, first-enabled otherwise.
struct GuidedStrategy {
    script: Vec<u32>,
    pos: usize,
    /// Sleep set, valid from the first free node on (seeded by the
    /// explorer with the frontier node's sleep-in set).
    sleep: Vec<StepId>,
    prune: bool,
}

impl Strategy for GuidedStrategy {
    fn choose(&mut self, enabled: &[EnabledStep]) -> usize {
        let scripted = self.pos < self.script.len();
        let idx = if scripted {
            let c = self.script[self.pos] as usize;
            debug_assert!(c < enabled.len(), "stale script: prefix not reproducible");
            c
        } else if self.prune {
            enabled
                .iter()
                .position(|s| s.noop)
                .or_else(|| enabled.iter().position(|s| !contains(&self.sleep, s)))
                // Every enabled step asleep: the subtree is redundant.
                // Pick canonically; the explorer detects this from the
                // log and discards the run.
                .unwrap_or(0)
        } else {
            0
        };
        if !scripted && self.prune {
            propagate(&mut self.sleep, &enabled[idx]);
        }
        self.pos += 1;
        idx
    }
}

/// Explores the schedule tree of the system produced by `build`,
/// invoking `visit` once per non-redundant schedule, in deterministic
/// depth-first order.
///
/// `build` must produce the *same* system every time it is called (same
/// processes, same fault plan, same seed): the explorer re-executes it
/// once per schedule. Any strategy installed by the factory is replaced.
///
/// See [`ExploreConfig`] for budgets and [`ExploreStats::complete`] for
/// whether the enumeration finished — only then do universally-quantified
/// verdicts ("no schedule violates P") follow.
pub fn explore<M, F>(
    config: &ExploreConfig,
    build: F,
    visit: impl FnMut(ScheduleRun),
) -> ExploreStats
where
    M: Clone + fmt::Debug + 'static,
    F: FnMut() -> Sim<M>,
{
    explore_with_prefix(config, &[], build, visit)
}

/// [`explore`], restricted to the subtree under a fixed choice prefix.
///
/// This is the unit of parallelism for experiment E9: enumerate the root
/// node's enabled steps once (via [`probe_width`]), then explore each
/// root branch in its own task. Sleep sets do not propagate across
/// pinned prefix nodes, so the union of the per-branch explorations may
/// revisit classes a sequential run would have pruned — sound, merely
/// less sharp.
pub fn explore_with_prefix<M, F>(
    config: &ExploreConfig,
    prefix: &[u32],
    mut build: F,
    mut visit: impl FnMut(ScheduleRun),
) -> ExploreStats
where
    M: Clone + fmt::Debug + 'static,
    F: FnMut() -> Sim<M>,
{
    let prune = config.pruning == Pruning::SleepSets;
    let mut stats = ExploreStats::default();
    let mut path: Vec<Frame> = Vec::new();
    let mut exhausted = false;
    loop {
        if stats.schedules > 0 {
            // Advance to the next unexplored branch, popping finished
            // frames.
            loop {
                let Some(frame) = path.last_mut() else {
                    exhausted = true;
                    break;
                };
                frame.done.push(id_of(&frame.enabled[frame.chosen]));
                if frame.forced || frame.pinned {
                    if frame.forced {
                        stats.forced_skips += frame.enabled.len() as u64 - 1;
                    }
                    path.pop();
                    continue;
                }
                let next = frame.enabled.iter().position(|s| {
                    !(contains(&frame.done, s) || prune && contains(&frame.sleep_in, s))
                });
                match next {
                    Some(i) => {
                        frame.chosen = i;
                        break;
                    }
                    None => {
                        stats.sleep_skips += (frame.enabled.len() - frame.done.len()) as u64;
                        path.pop();
                    }
                }
            }
            if exhausted {
                break;
            }
        }
        if stats.schedules >= config.max_schedules {
            break;
        }

        // Prescribe the current path and execute one schedule.
        let script: Vec<u32> = prefix
            .iter()
            .copied()
            .chain(path.iter().skip(prefix.len()).map(|f| f.chosen as u32))
            .collect();
        debug_assert!(path.is_empty() || script.len() == path.len());
        let frontier_sleep = match path.last() {
            Some(f) => {
                let mut sleep: Vec<StepId> =
                    f.sleep_in.iter().chain(f.done.iter()).copied().collect();
                propagate(&mut sleep, &f.enabled[f.chosen]);
                sleep
            }
            None => Vec::new(),
        };
        let mut sim = build();
        sim.set_max_steps(config.max_steps);
        sim.set_strategy(GuidedStrategy {
            script: script.clone(),
            pos: 0,
            sleep: frontier_sleep.clone(),
            prune,
        });
        let (trace, log) = sim.run_scheduled();
        stats.schedules += 1;
        stats.steps += log.len() as u64;

        // Reconstruct frames for the newly-executed free suffix, mirroring
        // the strategy's sleep propagation, and detect redundant nodes.
        let mut sleep = frontier_sleep;
        let mut redundant = false;
        for (depth, step) in log.steps.iter().enumerate() {
            if depth < path.len() {
                debug_assert_eq!(
                    step.chosen as usize, path[depth].chosen,
                    "determinism violation: prefix diverged on re-execution"
                );
                continue;
            }
            let forced = prune && step.enabled.iter().any(|s| s.noop);
            if prune && !forced && step.enabled.iter().all(|s| contains(&sleep, s)) {
                redundant = true;
                break;
            }
            path.push(Frame {
                enabled: step.enabled.clone(),
                sleep_in: sleep.clone(),
                done: Vec::new(),
                chosen: step.chosen as usize,
                forced,
                pinned: depth < prefix.len(),
            });
            propagate(&mut sleep, &step.enabled[step.chosen as usize]);
        }

        if redundant {
            stats.redundant += 1;
            continue;
        }
        let truncated = !trace.stop_reason().is_complete();
        if truncated {
            stats.truncated += 1;
        }
        stats.visited += 1;
        visit(ScheduleRun {
            trace,
            choices: log.choices(),
            truncated,
        });
    }
    stats.complete = exhausted && stats.truncated == 0;
    stats
}

/// Runs one canonical schedule and returns the branching width of the
/// root node (0 when the system has no step at all) — the number of
/// subtrees [`explore_with_prefix`] can fan out over.
pub fn probe_width<M, F>(mut build: F) -> usize
where
    M: Clone + fmt::Debug + 'static,
    F: FnMut() -> Sim<M>,
{
    let mut sim = build();
    // One decision is enough to see the root's enabled set.
    sim.set_max_steps(1);
    sim.set_strategy(GuidedStrategy {
        script: Vec::new(),
        pos: 0,
        sleep: Vec::new(),
        prune: false,
    });
    let (_, log) = sim.run_scheduled();
    log.steps.first().map_or(0, |s| s.enabled.len())
}

/// Replays a recorded choice trace against a fresh instance of the same
/// system and returns its trace — byte-identical to the recorded run.
/// The witness-reproduction path for explored violations.
///
/// The run is bounded to exactly `choices.len()` decisions, so witnesses
/// recorded from depth-truncated schedules reproduce the truncated trace
/// (rather than free-running past the point the violation was observed);
/// recordings that ended in quiescence still replay to quiescence, since
/// the engine checks terminal conditions before the step budget.
pub fn replay<M>(mut sim: Sim<M>, choices: &[u32]) -> Trace
where
    M: Clone + fmt::Debug + 'static,
{
    sim.set_max_steps(choices.len());
    sim.set_strategy(sfs_asys::ReplayStrategy::new(choices.to_vec()));
    sim.run_scheduled().0
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_asys::{Context, FixedLatency, Process};

    /// `k` sender processes each send one message to a common sink.
    struct OneShot {
        target: ProcessId,
    }
    impl Process<u8> for OneShot {
        fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
            if ctx.id() != self.target {
                ctx.send(self.target, ctx.id().index() as u8);
            }
        }
        fn on_message(&mut self, _: &mut Context<'_, u8>, _: ProcessId, _: u8) {}
    }

    fn star(n: usize) -> Sim<u8> {
        Sim::<u8>::builder(n).latency(FixedLatency(1)).build(|_| {
            Box::new(OneShot {
                target: ProcessId::new(n - 1),
            })
        })
    }

    #[test]
    fn unpruned_star_counts_interleavings() {
        // k = 3 senders to one sink: 3 concurrent sends interleave with
        // the (FIFO-independent) deliveries. The send steps... are not
        // steps at all (sends happen inside on_start); the schedule tree
        // branches only over the 3 deliveries: 3! = 6 interleavings.
        let cfg = ExploreConfig {
            pruning: Pruning::None,
            ..ExploreConfig::default()
        };
        let mut seen = Vec::new();
        let stats = explore(&cfg, || star(4), |run| seen.push(run.choices.clone()));
        assert_eq!(stats.visited, 6);
        assert!(stats.complete);
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 6, "each interleaving visited exactly once");
    }

    #[test]
    fn sleep_sets_collapse_equivalent_deliveries_to_one_class() {
        // All three deliveries share the sink locus, so they are pairwise
        // DEPENDENT: sleep sets must not prune anything here.
        let cfg = ExploreConfig::default();
        let stats = explore(&cfg, || star(4), |_| {});
        assert_eq!(stats.visited, 6, "dependent steps are never pruned");
        assert!(stats.complete);
    }

    /// Two disjoint sender→sink pairs: the deliveries are independent.
    struct Pairs;
    impl Process<u8> for Pairs {
        fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
            let i = ctx.id().index();
            if i % 2 == 0 {
                ctx.send(ProcessId::new(i + 1), 0);
            }
        }
        fn on_message(&mut self, _: &mut Context<'_, u8>, _: ProcessId, _: u8) {}
    }

    fn pairs() -> Sim<u8> {
        Sim::<u8>::builder(4)
            .latency(FixedLatency(1))
            .build(|_| Box::new(Pairs))
    }

    #[test]
    fn sleep_sets_prune_independent_interleavings() {
        let full = explore(
            &ExploreConfig {
                pruning: Pruning::None,
                ..ExploreConfig::default()
            },
            pairs,
            |_| {},
        );
        assert_eq!(full.visited, 2, "two independent deliveries: 2 orders");
        let pruned = explore(&ExploreConfig::default(), pairs, |_| {});
        assert_eq!(
            pruned.visited, 1,
            "one representative of the single commutation class"
        );
        assert!(pruned.complete);
        assert!(pruned.sleep_skips + pruned.redundant as u64 > 0);
    }

    #[test]
    fn every_schedule_is_replayable() {
        let mut runs = Vec::new();
        let stats = explore(
            &ExploreConfig {
                pruning: Pruning::None,
                ..ExploreConfig::default()
            },
            || star(3),
            |run| runs.push(run),
        );
        assert!(stats.complete);
        for run in runs {
            let replayed = replay(star(3), &run.choices);
            assert_eq!(replayed, run.trace, "replay must be byte-identical");
        }
    }

    #[test]
    fn depth_bound_truncates_and_reports_incomplete() {
        let cfg = ExploreConfig {
            max_steps: 1,
            pruning: Pruning::None,
            ..ExploreConfig::default()
        };
        let stats = explore(&cfg, || star(4), |run| assert!(run.truncated));
        assert!(!stats.complete);
        assert!(stats.truncated > 0);
    }

    #[test]
    fn schedule_budget_is_respected() {
        let cfg = ExploreConfig {
            max_schedules: 2,
            pruning: Pruning::None,
            ..ExploreConfig::default()
        };
        let stats = explore(&cfg, || star(4), |_| {});
        assert_eq!(stats.schedules, 2);
        assert!(!stats.complete);
    }

    #[test]
    fn prefix_partition_covers_the_whole_tree() {
        let width = probe_width(|| star(4));
        assert_eq!(width, 3);
        let mut total = 0;
        for branch in 0..width {
            let stats = explore_with_prefix(
                &ExploreConfig {
                    pruning: Pruning::None,
                    ..ExploreConfig::default()
                },
                &[branch as u32],
                || star(4),
                |_| {},
            );
            assert!(stats.complete);
            total += stats.visited;
        }
        assert_eq!(total, 6, "root partition covers every interleaving once");
    }
}
