//! The load generator: open- and closed-loop client-operation drivers.
//!
//! One [`LoadGenApp`] instance runs on every member of a shard. The
//! *driver* role (the lowest non-failed member, exactly the §1 election
//! rule the work-pool app uses) issues operations — round-robin over the
//! live membership — either at a fixed rate regardless of completions
//! (**open loop**, the arrival-process model) or keeping a fixed window
//! outstanding (**closed loop**, the think-time model). Workers execute
//! and broadcast completion; on a failure notification the driver
//! reassigns the dead worker's outstanding operations, and when the
//! driver itself is detected failed the next member takes over from the
//! completion knowledge it already holds. All of the failover logic
//! leans on fail-stop semantics: a detected worker is really dead
//! (sFS2a), so at-least-once reissue is trivially correct.
//!
//! On the deterministic simulator the generated load is a pure function
//! of the spec; on the threaded runtime ticks are wall-clock
//! milliseconds, making the rates real. Completions are recorded as
//! trace annotations, which [`analyze_load`] turns into throughput and
//! per-op latency.

use serde::{Deserialize, Serialize};
use sfs::{AppApi, Application};
use sfs_asys::{Note, ProcessId, Trace, TraceEventKind, VirtualTime};
use std::collections::{BTreeMap, BTreeSet};

/// Trace-note key: the driver issued an op (`val` = op id).
pub const NOTE_OP_ISSUED: &str = "op-issued";

/// Trace-note key: a worker executed an op (`val` = op id); duplicated
/// under reassignment (at-least-once).
pub const NOTE_OP_EXEC: &str = "op-exec";

/// Trace-note key: the driver learned an op completed (`val` = op id).
pub const NOTE_OP_DONE: &str = "op-done";

/// Trace-note key: the driver observed every op complete.
pub const NOTE_LOAD_COMPLETE: &str = "load-complete";

/// The span name each driver opens when it starts driving and closes at
/// full completion, via the execution-neutral
/// [`sfs_obs::metrics::SPAN_BEGIN`]/[`SPAN_END`](sfs_obs::metrics::SPAN_END)
/// note vocabulary — rendered as a named interval per driving process by
/// the Chrome trace exporter. A driver that crashes mid-load leaves its
/// span open (its successor opens a fresh one), which the trace viewer
/// renders as an unclosed interval — exactly what happened.
pub const SPAN_LOAD: &str = "load";

/// The issue discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoadMode {
    /// Issue `burst` ops every `interval` ticks, regardless of
    /// completions — models an external arrival process.
    Open {
        /// Ticks between issue bursts.
        interval: u64,
        /// Ops per burst.
        burst: u64,
    },
    /// Keep up to `window` ops outstanding; issue the next the moment
    /// one completes — models clients with bounded concurrency.
    Closed {
        /// Maximum outstanding ops.
        window: u64,
    },
}

/// How much load to apply, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadProfile {
    /// Issue discipline.
    pub mode: LoadMode,
    /// Total operations (ids `0..ops`).
    pub ops: u64,
}

impl LoadProfile {
    /// An open-loop profile.
    pub fn open(ops: u64, interval: u64, burst: u64) -> Self {
        LoadProfile {
            mode: LoadMode::Open { interval, burst },
            ops,
        }
    }

    /// A closed-loop profile.
    pub fn closed(ops: u64, window: u64) -> Self {
        LoadProfile {
            mode: LoadMode::Closed { window },
            ops,
        }
    }
}

/// Client-operation messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoadMsg {
    /// Driver → worker: execute this op.
    Assign {
        /// Op id in `0..ops`.
        op: u64,
    },
    /// Worker → everyone: this op is complete (broadcast so any future
    /// driver knows).
    Done {
        /// Op id in `0..ops`.
        op: u64,
    },
}

/// The load-generator automaton; see the module docs.
#[derive(Debug, Clone)]
pub struct LoadGenApp {
    profile: LoadProfile,
    failed: BTreeSet<ProcessId>,
    driving: bool,
    /// Ops this process has issued while driving, and to whom.
    assigned: BTreeMap<u64, ProcessId>,
    /// Next op id this driver would issue.
    next_op: u64,
    done: BTreeSet<u64>,
    executed: BTreeSet<u64>,
    /// Round-robin cursor over the live membership.
    rr: usize,
    complete_announced: bool,
}

impl LoadGenApp {
    /// A fresh instance applying `profile`.
    pub fn new(profile: LoadProfile) -> Self {
        LoadGenApp {
            profile,
            failed: BTreeSet::new(),
            driving: false,
            assigned: BTreeMap::new(),
            next_op: 0,
            done: BTreeSet::new(),
            executed: BTreeSet::new(),
            rr: 0,
            complete_announced: false,
        }
    }

    /// Ops this process knows to be complete.
    pub fn done(&self) -> &BTreeSet<u64> {
        &self.done
    }

    fn driver(&self, api: &AppApi<'_, '_, LoadMsg>) -> ProcessId {
        ProcessId::all(api.n())
            .find(|p| !self.failed.contains(p))
            .expect("a running process cannot have removed everyone")
    }

    fn next_worker(&mut self, api: &AppApi<'_, '_, LoadMsg>) -> ProcessId {
        let live: Vec<ProcessId> = ProcessId::all(api.n())
            .filter(|p| !self.failed.contains(p))
            .collect();
        let w = live[self.rr % live.len()];
        self.rr += 1;
        w
    }

    /// The next not-yet-completed op id after `from`, if any remain.
    fn next_pending(&self, from: u64) -> Option<u64> {
        (from..self.profile.ops).find(|op| !self.done.contains(op))
    }

    fn issue(&mut self, api: &mut AppApi<'_, '_, LoadMsg>, op: u64) {
        let worker = self.next_worker(api);
        self.assigned.insert(op, worker);
        api.annotate(Note::key_val(NOTE_OP_ISSUED, op));
        if worker == api.id() {
            self.execute(api, op);
        } else {
            api.send(worker, LoadMsg::Assign { op });
        }
    }

    /// Issues up to `k` fresh ops (driver role).
    fn issue_up_to(&mut self, api: &mut AppApi<'_, '_, LoadMsg>, k: u64) {
        for _ in 0..k {
            let Some(op) = self.next_pending(self.next_op) else {
                return;
            };
            self.next_op = op + 1;
            self.issue(api, op);
        }
    }

    fn execute(&mut self, api: &mut AppApi<'_, '_, LoadMsg>, op: u64) {
        if self.executed.insert(op) {
            api.annotate(Note::key_val(NOTE_OP_EXEC, op));
        }
        api.broadcast(LoadMsg::Done { op });
        self.record_done(api, op);
    }

    /// How many issued ops are still in flight from this driver's view.
    fn outstanding(&self) -> u64 {
        self.assigned
            .keys()
            .filter(|op| !self.done.contains(op))
            .count() as u64
    }

    /// Tops the outstanding window up (closed-loop discipline).
    fn refill(&mut self, api: &mut AppApi<'_, '_, LoadMsg>) {
        if let LoadMode::Closed { window } = self.profile.mode {
            while self.outstanding() < window {
                let Some(op) = self.next_pending(self.next_op) else {
                    return;
                };
                self.next_op = op + 1;
                self.issue(api, op);
            }
        }
    }

    fn record_done(&mut self, api: &mut AppApi<'_, '_, LoadMsg>, op: u64) {
        if !self.done.insert(op) {
            return;
        }
        if !self.driving {
            return;
        }
        api.annotate(Note::key_val(NOTE_OP_DONE, op));
        if self.done.len() as u64 == self.profile.ops && !self.complete_announced {
            self.complete_announced = true;
            api.annotate(Note::key_val(NOTE_LOAD_COMPLETE, self.done.len()));
            api.annotate(Note::key_val(sfs_obs::metrics::SPAN_END, SPAN_LOAD));
        } else {
            self.refill(api);
        }
    }

    fn reconsider_role(&mut self, api: &mut AppApi<'_, '_, LoadMsg>) {
        if self.driver(api) != api.id() || self.driving {
            return;
        }
        self.driving = true;
        api.annotate(Note::key_val(sfs_obs::metrics::SPAN_BEGIN, SPAN_LOAD));
        // A take-over driver restarts issuance from the lowest op not yet
        // known complete — at-least-once, like the work-pool app. It also
        // re-announces every completion it knows of: the dead driver may
        // have crashed before annotating some (its own `Done` receipt can
        // be in flight at the crash), and the analysis dedups repeats.
        for op in self.done.iter().copied().collect::<Vec<_>>() {
            api.annotate(Note::key_val(NOTE_OP_DONE, op));
        }
        self.next_op = 0;
        match self.profile.mode {
            LoadMode::Open { interval, .. } => {
                if self.next_pending(0).is_some() {
                    api.set_timer(interval.max(1));
                }
            }
            LoadMode::Closed { .. } => self.refill(api),
        }
        // Ops may all have completed before the take-over.
        if self.done.len() as u64 == self.profile.ops && !self.complete_announced {
            self.complete_announced = true;
            api.annotate(Note::key_val(NOTE_LOAD_COMPLETE, self.done.len()));
            api.annotate(Note::key_val(sfs_obs::metrics::SPAN_END, SPAN_LOAD));
        }
    }
}

impl Application for LoadGenApp {
    type Msg = LoadMsg;

    fn on_start(&mut self, api: &mut AppApi<'_, '_, LoadMsg>) {
        if self.profile.ops == 0 {
            return;
        }
        self.reconsider_role(api);
    }

    fn on_message(&mut self, api: &mut AppApi<'_, '_, LoadMsg>, _from: ProcessId, msg: LoadMsg) {
        match msg {
            LoadMsg::Assign { op } => {
                if !self.done.contains(&op) {
                    self.execute(api, op);
                } else {
                    // Already complete; re-announce for the assigner.
                    api.broadcast(LoadMsg::Done { op });
                }
            }
            LoadMsg::Done { op } => self.record_done(api, op),
        }
    }

    fn on_timer(&mut self, api: &mut AppApi<'_, '_, LoadMsg>, _timer: sfs_asys::TimerId) {
        // Open-loop tick: issue the next burst at the configured rate,
        // regardless of how many earlier ops completed.
        if !self.driving {
            return;
        }
        if let LoadMode::Open { interval, burst } = self.profile.mode {
            self.issue_up_to(api, burst);
            if self.next_pending(self.next_op).is_some() {
                api.set_timer(interval.max(1));
            }
        }
    }

    fn on_failure(&mut self, api: &mut AppApi<'_, '_, LoadMsg>, failed: ProcessId) {
        self.failed.insert(failed);
        self.reconsider_role(api);
        if self.driving {
            // Reassign every op stranded on the dead worker. sFS2a
            // guarantees it is really dead, so no duplicate-execution
            // reasoning is needed beyond idempotent `Done`s.
            let stranded: Vec<u64> = self
                .assigned
                .iter()
                .filter(|&(op, w)| *w == failed && !self.done.contains(op))
                .map(|(&op, _)| op)
                .collect();
            for op in stranded {
                self.issue(api, op);
            }
        }
    }
}

/// What one shard's load run amounted to.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LoadOutcome {
    /// Distinct ops issued.
    pub issued: u64,
    /// Distinct ops completed (driver-acknowledged).
    pub completed: u64,
    /// Total executions (≥ completed under reassignment).
    pub executions: u64,
    /// Whether some driver observed full completion.
    pub complete: bool,
    /// Tick of the first issue, if any.
    pub first_issue: Option<VirtualTime>,
    /// Tick of the last completion, if any.
    pub last_done: Option<VirtualTime>,
    /// Per-op issue→completion latency in ticks, one entry per completed
    /// op (first issue to first completion), unsorted.
    pub op_latencies: Vec<u64>,
}

impl LoadOutcome {
    /// Completed ops per kilotick of load window (first issue to last
    /// completion); 0 when nothing completed.
    pub fn ops_per_kilotick(&self) -> f64 {
        match (self.first_issue, self.last_done) {
            (Some(a), Some(b)) if b > a => {
                self.completed as f64 * 1_000.0 / (b.ticks() - a.ticks()) as f64
            }
            _ => 0.0,
        }
    }
}

/// Extracts the load outcome from a trace.
pub fn analyze_load(trace: &Trace) -> LoadOutcome {
    let mut issued_at: BTreeMap<u64, VirtualTime> = BTreeMap::new();
    let mut done_at: BTreeMap<u64, VirtualTime> = BTreeMap::new();
    let mut executions = 0u64;
    let mut complete = false;
    for e in trace.events() {
        let TraceEventKind::Note { note, .. } = &e.kind else {
            continue;
        };
        let Note::KeyVal { key, val } = note else {
            continue;
        };
        match key.as_str() {
            NOTE_OP_ISSUED => {
                if let Ok(op) = val.parse::<u64>() {
                    issued_at.entry(op).or_insert(e.time);
                }
            }
            NOTE_OP_EXEC => executions += 1,
            NOTE_OP_DONE => {
                if let Ok(op) = val.parse::<u64>() {
                    done_at.entry(op).or_insert(e.time);
                }
            }
            NOTE_LOAD_COMPLETE => complete = true,
            _ => {}
        }
    }
    let op_latencies = done_at
        .iter()
        .filter_map(|(op, &t)| {
            issued_at
                .get(op)
                .map(|&i| t.ticks().saturating_sub(i.ticks()))
        })
        .collect();
    LoadOutcome {
        issued: issued_at.len() as u64,
        completed: done_at.len() as u64,
        executions,
        complete,
        first_issue: issued_at.values().min().copied(),
        last_done: done_at.values().max().copied(),
        op_latencies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs::ClusterSpec;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn closed_loop_completes_all_ops() {
        let trace = ClusterSpec::new(5, 2)
            .seed(4)
            .run_apps(|_| LoadGenApp::new(LoadProfile::closed(20, 4)));
        let out = analyze_load(&trace);
        assert_eq!(out.completed, 20, "{}", trace.to_pretty_string());
        assert!(out.complete);
        assert_eq!(out.executions, 20, "no duplicates without failures");
        assert_eq!(out.op_latencies.len(), 20);
    }

    #[test]
    fn open_loop_completes_all_ops_at_rate() {
        let trace = ClusterSpec::new(5, 2)
            .seed(8)
            .run_apps(|_| LoadGenApp::new(LoadProfile::open(24, 5, 3)));
        let out = analyze_load(&trace);
        assert_eq!(out.completed, 24, "{}", trace.to_pretty_string());
        assert!(out.complete);
        // 24 ops at 3/burst over ≥ 5-tick intervals: issuing alone spans
        // at least (24/3 - 1) * 5 ticks — the arrival process is real.
        let span = out.last_done.unwrap().ticks() - out.first_issue.unwrap().ticks();
        assert!(span >= 35, "open loop finished implausibly fast: {span}");
    }

    #[test]
    fn worker_failure_reassigns_and_still_completes() {
        for seed in 0..10 {
            let trace = ClusterSpec::new(5, 2)
                .seed(seed)
                .suspect(p(0), p(3), 30)
                .run_apps(|_| LoadGenApp::new(LoadProfile::closed(16, 4)));
            let out = analyze_load(&trace);
            assert_eq!(
                out.completed,
                16,
                "seed {seed}\n{}",
                trace.to_pretty_string()
            );
            assert!(out.complete, "seed {seed}");
        }
    }

    #[test]
    fn driver_failure_hands_over() {
        for seed in 0..10 {
            let trace = ClusterSpec::new(5, 2)
                .seed(seed)
                .suspect(p(2), p(0), 25)
                .run_apps(|_| LoadGenApp::new(LoadProfile::closed(16, 4)));
            let out = analyze_load(&trace);
            assert_eq!(
                out.completed,
                16,
                "seed {seed}\n{}",
                trace.to_pretty_string()
            );
        }
    }

    #[test]
    fn open_loop_driver_failure_hands_over() {
        for seed in 0..5 {
            let trace = ClusterSpec::new(5, 2)
                .seed(seed)
                .suspect(p(1), p(0), 20)
                .run_apps(|_| LoadGenApp::new(LoadProfile::open(12, 4, 2)));
            let out = analyze_load(&trace);
            assert_eq!(
                out.completed,
                12,
                "seed {seed}\n{}",
                trace.to_pretty_string()
            );
        }
    }

    #[test]
    fn zero_ops_is_immediately_quiescent() {
        let trace = ClusterSpec::new(3, 1).run_apps(|_| LoadGenApp::new(LoadProfile::closed(0, 4)));
        let out = analyze_load(&trace);
        assert_eq!(out.issued, 0);
        assert_eq!(out.completed, 0);
    }
}
