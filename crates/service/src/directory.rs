//! The cross-shard directory: a small replicated membership map, itself
//! an sFS group.
//!
//! The directory decides which shard serves which slice of the client
//! key space. It is the service's control plane, and it is built exactly
//! the way the paper's introduction says services *should* be built on
//! fail-stop: as a deterministic replicated state machine. Every replica
//! merges the same set of per-shard health reports and applies the same
//! pure [`RoutingTable::rebalance`] function, so — because the detector
//! gives fail-stop semantics (FS1 makes failures common knowledge,
//! sFS2a makes detected replicas really dead) — all surviving replicas
//! install the *identical* table without any agreement protocol.
//! [`Directory::decide`] runs one such replicated decision and
//! cross-checks that the survivors did agree.
//!
//! Reports are seeded redundantly (each shard's report homes on
//! `t + 1` distinct replicas), so any `t` replica crashes leave at least
//! one live holder to disseminate every report.

use crate::plan::ShardId;
use serde::{Deserialize, Serialize};
use sfs::{AppApi, Application, ClusterSpec, QuorumError, SpecError};
use sfs_asys::{Note, ProcessId};
use std::collections::BTreeMap;
use std::fmt;

/// Trace-note key under which a directory replica announces its decided
/// routing table.
pub const NOTE_DIR_TABLE: &str = "dir-table";

/// Health summary of one shard, as fed to the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardReport {
    /// The shard.
    pub shard: ShardId,
    /// Distinct members the shard's detectors have declared failed.
    pub detections: usize,
    /// The shard's local failure bound.
    pub t: usize,
}

impl ShardReport {
    /// Whether the shard has exhausted its local failure budget: one more
    /// failure (or erroneous suspicion) and its quorum math no longer
    /// covers it, so the directory must stop routing new work there. A
    /// fault-intolerant shard (`t = 0`) is healthy while it has zero
    /// detections and exhausted at the first one.
    pub fn exhausted(&self) -> bool {
        self.detections >= self.t.max(1)
    }
}

/// The routing decision for one epoch: which shards are healthy and
/// which shard serves each key slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingTable {
    /// Monotone epoch number.
    pub epoch: u64,
    /// Shards still inside their failure budget, ascending.
    pub healthy: Vec<ShardId>,
    /// Slot → serving shard. Slot `i` is the native key range of the
    /// `i`-th lowest *reported* shard id (for the usual contiguous
    /// `0..g` report sets, simply shard `i`); an exhausted shard's slot
    /// points at a healthy donor. Sparse report sets are legal — routing
    /// then hashes over the reported shards only — and every slot always
    /// names a healthy shard.
    pub slots: Vec<ShardId>,
    /// Shards whose failure budget is exhausted, ascending: still listed
    /// in the table (operators and donors need to know who shed load),
    /// but never routed to. Disjoint from `healthy` by construction.
    pub degraded: Vec<ShardId>,
}

impl RoutingTable {
    /// The epoch-0 table for `shards` shards: everyone healthy, identity
    /// routing.
    pub fn identity(shards: usize) -> Self {
        RoutingTable {
            epoch: 0,
            healthy: (0..shards).collect(),
            slots: (0..shards).collect(),
            degraded: Vec::new(),
        }
    }

    /// The shard serving `key`.
    pub fn route(&self, key: u64) -> ShardId {
        self.slots[(key % self.slots.len() as u64) as usize]
    }

    /// The pure rebalancing function every directory replica applies:
    /// healthy shards keep their native slots; each exhausted shard's
    /// slot is redistributed round-robin over the healthy shards (in
    /// slot order, so the result is a function of the report set alone).
    /// Slots are keyed by ascending reported shard id (see
    /// [`RoutingTable::slots`]), so report sets with gaps — e.g. after a
    /// shard is decommissioned entirely — still produce a table whose
    /// every slot is healthy. Returns `None` when no shard is healthy.
    pub fn rebalance(epoch: u64, reports: &[ShardReport]) -> Option<Self> {
        let mut sorted: Vec<&ShardReport> = reports.iter().collect();
        sorted.sort_by_key(|r| r.shard);
        let healthy: Vec<ShardId> = sorted
            .iter()
            .filter(|r| !r.exhausted())
            .map(|r| r.shard)
            .collect();
        let degraded: Vec<ShardId> = sorted
            .iter()
            .filter(|r| r.exhausted())
            .map(|r| r.shard)
            .collect();
        if healthy.is_empty() {
            return None;
        }
        let mut donor = 0usize;
        let slots = sorted
            .iter()
            .map(|r| {
                if r.exhausted() {
                    let s = healthy[donor % healthy.len()];
                    donor += 1;
                    s
                } else {
                    r.shard
                }
            })
            .collect();
        Some(RoutingTable {
            epoch,
            healthy,
            slots,
            degraded,
        })
    }

    /// Compact one-line rendering (the wire/annotation format).
    fn render(&self) -> String {
        let join = |v: &[ShardId]| {
            v.iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "e{}|h{}|s{}|d{}",
            self.epoch,
            join(&self.healthy),
            join(&self.slots),
            join(&self.degraded)
        )
    }

    /// Parses [`RoutingTable::render`]'s format.
    fn parse(s: &str) -> Option<Self> {
        let mut parts = s.split('|');
        let epoch = parts.next()?.strip_prefix('e')?.parse().ok()?;
        let list = |p: &str, tag: char| -> Option<Vec<ShardId>> {
            let body = p.strip_prefix(tag)?;
            if body.is_empty() {
                return Some(Vec::new());
            }
            body.split(',').map(|x| x.parse().ok()).collect()
        };
        let healthy = list(parts.next()?, 'h')?;
        let slots = list(parts.next()?, 's')?;
        let degraded = list(parts.next()?, 'd')?;
        Some(RoutingTable {
            epoch,
            healthy,
            slots,
            degraded,
        })
    }
}

impl fmt::Display for RoutingTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Directory-group messages: health reports disseminated among replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DirMsg {
    /// "Shard `shard` has `detections` detected failures against budget
    /// `t`."
    Report {
        /// The reported shard.
        shard: u64,
        /// Distinct detected members.
        detections: u64,
        /// The shard's failure bound.
        t: u64,
    },
}

/// One directory replica: merges reports, and once its map covers every
/// shard, installs the rebalanced routing table (as a trace annotation —
/// the replicated decision's observable output).
#[derive(Debug, Clone)]
pub struct DirectoryApp {
    epoch: u64,
    shard_count: usize,
    /// Reports seeded at this replica; broadcast on start.
    home: Vec<ShardReport>,
    known: BTreeMap<ShardId, ShardReport>,
    announced: bool,
}

impl DirectoryApp {
    /// A replica for `shard_count` shards, initially holding `home`.
    pub fn new(epoch: u64, shard_count: usize, home: Vec<ShardReport>) -> Self {
        DirectoryApp {
            epoch,
            shard_count,
            home,
            known: BTreeMap::new(),
            announced: false,
        }
    }

    fn merge(&mut self, r: ShardReport) {
        // Detection counts are monotone; keep the freshest view.
        let e = self.known.entry(r.shard).or_insert(r);
        if r.detections > e.detections {
            *e = r;
        }
    }

    fn maybe_decide(&mut self, api: &mut AppApi<'_, '_, DirMsg>) {
        if self.announced || self.known.len() < self.shard_count {
            return;
        }
        let reports: Vec<ShardReport> = self.known.values().copied().collect();
        if let Some(table) = RoutingTable::rebalance(self.epoch, &reports) {
            api.annotate(Note::key_val(NOTE_DIR_TABLE, table));
            self.announced = true;
        }
    }
}

impl Application for DirectoryApp {
    type Msg = DirMsg;

    fn on_start(&mut self, api: &mut AppApi<'_, '_, DirMsg>) {
        for r in self.home.clone() {
            self.merge(r);
            api.broadcast(DirMsg::Report {
                shard: r.shard as u64,
                detections: r.detections as u64,
                t: r.t as u64,
            });
        }
        self.maybe_decide(api);
    }

    fn on_message(&mut self, api: &mut AppApi<'_, '_, DirMsg>, _from: ProcessId, msg: DirMsg) {
        let DirMsg::Report {
            shard,
            detections,
            t,
        } = msg;
        self.merge(ShardReport {
            shard: shard as usize,
            detections: detections as usize,
            t: t as usize,
        });
        self.maybe_decide(api);
    }

    fn on_failure(&mut self, api: &mut AppApi<'_, '_, DirMsg>, _failed: ProcessId) {
        // Anti-entropy on failure: under fail-stop the dead replica sends
        // nothing further, so survivors re-disseminate everything they
        // know. Receives are idempotent, so this is safe over-sending.
        for r in self.known.values().copied().collect::<Vec<_>>() {
            api.broadcast(DirMsg::Report {
                shard: r.shard as u64,
                detections: r.detections as u64,
                t: r.t as u64,
            });
        }
    }
}

/// Why a directory decision failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectoryError {
    /// The directory group's own shape is infeasible.
    Quorum(QuorumError),
    /// The directory group's cluster configuration was rejected for a
    /// non-quorum reason (e.g. inverted latency bounds).
    Spec(SpecError),
    /// Every shard has exhausted its failure budget — there is nowhere
    /// left to route.
    AllShardsExhausted,
    /// No surviving replica announced a table (e.g. too many directory
    /// crashes for its own `t`).
    Incomplete,
    /// Surviving replicas announced different tables — replicated
    /// determinism was broken (this is a bug, not an environment fault).
    Diverged(String, String),
}

impl fmt::Display for DirectoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirectoryError::Quorum(e) => write!(f, "directory group infeasible: {e}"),
            DirectoryError::Spec(e) => write!(f, "directory group rejected: {e}"),
            DirectoryError::AllShardsExhausted => {
                write!(f, "every shard has exhausted its failure budget")
            }
            DirectoryError::Incomplete => write!(f, "no surviving replica decided a table"),
            DirectoryError::Diverged(a, b) => {
                write!(f, "replicas diverged: {a} vs {b}")
            }
        }
    }
}

impl std::error::Error for DirectoryError {}

impl From<QuorumError> for DirectoryError {
    fn from(e: QuorumError) -> Self {
        DirectoryError::Quorum(e)
    }
}

impl From<SpecError> for DirectoryError {
    fn from(e: SpecError) -> Self {
        // Quorum infeasibility keeps its dedicated variant; everything
        // else surfaces as the spec error it is.
        match e {
            SpecError::Quorum(q) => DirectoryError::Quorum(q),
            other => DirectoryError::Spec(other),
        }
    }
}

/// Shape of the directory group itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectorySpec {
    /// Replica count.
    pub replicas: usize,
    /// Failure bound of the directory group.
    pub t: usize,
    /// Scheduler seed for the decision runs.
    pub seed: u64,
    /// Scripted replica crashes `(replica, tick)`, for fault testing.
    pub crashes: Vec<(usize, u64)>,
}

impl Default for DirectorySpec {
    fn default() -> Self {
        // 5 replicas tolerating 2 failures: the smallest shape where the
        // fixed minimum quorum tolerates t = 2 (5 > 2²).
        DirectorySpec {
            replicas: 5,
            t: 2,
            seed: 0,
            crashes: Vec::new(),
        }
    }
}

/// The directory service: runs replicated routing decisions.
#[derive(Debug, Clone)]
pub struct Directory;

impl Directory {
    /// Runs one replicated decision over the given shard reports and
    /// returns the routing table for `epoch`.
    ///
    /// The decision executes as a real sFS group on the deterministic
    /// simulator (the control plane stays deterministic regardless of
    /// which backend the data plane runs on): each report homes on
    /// `spec.t + 1` replicas, replicas disseminate and merge, and every
    /// survivor annotates the rebalanced table. All survivors must agree
    /// — that agreement needs no protocol is precisely the fail-stop
    /// dividend the paper is about.
    ///
    /// # Errors
    ///
    /// See [`DirectoryError`].
    pub fn decide(
        spec: &DirectorySpec,
        epoch: u64,
        reports: &[ShardReport],
    ) -> Result<RoutingTable, DirectoryError> {
        if reports.iter().all(|r| r.exhausted()) {
            return Err(DirectoryError::AllShardsExhausted);
        }
        let d = spec.replicas;
        let mut cluster = ClusterSpec::new(d, spec.t).seed(spec.seed);
        for &(replica, at) in &spec.crashes {
            cluster = cluster.crash(ProcessId::new(replica), at.max(1));
        }
        // Crashes without heartbeats are silent; erroneous-suspicion
        // injection is the harness's job in tests. Keep the decision run
        // quiescence-friendly (no heartbeats) so it terminates exactly
        // when dissemination does.
        let home_of = |replica: ProcessId| -> Vec<ShardReport> {
            reports
                .iter()
                .filter(|r| (0..=spec.t).any(|k| (r.shard + k) % d == replica.index()))
                .copied()
                .collect()
        };
        let shard_count = reports.len();
        let trace =
            cluster.try_run_apps(|pid| DirectoryApp::new(epoch, shard_count, home_of(pid)))?;
        let mut decided: Option<RoutingTable> = None;
        for (_, _, note) in trace.notes_with_key(NOTE_DIR_TABLE) {
            let Note::KeyVal { val, .. } = note else {
                continue;
            };
            let table = RoutingTable::parse(val)
                .ok_or_else(|| DirectoryError::Diverged("<unparseable>".into(), val.clone()))?;
            match &decided {
                None => decided = Some(table),
                Some(prev) if *prev == table => {}
                Some(prev) => return Err(DirectoryError::Diverged(prev.render(), table.render())),
            }
        }
        decided.ok_or(DirectoryError::Incomplete)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reports(healths: &[(usize, usize)]) -> Vec<ShardReport> {
        healths
            .iter()
            .enumerate()
            .map(|(shard, &(detections, t))| ShardReport {
                shard,
                detections,
                t,
            })
            .collect()
    }

    #[test]
    fn rebalance_keeps_healthy_slots_and_redistributes_exhausted() {
        let table =
            RoutingTable::rebalance(3, &reports(&[(0, 2), (2, 2), (1, 2), (2, 2)])).unwrap();
        assert_eq!(table.healthy, vec![0, 2]);
        assert_eq!(table.degraded, vec![1, 3]);
        assert_eq!(table.slots[0], 0);
        assert_eq!(table.slots[2], 2);
        // Exhausted shards 1 and 3 round-robin over {0, 2}.
        assert_eq!(table.slots[1], 0);
        assert_eq!(table.slots[3], 2);
        for key in 0..100 {
            assert!(table.healthy.contains(&table.route(key)));
        }
    }

    #[test]
    fn fault_intolerant_shards_are_healthy_until_first_detection() {
        let clean = ShardReport {
            shard: 0,
            detections: 0,
            t: 0,
        };
        assert!(!clean.exhausted(), "t = 0 with no detections is healthy");
        let hit = ShardReport {
            shard: 0,
            detections: 1,
            t: 0,
        };
        assert!(hit.exhausted(), "t = 0 exhausts at the first detection");
    }

    #[test]
    fn rebalance_handles_sparse_report_sets() {
        // Reports for shards {0, 2, 5} only (1, 3, 4 decommissioned):
        // slots are keyed by ascending reported id, and routing still
        // only ever lands on healthy shards.
        let reports = vec![
            ShardReport {
                shard: 5,
                detections: 0,
                t: 2,
            },
            ShardReport {
                shard: 0,
                detections: 2,
                t: 2,
            },
            ShardReport {
                shard: 2,
                detections: 1,
                t: 2,
            },
        ];
        let table = RoutingTable::rebalance(4, &reports).unwrap();
        assert_eq!(table.healthy, vec![2, 5]);
        assert_eq!(table.degraded, vec![0]);
        assert_eq!(table.slots, vec![2, 2, 5], "slot order = ascending id");
        for key in 0..50 {
            assert!(table.healthy.contains(&table.route(key)));
        }
    }

    #[test]
    fn rebalance_with_no_healthy_shard_is_none() {
        assert!(RoutingTable::rebalance(1, &reports(&[(2, 2), (3, 2)])).is_none());
    }

    #[test]
    fn render_parse_round_trips() {
        let t = RoutingTable {
            epoch: 7,
            healthy: vec![0, 3],
            slots: vec![0, 3, 0, 3],
            degraded: vec![1, 2],
        };
        assert_eq!(RoutingTable::parse(&t.render()), Some(t));
        // A degradation-free table round-trips through the empty list.
        let clean = RoutingTable::identity(3);
        assert_eq!(RoutingTable::parse(&clean.render()), Some(clean));
    }

    #[test]
    fn replicated_decision_agrees_without_faults() {
        let spec = DirectorySpec::default();
        let table = Directory::decide(&spec, 1, &reports(&[(0, 2), (2, 2), (0, 2)])).unwrap();
        assert_eq!(table.epoch, 1);
        assert_eq!(table.healthy, vec![0, 2]);
        assert_eq!(table.degraded, vec![1]);
        assert_eq!(table.slots, vec![0, 0, 2]);
    }

    #[test]
    fn replicated_decision_survives_replica_crashes() {
        // Crash t = 2 replicas mid-dissemination: the survivors must
        // still converge on the same table, because every report homes
        // on t + 1 replicas.
        for seed in 0..10 {
            let spec = DirectorySpec {
                seed,
                crashes: vec![(0, 2), (3, 4)],
                ..DirectorySpec::default()
            };
            let table = Directory::decide(&spec, 2, &reports(&[(1, 2), (2, 2), (0, 2), (0, 2)]))
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(table.healthy, vec![0, 2, 3]);
        }
    }

    #[test]
    fn all_exhausted_is_a_typed_error() {
        let spec = DirectorySpec::default();
        assert_eq!(
            Directory::decide(&spec, 1, &reports(&[(2, 2), (2, 2)])),
            Err(DirectoryError::AllShardsExhausted)
        );
    }

    #[test]
    fn infeasible_directory_shape_is_a_typed_error() {
        let spec = DirectorySpec {
            replicas: 4,
            t: 2,
            ..DirectorySpec::default()
        };
        assert!(matches!(
            Directory::decide(&spec, 1, &reports(&[(0, 2)])),
            Err(DirectoryError::Quorum(_))
        ));
    }
}
