//! The service engine: epochs of sharded load, health reporting, and
//! directory-driven rebalancing, on either execution backend.
//!
//! One [`ServiceSpec`] describes a deployment: total processes, the
//! per-shard failure bound, the load profile, scripted crashes, an
//! optional chaos orchestration, and the backend (deterministic
//! simulator or the threaded runtime). Running it executes a
//! **continuous epoch loop** (default two epochs, E13 soaks run more):
//!
//! 1. At the top of every epoch the [directory](crate::directory)
//!    decides a routing table from the cumulative per-shard detection
//!    counts — shards whose failure budget is exhausted are marked
//!    *degraded* and their key slots shed to healthy donors. The client
//!    key space is routed over the table and every involved shard runs
//!    its slice of the load concurrently (one rayon task each), so a
//!    1024-process deployment is 64 independent 16-process groups, not
//!    one Θ(n²) broadcast domain. Scripted crashes land in epoch 1;
//!    chaos overlays (Poisson crashes, flapping partitions, delay
//!    storms from [`sfs_chaos::ChaosPlan`]) land in their planned epoch.
//! 2. A shard that exhausts its budget *mid-epoch* may leave routed ops
//!    unserved; those stranded ops are rescued within the same epoch by
//!    re-routing them round-robin over the still-healthy shards. The
//!    loop then keeps serving: failures are permanent (sFS2a), so later
//!    epochs run each shard as its survivors with the remaining budget,
//!    and the rebalancing invariant — no op is ever routed to an
//!    exhausted shard — is pinned by property tests.
//!
//! The per-shard traces fold into a [`ServiceReport`] carrying
//! throughput, message counts, and the detection-latency distribution —
//! the measured quantities behind experiments E11 and E13.

use crate::directory::{Directory, DirectoryError, DirectorySpec, RoutingTable, ShardReport};
use crate::load::{analyze_load, LoadGenApp, LoadOutcome, LoadProfile};
use crate::plan::{plan_shards, PlanError, ShardId, ShardPlan, ShardSpec};
use rayon::prelude::*;
use sfs::{ClusterSpec, HeartbeatConfig, NetSpec, QuorumError, SpecError};
use sfs_asys::{ProcessId, SimStats, Trace, TraceEventKind, VirtualTime};
use sfs_chaos::{ChaosPlan, ChaosSpec, ShardChaos};
use sfs_obs::{metrics, LogHistogram, MsgClass, Registry, RunReport, SfsMonitor, SuiteVerdicts};
use std::collections::BTreeMap;
use std::fmt;
use std::time::{Duration, Instant};

/// Which engine executes the shard groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The deterministic discrete-event simulator (virtual time).
    Sim,
    /// The event-driven threaded runtime: real OS threads on a virtual
    /// clock, advancing straight to the next due deadline.
    Threaded,
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Backend::Sim => "sim",
            Backend::Threaded => "threaded",
        })
    }
}

/// Declarative description of one sharded service deployment.
#[derive(Debug, Clone)]
pub struct ServiceSpec {
    /// Total processes across all shards.
    pub total: usize,
    /// Per-shard failure bound.
    pub t: usize,
    /// Target shard size (must exceed `t²`).
    pub shard_target: usize,
    /// The directory group's own shape.
    pub dir: DirectorySpec,
    /// Base seed (shards derive per-shard seeds from it).
    pub seed: u64,
    /// Execution backend for the shard groups.
    pub backend: Backend,
    /// Batched delivery fast path on/off (both backends).
    pub batch: bool,
    /// Ops per epoch, routed over the whole key space.
    pub load: LoadProfile,
    /// Heartbeats for the shard groups (needed for crash detection).
    pub heartbeat: Option<HeartbeatConfig>,
    /// Scripted crashes `(global process, tick)` landing in epoch 1.
    pub crashes: Vec<(usize, u64)>,
    /// Epochs in the run (the continuous epoch loop; at least 1).
    pub epochs: u64,
    /// Chaos orchestration: when set, the spec is expanded once into a
    /// deterministic per-`(epoch, shard)` overlay plan — Poisson
    /// crashes, flapping partitions, delay storms — applied on top of
    /// the scripted crashes and the base network. Flap and storm
    /// windows need [`ServiceSpec::net`] to exist (they live on the
    /// link seam); overlay crashes apply on any backend.
    pub chaos: Option<ChaosSpec>,
    /// Carry each shard run's full trace on its [`ShardOutcome`] (for
    /// downstream certification of the sFS properties). Off by default
    /// to keep large sweeps lean.
    pub keep_traces: bool,
    /// Certify the sFS suite **online**: attach a streaming
    /// [`SfsMonitor`] to every shard run (O(n + active failures) state,
    /// fed event-by-event through the write-only trace sink) and carry
    /// its [`SuiteVerdicts`] on each [`ShardOutcome`]. Orthogonal to
    /// [`ServiceSpec::keep_traces`] — this is how a soak certifies
    /// without retaining traces at all.
    pub certify_online: bool,
    /// Arm anomaly watermarks on every shard run: a flight recorder and
    /// an [`sfs_obs::AnomalyWatermarks`] sink ride the obs seam, and a
    /// signal inflating past its learned baseline (queue depth, RTO,
    /// suspicion rate) dumps the ring under `SFS_FLIGHT_DIR` *before*
    /// any certification gate fails. Trips are carried on each
    /// [`ShardOutcome`]; the soak benches arm this.
    pub watermarks: bool,
    /// Virtual-time horizon per shard run.
    pub max_time: u64,
    /// Threaded-backend drain budget per shard run, in wall-clock
    /// milliseconds. Purely an upper bound on *waiting*: the event-driven
    /// runtime answers the drain as soon as the shard quiesces or stalls
    /// at its horizon/event budget, so a generous value costs nothing on
    /// healthy runs and only caps truly wedged ones.
    pub settle_ms: u64,
    /// The network beneath every shard group, for faulty-net
    /// deployments: when set, each shard runs transport-backed
    /// (`sfs-transport` ARQ over the described faulty link) instead of
    /// on assumed-reliable channels. Partition schedules are expressed
    /// in **shard-local** process ids and apply to every shard alike.
    pub net: Option<NetSpec>,
}

impl ServiceSpec {
    /// A service of `total` processes in shards of about `shard_target`,
    /// each tolerating `t` failures, with a modest closed-loop load.
    pub fn new(total: usize, t: usize, shard_target: usize) -> Self {
        ServiceSpec {
            total,
            t,
            shard_target,
            dir: DirectorySpec::default(),
            seed: 0,
            backend: Backend::Sim,
            batch: false,
            load: LoadProfile::closed(total as u64, 4),
            heartbeat: Some(HeartbeatConfig::default()),
            crashes: Vec::new(),
            epochs: 2,
            chaos: None,
            keep_traces: false,
            certify_online: false,
            watermarks: false,
            max_time: 5_000,
            settle_ms: 5_000,
            net: None,
        }
    }

    /// Installs a faulty network beneath every shard (see
    /// [`ServiceSpec::net`]).
    pub fn net(mut self, net: NetSpec) -> Self {
        self.net = Some(net);
        self
    }

    /// Sets or disables shard heartbeats. Without them, crash-free runs
    /// quiesce (nice for tests); with them, crashes are actually
    /// detected (required whenever [`ServiceSpec::crash`] is used).
    pub fn heartbeat(mut self, hb: Option<HeartbeatConfig>) -> Self {
        self.heartbeat = hb;
        self
    }

    /// Sets the virtual-time horizon per shard run.
    pub fn max_time(mut self, t: u64) -> Self {
        self.max_time = t;
        self
    }

    /// Sets the backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Toggles the batching fast path.
    pub fn batched(mut self, on: bool) -> Self {
        self.batch = on;
        self
    }

    /// Sets the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-epoch load.
    pub fn load(mut self, load: LoadProfile) -> Self {
        self.load = load;
        self
    }

    /// Schedules a crash of global process `g` at `tick` (epoch 1).
    pub fn crash(mut self, g: usize, tick: u64) -> Self {
        self.crashes.push((g, tick));
        self
    }

    /// Sets the epoch count of the continuous loop (clamped to ≥ 1).
    pub fn epochs(mut self, epochs: u64) -> Self {
        self.epochs = epochs.max(1);
        self
    }

    /// Installs a chaos orchestration (see [`ServiceSpec::chaos`]).
    pub fn chaos(mut self, chaos: ChaosSpec) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Toggles trace carrying (see [`ServiceSpec::keep_traces`]).
    pub fn keep_traces(mut self, on: bool) -> Self {
        self.keep_traces = on;
        self
    }

    /// Toggles online certification (see
    /// [`ServiceSpec::certify_online`]).
    pub fn certify_online(mut self, on: bool) -> Self {
        self.certify_online = on;
        self
    }

    /// Toggles anomaly watermarks (see [`ServiceSpec::watermarks`]).
    pub fn watermarks(mut self, on: bool) -> Self {
        self.watermarks = on;
        self
    }
}

/// Why a service run failed before producing a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The deployment could not be partitioned.
    Plan(PlanError),
    /// A shard group's shape was rejected (should be impossible for a
    /// successful plan; surfaced rather than unwrapped).
    Quorum(QuorumError),
    /// A shard group's cluster configuration was rejected for a
    /// non-quorum reason (e.g. inverted latency bounds).
    Spec(SpecError),
    /// The directory could not decide a routing table.
    Directory(DirectoryError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Plan(e) => write!(f, "planning failed: {e}"),
            ServiceError::Quorum(e) => write!(f, "shard rejected: {e}"),
            ServiceError::Spec(e) => write!(f, "shard rejected: {e}"),
            ServiceError::Directory(e) => write!(f, "directory failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<PlanError> for ServiceError {
    fn from(e: PlanError) -> Self {
        ServiceError::Plan(e)
    }
}
impl From<QuorumError> for ServiceError {
    fn from(e: QuorumError) -> Self {
        ServiceError::Quorum(e)
    }
}

impl From<SpecError> for ServiceError {
    fn from(e: SpecError) -> Self {
        match e {
            SpecError::Quorum(q) => ServiceError::Quorum(q),
            other => ServiceError::Spec(other),
        }
    }
}
impl From<DirectoryError> for ServiceError {
    fn from(e: DirectoryError) -> Self {
        ServiceError::Directory(e)
    }
}

/// What one shard's run in one epoch amounted to.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// The shard.
    pub shard: ShardId,
    /// Members.
    pub n: usize,
    /// Ops routed to it this epoch.
    pub ops_routed: u64,
    /// The load outcome.
    pub load: LoadOutcome,
    /// Engine counters for the run.
    pub stats: SimStats,
    /// Recorded events.
    pub events: u64,
    /// Distinct members detected failed during the run.
    pub detected: usize,
    /// Crash→detection latencies in ticks (one per detector per crash).
    pub detection_latencies: Vec<u64>,
    /// The shard run's telemetry: engine counters, the op-latency and
    /// detection-latency histograms, and the transport diagnostics
    /// re-derived from the trace's execution-neutral annotations. Folded
    /// per shard so the rayon fan-out stays contention-free; merging is
    /// associative, so [`ServiceReport::obs_report`] never depends on
    /// completion order.
    pub obs: RunReport,
    /// The full run trace, when [`ServiceSpec::keep_traces`] is on —
    /// downstream consumers (the E13 bench) certify FS1/sFS2a–d on it.
    pub trace: Option<Trace>,
    /// The streaming monitor's suite verdicts, when
    /// [`ServiceSpec::certify_online`] is on. Pinned (by the service
    /// tests and the E13 kept-trace rows) to equal
    /// `check_sfs_suite` on the same run's trace, clause by clause.
    pub verdicts: Option<SuiteVerdicts>,
    /// Anomaly-watermark signals that tripped during the run, in trip
    /// order (empty when [`ServiceSpec::watermarks`] is off — or when
    /// the run stayed inside its learned baselines).
    pub watermark_trips: Vec<&'static str>,
}

/// One epoch: the table it ran under and every shard's outcome.
#[derive(Debug, Clone)]
pub struct EpochOutcome {
    /// Epoch number (1-based).
    pub epoch: u64,
    /// The routing table in force.
    pub table: RoutingTable,
    /// Per-shard outcomes: shards that served ops, shards with scripted
    /// or chaos-planned faults this epoch, and — after a mid-epoch
    /// exhaustion — one extra outcome per rescue donor.
    pub shards: Vec<ShardOutcome>,
    /// Ops re-routed to healthy donors after a shard exhausted its
    /// budget mid-epoch and left them unserved.
    pub rescued_ops: u64,
    /// Wall-clock duration of the epoch's shard runs.
    pub wall_ms: f64,
}

/// The full report of a service run.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Total processes.
    pub total: usize,
    /// Shard count of the plan.
    pub shard_count: usize,
    /// Backend the shards ran on.
    pub backend: Backend,
    /// Whether the batching fast path was on.
    pub batch: bool,
    /// The epochs, in order.
    pub epochs: Vec<EpochOutcome>,
    /// Shards that exhausted their budget at any point in the run,
    /// in order of exhaustion discovery.
    pub exhausted: Vec<ShardId>,
    /// End-to-end wall time (planning, directory, every epoch).
    pub wall_ms: f64,
}

impl ServiceReport {
    /// Distinct ops completed across all epochs and shards.
    pub fn ops_completed(&self) -> u64 {
        self.epochs
            .iter()
            .flat_map(|e| &e.shards)
            .map(|s| s.load.completed)
            .sum()
    }

    /// Distinct ops issued across all epochs and shards.
    pub fn ops_issued(&self) -> u64 {
        self.epochs
            .iter()
            .flat_map(|e| &e.shards)
            .map(|s| s.load.issued)
            .sum()
    }

    /// Messages sent across all shard runs.
    pub fn messages(&self) -> u64 {
        self.epochs
            .iter()
            .flat_map(|e| &e.shards)
            .map(|s| s.stats.messages_sent)
            .sum()
    }

    /// Trace events across all shard runs.
    pub fn events(&self) -> u64 {
        self.epochs
            .iter()
            .flat_map(|e| &e.shards)
            .map(|s| s.events)
            .sum()
    }

    /// Coalesced delivery batches across all shard runs.
    pub fn delivery_batches(&self) -> u64 {
        self.epochs
            .iter()
            .flat_map(|e| &e.shards)
            .map(|s| s.stats.delivery_batches)
            .sum()
    }

    /// All crash→detection latencies, in shard/epoch order (unsorted).
    pub fn detection_latencies(&self) -> Vec<u64> {
        self.epochs
            .iter()
            .flat_map(|e| &e.shards)
            .flat_map(|s| s.detection_latencies.iter().copied())
            .collect()
    }

    /// The `q`-th percentile (0–100) of the crash→detection latency
    /// distribution, by nearest rank. Uses a linear-time selection
    /// ([`nearest_rank`]) rather than sorting the whole distribution.
    pub fn detection_p(&self, q: u64) -> u64 {
        nearest_rank(&mut self.detection_latencies(), q)
    }

    /// The largest crash→detection latency.
    pub fn detection_max(&self) -> u64 {
        self.epochs
            .iter()
            .flat_map(|e| &e.shards)
            .flat_map(|s| s.detection_latencies.iter().copied())
            .max()
            .unwrap_or(0)
    }

    /// Detection events across the run (one per surviving detector per
    /// crash).
    pub fn detection_count(&self) -> u64 {
        self.epochs
            .iter()
            .flat_map(|e| &e.shards)
            .map(|s| s.detection_latencies.len() as u64)
            .sum()
    }

    /// Messages sent per detection event — the message cost of one unit
    /// of failure-detection work (0 when nothing was detected).
    pub fn msgs_per_detection(&self) -> f64 {
        let det = self.detection_count();
        if det == 0 {
            return 0.0;
        }
        self.messages() as f64 / det as f64
    }

    /// The run's merged telemetry: every shard registry folded into one
    /// [`RunReport`]. The merge is associative and commutative, so the
    /// result is independent of the rayon completion order.
    pub fn obs_report(&self) -> RunReport {
        let mut out = RunReport::empty(self.backend.to_string());
        for s in self.epochs.iter().flat_map(|e| &e.shards) {
            out.merge(&s.obs);
        }
        out
    }

    /// Issue→first-completion latency histogram over every completed op
    /// in the run (log-bucket; quantiles are bucket upper bounds, within
    /// 12.5% of exact).
    pub fn op_latency_hist(&self) -> LogHistogram {
        let mut out = LogHistogram::new();
        for s in self.epochs.iter().flat_map(|e| &e.shards) {
            for &l in &s.load.op_latencies {
                out.record(l);
            }
        }
        out
    }

    /// The 99th-percentile op latency in ticks, from the log-bucket
    /// histogram (E11's and E13's `op p99` column).
    pub fn op_p99(&self) -> u64 {
        self.op_latency_hist().p99()
    }

    /// Total serving time in ticks, summed over shard runs: each shard's
    /// first-issue → last-completion window. Both backends run the same
    /// virtual clock, so the figure measures the *serving* path in
    /// logical time, independent of wall-clock drain budgets. On the
    /// bare threaded backend it is degenerate (0): deliveries have zero
    /// virtual delay there, so the message-driven closed loop plays out
    /// within a single virtual instant — use wall time for threaded
    /// serving cost instead.
    pub fn serving_ticks(&self) -> u64 {
        self.epochs
            .iter()
            .flat_map(|e| &e.shards)
            .filter_map(|s| match (s.load.first_issue, s.load.last_done) {
                (Some(a), Some(b)) => Some(b.ticks().saturating_sub(a.ticks())),
                _ => None,
            })
            .sum()
    }

    /// Completed ops per wall-clock second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.ops_completed() as f64 / (self.wall_ms / 1_000.0)
    }

    /// Messages per wall-clock second.
    pub fn msgs_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.messages() as f64 / (self.wall_ms / 1_000.0)
    }
}

/// The `q`-th percentile (0–100) of a sorted sample, by nearest-rank.
pub fn percentile(sorted: &[u64], q: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q as usize * sorted.len()).div_ceil(100).max(1) - 1;
    sorted[rank.min(sorted.len() - 1)]
}

/// The `q`-th percentile (0–100) of an *unsorted* sample, by nearest
/// rank — same answer as [`percentile`] on the sorted sample, but via
/// `select_nth_unstable`, so extracting one quantile is O(n) instead of
/// the O(n log n) full sort. Reorders `values` in place.
pub fn nearest_rank(values: &mut [u64], q: u64) -> u64 {
    if values.is_empty() {
        return 0;
    }
    let rank = (q as usize * values.len()).div_ceil(100).max(1) - 1;
    *values.select_nth_unstable(rank.min(values.len() - 1)).1
}

/// Runs one service deployment; see the module docs for the epoch
/// structure.
///
/// # Errors
///
/// See [`ServiceError`].
pub fn run_service(spec: &ServiceSpec) -> Result<ServiceReport, ServiceError> {
    let started = Instant::now();
    let plan = plan_shards(spec.total, spec.t, spec.shard_target, spec.seed)?;
    // The chaos plan is expanded once, up front: the whole soak is a
    // pure function of the spec, fault injection included.
    let chaos = spec.chaos.as_ref().map(|c| c.plan());
    // Cumulative per-shard losses. Failures are permanent (sFS2a — a
    // detected process really is gone), so every epoch runs each shard
    // as its survivors with the remaining budget, never with
    // resurrected members, and the directory sees monotone counts.
    let mut dead: BTreeMap<ShardId, usize> = BTreeMap::new();
    let mut exhausted: Vec<ShardId> = Vec::new();
    let mut epochs = Vec::new();
    for epoch in 1..=spec.epochs.max(1) {
        let reports: Vec<ShardReport> = (0..plan.len())
            .map(|shard| ShardReport {
                shard,
                detections: dead.get(&shard).copied().unwrap_or(0),
                t: spec.t,
            })
            .collect();
        let table = Directory::decide(&spec.dir, epoch, &reports)?;
        let outcome = run_epoch(spec, &plan, epoch, &table, &dead, chaos.as_ref())?;
        for s in &outcome.shards {
            *dead.entry(s.shard).or_insert(0) += s.detected;
        }
        for shard in 0..plan.len() {
            if dead.get(&shard).copied().unwrap_or(0) >= spec.t.max(1)
                && !exhausted.contains(&shard)
            {
                exhausted.push(shard);
            }
        }
        epochs.push(outcome);
    }
    Ok(ServiceReport {
        total: spec.total,
        shard_count: plan.len(),
        backend: spec.backend,
        batch: spec.batch,
        epochs,
        exhausted,
        wall_ms: started.elapsed().as_secs_f64() * 1_000.0,
    })
}

/// Seed salt distinguishing a donor's rescue run from its main run in
/// the same epoch.
const RESCUE_SALT: u64 = 0x9E5C_0000;

/// Routes this epoch's ops over `table` and runs every involved shard.
/// `dead` carries the per-shard count of members detected failed in
/// earlier epochs (see [`run_service`]); `chaos` the expanded overlay
/// plan, if any. After the main runs, ops stranded on shards that
/// exhausted their budget mid-epoch are rescued onto healthy donors.
fn run_epoch(
    spec: &ServiceSpec,
    plan: &ShardPlan,
    epoch: u64,
    table: &RoutingTable,
    dead: &BTreeMap<ShardId, usize>,
    chaos: Option<&ChaosPlan>,
) -> Result<EpochOutcome, ServiceError> {
    let started = Instant::now();
    let budget = spec.t.max(1);
    let lost = |sid: ShardId| dead.get(&sid).copied().unwrap_or(0);
    let mut routed: BTreeMap<ShardId, u64> = BTreeMap::new();
    for op in 0..spec.load.ops {
        *routed.entry(table.route(op)).or_insert(0) += 1;
    }
    // Scripted crashes land in epoch 1 only; map global pids onto their
    // shard-local identities.
    let mut crashes: BTreeMap<ShardId, Vec<(usize, u64)>> = BTreeMap::new();
    if epoch == 1 {
        for &(g, tick) in &spec.crashes {
            if let Some(sid) = plan.shard_of(g) {
                let local = plan.shards[sid].local_of(g).expect("member");
                crashes.entry(sid).or_default().push((local, tick));
            }
        }
    }
    // Chaos overlays for this epoch (plan epochs are 0-based).
    let overlays: BTreeMap<ShardId, ShardChaos> = match chaos {
        Some(c) => plan
            .shards
            .iter()
            .filter_map(|s| {
                let o = c.overlay(epoch as usize - 1, s.id);
                (!o.is_quiet()).then_some((s.id, o))
            })
            .collect(),
        None => BTreeMap::new(),
    };
    // A shard already past its budget never runs again: it is neither
    // routed to (the table guarantees that) nor worth injecting into.
    let involved: Vec<&ShardSpec> = plan
        .shards
        .iter()
        .filter(|s| lost(s.id) < budget)
        .filter(|s| {
            routed.contains_key(&s.id)
                || crashes.contains_key(&s.id)
                || overlays.contains_key(&s.id)
        })
        .collect();
    let outcomes: Vec<Result<ShardOutcome, ServiceError>> = involved
        .par_iter()
        .map(|shard| {
            run_shard(
                spec,
                shard,
                epoch,
                routed.get(&shard.id).copied().unwrap_or(0),
                crashes.get(&shard.id).cloned().unwrap_or_default(),
                lost(shard.id),
                overlays.get(&shard.id),
                0,
            )
        })
        .collect();
    let mut shards = outcomes.into_iter().collect::<Result<Vec<_>, _>>()?;
    // Graceful degradation: a shard that exhausted its budget *during*
    // this epoch may have left routed ops unserved. Rescue them —
    // re-route round-robin over the shards still inside budget and run
    // one fault-free rescue pass per donor, within the same epoch.
    let detected_now: BTreeMap<ShardId, usize> =
        shards.iter().map(|s| (s.shard, s.detected)).collect();
    let now_lost = |sid: ShardId| lost(sid) + detected_now.get(&sid).copied().unwrap_or(0);
    let stranded: u64 = shards
        .iter()
        .filter(|s| now_lost(s.shard) >= budget)
        .map(|s| s.ops_routed.saturating_sub(s.load.completed))
        .sum();
    let donors: Vec<&ShardSpec> = plan
        .shards
        .iter()
        .filter(|s| now_lost(s.id) < budget)
        .collect();
    let mut rescued_ops = 0;
    if stranded > 0 && !donors.is_empty() {
        let mut extra: BTreeMap<ShardId, u64> = BTreeMap::new();
        for k in 0..stranded {
            *extra
                .entry(donors[k as usize % donors.len()].id)
                .or_insert(0) += 1;
        }
        let targets: Vec<&ShardSpec> = donors
            .iter()
            .copied()
            .filter(|s| extra.contains_key(&s.id))
            .collect();
        let rescues: Vec<Result<ShardOutcome, ServiceError>> = targets
            .par_iter()
            .map(|shard| {
                run_shard(
                    spec,
                    shard,
                    epoch,
                    extra[&shard.id],
                    Vec::new(),
                    lost(shard.id),
                    None,
                    RESCUE_SALT,
                )
            })
            .collect();
        shards.extend(rescues.into_iter().collect::<Result<Vec<_>, _>>()?);
        rescued_ops = stranded;
    }
    Ok(EpochOutcome {
        epoch,
        table: table.clone(),
        shards,
        rescued_ops,
        wall_ms: started.elapsed().as_secs_f64() * 1_000.0,
    })
}

/// Runs one shard group for one epoch on the spec's backend. `dead`
/// members from earlier epochs are gone for good: the group runs as its
/// `n - dead` survivors with the remaining budget `t - dead` (always
/// still feasible: `n > t²` and `d < t` imply `n - d > (t - d)²`).
/// `overlay` is this shard's chaos injection for the epoch; `salt`
/// distinguishes a rescue pass from the main run.
#[allow(clippy::too_many_arguments)]
fn run_shard(
    spec: &ServiceSpec,
    shard: &ShardSpec,
    epoch: u64,
    ops: u64,
    crashes: Vec<(usize, u64)>,
    dead: usize,
    overlay: Option<&ShardChaos>,
    salt: u64,
) -> Result<ShardOutcome, ServiceError> {
    let n = shard.n() - dead.min(shard.n());
    let t = shard.t - dead.min(shard.t);
    let mut cluster = ClusterSpec::new(n, t)
        .seed(spec.seed ^ (0xE11 * (epoch + 1) + shard.id as u64) ^ salt)
        .batched(spec.batch)
        .max_time(spec.max_time);
    if let Some(hb) = spec.heartbeat {
        cluster = cluster.heartbeat(hb);
    }
    // The online monitor rides the write-only event sink: it observes
    // every recorded event live but cannot perturb the run, so
    // monitored executions stay identical to bare ones.
    let monitor = spec.certify_online.then(|| SfsMonitor::new(n));
    if let Some(m) = &monitor {
        cluster = cluster.event_sink(m.handle());
    }
    // Watermarks ride the (equally write-only) obs seam, paired with a
    // flight recorder so a trip ships the recent telemetry ring as its
    // own post-mortem — before any certification gate gets to fail.
    let watermarks = if spec.watermarks {
        let recorder = sfs_obs::FlightRecorder::new(512);
        let wm = sfs_obs::AnomalyWatermarks::with_flight(
            &format!("shard{}-epoch{epoch}", shard.id),
            recorder.clone(),
        );
        cluster = cluster.observe(sfs_obs::fanout(vec![recorder.handle(), wm.handle()]));
        Some(wm)
    } else {
        None
    };
    for &(local, tick) in &crashes {
        cluster = cluster.crash(ProcessId::new(local), tick.max(1));
    }
    // Chaos crash victims are addressed by *rank from the top* of the
    // current local id range, so the same plan stays meaningful as
    // survivors are relabelled between epochs (and never lands on the
    // designated gray-failure victim, local p0).
    if let Some(o) = overlay {
        for &(rank, tick) in &o.crashes {
            if rank < n {
                cluster = cluster.crash(ProcessId::new(n - 1 - rank), tick.max(1));
            }
        }
    }
    // Merge the overlay's flap and storm windows — both target local
    // p0's outbound links — into the shard's network. Without a base
    // network there is no link seam, so only the crashes apply.
    let net = spec.net.clone().map(|mut net| {
        if let Some(o) = overlay {
            let pairs: Vec<(ProcessId, ProcessId)> = (1..n)
                .map(|j| (ProcessId::new(0), ProcessId::new(j)))
                .collect();
            let vt = VirtualTime::from_ticks;
            for &(from, until) in &o.flaps {
                net.partitions = net
                    .partitions
                    .clone()
                    .cut_links(vt(from), vt(until), &pairs);
            }
            if let Some((from, until, extra)) = o.storm {
                net.storms = net
                    .storms
                    .clone()
                    .surge_links(vt(from), vt(until), &pairs, extra);
            }
        }
        net
    });
    let profile = LoadProfile {
        mode: spec.load.mode,
        ops,
    };
    let trace = match (&net, spec.backend) {
        (None, Backend::Sim) => cluster.try_run_apps(|_| LoadGenApp::new(profile))?,
        (None, Backend::Threaded) => {
            let settle = Duration::from_millis(spec.settle_ms);
            cluster.try_run_threaded(|_| LoadGenApp::new(profile), settle)?
        }
        // Faulty-net deployment: the shard group runs transport-backed,
        // its channels emulated by the ARQ layer over the described
        // link instead of assumed reliable.
        (Some(net), Backend::Sim) => cluster
            .net(net.clone())
            .try_run_net(|_| LoadGenApp::new(profile))?,
        (Some(net), Backend::Threaded) => {
            let settle = Duration::from_millis(spec.settle_ms);
            cluster
                .net(net.clone())
                .try_run_threaded_net(|_| LoadGenApp::new(profile), settle)?
                .0
        }
    };
    let mut out = summarize_shard(shard.id, n, ops, &trace, spec.backend, monitor.as_deref());
    if let Some(wm) = &watermarks {
        out.watermark_trips = wm.trips();
    }
    if spec.keep_traces {
        out.trace = Some(trace);
    }
    Ok(out)
}

/// Folds one shard trace into its outcome. `n` is the size the group
/// actually ran at (survivors only, in epochs after losses).
fn summarize_shard(
    shard: ShardId,
    n: usize,
    ops: u64,
    trace: &Trace,
    backend: Backend,
    monitor: Option<&SfsMonitor>,
) -> ShardOutcome {
    let load = analyze_load(trace);
    // Each shard folds its own registry — contention-free under the
    // rayon fan-out — and the outcome carries the snapshot; the
    // associative merge happens lazily in `ServiceReport::obs_report`.
    let registry = Registry::for_shard(backend.to_string(), shard as u32);
    registry.ingest_trace(trace);
    for &l in &load.op_latencies {
        registry.observe(0, MsgClass::App, metrics::OP_LATENCY, l);
    }
    let stats = trace.stats();
    registry.add(0, MsgClass::None, metrics::SENT, stats.messages_sent);
    registry.add(0, MsgClass::None, metrics::DROPPED, stats.messages_dropped);
    registry.add(
        0,
        MsgClass::None,
        metrics::DUPLICATED,
        stats.messages_duplicated,
    );
    registry.add(0, MsgClass::None, metrics::WIRE_BYTES, stats.wire_bytes);
    registry.add(
        0,
        MsgClass::None,
        metrics::DELIVERED,
        stats.messages_delivered,
    );
    registry.add(
        0,
        MsgClass::None,
        metrics::TO_CRASHED,
        stats.messages_to_crashed,
    );
    registry.add(0, MsgClass::None, metrics::TIMERS, stats.timers_fired);
    registry.add(0, MsgClass::None, metrics::CRASHES, stats.crashes);
    registry.add(0, MsgClass::None, metrics::DETECTIONS, stats.detections);
    // Monitor overhead gauges: how much the online certification cost.
    if let Some(m) = monitor {
        let events = m.events_seen();
        let spent = m.spent_ns();
        registry.set(0, MsgClass::None, metrics::MONITOR_EVENTS, events);
        registry.set(
            0,
            MsgClass::None,
            metrics::MONITOR_NS_PER_EVENT,
            m.ns_per_event(),
        );
        let per_sec = if spent > 0 {
            (events as u128 * 1_000_000_000 / spent as u128) as u64
        } else {
            0
        };
        registry.set(0, MsgClass::None, metrics::MONITOR_EVENTS_PER_SEC, per_sec);
    }
    // Crash → detection latency: every Failed{of = v} after Crash{v}.
    let mut crash_at: BTreeMap<usize, u64> = BTreeMap::new();
    let mut latencies = Vec::new();
    for e in trace.events() {
        match e.kind {
            TraceEventKind::Crash { pid } => {
                crash_at.entry(pid.index()).or_insert(e.time.ticks());
            }
            TraceEventKind::Failed { of, .. } => {
                if let Some(&c) = crash_at.get(&of.index()) {
                    latencies.push(e.time.ticks().saturating_sub(c));
                }
            }
            _ => {}
        }
    }
    let detected: std::collections::BTreeSet<ProcessId> =
        trace.detections().into_iter().map(|(_, of)| of).collect();
    ShardOutcome {
        shard,
        n,
        ops_routed: ops,
        load,
        stats,
        events: trace.events().len() as u64,
        detected: detected.len(),
        detection_latencies: latencies,
        obs: registry.report(),
        trace: None,
        // Liveness clauses are judged with all obligations due
        // (`complete = true`): a shard run's horizon is its discharge
        // deadline — transport-backed groups under probes never
        // formally quiesce, and the E11/E13 certification convention is
        // that every crash must be detected *within the run*.
        verdicts: monitor.map(|m| m.finish(true)),
        watermark_trips: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v = vec![10, 20, 30, 40];
        assert_eq!(percentile(&v, 50), 20);
        assert_eq!(percentile(&v, 95), 40);
        assert_eq!(percentile(&v, 100), 40);
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 50), 7);
    }

    #[test]
    fn selection_agrees_with_sorted_percentile() {
        // `nearest_rank` on the shuffled sample must equal `percentile`
        // on the sorted one, for every q — the selection is a drop-in
        // replacement for the full sort.
        let sorted: Vec<u64> = (0..97).map(|i| i * 3 + 1).collect();
        let shuffled: Vec<u64> = (0..97).map(|i| sorted[(i * 53) % sorted.len()]).collect();
        assert_eq!(shuffled.len(), sorted.len());
        for q in 0..=100 {
            let mut v = shuffled.clone();
            assert_eq!(nearest_rank(&mut v, q), percentile(&sorted, q), "q={q}");
        }
        assert_eq!(nearest_rank(&mut [], 50), 0);
        assert_eq!(nearest_rank(&mut [7], 99), 7);
    }

    #[test]
    fn small_service_completes_all_ops_on_sim() {
        let spec = ServiceSpec::new(20, 2, 10)
            .heartbeat(None)
            .load(LoadProfile::closed(40, 4));
        let report = run_service(&spec).unwrap();
        assert_eq!(report.shard_count, 2);
        assert_eq!(report.epochs.len(), 2);
        // 40 ops per epoch, all completed.
        assert_eq!(report.ops_completed(), 80);
        assert!(report.exhausted.is_empty());
        assert!(report.messages() > 0);
    }

    #[test]
    fn service_runs_are_deterministic_on_sim() {
        let spec = ServiceSpec::new(20, 2, 10)
            .seed(5)
            .heartbeat(None)
            .load(LoadProfile::open(30, 3, 2));
        let a = run_service(&spec).unwrap();
        let b = run_service(&spec).unwrap();
        assert_eq!(a.ops_completed(), b.ops_completed());
        assert_eq!(a.events(), b.events());
        assert_eq!(a.messages(), b.messages());
        assert_eq!(a.detection_latencies(), b.detection_latencies());
    }

    #[test]
    fn crashes_are_detected_and_exhausted_shards_lose_their_slots() {
        // Crash t = 2 members of shard 0 (plan is deterministic, so we
        // can name them): epoch 2 must route nothing there.
        let plan = plan_shards(20, 2, 10, 3).unwrap();
        let victims: Vec<usize> = plan.shards[0].members.iter().take(2).copied().collect();
        let spec = ServiceSpec::new(20, 2, 10)
            .seed(3)
            .max_time(1_500)
            .load(LoadProfile::closed(30, 4))
            .crash(victims[0], 40)
            .crash(victims[1], 60);
        let report = run_service(&spec).unwrap();
        assert_eq!(report.exhausted, vec![0], "shard 0 must exhaust its t");
        let epoch2 = &report.epochs[1];
        assert!(!epoch2.table.healthy.contains(&0));
        for s in &epoch2.shards {
            assert!(
                s.shard != 0 || s.ops_routed == 0,
                "epoch 2 routed ops to the exhausted shard"
            );
        }
        // Detection latencies were measured.
        assert!(!report.detection_latencies().is_empty());
        // Epoch 2 still completes its whole batch on the surviving shard.
        let done2: u64 = epoch2.shards.iter().map(|s| s.load.completed).sum();
        assert_eq!(done2, 30);
    }

    #[test]
    fn service_completes_all_ops_over_a_lossy_network() {
        // Every shard transport-backed over a 10% lossy link: the ARQ
        // layer must reconstruct the channels and the service must
        // complete every op in both epochs.
        let spec = ServiceSpec::new(20, 2, 10)
            .heartbeat(None)
            .net(NetSpec::faultless().loss(0.1))
            .seed(4)
            .load(LoadProfile::closed(40, 4));
        let report = run_service(&spec).unwrap();
        assert_eq!(report.ops_completed(), 80, "ops lost to the network");
        assert!(
            report
                .epochs
                .iter()
                .flat_map(|e| &e.shards)
                .any(|s| s.stats.messages_dropped > 0),
            "the network was supposed to be lossy"
        );
        assert!(report.exhausted.is_empty());
    }

    #[test]
    fn shards_keep_serving_across_a_healed_partition() {
        // In every shard, the local p0 goes transmit-silent for
        // [50, 900) — a healed blackout. The probers detect it, the
        // protocol kills it cleanly (one loss per shard, within t = 2),
        // and both epochs complete their full op batch: the service
        // keeps serving across the cut and after the heal.
        let cut = sfs_asys::PartitionSchedule::new().cut_links(
            sfs_asys::VirtualTime::from_ticks(50),
            sfs_asys::VirtualTime::from_ticks(900),
            &(1..10)
                .map(|j| (ProcessId::new(0), ProcessId::new(j)))
                .collect::<Vec<_>>(),
        );
        let spec = ServiceSpec::new(20, 2, 10)
            .heartbeat(None)
            .net(
                NetSpec::faultless()
                    .probe(sfs::ProbeConfig::default())
                    .partitions(cut),
            )
            .seed(8)
            .max_time(4_000)
            .load(LoadProfile::closed(40, 4));
        let report = run_service(&spec).unwrap();
        assert_eq!(report.ops_completed(), 80, "service stalled on the cut");
        // Each shard detected (and killed) its silenced member...
        let epoch1 = &report.epochs[0];
        for s in &epoch1.shards {
            assert_eq!(s.detected, 1, "shard {} missed the blackout", s.shard);
        }
        // ...but one loss is within budget: the epoch-2 decision still
        // routes to every shard, and the whole batch is served.
        let epoch2 = &report.epochs[1];
        assert_eq!(epoch2.table.healthy, vec![0, 1]);
        let done2: u64 = epoch2.shards.iter().map(|s| s.load.completed).sum();
        assert_eq!(done2, 40, "epoch 2 must serve its whole batch");
        // The base net's cut applies to every epoch alike, so each
        // shard's *new* local p0 is killed again in epoch 2 — by the
        // end of the run both shards have spent their full budget, and
        // the report says so (the old scripted engine under-reported
        // epoch-2 losses).
        assert_eq!(report.exhausted, vec![0, 1]);
    }

    #[test]
    fn fault_intolerant_service_serves_without_failures() {
        // t = 0 is a legal, fault-intolerant deployment: with zero
        // detections every shard stays healthy and both epochs serve.
        let spec = ServiceSpec::new(8, 0, 4)
            .heartbeat(None)
            .load(LoadProfile::closed(16, 2));
        let report = run_service(&spec).unwrap();
        assert_eq!(report.shard_count, 2);
        assert_eq!(report.ops_completed(), 32);
        assert!(report.exhausted.is_empty());
    }

    #[test]
    fn partially_damaged_shards_serve_later_epochs_as_survivors() {
        // One crash (< t) leaves the shard healthy and routed — but its
        // dead member must NOT resurrect in epoch 2: the group re-runs
        // as its 9 survivors with the remaining budget t - 1.
        let plan = plan_shards(20, 2, 10, 6).unwrap();
        let victim = plan.shards[1].members[0];
        let spec = ServiceSpec::new(20, 2, 10)
            .seed(6)
            .max_time(1_500)
            .load(LoadProfile::closed(30, 4))
            .crash(victim, 40);
        let report = run_service(&spec).unwrap();
        assert!(report.exhausted.is_empty(), "one crash < t stays healthy");
        let e1 = report.epochs[0]
            .shards
            .iter()
            .find(|s| s.shard == 1)
            .expect("shard 1 served epoch 1");
        assert_eq!(e1.n, 10);
        assert_eq!(e1.detected, 1, "the crash was detected");
        let e2 = report.epochs[1]
            .shards
            .iter()
            .find(|s| s.shard == 1)
            .expect("still routed in epoch 2");
        assert_eq!(
            e2.n, 9,
            "epoch 2 runs the survivors, not resurrected members"
        );
        let done2: u64 = report.epochs[1]
            .shards
            .iter()
            .map(|s| s.load.completed)
            .sum();
        assert_eq!(done2, 30, "survivors still serve the whole epoch-2 batch");
    }

    #[test]
    fn batching_changes_no_outcome_on_sim() {
        // Heartbeats stay on: their synchronized broadcasts guarantee
        // same-instant same-destination deliveries, so the batched run
        // demonstrably coalesces while changing nothing observable.
        let spec = ServiceSpec::new(20, 2, 10)
            .seed(8)
            .max_time(800)
            .load(LoadProfile::closed(24, 3));
        let plain = run_service(&spec.clone().batched(false)).unwrap();
        let batched = run_service(&spec.batched(true)).unwrap();
        assert_eq!(plain.ops_completed(), batched.ops_completed());
        assert_eq!(plain.messages(), batched.messages());
        assert!(batched.delivery_batches() > 0);
        assert_eq!(plain.delivery_batches(), 0);
    }

    #[test]
    fn threaded_backend_serves_a_small_service() {
        let spec = ServiceSpec::new(10, 1, 5)
            .backend(Backend::Threaded)
            .heartbeat(None)
            .load(LoadProfile::closed(10, 2));
        let report = run_service(&spec).unwrap();
        assert_eq!(report.shard_count, 2);
        assert_eq!(report.ops_completed(), 20, "all ops served on threads");
    }

    #[test]
    fn continuous_epoch_loop_serves_every_epoch() {
        // The loop is no longer scripted to two epochs: five epochs of
        // load, each under its own directory decision, all complete.
        let spec = ServiceSpec::new(20, 2, 10)
            .heartbeat(None)
            .epochs(5)
            .load(LoadProfile::closed(20, 4));
        let report = run_service(&spec).unwrap();
        assert_eq!(report.epochs.len(), 5);
        assert_eq!(report.ops_completed(), 100);
        for (i, e) in report.epochs.iter().enumerate() {
            assert_eq!(e.epoch, i as u64 + 1);
            assert_eq!(e.table.epoch, i as u64 + 1);
            assert_eq!(e.rescued_ops, 0);
            assert!(e.table.degraded.is_empty());
        }
    }

    #[test]
    fn chaos_crash_floor_lands_and_the_loop_keeps_serving() {
        // A chaos plan whose Poisson stream is empty still fires its
        // deterministic floor crash: rank 0 of shard 0 (the highest
        // local id) dies mid-epoch-1, is detected, and later epochs run
        // the shard as its survivors while every op completes.
        let chaos = ChaosSpec {
            crash_mean_gap: u64::MAX / 4,
            ..ChaosSpec::new(2, 2)
        }
        .seed(9);
        let spec = ServiceSpec::new(20, 2, 10)
            .seed(9)
            .epochs(3)
            .max_time(3_000)
            .chaos(chaos)
            .load(LoadProfile::closed(30, 4));
        let report = run_service(&spec).unwrap();
        assert_eq!(report.epochs.len(), 3);
        assert_eq!(report.ops_completed(), 90, "the loop kept serving");
        assert!(report.exhausted.is_empty(), "one crash < t stays healthy");
        assert!(
            !report.detection_latencies().is_empty(),
            "the floor crash was detected"
        );
        let e2 = report.epochs[1]
            .shards
            .iter()
            .find(|s| s.shard == 0)
            .expect("shard 0 still routed");
        assert_eq!(e2.n, 9, "epoch 2 runs the survivors");
    }

    #[test]
    fn chaos_flaps_and_storms_ride_on_the_shard_network() {
        // Epoch-0 overlay windows (a long cut and a small delay storm on
        // each shard's local p0 outbound links) merge into the base
        // transport network: every shard's probers detect and kill the
        // silenced p0 — one loss per shard, inside budget — and the
        // service completes both epochs.
        let chaos = ChaosSpec {
            crash_floor: false,
            crash_mean_gap: u64::MAX / 4,
            ..ChaosSpec::new(2, 2)
        }
        .seed(8)
        .flaps(vec![(50, 900)])
        .storm(10, 45, 3);
        let spec = ServiceSpec::new(20, 2, 10)
            .heartbeat(None)
            .net(NetSpec::faultless().probe(sfs::ProbeConfig::default()))
            .chaos(chaos)
            .seed(8)
            .max_time(4_000)
            .load(LoadProfile::closed(40, 4));
        let report = run_service(&spec).unwrap();
        assert_eq!(report.ops_completed(), 80, "service stalled on the cut");
        assert!(report.exhausted.is_empty());
        for s in &report.epochs[0].shards {
            assert_eq!(s.detected, 1, "shard {} missed the blackout", s.shard);
        }
        for s in &report.epochs[1].shards {
            assert_eq!(s.n, 9, "epoch 2 runs the survivors");
        }
    }

    #[test]
    fn mid_epoch_exhaustion_degrades_the_shard_and_rescues_stranded_ops() {
        // Open-loop load slower than the horizon: every shard strands
        // its tail ops at max_time. Shard 0 additionally exhausts its
        // t = 2 mid-epoch, so *its* stranded ops are rescued onto the
        // healthy shard within the epoch, and the next directory
        // decision marks it degraded.
        let plan = plan_shards(20, 2, 10, 3).unwrap();
        let victims: Vec<usize> = plan.shards[0].members[1..3].to_vec();
        let spec = ServiceSpec::new(20, 2, 10)
            .seed(3)
            .heartbeat(Some(HeartbeatConfig {
                interval: 10,
                timeout: 60,
                check_every: 15,
            }))
            .max_time(250)
            .load(LoadProfile::open(16, 40, 1))
            .crash(victims[0], 30)
            .crash(victims[1], 50);
        let report = run_service(&spec).unwrap();
        assert_eq!(report.exhausted, vec![0], "shard 0 must exhaust its t");
        let epoch1 = &report.epochs[0];
        assert!(epoch1.rescued_ops > 0, "stranded ops were rescued");
        assert_eq!(
            epoch1.shards.iter().filter(|s| s.shard == 1).count(),
            2,
            "the donor ran a main pass and a rescue pass"
        );
        let rescue = epoch1.shards.iter().rev().find(|s| s.shard == 1).unwrap();
        assert_eq!(
            rescue.load.completed, rescue.ops_routed,
            "the rescue pass served everything rerouted to it"
        );
        // The next decision shows the degradation to every client.
        let epoch2 = &report.epochs[1];
        assert_eq!(epoch2.table.degraded, vec![0]);
        assert!(!epoch2.table.healthy.contains(&0));
        assert!(
            epoch2.shards.iter().all(|s| s.shard != 0),
            "the degraded shard must not run again"
        );
        assert_eq!(epoch2.rescued_ops, 0, "no new exhaustion in epoch 2");
    }

    #[test]
    fn kept_traces_certify_the_sfs_suite() {
        use sfs_history::History;
        use sfs_tlogic::properties;

        // keep_traces carries every shard run's trace, and each one —
        // crashes and survivor re-runs alike — certifies FS1/sFS2a–d.
        let plan = plan_shards(10, 2, 10, 5).unwrap();
        let victim = plan.shards[0].members[0];
        let spec = ServiceSpec::new(10, 2, 10)
            .seed(5)
            .keep_traces(true)
            .max_time(1_500)
            .load(LoadProfile::closed(16, 4))
            .crash(victim, 40);
        let report = run_service(&spec).unwrap();
        let mut checked = 0;
        for s in report.epochs.iter().flat_map(|e| &e.shards) {
            let trace = s.trace.as_ref().expect("keep_traces carries traces");
            let history = History::from_trace(trace);
            for r in properties::check_sfs_suite(&history, true) {
                assert!(r.is_ok(), "shard {} epoch trace: {r}", s.shard);
            }
            checked += 1;
        }
        assert!(checked >= 2, "both epochs carried certifiable traces");
    }

    #[test]
    fn online_verdicts_match_the_post_hoc_checker() {
        use sfs_history::History;
        use sfs_tlogic::properties;

        // certify_online + keep_traces on the same run: the streaming
        // monitor's verdict vector must equal `check_sfs_suite` on the
        // carried trace, clause by clause, for every shard run — the
        // equivalence E13's certify-online mode rests on.
        let plan = plan_shards(10, 2, 10, 5).unwrap();
        let victim = plan.shards[0].members[0];
        let spec = ServiceSpec::new(10, 2, 10)
            .seed(5)
            .keep_traces(true)
            .certify_online(true)
            .max_time(1_500)
            .load(LoadProfile::closed(16, 4))
            .crash(victim, 40);
        let report = run_service(&spec).unwrap();
        let mut checked = 0;
        for s in report.epochs.iter().flat_map(|e| &e.shards) {
            let trace = s.trace.as_ref().expect("keep_traces carries traces");
            let online = s
                .verdicts
                .as_ref()
                .expect("certify_online carries verdicts");
            let history = History::from_trace(trace);
            let posthoc = SuiteVerdicts::from_reports(&properties::check_sfs_suite(&history, true));
            assert_eq!(online, &posthoc, "shard {} diverged", s.shard);
            assert!(online.all_ok(), "shard {}: {online}", s.shard);
            checked += 1;
        }
        assert!(checked >= 2);
        // The overhead gauges landed in the merged telemetry.
        let obs = report.obs_report().to_json();
        assert!(obs.contains(metrics::MONITOR_EVENTS), "{obs}");
    }

    #[test]
    fn online_certification_perturbs_nothing() {
        // The monitor rides a write-only sink: a certified run must be
        // observably identical to the bare run — same events, same
        // messages, same detection latencies.
        let plan = plan_shards(20, 2, 10, 7).unwrap();
        let victim = plan.shards[0].members[0];
        let spec = ServiceSpec::new(20, 2, 10)
            .seed(7)
            .max_time(1_500)
            .load(LoadProfile::closed(24, 4))
            .crash(victim, 40);
        let bare = run_service(&spec).unwrap();
        let certified = run_service(&spec.clone().certify_online(true)).unwrap();
        assert_eq!(bare.events(), certified.events());
        assert_eq!(bare.messages(), certified.messages());
        assert_eq!(bare.detection_latencies(), certified.detection_latencies());
    }

    #[test]
    fn watermarks_stay_silent_on_a_healthy_run_and_perturb_nothing() {
        // Armed watermarks are a smoke alarm: on a clean run (one
        // scripted crash, no chaos) every signal stays inside its
        // learned baseline, and the extra obs sinks change nothing the
        // shard outcomes can observe.
        let plan = plan_shards(20, 2, 10, 7).unwrap();
        let victim = plan.shards[0].members[0];
        let spec = ServiceSpec::new(20, 2, 10)
            .seed(7)
            .max_time(1_500)
            .load(LoadProfile::closed(24, 4))
            .crash(victim, 40);
        let bare = run_service(&spec).unwrap();
        let armed = run_service(&spec.clone().watermarks(true)).unwrap();
        assert_eq!(bare.events(), armed.events());
        assert_eq!(bare.messages(), armed.messages());
        for s in armed.epochs.iter().flat_map(|e| &e.shards) {
            assert!(
                s.watermark_trips.is_empty(),
                "shard {} tripped {:?} on a healthy run",
                s.shard,
                s.watermark_trips
            );
        }
    }
}
