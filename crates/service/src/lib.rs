//! # sfs-service — a sharded, batched fail-stop service layer
//!
//! Everything below this crate runs **one** sFS group: the paper's §5
//! one-round protocol is all-to-all, so message cost is Θ(n²) per
//! detection round and a flat deployment stops scaling around n ≈ 10.
//! This crate scales the *system* instead of the *group*: it partitions
//! a large deployment into many small quorum groups — each locally
//! satisfying Corollary 8's `n > t²` — and composes them behind a
//! replicated directory, exactly the way §1 (leader election) and §6
//! (group membership) describe services being built *on top of* the
//! fail-stop abstraction.
//!
//! The pieces:
//!
//! * [`plan`] — the shard planner: a deterministic, seeded partition of
//!   `N` processes into feasible quorum groups, with infeasible requests
//!   surfaced as typed errors through the same `sfs::quorum` arithmetic
//!   the protocol uses.
//! * [`directory`] — the cross-shard directory: a small membership map
//!   replicated by an sFS group of its own. Replicas merge per-shard
//!   health reports and deterministically rebalance the key space away
//!   from shards whose failure budget is exhausted; because the detector
//!   provides fail-stop semantics, the survivors agree without running
//!   any agreement protocol.
//! * [`load`] — the load generator: open- and closed-loop client-op
//!   drivers (work-pool-style assign/execute/complete with failover),
//!   deterministic on the simulator, wall-clock on the threaded runtime.
//! * [`service`] — the engine: epochs of routed load over every shard
//!   (one rayon task each), health summarization, directory rebalancing,
//!   and a [`ServiceReport`] with throughput and detection-latency
//!   figures. Experiment E11 (`BENCH_E11.json`) is this engine swept
//!   over N ∈ {64, 256, 1024} on both backends, batched and not.
//!
//! The batching fast path itself lives in `sfs-asys` (see
//! `SimConfig::batch_flush` and `RuntimeConfig::batch`); this crate
//! flips it per deployment via [`ServiceSpec::batched`] and measures the
//! effect.

#![warn(missing_docs)]

pub mod directory;
pub mod load;
pub mod plan;
pub mod service;

pub use directory::{
    DirMsg, Directory, DirectoryApp, DirectoryError, DirectorySpec, RoutingTable, ShardReport,
    NOTE_DIR_TABLE,
};
pub use load::{
    analyze_load, LoadGenApp, LoadMode, LoadMsg, LoadOutcome, LoadProfile, NOTE_LOAD_COMPLETE,
    NOTE_OP_DONE, NOTE_OP_EXEC, NOTE_OP_ISSUED, SPAN_LOAD,
};
pub use plan::{plan_shards, PlanError, ShardId, ShardPlan, ShardSpec};
pub use service::{
    nearest_rank, percentile, run_service, Backend, EpochOutcome, ServiceError, ServiceReport,
    ServiceSpec, ShardOutcome,
};
