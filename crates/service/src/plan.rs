//! The shard planner: partitioning a large deployment into independent
//! quorum groups that each satisfy the paper's feasibility bound.
//!
//! The §5 one-round protocol is all-to-all, so a flat group pays Θ(n²)
//! messages per detection round — fine at n = 10, hopeless at n = 1024.
//! The service layer instead runs many small groups ("shards"), each
//! locally obeying Corollary 8's `n > t²`, and composes them behind a
//! [directory](crate::directory). This module computes that partition:
//! deterministically for a given seed, and with every shard's shape
//! validated through the same `sfs::quorum` arithmetic the protocol
//! itself uses — infeasible requests come back as typed errors, never
//! panics.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfs::quorum::{min_quorum, QuorumError};
use std::fmt;

/// Identifier of one shard (quorum group) within a [`ShardPlan`].
pub type ShardId = usize;

/// Why a deployment could not be planned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// The deployment has no processes.
    NoProcesses,
    /// The requested shard shape violates the quorum arithmetic (e.g. a
    /// target size `≤ t²` under the fixed minimum quorum).
    Quorum(QuorumError),
    /// The deployment is too small to form even one feasible shard.
    TooSmall {
        /// Total processes available.
        total: usize,
        /// Per-shard failure bound requested.
        t: usize,
        /// The minimum feasible shard size (`t² + 1`).
        needed: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PlanError::NoProcesses => write!(f, "a deployment needs at least one process"),
            PlanError::Quorum(e) => write!(f, "infeasible shard shape: {e}"),
            PlanError::TooSmall { total, t, needed } => write!(
                f,
                "{total} processes cannot form one shard tolerating t={t} \
                 (needs at least {needed} = t²+1 processes)"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<QuorumError> for PlanError {
    fn from(e: QuorumError) -> Self {
        PlanError::Quorum(e)
    }
}

/// One planned quorum group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Position in the plan (and default routing slot).
    pub id: ShardId,
    /// Global process indices (`0..total`) composing this shard; the
    /// position within the vector is the member's shard-local
    /// `ProcessId`.
    pub members: Vec<usize>,
    /// Shard-local failure bound.
    pub t: usize,
}

impl ShardSpec {
    /// Shard size.
    pub fn n(&self) -> usize {
        self.members.len()
    }

    /// The shard-local index of global process `g`, if it is a member.
    pub fn local_of(&self, g: usize) -> Option<usize> {
        self.members.iter().position(|&m| m == g)
    }
}

/// A full partition of `total` processes into feasible quorum groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Total processes partitioned.
    pub total: usize,
    /// Per-shard failure bound.
    pub t: usize,
    /// The seed the member shuffle was derived from.
    pub seed: u64,
    /// The shards; every global process appears in exactly one.
    pub shards: Vec<ShardSpec>,
}

impl ShardPlan {
    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the plan is empty (it never is for a successful plan).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard containing global process `g`, if any.
    pub fn shard_of(&self, g: usize) -> Option<ShardId> {
        self.shards
            .iter()
            .find(|s| s.members.contains(&g))
            .map(|s| s.id)
    }
}

/// Plans a deployment: partitions `total` processes into shards of
/// roughly `target` members, each tolerating `t` local failures.
///
/// Member assignment is a seeded Fisher–Yates shuffle sliced into
/// contiguous runs, so the plan is a pure function of
/// `(total, t, target, seed)` — re-planning with the same inputs yields
/// the identical partition (the property tests pin this). Every shard is
/// validated against [`min_quorum`]'s arithmetic: each gets at least
/// `max(target, t²+1)` members, so `n > t²` holds shard-locally.
///
/// # Errors
///
/// [`PlanError::NoProcesses`] for an empty deployment,
/// [`PlanError::Quorum`] when `target ≤ t²` (the requested shape itself
/// is infeasible), and [`PlanError::TooSmall`] when `total < t² + 1`.
///
/// # Examples
///
/// ```
/// use sfs_service::plan_shards;
///
/// let plan = plan_shards(64, 2, 16, 7).unwrap();
/// assert_eq!(plan.len(), 4);
/// assert!(plan.shards.iter().all(|s| s.n() > s.t * s.t));
/// assert!(plan_shards(64, 4, 16, 7).is_err()); // 16 = 4², not > 4²
/// ```
pub fn plan_shards(
    total: usize,
    t: usize,
    target: usize,
    seed: u64,
) -> Result<ShardPlan, PlanError> {
    let min_n = t * t + 1;
    if total == 0 {
        return Err(PlanError::NoProcesses);
    }
    if target < min_n {
        return Err(PlanError::Quorum(QuorumError::Infeasible {
            n: target,
            t,
            required: min_quorum(target.max(1), t),
        }));
    }
    if total < min_n {
        return Err(PlanError::TooSmall {
            total,
            t,
            needed: min_n,
        });
    }
    // As many ~target-size groups as the population allows. `g ≥ 1`, and
    // `base = total / g ≥ target ≥ min_n`, so every group is feasible
    // even before the remainder is spread.
    let g = (total / target).max(1);
    let base = total / g;
    let extra = total % g;
    // Seeded shuffle: which processes land in which shard is the planner's
    // only degree of freedom, and it is a pure function of the seed.
    let mut ids: Vec<usize> = (0..total).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5a7d_11ce);
    for i in (1..ids.len()).rev() {
        let j = rng.gen_range(0..=i);
        ids.swap(i, j);
    }
    let mut shards = Vec::with_capacity(g);
    let mut cursor = 0;
    for id in 0..g {
        let size = base + usize::from(id < extra);
        let mut members: Vec<usize> = ids[cursor..cursor + size].to_vec();
        members.sort_unstable();
        cursor += size;
        shards.push(ShardSpec { id, members, t });
    }
    debug_assert_eq!(cursor, total);
    Ok(ShardPlan {
        total,
        t,
        seed,
        shards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_cover_every_process_exactly_once() {
        let plan = plan_shards(100, 2, 10, 3).unwrap();
        let mut seen = vec![0usize; 100];
        for s in &plan.shards {
            for &m in &s.members {
                seen[m] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
        assert_eq!(plan.len(), 10);
    }

    #[test]
    fn every_shard_is_feasible() {
        for &(total, t, target) in &[(64usize, 2usize, 16usize), (256, 2, 16), (1024, 3, 32)] {
            let plan = plan_shards(total, t, target, 1).unwrap();
            for s in &plan.shards {
                assert!(
                    s.n() > s.t * s.t,
                    "shard {} has n={} t={}",
                    s.id,
                    s.n(),
                    s.t
                );
            }
        }
    }

    #[test]
    fn infeasible_requests_are_typed_errors() {
        assert_eq!(plan_shards(0, 2, 16, 0), Err(PlanError::NoProcesses));
        assert!(matches!(
            plan_shards(64, 4, 16, 0),
            Err(PlanError::Quorum(_))
        ));
        assert_eq!(
            plan_shards(3, 2, 16, 0),
            Err(PlanError::TooSmall {
                total: 3,
                t: 2,
                needed: 5
            })
        );
        let msg = plan_shards(64, 4, 16, 0).unwrap_err().to_string();
        assert!(msg.contains("infeasible"), "{msg}");
    }

    #[test]
    fn planning_is_deterministic_per_seed() {
        let a = plan_shards(64, 2, 16, 42).unwrap();
        let b = plan_shards(64, 2, 16, 42).unwrap();
        assert_eq!(a, b);
        let c = plan_shards(64, 2, 16, 43).unwrap();
        assert_ne!(a, c, "different seeds should shuffle differently");
    }

    #[test]
    fn shard_of_and_local_of_agree() {
        let plan = plan_shards(30, 2, 10, 9).unwrap();
        for g in 0..30 {
            let sid = plan.shard_of(g).expect("covered");
            let local = plan.shards[sid].local_of(g).expect("member");
            assert_eq!(plan.shards[sid].members[local], g);
        }
        assert_eq!(plan.shard_of(30), None);
    }
}
