//! Property tests for the shard planner and the directory's rebalancing
//! invariant (ISSUE E11 satellites):
//!
//! * every planned shard satisfies `n > t²`;
//! * planning is a pure function of `(total, t, target, seed)`;
//! * after any pattern of crashes, a rebalanced routing table never
//!   assigns a client op to a shard whose failure budget is exhausted.

use proptest::prelude::*;
use sfs_service::{plan_shards, RoutingTable, ShardReport};

/// `(total, t, target, seed)` with `target > t²` and enough processes
/// for 1–40 shards.
fn arb_plan_inputs() -> impl Strategy<Value = (usize, usize, usize, u64)> {
    (1usize..=3, 0usize..=11, 0u64..1_000).prop_flat_map(|(t, extra, seed)| {
        let target = t * t + 1 + extra;
        (target..=target * 40).prop_map(move |total| (total, t, target, seed))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_planned_shard_satisfies_the_corollary8_bound(
        inputs in arb_plan_inputs()
    ) {
        let (total, t, target, seed) = inputs;
        let plan = plan_shards(total, t, target, seed).expect("inputs are feasible");
        // Partition: every process in exactly one shard.
        let mut seen = vec![false; total];
        for shard in &plan.shards {
            prop_assert!(shard.n() > t * t,
                "shard {} has n={} for t={}", shard.id, shard.n(), t);
            for &m in &shard.members {
                prop_assert!(!seen[m], "process {} planned twice", m);
                seen[m] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "some process unplanned");
    }

    #[test]
    fn planning_is_deterministic_for_a_given_seed(
        inputs in arb_plan_inputs()
    ) {
        let (total, t, target, seed) = inputs;
        let a = plan_shards(total, t, target, seed).expect("feasible");
        let b = plan_shards(total, t, target, seed).expect("feasible");
        prop_assert_eq!(a, b);
    }

    #[test]
    fn rebalancing_never_routes_to_an_exhausted_shard(
        detections in prop::collection::vec(0usize..=4, 1..24),
        t in 1usize..=3,
        epoch in 1u64..100,
    ) {
        let reports: Vec<ShardReport> = detections
            .iter()
            .enumerate()
            .map(|(shard, &d)| ShardReport { shard, detections: d, t })
            .collect();
        let any_healthy = reports.iter().any(|r| !r.exhausted());
        match RoutingTable::rebalance(epoch, &reports) {
            None => prop_assert!(!any_healthy,
                "rebalance gave up although a healthy shard exists"),
            Some(table) => {
                prop_assert!(any_healthy);
                // The decisive invariant: no key routes to an exhausted
                // shard, and every slot is served.
                prop_assert_eq!(table.slots.len(), reports.len());
                for key in 0..(4 * reports.len() as u64) {
                    let serving = table.route(key);
                    let report = reports.iter().find(|r| r.shard == serving).unwrap();
                    prop_assert!(!report.exhausted(),
                        "key {} routed to exhausted shard {}", key, serving);
                }
                // Healthy shards keep their native slots (stability).
                for r in reports.iter().filter(|r| !r.exhausted()) {
                    prop_assert_eq!(table.slots[r.shard], r.shard);
                }
                // The degraded list is exactly the exhausted report set,
                // and disjoint from the healthy list.
                let exhausted: Vec<usize> = reports
                    .iter()
                    .filter(|r| r.exhausted())
                    .map(|r| r.shard)
                    .collect();
                prop_assert_eq!(&table.degraded, &exhausted);
                prop_assert!(table.degraded.iter().all(|s| !table.healthy.contains(s)));
            }
        }
    }
}
