//! Cross-engine wire-byte accounting (ISSUE 9 satellite): on an
//! identical instance, the simulator's measured transport leg, the
//! threaded router's measured leg, and the UDP backend's real-datagram
//! ledgers must all charge bytes with **one ruler** —
//! `sfs_wire::wire_cost`, the real encoded frame size, one full frame
//! per engine-level send regardless of shim verdicts or ARQ
//! retransmissions.
//!
//! The in-process engines are deterministic on a fixed-latency faultless
//! link, so their totals must be *equal*, not merely close. The UDP leg
//! replays the same protocol rounds over real sockets; its per-node
//! Status-frame ledgers sum to the merged trace's `wire_bytes` by
//! construction, so the pin worth having is against the *simulated*
//! total: same sends, same encoder, same bytes.

use sfs::{ClusterSpec, NetSpec};
use sfs_asys::ProcessId;
use std::time::Duration;

const NODE_BIN: &str = env!("CARGO_BIN_EXE_sfs-udp-node");

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// A crash-expressible detection instance every backend can run: one
/// scripted suspicion, no heartbeats (so no real-time-paced traffic on
/// the UDP leg), faultless link.
fn spec(seed: u64) -> ClusterSpec {
    ClusterSpec::new(4, 1)
        .seed(seed)
        .suspect(p(1), p(0), 10)
        .net(NetSpec::faultless())
}

#[test]
fn sim_and_threaded_charge_identical_wire_bytes() {
    for seed in [11u64, 23, 47] {
        let sim = spec(seed).try_run_net_measured().expect("sim leg");
        let (threaded, quiesced) = spec(seed)
            .try_run_threaded_net_measured(Duration::from_millis(500))
            .expect("threaded leg");
        assert!(quiesced, "seed {seed}: threaded run did not quiesce");
        let (a, b) = (sim.stats(), threaded.stats());
        assert!(a.wire_bytes > 0, "seed {seed}: sim charged nothing");
        assert_eq!(
            a.wire_bytes, b.wire_bytes,
            "seed {seed}: sim and threaded disagree on wire bytes \
             (sim sent {} msgs, threaded {})",
            a.messages_sent, b.messages_sent,
        );
        assert_eq!(a.messages_sent, b.messages_sent, "seed {seed}");
    }
}

#[test]
fn udp_ledgers_match_the_simulated_total() {
    // The UDP node charges each engine-level send its real datagram size
    // as it hits the socket; the simulator charges the same frame the
    // same `wire_cost` at the send seam. With no timing-paced traffic
    // the protocol rounds are the same, so the totals must agree
    // exactly — this is what makes E12's `udp B/run` column directly
    // comparable to its simulated `bytes/run` neighbour.
    std::env::set_var(sfs::udp::ENV_NODE_BIN, NODE_BIN);
    let seed = 11u64;
    let sim = spec(seed).try_run_net_measured().expect("sim leg");
    let run = spec(seed)
        .try_run_udp_full(Duration::from_secs(20))
        .expect("udp leg");
    assert!(run.quiesced, "udp run did not quiesce");
    let udp_total: u64 = run.node_status.iter().map(|s| s.wire_bytes).sum();
    assert_eq!(
        sim.stats().wire_bytes,
        udp_total,
        "simulated and real-wire byte ledgers diverged \
         (sim {} msgs, udp {} msgs)",
        sim.stats().messages_sent,
        run.trace.stats().messages_sent,
    );
    // And the merged trace carries the same ledger sum the obs registry
    // ingests from the per-node Status frames.
    assert_eq!(run.trace.stats().wire_bytes, udp_total);
}
