//! The protocol on the threaded runtime: same code, real concurrency.
//! The suspicion tests deliberately drive injections *live*
//! (`inject_external` racing the running router), exercising the
//! asynchronous-arrival path that wheel-scheduled fault plans bypass,
//! then use the quiescence handshake (`drain`) to know the cascade is
//! complete. The heartbeat test runs the other way: a scripted crash on
//! the timer wheel at an exact virtual tick, detected by
//! virtual-clock heartbeats inside a bounded horizon. Exact-tick
//! injection at the harness level is covered by `ClusterSpec::crash`
//! tests in `sfs-core`.

use sfs::{Control, HeartbeatConfig, NullApp, SfsConfig, SfsMsg, SfsProcess};
use sfs_asys::net::{Runtime, RuntimeConfig};
use sfs_asys::ProcessId;
use sfs_history::History;
use sfs_tlogic::{properties, Verdict};
use std::time::Duration;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn config_with_classifier<M: Clone + std::fmt::Debug + Send + 'static>() -> RuntimeConfig<SfsMsg<M>>
{
    RuntimeConfig {
        classify: Some(Box::new(|m: &SfsMsg<M>| !m.is_app())),
        ..RuntimeConfig::default()
    }
}

#[test]
fn injected_suspicion_detects_and_kills_on_real_threads() {
    let n = 4;
    let rt = Runtime::spawn(n, config_with_classifier::<()>(), |_| {
        let config = SfsConfig::new(n, 1).heartbeat(None);
        Box::new(SfsProcess::new(config, NullApp).expect("feasible"))
    });
    rt.inject_external(p(1), SfsMsg::Control(Control::Suspect { suspect: p(0) }));
    assert!(
        rt.drain(Duration::from_secs(10)),
        "a timerless cascade quiesces"
    );
    let trace = rt.shutdown();
    assert_eq!(trace.crashed(), vec![p(0)], "{}", trace.to_pretty_string());
    let detectors: std::collections::BTreeSet<_> =
        trace.detections().iter().map(|&(by, _)| by).collect();
    assert_eq!(detectors.len(), 3, "all survivors detected");
    let h = History::from_trace(&trace);
    assert_eq!(properties::check_sfs2b(&h).verdict, Verdict::Holds);
    assert_eq!(properties::check_sfs2c(&h).verdict, Verdict::Holds);
    assert_eq!(properties::check_sfs2d(&h).verdict, Verdict::Holds);
}

#[test]
fn virtual_clock_heartbeats_detect_a_scripted_crash() {
    let n = 4;
    let config = RuntimeConfig {
        faults: sfs_asys::FaultPlan::new().crash_at(p(2), sfs_asys::VirtualTime::from_ticks(150)),
        max_time: sfs_asys::VirtualTime::from_ticks(600),
        ..config_with_classifier::<()>()
    };
    let rt = Runtime::spawn(n, config, |_| {
        let config = SfsConfig::new(n, 1).heartbeat(Some(HeartbeatConfig {
            interval: 25,
            timeout: 120,
            check_every: 30,
        }));
        Box::new(SfsProcess::new(config, NullApp).expect("feasible"))
    });
    // Self-rearming heartbeats never quiesce: the drain reports the
    // stall at the 600-tick horizon, which is the maximal bounded run.
    assert!(!rt.drain(Duration::from_secs(30)));
    let trace = rt.shutdown();
    let victims: std::collections::BTreeSet<_> =
        trace.detections().iter().map(|&(_, of)| of).collect();
    assert!(
        victims.contains(&p(2)),
        "crash went undetected:\n{}",
        trace.to_pretty_string()
    );
    let h = History::from_trace(&trace);
    assert_eq!(properties::check_sfs2b(&h).verdict, Verdict::Holds);
}

#[test]
fn mutual_suspicion_on_threads_never_cycles() {
    for round in 0..3 {
        let n = 5;
        let rt = Runtime::spawn(n, config_with_classifier::<()>(), |_| {
            let config = SfsConfig::new(n, 2).heartbeat(None);
            Box::new(SfsProcess::new(config, NullApp).expect("feasible"))
        });
        rt.inject_external(p(0), SfsMsg::Control(Control::Suspect { suspect: p(1) }));
        rt.inject_external(p(1), SfsMsg::Control(Control::Suspect { suspect: p(0) }));
        assert!(
            rt.drain(Duration::from_secs(10)),
            "a timerless cascade quiesces"
        );
        let trace = rt.shutdown();
        let h = History::from_trace(&trace);
        assert_eq!(
            properties::check_sfs2b(&h).verdict,
            Verdict::Holds,
            "round {round}:\n{}",
            trace.to_pretty_string()
        );
        assert_eq!(properties::check_sfs2c(&h).verdict, Verdict::Holds);
    }
}
