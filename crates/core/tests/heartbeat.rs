//! Integration tests of the FS1 mechanism: heartbeat timeouts generating
//! both true and *organic* false suspicions (no injection — asynchrony
//! itself produces them), and the protocol absorbing both.

use sfs::{ClusterSpec, HeartbeatConfig, ModeSpec};
use sfs_asys::{FnLatency, ProcessId, TraceEventKind, VirtualTime};
use sfs_history::History;
use sfs_tlogic::{properties, Verdict};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

#[test]
fn real_crash_detected_within_timeout_plus_round() {
    let hb = HeartbeatConfig {
        interval: 10,
        timeout: 60,
        check_every: 10,
    };
    for seed in 0..10 {
        let trace = ClusterSpec::new(5, 2)
            .heartbeat(hb)
            .seed(seed)
            .crash(p(3), 100)
            .max_time(2_000)
            .run();
        let detect_times: Vec<u64> = trace
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::Failed { of, .. } if of == p(3) => Some(e.time.ticks()),
                _ => None,
            })
            .collect();
        assert_eq!(detect_times.len(), 4, "seed {seed}: all survivors detect");
        let last = *detect_times.iter().max().expect("nonempty");
        // Crash at 100; last heartbeat landed by ~110; timeout fires by
        // ~180; one protocol round (≤ ~3 hops × 10 ticks) on top. Anything
        // far beyond that indicates a liveness bug.
        assert!(last < 400, "seed {seed}: detection finished only at {last}");
    }
}

#[test]
fn latency_spike_causes_organic_false_detection_and_sfs_absorbs_it() {
    // A latency model that delays ALL of p0's outgoing messages hugely in
    // a window — long enough to outlast the heartbeat timeout. Everyone
    // else is fast. p0 gets organically (and wrongly) suspected.
    let hb = HeartbeatConfig {
        interval: 10,
        timeout: 50,
        check_every: 10,
    };
    let spike = FnLatency(
        |from: ProcessId, _to: ProcessId, now: VirtualTime, _rng: &mut _| {
            if from == ProcessId::new(0) && now.ticks() < 300 {
                500 // messages crawl
            } else {
                2
            }
        },
    );
    let trace = ClusterSpec::new(5, 2)
        .heartbeat(hb)
        .seed(4)
        .max_time(3_000)
        .run_with_latency(spike, |_| sfs::NullApp);
    // p0 was falsely suspected and therefore killed (sFS2a): the wrong
    // timeout became a true crash.
    assert!(
        trace.crashed().contains(&p(0)),
        "expected the slow process to be killed:\n{}",
        trace.to_pretty_string()
    );
    let h = History::from_trace(&trace);
    assert_eq!(properties::check_sfs2b(&h).verdict, Verdict::Holds);
    assert_eq!(properties::check_sfs2c(&h).verdict, Verdict::Holds);
    // Detections of p0 exist even though p0 never "really" failed.
    assert!(trace.detections().iter().any(|&(_, of)| of == p(0)));
}

#[test]
fn oracle_detector_never_produces_false_detections_under_the_same_spike() {
    let hb = HeartbeatConfig {
        interval: 10,
        timeout: 50,
        check_every: 10,
    };
    let spike = FnLatency(
        |from: ProcessId, _to: ProcessId, now: VirtualTime, _rng: &mut _| {
            if from == ProcessId::new(0) && now.ticks() < 300 {
                500
            } else {
                2
            }
        },
    );
    let trace = ClusterSpec::new(5, 2)
        .mode(ModeSpec::Oracle)
        .heartbeat(hb)
        .seed(4)
        .max_time(3_000)
        .run_with_latency(spike, |_| sfs::NullApp);
    assert!(
        trace.crashed().is_empty(),
        "oracle must not kill a slow process"
    );
    assert!(trace.detections().is_empty());
}

#[test]
fn heartbeat_systems_with_no_failures_stay_silent() {
    let hb = HeartbeatConfig {
        interval: 10,
        timeout: 100,
        check_every: 20,
    };
    for seed in 0..5 {
        let trace = ClusterSpec::new(4, 1)
            .heartbeat(hb)
            .seed(seed)
            .latency(1, 8) // comfortably under the timeout
            .max_time(2_000)
            .run();
        assert!(
            trace.detections().is_empty(),
            "seed {seed}: spurious detection"
        );
        assert!(trace.crashed().is_empty());
    }
}

#[test]
fn two_staggered_crashes_are_both_detected_by_all_survivors() {
    let hb = HeartbeatConfig {
        interval: 10,
        timeout: 60,
        check_every: 10,
    };
    for seed in 0..5 {
        let trace = ClusterSpec::new(6, 2)
            .heartbeat(hb)
            .seed(seed)
            .crash(p(1), 100)
            .crash(p(4), 400)
            .max_time(3_000)
            .run();
        let h = History::from_trace(&trace);
        // The run is truncated (heartbeats never stop), so FS1 may be
        // vacuous, but with this horizon it should be outright satisfied.
        assert_eq!(
            properties::check_fs1(&h, false).verdict,
            Verdict::Holds,
            "seed {seed}\n{}",
            trace.to_pretty_string()
        );
        assert_eq!(
            properties::check_fs2(&h).verdict,
            Verdict::Holds,
            "true crashes only"
        );
    }
}
