//! Property-based tests of the protocol itself: across random feasible
//! configurations, workloads, latencies, and seeds, every run satisfies
//! the simulated-fail-stop contract.

use proptest::prelude::*;
use sfs::quorum::{is_feasible, min_quorum};
use sfs::{ClusterSpec, QuorumPolicy};
use sfs_asys::ProcessId;
use sfs_history::{rearrange_to_fs, History};
use sfs_tlogic::{properties, PropertyReport};

/// A feasible (n, t) pair and a workload of at most t erroneous
/// suspicions with distinct victims and surviving suspectors.
#[derive(Debug, Clone)]
struct Workload {
    n: usize,
    t: usize,
    policy: QuorumPolicy,
    latency_max: u64,
    seed: u64,
    suspicions: Vec<(usize, usize, u64)>, // (by, victim, at)
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (2usize..=4, any::<u64>(), 1u64..40, prop::bool::ANY).prop_flat_map(
        |(t, seed, latency_max, wait_for_all)| {
            let n = t * t + 1 + (seed % 3) as usize;
            let policy = if wait_for_all {
                QuorumPolicy::WaitForAll
            } else {
                QuorumPolicy::FixedMinimum
            };
            let victims = 1..=t;
            (
                Just(n),
                Just(t),
                Just(policy),
                Just(latency_max),
                Just(seed),
                victims,
            )
                .prop_flat_map(|(n, t, policy, latency_max, seed, victims)| {
                    let susp = prop::collection::vec((t..n, 5u64..60), victims);
                    susp.prop_map(move |raw| Workload {
                        n,
                        t,
                        policy,
                        latency_max,
                        seed,
                        suspicions: raw
                            .into_iter()
                            .enumerate()
                            .map(|(v, (by, at))| (by, v, at))
                            .collect(),
                    })
                })
        },
    )
}

fn run_workload(w: &Workload) -> sfs_asys::Trace {
    let mut spec = ClusterSpec::new(w.n, w.t)
        .quorum(w.policy)
        .seed(w.seed)
        .latency(1, w.latency_max.max(1));
    for &(by, victim, at) in &w.suspicions {
        spec = spec.suspect(ProcessId::new(by), ProcessId::new(victim), at);
    }
    spec.run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The generated configurations are feasible by construction.
    #[test]
    fn workloads_are_feasible(w in arb_workload()) {
        prop_assert!(is_feasible(w.n, w.t), "n={}, t={}", w.n, w.t);
        prop_assert!(min_quorum(w.n, w.t) <= w.n - w.t);
    }

    /// Every run quiesces and satisfies the full sFS property suite.
    #[test]
    fn every_run_satisfies_the_sfs_suite(w in arb_workload()) {
        let trace = run_workload(&w);
        prop_assert!(trace.stop_reason().is_complete(), "{w:?} did not quiesce");
        let h = History::from_trace(&trace);
        prop_assert!(h.validate().is_ok());
        let reports = properties::check_sfs_suite(&h, true);
        for r in &reports {
            prop_assert!(r.is_ok(), "{w:?}: {r}\n{}", trace.to_pretty_string());
        }
        prop_assert!(reports.iter().all(PropertyReport::is_ok));
    }

    /// Theorem 5, end to end: every run has an isomorphic fail-stop run.
    #[test]
    fn every_run_is_fs_isomorphic(w in arb_workload()) {
        let trace = run_workload(&w);
        let h = History::from_trace(&trace);
        let report = rearrange_to_fs(&h);
        prop_assert!(report.is_ok(), "{w:?}: {:?}", report.err());
        let report = report.expect("checked");
        prop_assert!(report.history.is_fs_ordered());
        prop_assert!(report.history.isomorphic(&h));
    }

    /// Theorem 7 end to end: the quorums recorded at each detection
    /// always satisfy the t-wise Witness property.
    #[test]
    fn witness_property_always_holds(w in arb_workload()) {
        let trace = run_workload(&w);
        let report = properties::check_witness(&trace, w.t);
        prop_assert!(report.is_ok(), "{w:?}: {report}");
    }

    /// Exactly the suspected victims crash — the protocol never kills a
    /// process nobody suspected (no collateral damage).
    #[test]
    fn only_victims_crash(w in arb_workload()) {
        let trace = run_workload(&w);
        let victims: std::collections::BTreeSet<usize> =
            w.suspicions.iter().map(|&(_, v, _)| v).collect();
        for c in trace.crashed() {
            prop_assert!(victims.contains(&c.index()), "{w:?}: {c} crashed unsuspected");
        }
    }

    /// Detection is all-or-nothing per victim: at quiescence, either every
    /// survivor detected a victim, or none did (the round either completes
    /// system-wide or the suspicion never fired).
    #[test]
    fn survivor_agreement_per_victim(w in arb_workload()) {
        let trace = run_workload(&w);
        let crashed: std::collections::BTreeSet<ProcessId> =
            trace.crashed().into_iter().collect();
        let survivors: Vec<ProcessId> =
            ProcessId::all(w.n).filter(|p| !crashed.contains(p)).collect();
        for &victim in &crashed {
            let detectors: std::collections::BTreeSet<ProcessId> = trace
                .detections()
                .into_iter()
                .filter(|&(_, of)| of == victim)
                .map(|(by, _)| by)
                .collect();
            let surviving_detectors =
                survivors.iter().filter(|s| detectors.contains(s)).count();
            prop_assert!(
                surviving_detectors == survivors.len(),
                "{w:?}: victim {victim} detected by {surviving_detectors}/{} survivors",
                survivors.len()
            );
        }
    }
}
