//! End-to-end tests of the UDP backend: real OS processes, real
//! localhost datagrams, the full spawn/handshake/quiesce/assemble path.
//!
//! `CARGO_BIN_EXE_sfs-udp-node` guarantees the node binary is built and
//! points at it exactly; the tests pin it through `SFS_UDP_NODE_BIN` so
//! discovery never depends on the test harness's directory layout.

use sfs::{ClusterSpec, NetSpec, SpecError, UdpError};
use sfs_asys::{ProcessId, StopReason};
use sfs_history::History;
use sfs_tlogic::{properties, Verdict};
use std::time::Duration;

const NODE_BIN: &str = env!("CARGO_BIN_EXE_sfs-udp-node");

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn udp(spec: &ClusterSpec, settle: Duration) -> (sfs_asys::Trace, bool) {
    std::env::set_var(sfs::udp::ENV_NODE_BIN, NODE_BIN);
    spec.try_run_udp(settle).expect("UDP run failed")
}

#[test]
fn suspicion_detects_and_kills_over_real_sockets() {
    // The harness's flagship scenario, now across four OS processes:
    // p1's scripted suspicion must make the survivors detect p0 and the
    // protocol must kill p0 (sFS2a) — and the run must confirm
    // quiescence through the socket handshake.
    let spec = ClusterSpec::new(4, 1)
        .seed(11)
        .suspect(p(1), p(0), 10)
        .net(NetSpec::faultless());
    let (trace, quiesced) = udp(&spec, Duration::from_secs(20));
    assert!(quiesced, "{}", trace.to_pretty_string());
    assert_eq!(trace.stop_reason(), StopReason::Quiescent);
    assert_eq!(trace.crashed(), vec![p(0)], "{}", trace.to_pretty_string());
    assert!(trace.channels_drained(), "{}", trace.to_pretty_string());
    // Every datagram was charged to the sender's byte ledger.
    let stats = trace.stats();
    assert!(stats.wire_bytes > 0, "no bytes accounted: {stats:?}");
    assert!(stats.messages_sent > 0);
    // All three survivors detected p0.
    let detectors: std::collections::BTreeSet<_> = trace
        .detections()
        .into_iter()
        .map(|(by, of)| {
            assert_eq!(of, p(0));
            by
        })
        .collect();
    assert_eq!(detectors.len(), 3, "{}", trace.to_pretty_string());
    // The Lamport-merged trace is causally well-formed: the failed-before
    // order it induces is acyclic (sFS2b), the order-sensitive property
    // the conformance oracle leans on.
    let h = History::from_trace(&trace);
    assert_eq!(properties::check_sfs2b(&h).verdict, Verdict::Holds);
}

#[test]
fn arq_recovers_shim_loss_on_the_wire() {
    // 5% deterministic wire loss plus duplication: the ARQ layer must
    // still deliver the obituary round, and the ledger must balance
    // (shim-withheld copies are accounted, not lost).
    let spec = ClusterSpec::new(3, 1)
        .seed(23)
        .suspect(p(2), p(0), 5)
        .net(NetSpec::faultless().loss(0.05).duplicate(0.03));
    let (trace, quiesced) = udp(&spec, Duration::from_secs(20));
    assert!(quiesced, "{}", trace.to_pretty_string());
    assert_eq!(trace.crashed(), vec![p(0)], "{}", trace.to_pretty_string());
    assert!(trace.channels_drained(), "{}", trace.to_pretty_string());
}

#[test]
fn unsupported_shapes_are_rejected_before_spawning() {
    std::env::set_var(sfs::udp::ENV_NODE_BIN, NODE_BIN);
    let oracle = ClusterSpec::new(3, 1)
        .mode(sfs::ModeSpec::Oracle)
        .try_run_udp(Duration::from_millis(10))
        .unwrap_err();
    assert_eq!(oracle, SpecError::Udp(UdpError::OracleUnsupported));

    let partitioned = ClusterSpec::new(3, 1)
        .net(
            NetSpec::faultless().partitions(sfs_asys::PartitionSchedule::new().cut_links(
                sfs_asys::VirtualTime::from_ticks(1),
                sfs_asys::VirtualTime::from_ticks(10),
                &[(p(0), p(1))],
            )),
        )
        .try_run_udp(Duration::from_millis(10))
        .unwrap_err();
    assert_eq!(
        partitioned,
        SpecError::Udp(UdpError::Unsupported("partition schedules"))
    );
}
