//! Configuration for the detection protocol and its ablations.

use crate::quorum::{QuorumError, QuorumPolicy};
use sfs_asys::CrashRegistry;

/// Which failure-detection algorithm a process runs.
#[derive(Debug, Clone, Default)]
pub enum DetectionMode {
    /// The paper's §5 one-round protocol: broadcast the obituary, gather a
    /// quorum of matching obituaries, crash on your own obituary, gate
    /// application receives while a round is open. Satisfies FS1 and
    /// sFS2a–d.
    #[default]
    SfsOneRound,
    /// Baseline: declare `failed_i(j)` unilaterally on suspicion, telling
    /// no one. Violates sFS2a/2b/2d — the "what goes wrong" comparator.
    Unilateral,
    /// The cheaper model sketched in §6: broadcast the obituary, then
    /// detect immediately without waiting for a quorum. Satisfies sFS2a,
    /// sFS2c, sFS2d but **not** sFS2b (cyclic detections possible).
    CheapBroadcast,
    /// A perfect failure detector backed by the simulator's crash oracle.
    /// Impossible to implement in a real asynchronous system (Theorem 1);
    /// used to produce reference fail-stop runs.
    Oracle(CrashRegistry),
}

/// Heartbeat parameters implementing FS1's "mechanism provided by the
/// underlying system".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// Ticks between heartbeat broadcasts.
    pub interval: u64,
    /// Silence (in ticks) after which a peer is suspected.
    pub timeout: u64,
    /// Ticks between timeout scans.
    pub check_every: u64,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            interval: 20,
            timeout: 100,
            check_every: 25,
        }
    }
}

/// Full protocol configuration for one process (normally identical across
/// the system).
#[derive(Debug, Clone)]
pub struct SfsConfig {
    /// Number of processes `n`.
    pub n: usize,
    /// Failure bound `t` (crashes plus erroneous suspicions per run).
    pub t: usize,
    /// Detection algorithm.
    pub mode: DetectionMode,
    /// Vote threshold policy for [`DetectionMode::SfsOneRound`].
    pub quorum: QuorumPolicy,
    /// Heartbeats; `None` disables the built-in FS1 mechanism (suspicions
    /// then only arise from injected `Control::Suspect` stimuli or
    /// received obituaries).
    pub heartbeat: Option<HeartbeatConfig>,
    /// Ablation: gate application receives while a detection round is open
    /// (the sFS2d mechanism). Default `true`; switching it off lets E1
    /// demonstrate sFS2d violations.
    pub gate_app_messages: bool,
    /// Ablation: crash upon receiving one's own obituary (the sFS2a/2c
    /// mechanism). Default `true`.
    pub crash_on_own_obituary: bool,
}

impl SfsConfig {
    /// A standard configuration for `n` processes tolerating `t` failures
    /// with the one-round protocol and default heartbeats.
    pub fn new(n: usize, t: usize) -> Self {
        SfsConfig {
            n,
            t,
            mode: DetectionMode::SfsOneRound,
            quorum: QuorumPolicy::FixedMinimum,
            heartbeat: Some(HeartbeatConfig::default()),
            gate_app_messages: true,
            crash_on_own_obituary: true,
        }
    }

    /// Sets the detection mode.
    pub fn mode(mut self, mode: DetectionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the quorum policy.
    pub fn quorum(mut self, quorum: QuorumPolicy) -> Self {
        self.quorum = quorum;
        self
    }

    /// Sets or disables heartbeats.
    pub fn heartbeat(mut self, hb: Option<HeartbeatConfig>) -> Self {
        self.heartbeat = hb;
        self
    }

    /// Ablation switch for sFS2d receive gating.
    pub fn gate_app_messages(mut self, on: bool) -> Self {
        self.gate_app_messages = on;
        self
    }

    /// Ablation switch for crash-on-own-obituary.
    pub fn crash_on_own_obituary(mut self, on: bool) -> Self {
        self.crash_on_own_obituary = on;
        self
    }

    /// Validates the configuration against the paper's bounds.
    ///
    /// # Errors
    ///
    /// Propagates [`QuorumError`] when the quorum policy cannot make
    /// progress for `(n, t)` under [`DetectionMode::SfsOneRound`].
    pub fn validated(self) -> Result<Self, QuorumError> {
        if self.n == 0 {
            return Err(QuorumError::NoProcesses);
        }
        if matches!(self.mode, DetectionMode::SfsOneRound) {
            self.quorum.validated(self.n, self.t)?;
        }
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates_when_feasible() {
        assert!(SfsConfig::new(10, 3).validated().is_ok());
        assert!(SfsConfig::new(9, 3).validated().is_err());
        // WaitForAll tolerates t up to n-1.
        assert!(SfsConfig::new(9, 3)
            .quorum(QuorumPolicy::WaitForAll)
            .validated()
            .is_ok());
    }

    #[test]
    fn non_sfs_modes_skip_quorum_validation() {
        let cfg = SfsConfig::new(9, 3).mode(DetectionMode::Unilateral);
        assert!(cfg.validated().is_ok());
        let cfg = SfsConfig::new(9, 3).mode(DetectionMode::CheapBroadcast);
        assert!(cfg.validated().is_ok());
    }

    #[test]
    fn builder_setters_apply() {
        let cfg = SfsConfig::new(5, 2)
            .gate_app_messages(false)
            .crash_on_own_obituary(false)
            .heartbeat(None);
        assert!(!cfg.gate_app_messages);
        assert!(!cfg.crash_on_own_obituary);
        assert!(cfg.heartbeat.is_none());
    }
}
