//! Quorum arithmetic from §4 of the paper (Theorems 6–7, Corollary 8).
//!
//! For one-round detection protocols, the Witness property W — all
//! detection quorums share a common member — is necessary for sFS2b
//! (Theorem 6). With fixed, equal-size quorums, W against `t` possible
//! failures forces each quorum to be **strictly greater than
//! `n(t-1)/t`** (Theorem 7), and protocol progress then requires
//! **`n > t²`** (Corollary 8).

use std::fmt;

/// Error returned for parameter combinations the theory rules out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuorumError {
    /// `n` must be at least 1.
    NoProcesses,
    /// With a fixed quorum, progress requires `n > t²` (Corollary 8); more
    /// precisely `n - t` live processes must be able to form a quorum.
    Infeasible {
        /// System size.
        n: usize,
        /// Failure bound.
        t: usize,
        /// The quorum size that could not be met by the survivors.
        required: usize,
    },
}

impl fmt::Display for QuorumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            QuorumError::NoProcesses => write!(f, "a system needs at least one process"),
            QuorumError::Infeasible { n, t, required } => write!(
                f,
                "n={n}, t={t} cannot make progress: quorum {required} exceeds the {} \
                 guaranteed survivors (corollary 8 requires n > t²)",
                n - t
            ),
        }
    }
}

impl std::error::Error for QuorumError {}

/// The minimum fixed quorum size tolerating `t` failures among `n`
/// processes: the least integer **strictly greater** than `n(t-1)/t`
/// (Theorem 7). The count includes the detecting process itself.
///
/// For `t = 0` (no failures possible) and `t = 1` the bound degenerates to
/// 1: a single "vote" (the detector's own) suffices, because a
/// failed-before cycle needs at least two failures.
///
/// # Examples
///
/// ```
/// use sfs::quorum::min_quorum;
///
/// assert_eq!(min_quorum(10, 2), 6);  // > 10·(1/2) = 5
/// assert_eq!(min_quorum(10, 3), 7);  // > 10·(2/3) = 6.67
/// assert_eq!(min_quorum(9, 3), 7);   // > 9·(2/3) = 6 exactly → 7
/// assert_eq!(min_quorum(10, 1), 1);  // > 0
/// ```
pub fn min_quorum(n: usize, t: usize) -> usize {
    if t <= 1 {
        return 1;
    }
    n * (t - 1) / t + 1
}

/// Whether a fixed-quorum deployment of size `n` tolerating `t` failures
/// can always make progress: at least [`min_quorum`] processes survive any
/// `t` failures.
///
/// # Examples
///
/// ```
/// use sfs::quorum::is_feasible;
///
/// assert!(is_feasible(10, 3));   // 10 > 9
/// assert!(!is_feasible(9, 3));   // 9 = 3², not > 3²
/// ```
pub fn is_feasible(n: usize, t: usize) -> bool {
    n >= 1 && n - t.min(n) >= min_quorum(n, t)
}

/// The largest `t` for which an `n`-process fixed-quorum deployment is
/// feasible; by Corollary 8 this is `⌈√n⌉ - 1`-ish, computed exactly
/// against [`is_feasible`].
///
/// # Examples
///
/// ```
/// use sfs::quorum::max_tolerable;
///
/// assert_eq!(max_tolerable(10), 3);  // 10 > 3²
/// assert_eq!(max_tolerable(9), 2);   // 9 = 3² is infeasible for t=3
/// assert_eq!(max_tolerable(2), 1);
/// ```
pub fn max_tolerable(n: usize) -> usize {
    let mut t = 0;
    while t < n && is_feasible(n, t + 1) {
        t += 1;
    }
    t
}

/// How many supporting "j failed" votes (including the detector's own) a
/// detection must gather before `failed_i(j)` may execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QuorumPolicy {
    /// Wait for a vote from **every** process not itself suspected (§4:
    /// "require a process to wait for responses from every other process,
    /// except for those that are suspected to have failed"). Only needs
    /// `t < n`, but each detection waits for many messages.
    WaitForAll,
    /// Wait for a fixed quorum of `⌊n(t-1)/t⌋ + 1` votes (Theorem 7's
    /// minimum). Fast, but requires `n > t²` (Corollary 8).
    #[default]
    FixedMinimum,
    /// Wait for an explicit vote count, for experiments *below* the
    /// Theorem 7 bound (the E2 experiment shows such quorums admit
    /// failed-before cycles).
    FixedCount(usize),
}

impl QuorumPolicy {
    /// Validates the policy against `(n, t)` and returns it.
    ///
    /// # Errors
    ///
    /// [`QuorumError::NoProcesses`] if `n == 0`;
    /// [`QuorumError::Infeasible`] for a fixed policy whose quorum cannot
    /// survive `t` failures.
    pub fn validated(self, n: usize, t: usize) -> Result<Self, QuorumError> {
        if n == 0 {
            return Err(QuorumError::NoProcesses);
        }
        let required = match self {
            QuorumPolicy::WaitForAll => {
                // Progress needs at least one process outside any failure
                // set, i.e. t < n.
                return if t < n {
                    Ok(self)
                } else {
                    Err(QuorumError::Infeasible { n, t, required: 1 })
                };
            }
            QuorumPolicy::FixedMinimum => min_quorum(n, t),
            QuorumPolicy::FixedCount(q) => q,
        };
        if n - t.min(n) >= required {
            Ok(self)
        } else {
            Err(QuorumError::Infeasible { n, t, required })
        }
    }

    /// The vote threshold for a fixed policy, or `None` for
    /// [`QuorumPolicy::WaitForAll`] (whose requirement depends on the
    /// detector's current suspicion set).
    pub fn fixed_threshold(self, n: usize, t: usize) -> Option<usize> {
        match self {
            QuorumPolicy::WaitForAll => None,
            QuorumPolicy::FixedMinimum => Some(min_quorum(n, t)),
            QuorumPolicy::FixedCount(q) => Some(q),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_quorum_is_strictly_greater_than_bound() {
        for n in 1..=64 {
            for t in 2..=8 {
                let q = min_quorum(n, t);
                // q > n(t-1)/t  ⇔  q·t > n·(t-1)
                assert!(q * t > n * (t - 1), "q={q} not > {n}({t}-1)/{t}");
                // Minimality: q-1 fails the bound.
                assert!(
                    (q - 1) * t <= n * (t - 1),
                    "q={q} not minimal for n={n}, t={t}"
                );
            }
        }
    }

    #[test]
    fn corollary8_frontier_is_t_squared() {
        // Feasibility with the minimum quorum ⇔ n > t².
        for t in 1..=8 {
            for n in t.max(1)..=(t * t + 10) {
                let feasible = is_feasible(n, t);
                assert_eq!(
                    feasible,
                    n > t * t,
                    "n={n}, t={t}: is_feasible={feasible} but n>t² is {}",
                    n > t * t
                );
            }
        }
    }

    #[test]
    fn max_tolerable_matches_frontier() {
        assert_eq!(max_tolerable(1), 0);
        assert_eq!(max_tolerable(2), 1);
        assert_eq!(max_tolerable(4), 1);
        assert_eq!(max_tolerable(5), 2);
        assert_eq!(max_tolerable(9), 2);
        assert_eq!(max_tolerable(10), 3);
        assert_eq!(max_tolerable(16), 3);
        assert_eq!(max_tolerable(17), 4);
        for n in 1..200 {
            let t = max_tolerable(n);
            assert!(n > t * t);
            assert!(n <= (t + 1) * (t + 1));
        }
    }

    #[test]
    fn policy_validation() {
        assert!(QuorumPolicy::FixedMinimum.validated(10, 3).is_ok());
        assert_eq!(
            QuorumPolicy::FixedMinimum.validated(9, 3),
            Err(QuorumError::Infeasible {
                n: 9,
                t: 3,
                required: 7
            })
        );
        assert!(QuorumPolicy::WaitForAll.validated(9, 3).is_ok());
        assert!(QuorumPolicy::WaitForAll.validated(9, 8).is_ok());
        assert_eq!(
            QuorumPolicy::WaitForAll.validated(9, 9),
            Err(QuorumError::Infeasible {
                n: 9,
                t: 9,
                required: 1
            })
        );
        assert!(QuorumPolicy::FixedCount(3).validated(10, 3).is_ok());
        assert!(QuorumPolicy::FixedCount(8).validated(10, 3).is_err());
        assert_eq!(
            QuorumPolicy::FixedMinimum.validated(0, 0),
            Err(QuorumError::NoProcesses)
        );
    }

    #[test]
    fn fixed_threshold_values() {
        assert_eq!(QuorumPolicy::WaitForAll.fixed_threshold(10, 3), None);
        assert_eq!(QuorumPolicy::FixedMinimum.fixed_threshold(10, 3), Some(7));
        assert_eq!(QuorumPolicy::FixedCount(4).fixed_threshold(10, 3), Some(4));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = QuorumError::Infeasible {
            n: 9,
            t: 3,
            required: 7,
        };
        let s = e.to_string();
        assert!(s.contains("n=9"));
        assert!(s.contains("n > t²"));
    }
}
