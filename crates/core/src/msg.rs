//! The wire alphabet of the simulated-fail-stop protocol.

use serde::{Deserialize, Serialize};
use sfs_asys::ProcessId;
use std::fmt;

/// A message of the sFS protocol, generic over the application payload
/// type `M` it transports.
///
/// In the paper's §5 protocol, `SUSP_{i,j}` and `ACK.SUSP_{i,j}` are the
/// *same* message, the obituary `"j failed"`; [`SfsMsg::Susp`] is that
/// message. Heartbeats implement the FS1 mechanism the paper assumes from
/// the underlying system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SfsMsg<M> {
    /// Periodic liveness beacon (the FS1 timeout mechanism).
    Heartbeat,
    /// The obituary `"suspect failed"` — both the suspicion announcement
    /// and its acknowledgement.
    Susp {
        /// The process declared failed.
        suspect: ProcessId,
    },
    /// An application-level message, subject to sFS2d receive gating.
    App {
        /// The wrapped application payload.
        payload: M,
        /// The sender's detected-failed set at send time, ascending. The
        /// receiver defers the *receive event* until it has detected every
        /// process listed here — the exact obligation of sFS2d. FIFO
        /// guarantees the corresponding obituaries travel ahead of this
        /// message on the same channel, so the deferral always resolves.
        knows: Vec<ProcessId>,
    },
    /// Environment control, delivered via injection (never sent on a
    /// channel by the protocol itself).
    Control(Control),
}

/// Environment stimuli for fault-injection experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Control {
    /// Force the receiving process to suspect `suspect`, modelling the
    /// paper's "process i suspects the failure of process j (e.g., due to
    /// a timeout at a lower level)".
    Suspect {
        /// The process to suspect.
        suspect: ProcessId,
    },
}

impl<M> SfsMsg<M> {
    /// Whether this is an application payload (the class gated by sFS2d).
    pub fn is_app(&self) -> bool {
        matches!(self, SfsMsg::App { .. })
    }
}

impl<M: fmt::Debug> fmt::Display for SfsMsg<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SfsMsg::Heartbeat => write!(f, "heartbeat"),
            SfsMsg::Susp { suspect } => write!(f, "\"{suspect} failed\""),
            SfsMsg::App { payload, knows } => {
                write!(f, "app({payload:?}")?;
                if !knows.is_empty() {
                    write!(f, "; knows")?;
                    for k in knows {
                        write!(f, " {k}")?;
                    }
                }
                write!(f, ")")
            }
            SfsMsg::Control(Control::Suspect { suspect }) => write!(f, "ctl-suspect({suspect})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_app_classifies() {
        assert!(SfsMsg::App {
            payload: 7u32,
            knows: vec![]
        }
        .is_app());
        assert!(!SfsMsg::<u32>::Heartbeat.is_app());
        assert!(!SfsMsg::<u32>::Susp {
            suspect: ProcessId::new(1)
        }
        .is_app());
    }

    #[test]
    fn display_matches_paper_phrasing() {
        let m: SfsMsg<u32> = SfsMsg::Susp {
            suspect: ProcessId::new(2),
        };
        assert_eq!(m.to_string(), "\"p2 failed\"");
    }
}
