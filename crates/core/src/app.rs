//! The fail-stop programming interface for applications.
//!
//! An [`Application`] is written against the fail-stop abstraction: it
//! sends and receives its own messages, and it is told — via
//! [`Application::on_failure`] — when a peer has failed. Under the sFS
//! protocol the application cannot tell that it is *not* running on true
//! fail-stop (Theorem 5); that is the entire point of the paper.

use crate::msg::SfsMsg;
use sfs_asys::{Context, Note, ProcessId, TimerId, VirtualTime};
use std::collections::{BTreeSet, HashSet};
use std::fmt;

/// Capability handle passed to application callbacks.
///
/// Wraps the raw engine [`Context`] so that applications can only perform
/// fail-stop-safe operations: application sends (which the protocol
/// transports and gates), timers, annotations, and queries of the local
/// failure view.
pub struct AppApi<'a, 'b, M> {
    ctx: &'a mut Context<'b, SfsMsg<M>>,
    failed: &'a BTreeSet<ProcessId>,
    app_timers: &'a mut HashSet<TimerId>,
}

impl<M> fmt::Debug for AppApi<'_, '_, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AppApi")
            .field("id", &self.ctx.id())
            .finish_non_exhaustive()
    }
}

impl<'a, 'b, M: Clone + fmt::Debug> AppApi<'a, 'b, M> {
    pub(crate) fn new(
        ctx: &'a mut Context<'b, SfsMsg<M>>,
        failed: &'a BTreeSet<ProcessId>,
        app_timers: &'a mut HashSet<TimerId>,
    ) -> Self {
        AppApi {
            ctx,
            failed,
            app_timers,
        }
    }

    /// This process's identity.
    pub fn id(&self) -> ProcessId {
        self.ctx.id()
    }

    /// Number of processes in the system.
    pub fn n(&self) -> usize {
        self.ctx.n()
    }

    /// Current virtual time (for timeouts only; carries no synchrony).
    pub fn now(&self) -> VirtualTime {
        self.ctx.now()
    }

    /// Sends an application message to `to`. The protocol tags the
    /// message with this process's current detected-failed set so the
    /// receiver can honour sFS2d.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        let knows: Vec<ProcessId> = self.failed.iter().copied().collect();
        self.ctx.send(
            to,
            SfsMsg::App {
                payload: msg,
                knows,
            },
        );
    }

    /// Sends an application message to every other process.
    pub fn broadcast(&mut self, msg: M) {
        let knows: Vec<ProcessId> = self.failed.iter().copied().collect();
        self.ctx.broadcast(
            SfsMsg::App {
                payload: msg,
                knows,
            },
            false,
        );
    }

    /// Arms an application timer; the id is reported back via
    /// [`Application::on_timer`].
    pub fn set_timer(&mut self, delay: u64) -> TimerId {
        let id = self.ctx.set_timer(delay);
        self.app_timers.insert(id);
        id
    }

    /// Cancels an application timer.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.app_timers.remove(&id);
        self.ctx.cancel_timer(id);
    }

    /// Attaches an annotation to the trace (e.g. a leadership claim).
    pub fn annotate(&mut self, note: Note) {
        self.ctx.annotate(note);
    }

    /// Whether this process has detected the failure of `j`
    /// (the paper's `failed_self(j)` variable).
    pub fn is_failed(&self, j: ProcessId) -> bool {
        self.failed.contains(&j)
    }

    /// The processes this process has detected as failed, ascending.
    pub fn failed(&self) -> Vec<ProcessId> {
        self.failed.iter().copied().collect()
    }

    /// The processes *not* locally detected as failed (including self),
    /// ascending. Under fail-stop semantics this is the live membership
    /// as far as this process can ever know.
    pub fn alive(&self) -> Vec<ProcessId> {
        ProcessId::all(self.n())
            .filter(|p| !self.failed.contains(p))
            .collect()
    }

    /// Deterministic per-run randomness.
    pub fn rng(&mut self) -> &mut impl rand::RngCore {
        self.ctx.rng()
    }
}

/// A deterministic application automaton running on top of the fail-stop
/// abstraction.
///
/// `Msg` is the application's own message alphabet; the protocol wraps it
/// on the wire. All callbacks receive an [`AppApi`] capability handle.
pub trait Application: 'static {
    /// The application's message type.
    type Msg: Clone + fmt::Debug + 'static;

    /// Invoked once at startup.
    fn on_start(&mut self, api: &mut AppApi<'_, '_, Self::Msg>) {
        let _ = api;
    }

    /// Invoked on receipt of an application message.
    fn on_message(&mut self, api: &mut AppApi<'_, '_, Self::Msg>, from: ProcessId, msg: Self::Msg);

    /// Invoked when the detector declares `failed` to have crashed. Under
    /// sFS this may be an erroneous detection, but the application can
    /// never find out (the process will crash before contradicting it).
    fn on_failure(&mut self, api: &mut AppApi<'_, '_, Self::Msg>, failed: ProcessId) {
        let _ = (api, failed);
    }

    /// Invoked when a timer armed via [`AppApi::set_timer`] fires.
    fn on_timer(&mut self, api: &mut AppApi<'_, '_, Self::Msg>, timer: TimerId) {
        let _ = (api, timer);
    }
}

/// The trivial application: no messages, no reactions. Used for
/// pure-detector experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullApp;

impl Application for NullApp {
    type Msg = ();

    fn on_message(&mut self, _: &mut AppApi<'_, '_, ()>, _: ProcessId, _: ()) {}
}
