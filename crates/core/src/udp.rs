//! The UDP backend leg of [`ClusterSpec`]: the §5 protocol under the
//! ARQ transport, with every process in its **own OS process** and every
//! frame a **real localhost datagram**.
//!
//! This module is the glue between the protocol stack and the generic
//! `sfs-wire` backend: it gives the sFS wire alphabet a byte encoding
//! ([`WireCodec`] for [`SfsMsg`] and [`Control`]), packages everything a
//! spawned node needs into a [`UdpNodeSpec`] blob passed through the
//! environment, and exposes [`ClusterSpec::try_run_udp`] — the eighth
//! execution backend, producing the same [`Trace`] type as all the
//! others so the conformance oracle can compare it against the simulator
//! envelope.
//!
//! Two [`ClusterSpec`] features cannot cross a process boundary and are
//! rejected with typed errors rather than silently ignored: oracle
//! detection (the [`CrashRegistry`](sfs_asys::CrashRegistry) is shared
//! memory) and partition/storm schedules (the wire shim models i.i.d.
//! loss and duplication only).

use crate::app::NullApp;
use crate::config::DetectionMode;
use crate::harness::{ClusterSpec, ModeSpec, SpecError};
use crate::msg::{Control, SfsMsg};
use crate::protocol::SfsProcess;
use crate::quorum::QuorumPolicy;
use sfs_asys::{ProcessId, Trace};
use sfs_transport::{AdaptiveConfig, ArqConfig, ProbeConfig, Reliable, TransportMsg};
use sfs_wire::{
    run_cluster, run_node, ClusterConfig, NodeConfig, NodeFault, ShimConfig, WireCodec, WireError,
    WireReader, WireWriter, ENV_CTRL_ADDR,
};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;
use std::{env, fmt};

/// Environment variable carrying the hex-encoded [`UdpNodeSpec`] blob
/// from the parent to a spawned node.
pub const ENV_NODE_SPEC: &str = "SFS_UDP_NODE_SPEC";

/// Environment variable overriding the node-binary discovery: when set,
/// [`udp_node_binary`] uses this path verbatim instead of searching next
/// to the current executable.
pub const ENV_NODE_BIN: &str = "SFS_UDP_NODE_BIN";

/// Wall-clock length of one virtual tick on the UDP backend, in
/// microseconds. One tick is one millisecond: scripted fault ticks and
/// protocol timer ticks keep their relative spacing while the run stays
/// fast enough for CI.
pub const UDP_TICK_MICROS: u64 = 1_000;

/// Why a [`ClusterSpec`] cannot run (or failed to run) on the UDP
/// backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UdpError {
    /// [`ModeSpec::Oracle`] needs the in-process crash registry, which
    /// cannot be shared across OS processes (that unimplementability is
    /// Theorem 1's point).
    OracleUnsupported,
    /// A spec feature the wire backend does not model (named).
    Unsupported(&'static str),
    /// The `sfs-udp-node` binary was not found (build it with
    /// `cargo build --bin sfs-udp-node`, or point [`ENV_NODE_BIN`] at
    /// it).
    NodeBinary(String),
    /// A socket or spawn error during the run.
    Io(String),
}

impl fmt::Display for UdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UdpError::OracleUnsupported => write!(
                f,
                "oracle detection cannot cross a process boundary; use an endogenous detector"
            ),
            UdpError::Unsupported(what) => {
                write!(f, "the UDP backend does not model {what}")
            }
            UdpError::NodeBinary(why) => write!(f, "sfs-udp-node binary unavailable: {why}"),
            UdpError::Io(why) => write!(f, "UDP cluster run failed: {why}"),
        }
    }
}

impl std::error::Error for UdpError {}

// ---- the sFS wire alphabet's byte encoding ------------------------------

// Tags of the `Control` / `SfsMsg` encodings; frozen parts of the wire
// format (bump `sfs_wire::frame::VERSION` to change them).
const TAG_CTL_SUSPECT: u8 = 0;
const TAG_SFS_HEARTBEAT: u8 = 0;
const TAG_SFS_SUSP: u8 = 1;
const TAG_SFS_APP: u8 = 2;
const TAG_SFS_CONTROL: u8 = 3;

impl WireCodec for Control {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            Control::Suspect { suspect } => {
                w.u8(TAG_CTL_SUSPECT);
                suspect.encode(w);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            TAG_CTL_SUSPECT => Ok(Control::Suspect {
                suspect: ProcessId::decode(r)?,
            }),
            tag => Err(WireError::UnknownTag {
                what: "Control",
                tag,
            }),
        }
    }
}

impl<M: WireCodec> WireCodec for SfsMsg<M> {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            SfsMsg::Heartbeat => w.u8(TAG_SFS_HEARTBEAT),
            SfsMsg::Susp { suspect } => {
                w.u8(TAG_SFS_SUSP);
                suspect.encode(w);
            }
            SfsMsg::App { payload, knows } => {
                w.u8(TAG_SFS_APP);
                payload.encode(w);
                knows.encode(w);
            }
            SfsMsg::Control(c) => {
                w.u8(TAG_SFS_CONTROL);
                c.encode(w);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            TAG_SFS_HEARTBEAT => Ok(SfsMsg::Heartbeat),
            TAG_SFS_SUSP => Ok(SfsMsg::Susp {
                suspect: ProcessId::decode(r)?,
            }),
            TAG_SFS_APP => Ok(SfsMsg::App {
                payload: M::decode(r)?,
                knows: Vec::decode(r)?,
            }),
            TAG_SFS_CONTROL => Ok(SfsMsg::Control(Control::decode(r)?)),
            tag => Err(WireError::UnknownTag {
                what: "SfsMsg",
                tag,
            }),
        }
    }
}

// ---- the node-spawn blob ------------------------------------------------

/// Everything one spawned `sfs-udp-node` process needs to reconstruct
/// its protocol stack: the generic wire-backend [`NodeConfig`] plus the
/// sFS shape ([`ClusterSpec`] mode/quorum/heartbeat/ablations) and the
/// transport parameters ([`ArqConfig`], probe, adaptive).
///
/// Travels parent → child as a hex string in [`ENV_NODE_SPEC`]. Oracle
/// mode is unrepresentable on purpose: [`ClusterSpec::try_run_udp`]
/// rejects it before any blob is built, and the decoder refuses its tag.
#[derive(Debug, Clone, PartialEq)]
pub struct UdpNodeSpec {
    /// The generic wire-backend knobs (identity, seed, tick, shim).
    pub node: NodeConfig,
    /// Failure bound `t`.
    pub t: u64,
    /// Detector selection (never [`ModeSpec::Oracle`]).
    pub mode: ModeSpec,
    /// Quorum policy for the one-round protocol.
    pub quorum: QuorumPolicy,
    /// Heartbeats, as `(interval, timeout, check_every)` ticks.
    pub heartbeat: Option<(u64, u64, u64)>,
    /// sFS2d receive gating (ablation switch).
    pub gate_app_messages: bool,
    /// Crash-on-own-obituary (ablation switch).
    pub crash_on_own_obituary: bool,
    /// ARQ parameters for the transport wrapper.
    pub arq: ArqConfig,
    /// Transport-level heartbeat probing (endogenous suspicions).
    pub probe: Option<ProbeConfig>,
    /// Adaptive transport timeouts.
    pub adaptive: Option<AdaptiveConfig>,
}

const TAG_MODE_SFS: u8 = 0;
const TAG_MODE_UNILATERAL: u8 = 1;
const TAG_MODE_CHEAP: u8 = 2;

const TAG_QUORUM_ALL: u8 = 0;
const TAG_QUORUM_MINIMUM: u8 = 1;
const TAG_QUORUM_COUNT: u8 = 2;

impl WireCodec for UdpNodeSpec {
    fn encode(&self, w: &mut WireWriter) {
        self.node.encode(w);
        w.u64(self.t);
        w.u8(match self.mode {
            ModeSpec::SfsOneRound => TAG_MODE_SFS,
            ModeSpec::Unilateral => TAG_MODE_UNILATERAL,
            ModeSpec::CheapBroadcast => TAG_MODE_CHEAP,
            // try_run_udp rejects oracle mode before building any blob;
            // encode a tag the decoder refuses so a bypassing caller
            // still fails closed instead of silently degrading.
            ModeSpec::Oracle => u8::MAX,
        });
        match self.quorum {
            QuorumPolicy::WaitForAll => w.u8(TAG_QUORUM_ALL),
            QuorumPolicy::FixedMinimum => w.u8(TAG_QUORUM_MINIMUM),
            QuorumPolicy::FixedCount(c) => {
                w.u8(TAG_QUORUM_COUNT);
                w.u64(c as u64);
            }
        }
        self.heartbeat.map(|(i, to, ck)| (i, (to, ck))).encode(w);
        w.bool(self.gate_app_messages);
        w.bool(self.crash_on_own_obituary);
        w.u64(self.arq.window as u64);
        w.u64(self.arq.retransmit_after);
        self.probe
            .map(|p| (p.interval, (p.timeout, p.check_every)))
            .encode(w);
        self.adaptive
            .map(|a| ((a.min_rto, a.max_rto), (a.jitter, a.max_suspicion)))
            .encode(w);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let node = NodeConfig::decode(r)?;
        let t = r.u64()?;
        let mode = match r.u8()? {
            TAG_MODE_SFS => ModeSpec::SfsOneRound,
            TAG_MODE_UNILATERAL => ModeSpec::Unilateral,
            TAG_MODE_CHEAP => ModeSpec::CheapBroadcast,
            tag => {
                return Err(WireError::UnknownTag {
                    what: "ModeSpec",
                    tag,
                })
            }
        };
        let quorum = match r.u8()? {
            TAG_QUORUM_ALL => QuorumPolicy::WaitForAll,
            TAG_QUORUM_MINIMUM => QuorumPolicy::FixedMinimum,
            TAG_QUORUM_COUNT => {
                let c = usize::try_from(r.u64()?).map_err(|_| WireError::BadValue {
                    what: "quorum count",
                })?;
                QuorumPolicy::FixedCount(c)
            }
            tag => {
                return Err(WireError::UnknownTag {
                    what: "QuorumPolicy",
                    tag,
                })
            }
        };
        let heartbeat = Option::<(u64, (u64, u64))>::decode(r)?;
        let gate_app_messages = r.bool()?;
        let crash_on_own_obituary = r.bool()?;
        let window =
            usize::try_from(r.u64()?).map_err(|_| WireError::BadValue { what: "arq window" })?;
        let retransmit_after = r.u64()?;
        let probe = Option::<(u64, (u64, u64))>::decode(r)?;
        let adaptive = Option::<((u64, u64), (u64, u64))>::decode(r)?;
        Ok(UdpNodeSpec {
            node,
            t,
            mode,
            quorum,
            heartbeat: heartbeat.map(|(i, (to, ck))| (i, to, ck)),
            gate_app_messages,
            crash_on_own_obituary,
            arq: ArqConfig {
                window,
                retransmit_after,
            },
            probe: probe.map(|(interval, (timeout, check_every))| ProbeConfig {
                interval,
                timeout,
                check_every,
            }),
            adaptive: adaptive.map(|((min_rto, max_rto), (jitter, max_suspicion))| {
                AdaptiveConfig {
                    min_rto,
                    max_rto,
                    jitter,
                    max_suspicion,
                }
            }),
        })
    }
}

// The heartbeat triple travels as (interval, (timeout, check_every)) to
// reuse the tuple codec; this impl-free detour keeps WireCodec out of
// the public HeartbeatConfig API.
impl UdpNodeSpec {
    /// The transport-wrapped protocol process this blob describes — the
    /// node-side mirror of the harness's `wrap_process`, specialised to
    /// [`NullApp`] (the UDP backend is a detector-conformance leg, not
    /// an application platform).
    ///
    /// # Errors
    ///
    /// A human-readable message when the shape is infeasible (quorum
    /// arithmetic) — the parent validated it, so this only fires on a
    /// corrupted blob.
    pub fn build_process(&self) -> Result<Reliable<SfsProcess<NullApp>, SfsMsg<()>>, String> {
        let mode = match self.mode {
            ModeSpec::SfsOneRound => DetectionMode::SfsOneRound,
            ModeSpec::Unilateral => DetectionMode::Unilateral,
            ModeSpec::CheapBroadcast => DetectionMode::CheapBroadcast,
            ModeSpec::Oracle => return Err(UdpError::OracleUnsupported.to_string()),
        };
        let heartbeat =
            self.heartbeat.map(
                |(interval, timeout, check_every)| crate::config::HeartbeatConfig {
                    interval,
                    timeout,
                    check_every,
                },
            );
        let config = crate::config::SfsConfig::new(self.node.n as usize, self.t as usize)
            .mode(mode)
            .quorum(self.quorum)
            .heartbeat(heartbeat)
            .gate_app_messages(self.gate_app_messages)
            .crash_on_own_obituary(self.crash_on_own_obituary);
        let process = SfsProcess::new(config, NullApp).map_err(|e| e.to_string())?;
        let mut wrapped = Reliable::new(process, self.arq).classify(|m: &SfsMsg<()>| !m.is_app());
        if let Some(probe) = self.probe {
            wrapped = wrapped.suspicion(probe, |peer| {
                SfsMsg::Control(Control::Suspect { suspect: peer })
            });
        }
        if let Some(adaptive) = self.adaptive {
            wrapped = wrapped.adaptive(adaptive);
        }
        Ok(wrapped)
    }
}

// ---- hex blob transport -------------------------------------------------

fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(s.get(i..i + 2)?, 16).ok())
        .collect()
}

// ---- node binary discovery ----------------------------------------------

/// The path of the spawnable `sfs-udp-node` binary: [`ENV_NODE_BIN`]
/// when set, otherwise a sibling of the current executable (popping a
/// `deps/` directory when running under `cargo test`).
///
/// # Errors
///
/// [`UdpError::NodeBinary`] when no binary is found — E10 uses this to
/// skip the `net:udp` column gracefully when only the library tests were
/// built.
pub fn udp_node_binary() -> Result<PathBuf, UdpError> {
    if let Ok(p) = env::var(ENV_NODE_BIN) {
        let p = PathBuf::from(p);
        return if p.is_file() {
            Ok(p)
        } else {
            Err(UdpError::NodeBinary(format!(
                "{ENV_NODE_BIN}={} does not exist",
                p.display()
            )))
        };
    }
    let exe = env::current_exe().map_err(|e| UdpError::Io(e.to_string()))?;
    let mut dir = exe
        .parent()
        .map(Path::to_path_buf)
        .ok_or_else(|| UdpError::NodeBinary("current executable has no parent".into()))?;
    if dir.file_name().is_some_and(|d| d == "deps") {
        dir.pop();
    }
    let candidate = dir.join(format!("sfs-udp-node{}", env::consts::EXE_SUFFIX));
    if candidate.is_file() {
        Ok(candidate)
    } else {
        Err(UdpError::NodeBinary(format!(
            "{} not found; build it with `cargo build --bin sfs-udp-node` or set {ENV_NODE_BIN}",
            candidate.display()
        )))
    }
}

/// The whole `sfs-udp-node` binary, as a library function so the spawn
/// protocol is testable: decode the [`ENV_NODE_SPEC`] blob, rebuild the
/// protocol stack, and run the wire-backend node loop against the parent
/// at [`ENV_CTRL_ADDR`].
///
/// # Errors
///
/// A human-readable message on a missing/corrupt environment or a node
/// I/O failure; the binary prints it to stderr and exits nonzero.
pub fn udp_node_main() -> Result<(), String> {
    let blob = env::var(ENV_NODE_SPEC).map_err(|_| format!("{ENV_NODE_SPEC} is not set"))?;
    let bytes = from_hex(&blob).ok_or_else(|| format!("{ENV_NODE_SPEC} is not valid hex"))?;
    let spec = UdpNodeSpec::from_wire_bytes(&bytes)
        .map_err(|e| format!("{ENV_NODE_SPEC} does not decode: {e}"))?;
    let ctrl = env::var(ENV_CTRL_ADDR).map_err(|_| format!("{ENV_CTRL_ADDR} is not set"))?;
    let process = spec.build_process()?;
    run_node(
        &spec.node,
        ctrl.as_str(),
        process,
        // Every wire frame is transport infrastructure, exactly as the
        // net-leg sim classifies; the model alphabet is reconstructed
        // from the wrapper's ModelSend/ModelRecv events.
        |_: &TransportMsg<SfsMsg<()>>| true,
    )
    .map_err(|e| format!("node loop failed: {e}"))
}

// ---- the ClusterSpec leg ------------------------------------------------

/// SplitMix-style per-node seed derivation: distinct, deterministic
/// streams from one spec seed.
fn node_seed(seed: u64, me: usize, salt: u64) -> u64 {
    let mut z = seed ^ salt ^ (me as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ClusterSpec {
    /// Runs the cluster on the **UDP backend**: one OS process per node,
    /// real localhost datagrams, the spec's loss/duplication mapped onto
    /// each node's deterministic wire shim, and the spec's scripted
    /// crashes and suspicions delivered over the control channel. Waits
    /// up to `settle` wall clock for the outstanding-count quiescence
    /// handshake to confirm, then returns the Lamport-merged [`Trace`]
    /// and the quiescence verdict — the same contract as
    /// [`ClusterSpec::try_run_threaded_quiesced`].
    ///
    /// Trace timestamps are Lamport ticks, not the spec's virtual-time
    /// ticks: causal order is exact, durations are not comparable to the
    /// simulator's. The conformance oracle therefore checks the UDP
    /// column on order-sensitive, duration-insensitive properties.
    ///
    /// # Errors
    ///
    /// Whatever [`ClusterSpec::validate`] reports, plus
    /// [`UdpError::OracleUnsupported`] for [`ModeSpec::Oracle`],
    /// [`UdpError::Unsupported`] for partition/storm schedules, and
    /// [`UdpError::NodeBinary`]/[`UdpError::Io`] for spawn and socket
    /// failures.
    pub fn try_run_udp(&self, settle: Duration) -> Result<(Trace, bool), SpecError> {
        let run = self.try_run_udp_full(settle)?;
        Ok((run.trace, run.quiesced))
    }

    /// [`ClusterSpec::try_run_udp`] returning the full
    /// [`UdpRun`](sfs_wire::UdpRun) — trace, quiescence verdict, and each
    /// node's final [`NodeStatus`](sfs_wire::NodeStatus) wire accounting
    /// (the per-node, per-message-class counters `sfs-obs` folds into a
    /// `RunReport`).
    ///
    /// When the control channel misses quiescence and the run ends at its
    /// deadline ([`MaxTime`](sfs_asys::StopReason::MaxTime)), a flight
    /// dump (trace tail plus per-node counters) is written under
    /// `SFS_FLIGHT_DIR`, if that variable names a directory.
    ///
    /// # Errors
    ///
    /// As [`ClusterSpec::try_run_udp`].
    pub fn try_run_udp_full(&self, settle: Duration) -> Result<sfs_wire::UdpRun, SpecError> {
        self.validate()?;
        if matches!(self.mode, ModeSpec::Oracle) {
            return Err(UdpError::OracleUnsupported.into());
        }
        let net = self.net.clone().unwrap_or_default();
        if !net.partitions.is_empty() {
            return Err(UdpError::Unsupported("partition schedules").into());
        }
        if !net.storms.is_empty() {
            return Err(UdpError::Unsupported("storm schedules").into());
        }
        if self.n > u16::MAX as usize {
            return Err(UdpError::Unsupported("more than 65535 nodes").into());
        }
        let bin = udp_node_binary().map_err(SpecError::from)?;

        let mut commands = Vec::with_capacity(self.n);
        for me in 0..self.n {
            let shim = (net.loss > 0.0 || net.duplicate > 0.0).then(|| ShimConfig {
                seed: node_seed(self.seed, me, 0xA5A5_5A5A_0000_0001),
                drop_p: net.loss,
                dup_p: net.duplicate,
            });
            let spec = UdpNodeSpec {
                node: NodeConfig {
                    me: me as u16,
                    n: self.n as u16,
                    seed: node_seed(self.seed, me, 0),
                    tick_micros: UDP_TICK_MICROS,
                    shim,
                },
                t: self.t as u64,
                mode: self.mode,
                quorum: self.quorum,
                heartbeat: self
                    .heartbeat
                    .map(|hb| (hb.interval, hb.timeout, hb.check_every)),
                gate_app_messages: self.gate_app_messages,
                crash_on_own_obituary: self.crash_on_own_obituary,
                arq: net.arq,
                probe: net.probe,
                adaptive: net.adaptive,
            };
            let mut cmd = Command::new(&bin);
            cmd.env(ENV_NODE_SPEC, to_hex(&spec.to_wire_bytes()));
            commands.push(cmd);
        }

        let mut faults = Vec::with_capacity(self.crashes.len() + self.suspicions.len());
        for &(victim, at) in &self.crashes {
            faults.push((victim.index(), NodeFault::Crash { at }));
        }
        for &(by, suspect, at) in &self.suspicions {
            let body =
                TransportMsg::<SfsMsg<()>>::Ctl(SfsMsg::Control(Control::Suspect { suspect }))
                    .to_wire_bytes();
            faults.push((by.index(), NodeFault::External { at, body }));
        }

        let cluster = ClusterConfig::new(self.n, settle);
        let run = run_cluster(&cluster, commands, &faults)
            .map_err(|e| SpecError::from(UdpError::Io(e.to_string())))?;
        if let Some(sink) = &self.sink {
            // The nodes ran in separate OS processes, so the sink could
            // not observe events live; replay the per-node fragments of
            // the Lamport-merged trace in merged order — the same feed
            // the in-process engines deliver event-by-event.
            sfs_obs::monitor::replay_fragments(sink, &sfs_obs::monitor::fragments_of(&run.trace));
        }
        if run.trace.stop_reason() == sfs_asys::StopReason::MaxTime {
            let mut body = sfs_obs::flight::trace_tail(&run.trace, 64);
            for (pid, status) in run.node_status.iter().enumerate() {
                body.push_str(&format!("node p{pid}: {status:?}\n"));
            }
            sfs_obs::flight::dump_to_dir(&format!("udp-maxtime-seed{}", self.seed), &body);
        }
        Ok(run)
    }

    /// [`ClusterSpec::try_run_net`] with the wire-byte measure
    /// installed: every sent transport frame is charged its real encoded
    /// datagram size ([`sfs_wire::wire_cost`]) to
    /// [`SimStats::wire_bytes`](sfs_asys::SimStats), making simulated
    /// byte budgets (E12's bytes-per-detection) directly comparable to
    /// the UDP backend's datagram accounting.
    ///
    /// # Errors
    ///
    /// Whatever [`ClusterSpec::validate`] reports ([`SpecError`]).
    pub fn try_run_net_measured(&self) -> Result<Trace, SpecError> {
        self.validate()?;
        let sim = self.try_build_net_with(
            |b| b.measure(|m: &TransportMsg<SfsMsg<()>>| sfs_wire::wire_cost(m)),
            |_| NullApp,
        )?;
        Ok(sim.run())
    }

    /// The threaded-runtime twin of
    /// [`ClusterSpec::try_run_net_measured`]: the same wire-byte measure
    /// ([`sfs_wire::wire_cost`]) on the router's send seam, so all three
    /// in-process engines account bytes with one ruler. Returns the trace
    /// and whether the run quiesced.
    ///
    /// # Errors
    ///
    /// Whatever [`ClusterSpec::validate`] reports ([`SpecError`]).
    pub fn try_run_threaded_net_measured(
        &self,
        settle: std::time::Duration,
    ) -> Result<(Trace, bool), SpecError> {
        let rt = self.try_spawn_net_runtime_measured(
            Some(Box::new(|m: &TransportMsg<SfsMsg<()>>| {
                sfs_wire::wire_cost(m)
            })),
            |_| NullApp,
        )?;
        let quiesced = rt.drain(settle);
        Ok((rt.shutdown(), quiesced))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sfs_msg_round_trips_every_variant() {
        let msgs: Vec<SfsMsg<u64>> = vec![
            SfsMsg::Heartbeat,
            SfsMsg::Susp {
                suspect: ProcessId::new(3),
            },
            SfsMsg::App {
                payload: 0xFEED,
                knows: vec![ProcessId::new(0), ProcessId::new(2)],
            },
            SfsMsg::Control(Control::Suspect {
                suspect: ProcessId::new(1),
            }),
        ];
        for m in &msgs {
            let bytes = m.to_wire_bytes();
            assert_eq!(&SfsMsg::<u64>::from_wire_bytes(&bytes).unwrap(), m);
        }
        // And nested under the transport envelope, as it rides the wire.
        let wire = TransportMsg::Data {
            seq: 1,
            logical: 1,
            payload: msgs[2].clone(),
        };
        let back = TransportMsg::<SfsMsg<u64>>::from_wire_bytes(&wire.to_wire_bytes()).unwrap();
        assert_eq!(back, wire);
    }

    #[test]
    fn node_spec_round_trips_through_the_env_blob() {
        let spec = UdpNodeSpec {
            node: NodeConfig {
                me: 2,
                n: 5,
                seed: 77,
                tick_micros: 1_000,
                shim: Some(ShimConfig {
                    seed: 9,
                    drop_p: 0.05,
                    dup_p: 0.01,
                }),
            },
            t: 2,
            mode: ModeSpec::SfsOneRound,
            quorum: QuorumPolicy::FixedCount(3),
            heartbeat: Some((20, 100, 25)),
            gate_app_messages: true,
            crash_on_own_obituary: false,
            arq: ArqConfig::default(),
            probe: Some(ProbeConfig::default()),
            adaptive: Some(AdaptiveConfig::default()),
        };
        let hex = to_hex(&spec.to_wire_bytes());
        let back = UdpNodeSpec::from_wire_bytes(&from_hex(&hex).unwrap()).unwrap();
        assert_eq!(back, spec);
        // The blob builds a live process stack.
        assert!(back.build_process().is_ok());
    }

    #[test]
    fn oracle_mode_is_rejected_fail_closed() {
        let mut spec = UdpNodeSpec {
            node: NodeConfig {
                me: 0,
                n: 3,
                seed: 0,
                tick_micros: 1_000,
                shim: None,
            },
            t: 1,
            mode: ModeSpec::Oracle,
            quorum: QuorumPolicy::WaitForAll,
            heartbeat: None,
            gate_app_messages: true,
            crash_on_own_obituary: true,
            arq: ArqConfig::default(),
            probe: None,
            adaptive: None,
        };
        // The blob encoding refuses to smuggle oracle mode across.
        assert!(matches!(
            UdpNodeSpec::from_wire_bytes(&spec.to_wire_bytes()),
            Err(WireError::UnknownTag {
                what: "ModeSpec",
                ..
            })
        ));
        spec.mode = ModeSpec::SfsOneRound;
        assert!(UdpNodeSpec::from_wire_bytes(&spec.to_wire_bytes()).is_ok());
        // And the runner rejects it before spawning anything.
        let err = ClusterSpec::new(3, 1)
            .mode(ModeSpec::Oracle)
            .try_run_udp(Duration::from_millis(10))
            .unwrap_err();
        assert_eq!(err, SpecError::Udp(UdpError::OracleUnsupported));
    }

    #[test]
    fn hex_codec_round_trips_and_rejects_noise() {
        assert_eq!(
            from_hex(&to_hex(&[0x00, 0xff, 0x5a])).unwrap(),
            vec![0x00, 0xff, 0x5a]
        );
        assert_eq!(from_hex(""), Some(vec![]));
        assert_eq!(from_hex("abc"), None);
        assert_eq!(from_hex("zz"), None);
    }

    #[test]
    fn per_node_seeds_are_distinct() {
        let seeds: std::collections::HashSet<u64> =
            (0..64).map(|me| node_seed(42, me, 0)).collect();
        assert_eq!(seeds.len(), 64);
    }
}
