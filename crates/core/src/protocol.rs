//! The simulated-fail-stop process automaton (§5 of the paper).
//!
//! One [`SfsProcess`] wraps one [`Application`] and implements the paper's
//! one-round failure-detection protocol around it:
//!
//! 1. When process `i` suspects the failure of `j` (heartbeat timeout,
//!    injected stimulus, or receipt of an obituary), it broadcasts the
//!    obituary `"j failed"` to **all** processes, including itself.
//! 2. Application messages carry the sender's detected-failed set; a
//!    receiver defers the *receive event* of such a message until it has
//!    detected everything in the tag — this is what makes sFS2d hold.
//!    (FIFO channels make the deferral deadlock-free: the needed
//!    obituaries always travel ahead of the message they gate.)
//! 3. When `i` has received `"j failed"` from more than `n(t-1)/t`
//!    processes (including itself), it executes `failed_i(j)` and tells
//!    the application.
//! 4. When `x` receives `"x failed"`, it crashes — this is what makes
//!    sFS2a (and, with rule 1, sFS2c) hold even for erroneous suspicions.
//!
//! The same type also implements the paper's comparators (unilateral
//! detection, the §6 cheap-broadcast model, and an oracle-backed perfect
//! detector) selected by [`DetectionMode`], so experiments hold everything
//! else constant.

use crate::app::{AppApi, Application};
use crate::config::{DetectionMode, SfsConfig};
use crate::msg::{Control, SfsMsg};
use crate::quorum::{QuorumError, QuorumPolicy};
use sfs_asys::{
    Context, Note, Process, ProcessId, ReceiveFilter, TimerId, VirtualTime, NOTE_QUORUM,
};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt;

/// A process running the simulated-fail-stop protocol around application
/// `A`.
pub struct SfsProcess<A: Application> {
    app: A,
    config: SfsConfig,
    /// Open detection rounds: suspect → set of processes whose obituary
    /// for that suspect we have received (the vote set).
    rounds: BTreeMap<ProcessId, BTreeSet<ProcessId>>,
    /// Locally detected processes (`failed_self(·)` variables).
    failed: BTreeSet<ProcessId>,
    /// Last time each peer was heard from (any message).
    last_heard: Vec<VirtualTime>,
    hb_timer: Option<TimerId>,
    check_timer: Option<TimerId>,
    app_timers: HashSet<TimerId>,
}

impl<A: Application> fmt::Debug for SfsProcess<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SfsProcess")
            .field("rounds", &self.rounds)
            .field("failed", &self.failed)
            .finish_non_exhaustive()
    }
}

impl<A: Application> SfsProcess<A> {
    /// Creates a process with the given configuration and application.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError`] if the configuration cannot make progress
    /// (e.g. a fixed quorum with `n ≤ t²`, Corollary 8).
    pub fn new(config: SfsConfig, app: A) -> Result<Self, QuorumError> {
        let config = config.validated()?;
        let n = config.n;
        Ok(SfsProcess {
            app,
            config,
            rounds: BTreeMap::new(),
            failed: BTreeSet::new(),
            last_heard: vec![VirtualTime::ZERO; n],
            hb_timer: None,
            check_timer: None,
            app_timers: HashSet::new(),
        })
    }

    /// The processes this process has detected as failed so far.
    pub fn failed(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.failed.iter().copied()
    }

    /// Read access to the wrapped application (e.g. to inspect final state
    /// after a simulation).
    pub fn app(&self) -> &A {
        &self.app
    }

    fn check_interval(&self) -> u64 {
        self.config.heartbeat.map(|hb| hb.check_every).unwrap_or(25)
    }

    // ---- application callbacks -------------------------------------------

    fn app_start(&mut self, ctx: &mut Context<'_, SfsMsg<A::Msg>>) {
        let mut api = AppApi::new(ctx, &self.failed, &mut self.app_timers);
        self.app.on_start(&mut api);
    }

    fn app_message(&mut self, ctx: &mut Context<'_, SfsMsg<A::Msg>>, from: ProcessId, msg: A::Msg) {
        let mut api = AppApi::new(ctx, &self.failed, &mut self.app_timers);
        self.app.on_message(&mut api, from, msg);
    }

    fn app_failure(&mut self, ctx: &mut Context<'_, SfsMsg<A::Msg>>, j: ProcessId) {
        let mut api = AppApi::new(ctx, &self.failed, &mut self.app_timers);
        self.app.on_failure(&mut api, j);
    }

    fn app_timer(&mut self, ctx: &mut Context<'_, SfsMsg<A::Msg>>, t: TimerId) {
        let mut api = AppApi::new(ctx, &self.failed, &mut self.app_timers);
        self.app.on_timer(&mut api, t);
    }

    // ---- protocol core ----------------------------------------------------

    /// Entry point for a new suspicion of `suspect` (timeout, stimulus, or
    /// first obituary).
    fn begin_suspicion(&mut self, ctx: &mut Context<'_, SfsMsg<A::Msg>>, suspect: ProcessId) {
        if suspect == ctx.id()
            || self.failed.contains(&suspect)
            || self.rounds.contains_key(&suspect)
        {
            return;
        }
        match self.config.mode {
            DetectionMode::SfsOneRound => {
                self.rounds.insert(suspect, BTreeSet::new());
                // Broadcast the obituary to ALL processes, including self:
                // the self-copy is this process's own vote, and the copy to
                // the suspect is what guarantees sFS2a.
                ctx.broadcast(SfsMsg::Susp { suspect }, true);
            }
            DetectionMode::CheapBroadcast => {
                // §6: broadcast the obituary, then detect unilaterally.
                ctx.broadcast(SfsMsg::Susp { suspect }, false);
                let me = ctx.id();
                self.detect(ctx, suspect, Some([me].into_iter().collect()));
            }
            DetectionMode::Unilateral => {
                self.detect(ctx, suspect, None);
            }
            DetectionMode::Oracle(_) => {
                // The oracle path detects directly from the registry scan;
                // external suspicions are ignored (a perfect detector is
                // never wrong, so it takes no hints).
            }
        }
    }

    /// Handles receipt of the obituary `"suspect failed"` from `from`.
    fn handle_obituary(
        &mut self,
        ctx: &mut Context<'_, SfsMsg<A::Msg>>,
        from: ProcessId,
        suspect: ProcessId,
    ) {
        if suspect == ctx.id() {
            // "When process x receives a message of the form 'x failed',
            // x executes crash_x."
            if self.config.crash_on_own_obituary {
                ctx.crash_self();
            }
            return;
        }
        if self.failed.contains(&suspect) {
            return;
        }
        match self.config.mode {
            DetectionMode::SfsOneRound => {
                // Receiving an obituary is itself a suspicion trigger:
                // "When process x receives a message of the form
                // 'y failed', x suspects the failure of y."
                self.begin_suspicion(ctx, suspect);
                if let Some(votes) = self.rounds.get_mut(&suspect) {
                    votes.insert(from);
                }
                self.check_quorum(ctx, suspect);
            }
            DetectionMode::CheapBroadcast | DetectionMode::Unilateral => {
                self.begin_suspicion(ctx, suspect);
            }
            DetectionMode::Oracle(_) => {}
        }
    }

    /// Declares `failed_self(suspect)` if the vote set satisfies the
    /// quorum policy.
    fn check_quorum(&mut self, ctx: &mut Context<'_, SfsMsg<A::Msg>>, suspect: ProcessId) {
        let Some(votes) = self.rounds.get(&suspect) else {
            return;
        };
        let met = match self.config.quorum {
            QuorumPolicy::WaitForAll => {
                // Every process that is neither suspected nor already
                // detected must have voted (this includes self).
                ProcessId::all(self.config.n).all(|p| {
                    votes.contains(&p)
                        || self.rounds.contains_key(&p)
                        || p == suspect
                        || self.failed.contains(&p)
                })
            }
            policy => {
                let threshold = policy
                    .fixed_threshold(self.config.n, self.config.t)
                    .expect("fixed policy has threshold");
                votes.len() >= threshold
            }
        };
        if met {
            let votes = self.rounds.remove(&suspect).expect("round open");
            self.detect(ctx, suspect, Some(votes));
            // Removing a suspect can complete OTHER pending rounds under
            // WaitForAll (the required vote set shrank).
            if matches!(self.config.quorum, QuorumPolicy::WaitForAll) {
                let pending: Vec<ProcessId> = self.rounds.keys().copied().collect();
                for other in pending {
                    self.check_quorum(ctx, other);
                }
            }
        }
    }

    /// Executes `failed_self(suspect)`: records the quorum, declares the
    /// detection, notifies the application, and refreshes the sFS2d
    /// receive filter (the set of app messages we may now accept grew).
    fn detect(
        &mut self,
        ctx: &mut Context<'_, SfsMsg<A::Msg>>,
        suspect: ProcessId,
        quorum: Option<BTreeSet<ProcessId>>,
    ) {
        if !self.failed.insert(suspect) {
            return;
        }
        self.rounds.remove(&suspect);
        if let Some(q) = quorum {
            ctx.annotate(Note::process_set(
                NOTE_QUORUM,
                Some(suspect),
                q.into_iter().collect(),
            ));
        }
        ctx.declare_failed(suspect);
        self.update_gate(ctx);
        self.app_failure(ctx, suspect);
    }

    /// Installs the sFS2d receive filter: an application message tagged
    /// with the sender's detected-failed set is *received* only once this
    /// process has detected every process in that set. Protocol messages
    /// always pass.
    ///
    /// FIFO makes this deadlock-free: the sender broadcast the obituary of
    /// every process in the tag before sending the message, so on each
    /// channel the votes needed to complete this process's corresponding
    /// rounds are ahead of any message waiting on them.
    fn update_gate(&mut self, ctx: &mut Context<'_, SfsMsg<A::Msg>>) {
        if !self.config.gate_app_messages || !matches!(self.config.mode, DetectionMode::SfsOneRound)
        {
            return;
        }
        let failed = self.failed.clone();
        ctx.set_receive_filter(Some(ReceiveFilter::new(
            move |m: &SfsMsg<A::Msg>| match m {
                SfsMsg::App { knows, .. } => knows.iter().all(|j| failed.contains(j)),
                _ => true,
            },
        )));
    }

    /// Periodic scan: heartbeat timeouts or oracle poll.
    fn run_checks(&mut self, ctx: &mut Context<'_, SfsMsg<A::Msg>>) {
        let me = ctx.id();
        match &self.config.mode {
            DetectionMode::Oracle(registry) => {
                // Hot path: this scan runs every `check_every` ticks on
                // every process, so it uses the registry's non-allocating
                // visitor (no per-poll `Vec` of crashed ids).
                let registry = registry.clone();
                registry.for_each_crashed(|j| {
                    if j != me && !self.failed.contains(&j) {
                        self.detect(ctx, j, None);
                    }
                });
            }
            _ => {
                if let Some(hb) = self.config.heartbeat {
                    let now = ctx.now();
                    // Per-process staleness is judged against the state at
                    // the top of each iteration; begin_suspicion only adds
                    // rounds/failed entries, which can't make a later peer
                    // stale, so no snapshot Vec is needed (this scan runs
                    // every check interval on every process).
                    for j in ProcessId::all(self.config.n) {
                        if j != me
                            && !self.failed.contains(&j)
                            && !self.rounds.contains_key(&j)
                            && now.since(self.last_heard[j.index()]) > hb.timeout
                        {
                            self.begin_suspicion(ctx, j);
                        }
                    }
                }
            }
        }
    }
}

impl<A: Application> Process<SfsMsg<A::Msg>> for SfsProcess<A> {
    fn on_start(&mut self, ctx: &mut Context<'_, SfsMsg<A::Msg>>) {
        let now = ctx.now();
        self.last_heard = vec![now; self.config.n];
        if let Some(hb) = self.config.heartbeat {
            ctx.broadcast(SfsMsg::Heartbeat, false);
            self.hb_timer = Some(ctx.set_timer(hb.interval));
        }
        if self.config.heartbeat.is_some() || matches!(self.config.mode, DetectionMode::Oracle(_)) {
            self.check_timer = Some(ctx.set_timer(self.check_interval()));
        }
        self.update_gate(ctx);
        self.app_start(ctx);
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, SfsMsg<A::Msg>>,
        from: ProcessId,
        msg: SfsMsg<A::Msg>,
    ) {
        self.last_heard[from.index()] = ctx.now();
        match msg {
            SfsMsg::Heartbeat => {}
            SfsMsg::Susp { suspect } => self.handle_obituary(ctx, from, suspect),
            SfsMsg::App { payload, .. } => self.app_message(ctx, from, payload),
            SfsMsg::Control(_) => {
                // Control stimuli arrive via injection, not channels.
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, SfsMsg<A::Msg>>, timer: TimerId) {
        if Some(timer) == self.hb_timer {
            ctx.broadcast(SfsMsg::Heartbeat, false);
            if let Some(hb) = self.config.heartbeat {
                self.hb_timer = Some(ctx.set_timer(hb.interval));
            }
        } else if Some(timer) == self.check_timer {
            self.run_checks(ctx);
            self.check_timer = Some(ctx.set_timer(self.check_interval()));
        } else if self.app_timers.remove(&timer) {
            self.app_timer(ctx, timer);
        }
    }

    fn on_external(&mut self, ctx: &mut Context<'_, SfsMsg<A::Msg>>, payload: SfsMsg<A::Msg>) {
        if let SfsMsg::Control(Control::Suspect { suspect }) = payload {
            self.begin_suspicion(ctx, suspect);
        }
    }
}
