//! One node of the UDP backend: spawned by `ClusterSpec::try_run_udp`
//! (via `sfs_wire::run_cluster`) with its protocol stack described in
//! the `SFS_UDP_NODE_SPEC` environment blob and its parent's control
//! listener in `SFS_WIRE_CTRL_ADDR`. All logic lives in
//! [`sfs::udp_node_main`] so the spawn protocol is unit-testable.

use std::process::ExitCode;

fn main() -> ExitCode {
    match sfs::udp_node_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(why) => {
            eprintln!("sfs-udp-node: {why}");
            ExitCode::FAILURE
        }
    }
}
