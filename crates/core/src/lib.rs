//! # sfs — the simulated fail-stop protocol
//!
//! A production-quality implementation of the primary contribution of
//! Sabel & Marzullo, *Simulating Fail-Stop in Asynchronous Distributed
//! Systems* (Cornell TR 94-1413, 1994): a failure model that is
//! *internally indistinguishable* from fail-stop, and the one-round
//! quorum protocol (§5) that implements it with the minimum replication
//! the paper proves necessary (§4).
//!
//! ## What the protocol guarantees
//!
//! Running your [`Application`] inside an [`SfsProcess`] gives you:
//!
//! * **FS1** — crashes are eventually detected by every survivor
//!   (heartbeats + obituary propagation);
//! * **sFS2a** — anything detected as failed really does crash, even if
//!   the detection was wrong (the victim is killed by its own obituary);
//! * **sFS2b** — the failed-before order is acyclic (quorum intersection,
//!   Theorems 6–7);
//! * **sFS2c** — no process detects its own failure;
//! * **sFS2d** — failure knowledge travels ahead of application messages
//!   (FIFO obituaries + receive gating).
//!
//! By Theorem 5 these make every run indistinguishable, to every process,
//! from a run of a true fail-stop system — so the application may be
//! written against the fail-stop abstraction even though that abstraction
//! is unimplementable in an asynchronous system (Theorem 1 / FLP).
//!
//! ## Crate map
//!
//! * [`quorum`] — the replication arithmetic (`min_quorum`, the `n > t²`
//!   frontier);
//! * [`SfsConfig`] / [`DetectionMode`] — configuration and the paper's
//!   comparator detectors (unilateral, §6 cheap-broadcast, oracle);
//! * [`SfsProcess`] — the protocol automaton;
//! * [`Application`] / [`AppApi`] — the fail-stop programming interface;
//! * [`ClusterSpec`] — one-call simulated clusters for tests and
//!   experiments.
//!
//! # Examples
//!
//! An erroneous suspicion is "made true" by the protocol:
//!
//! ```
//! use sfs::ClusterSpec;
//! use sfs_asys::ProcessId;
//! use sfs_history::History;
//! use sfs_tlogic::properties;
//!
//! // 5 processes tolerating 2 failures; p1 spuriously suspects p0.
//! let trace = ClusterSpec::new(5, 2)
//!     .suspect(ProcessId::new(1), ProcessId::new(0), 10)
//!     .run();
//! // The victim crashed (sFS2a) and every sFS property holds:
//! assert_eq!(trace.crashed(), vec![ProcessId::new(0)]);
//! let history = History::from_trace(&trace);
//! for report in properties::check_sfs_suite(&history, true) {
//!     assert!(report.is_ok(), "{report}");
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod app;
mod config;
mod harness;
mod msg;
mod protocol;
pub mod quorum;
pub mod udp;

pub use app::{AppApi, Application, NullApp};
pub use config::{DetectionMode, HeartbeatConfig, SfsConfig};
pub use harness::{ClusterSpec, ModeSpec, NetSpec, SpecError};
pub use udp::{udp_node_binary, udp_node_main, UdpError, UdpNodeSpec};
// Re-exported so harness users can parameterize a `NetSpec` without
// depending on `sfs-transport` directly.
pub use msg::{Control, SfsMsg};
pub use protocol::SfsProcess;
pub use quorum::{QuorumError, QuorumPolicy};
pub use sfs_transport::{
    AdaptiveConfig, ArqConfig, ProbeConfig, TransportError, TransportMsg, NOTE_PROBE_SUSPECT,
    NOTE_RETX,
};
