//! One-call construction of simulated sFS clusters.
//!
//! Experiments, tests, and examples all need the same shape of run: `n`
//! processes under some [`DetectionMode`], a latency model, a fault plan
//! (crashes and forced suspicions), and a trace out. [`ClusterSpec`]
//! packages that.

use crate::app::{Application, NullApp};
use crate::config::{HeartbeatConfig, SfsConfig};
use crate::msg::{Control, SfsMsg};
use crate::protocol::SfsProcess;
use crate::quorum::{QuorumError, QuorumPolicy};
use sfs_asys::net::{Runtime, RuntimeConfig};
use sfs_asys::{
    CrashRegistry, EventSinkHandle, FaultPlan, FaultyLink, LatencyError, LinkModel, ObsHandle,
    PartitionSchedule, ProcessId, Sim, StormSchedule, Trace, UniformLatency, VirtualTime,
};
use sfs_transport::{
    AdaptiveConfig, ArqConfig, ProbeConfig, Reliable, TransportError, TransportMsg,
};
use std::fmt;
use std::time::Duration;

/// Why a [`ClusterSpec`] is rejected before anything runs: the union of
/// the quorum-arithmetic errors (Corollary 8) and the latency/link
/// configuration errors, so every `try_*` runner reports one typed error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The quorum policy cannot make progress for `(n, t)`.
    Quorum(QuorumError),
    /// The latency bounds are malformed (e.g. `min > max`).
    Latency(LatencyError),
    /// The transport configuration is malformed (e.g. a zero ARQ window
    /// or inverted adaptive RTO bounds).
    Transport(TransportError),
    /// The spec cannot run (or failed to run) on the UDP backend.
    Udp(crate::udp::UdpError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Quorum(e) => write!(f, "{e}"),
            SpecError::Latency(e) => write!(f, "{e}"),
            SpecError::Transport(e) => write!(f, "{e}"),
            SpecError::Udp(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<QuorumError> for SpecError {
    fn from(e: QuorumError) -> Self {
        SpecError::Quorum(e)
    }
}

impl From<LatencyError> for SpecError {
    fn from(e: LatencyError) -> Self {
        SpecError::Latency(e)
    }
}

impl From<TransportError> for SpecError {
    fn from(e: TransportError) -> Self {
        SpecError::Transport(e)
    }
}

impl From<crate::udp::UdpError> for SpecError {
    fn from(e: crate::udp::UdpError) -> Self {
        SpecError::Udp(e)
    }
}

/// Declarative description of the network beneath one cluster run: the
/// faulty-link parameters plus whether the `sfs-transport` ARQ layer is
/// interposed to earn the §2 channel axioms back. The harness leg next
/// to [`ClusterSpec::build_with_latency`]; see [`ClusterSpec::net`].
#[derive(Debug, Clone)]
pub struct NetSpec {
    /// I.i.d. per-message loss probability.
    pub loss: f64,
    /// I.i.d. per-message duplication probability.
    pub duplicate: f64,
    /// Scripted cut/heal of link sets over virtual time.
    pub partitions: PartitionSchedule,
    /// Scripted delay-surcharge windows (gray failure).
    pub storms: StormSchedule,
    /// ARQ parameters for the transport-wrapped legs.
    pub arq: ArqConfig,
    /// Transport-level heartbeat probing: when set, missed-heartbeat
    /// timeouts become *endogenous* `Control::Suspect` stimuli to the
    /// protocol — the deployable replacement for scripted suspicions.
    pub probe: Option<ProbeConfig>,
    /// Adaptive transport timeouts: when set, RTT estimation drives the
    /// retransmit deadlines and a learned per-peer threshold (floored at
    /// the fixed probe timeout) drives suspicion.
    pub adaptive: Option<AdaptiveConfig>,
}

impl Default for NetSpec {
    fn default() -> Self {
        NetSpec {
            loss: 0.0,
            duplicate: 0.0,
            partitions: PartitionSchedule::new(),
            storms: StormSchedule::new(),
            arq: ArqConfig::default(),
            probe: None,
            adaptive: None,
        }
    }
}

impl NetSpec {
    /// A loss-free, unpartitioned network with default ARQ parameters and
    /// no probing — transport-wrapped runs over it are HB-equivalent to
    /// bare runs (the `batch_equiv`-style pin in `sfs-apps`).
    pub fn faultless() -> Self {
        NetSpec::default()
    }

    /// Sets the i.i.d. loss probability.
    pub fn loss(mut self, p: f64) -> Self {
        self.loss = p;
        self
    }

    /// Sets the i.i.d. duplication probability.
    pub fn duplicate(mut self, p: f64) -> Self {
        self.duplicate = p;
        self
    }

    /// Installs the partition script.
    pub fn partitions(mut self, sched: PartitionSchedule) -> Self {
        self.partitions = sched;
        self
    }

    /// Sets the ARQ parameters.
    pub fn arq(mut self, arq: ArqConfig) -> Self {
        self.arq = arq;
        self
    }

    /// Enables transport-level heartbeat probing (endogenous suspicions).
    pub fn probe(mut self, probe: ProbeConfig) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Installs the delay-storm script.
    pub fn storms(mut self, storms: StormSchedule) -> Self {
        self.storms = storms;
        self
    }

    /// Enables adaptive transport timeouts.
    pub fn adaptive(mut self, adaptive: AdaptiveConfig) -> Self {
        self.adaptive = Some(adaptive);
        self
    }
}

/// Which detector the cluster runs (the harness-level mirror of
/// [`DetectionMode`](crate::DetectionMode), without the oracle's registry
/// plumbing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModeSpec {
    /// The paper's §5 one-round protocol.
    #[default]
    SfsOneRound,
    /// Unilateral timeout detection (baseline).
    Unilateral,
    /// The §6 broadcast-then-detect model (no sFS2b).
    CheapBroadcast,
    /// Perfect detection via the simulator's crash oracle (reference FS
    /// runs; unimplementable for real, Theorem 1).
    Oracle,
}

/// Declarative description of one simulated cluster run.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of processes.
    pub n: usize,
    /// Failure bound `t`.
    pub t: usize,
    /// Detector selection.
    pub mode: ModeSpec,
    /// Quorum policy for the one-round protocol.
    pub quorum: QuorumPolicy,
    /// Heartbeats (`None` = suspicions only from injection/obituaries;
    /// such runs reach quiescence, which the liveness checkers prefer).
    pub heartbeat: Option<HeartbeatConfig>,
    /// sFS2d receive gating (ablation switch).
    pub gate_app_messages: bool,
    /// Crash-on-own-obituary (ablation switch).
    pub crash_on_own_obituary: bool,
    /// Scheduler seed.
    pub seed: u64,
    /// Uniform latency bounds `[min, max]` in ticks.
    pub latency: (u64, u64),
    /// Virtual-time horizon.
    pub max_time: VirtualTime,
    /// Event budget.
    pub max_events: usize,
    /// Scripted crashes `(victim, at)`.
    pub crashes: Vec<(ProcessId, u64)>,
    /// Scripted erroneous suspicions `(suspector, suspect, at)` — the
    /// paper's "spontaneous" suspicions.
    pub suspicions: Vec<(ProcessId, ProcessId, u64)>,
    /// Batched delivery fast path on both backends: the simulator's
    /// same-instant flush grouping and the threaded router's
    /// per-destination event coalescing. Semantically invisible to the
    /// happens-before model (see `SimConfig::batch_flush` and
    /// `RuntimeConfig::batch` in `sfs-asys`); the `sfs-service` layer and
    /// experiment E11 measure its throughput effect.
    pub batch: bool,
    /// The faulty network beneath the run, for the `*_net` legs: link
    /// faults (loss/duplication/partitions) plus the `sfs-transport` ARQ
    /// and probe parameters. `None` behaves as [`NetSpec::faultless`].
    /// Ignored by the bare (`run`/`run_threaded`/...) legs, which assume
    /// the §2 channel axioms directly.
    pub net: Option<NetSpec>,
    /// Telemetry sink threaded into whichever engine the spec runs on
    /// (the simulator's dispatch seams or the threaded router's). Strictly
    /// execution-neutral — the `obs_equiv` conformance suite pins that an
    /// observed run is fingerprint-identical to a bare one. `None` (the
    /// default) costs nothing.
    pub obs: Option<ObsHandle>,
    /// Trace-event sink threaded into whichever engine the spec runs on:
    /// every event an engine appends to its trace is also handed, live,
    /// to the sink — the feed the `sfs-obs` streaming sFS monitors
    /// certify on without retaining the trace. Execution-neutral under
    /// the same contract as [`ClusterSpec::obs`]; the UDP leg, whose
    /// nodes run in separate OS processes, replays the Lamport-merged
    /// trace through the sink at the parent after the run. `None` (the
    /// default) costs nothing.
    pub sink: Option<EventSinkHandle>,
}

impl ClusterSpec {
    /// A quiescence-friendly spec: no heartbeats, moderate random latency.
    pub fn new(n: usize, t: usize) -> Self {
        ClusterSpec {
            n,
            t,
            mode: ModeSpec::SfsOneRound,
            quorum: QuorumPolicy::FixedMinimum,
            heartbeat: None,
            gate_app_messages: true,
            crash_on_own_obituary: true,
            seed: 0,
            latency: (1, 10),
            max_time: VirtualTime::from_ticks(1_000_000),
            max_events: 1_000_000,
            crashes: Vec::new(),
            suspicions: Vec::new(),
            batch: false,
            net: None,
            obs: None,
            sink: None,
        }
    }

    /// Installs a telemetry sink (e.g. an `sfs-obs` registry handle or a
    /// flight-recorder fanout) on whichever engine the spec runs on.
    pub fn observe(mut self, obs: ObsHandle) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Installs a trace-event sink (e.g. an `sfs-obs` streaming sFS
    /// monitor) on whichever engine the spec runs on.
    pub fn event_sink(mut self, sink: EventSinkHandle) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Installs the network description for the `*_net` legs (see
    /// [`ClusterSpec::run_net`] and friends).
    pub fn net(mut self, net: NetSpec) -> Self {
        self.net = Some(net);
        self
    }

    /// Enables (or disables) the batched delivery fast path on whichever
    /// backend the spec is run on.
    pub fn batched(mut self, on: bool) -> Self {
        self.batch = on;
        self
    }

    /// Validates the spec against the paper's feasibility bounds without
    /// running anything: `n ≥ 1`; for [`ModeSpec::SfsOneRound`] the
    /// quorum policy must be able to make progress against `t` failures
    /// (Corollary 8's `n > t²` for the fixed minimum quorum); and the
    /// latency bounds must form a real interval
    /// ([`UniformLatency::try_new`]).
    ///
    /// Every `try_*` runner calls this first, so infeasible shapes
    /// surface as typed [`SpecError`]s instead of panics.
    ///
    /// # Errors
    ///
    /// [`SpecError::Quorum`] with
    /// [`QuorumError::NoProcesses`] when `n == 0` or
    /// [`QuorumError::Infeasible`](crate::quorum::QuorumError::Infeasible)
    /// when the quorum cannot survive `t` failures;
    /// [`SpecError::Latency`] when `latency.0 > latency.1`.
    ///
    /// # Examples
    ///
    /// ```
    /// use sfs::ClusterSpec;
    ///
    /// assert!(ClusterSpec::new(10, 3).validate().is_ok());
    /// assert!(ClusterSpec::new(9, 3).validate().is_err()); // 9 = 3², not > 3²
    /// assert!(ClusterSpec::new(10, 3).latency(9, 2).validate().is_err());
    /// ```
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.n == 0 {
            return Err(QuorumError::NoProcesses.into());
        }
        if matches!(self.mode, ModeSpec::SfsOneRound) {
            self.quorum.validated(self.n, self.t)?;
        }
        UniformLatency::try_new(self.latency.0, self.latency.1)?;
        if let Some(net) = &self.net {
            net.arq.validate()?;
            if let Some(probe) = &net.probe {
                probe.validate()?;
            }
            if let Some(adaptive) = &net.adaptive {
                adaptive.validate()?;
            }
        }
        Ok(())
    }

    /// The spec's uniform latency model, after validation.
    fn latency_model(&self) -> Result<UniformLatency, SpecError> {
        Ok(UniformLatency::try_new(self.latency.0, self.latency.1)?)
    }

    /// The faulty-link model the spec's [`NetSpec`] describes, over the
    /// spec's uniform latency.
    fn link_model(&self) -> Result<FaultyLink<UniformLatency>, SpecError> {
        let net = self.net.clone().unwrap_or_default();
        Ok(FaultyLink::new(self.latency_model()?)
            .loss(net.loss)
            .duplicate(net.duplicate)
            .partitions(net.partitions)
            .storms(net.storms))
    }

    /// Sets the detector.
    pub fn mode(mut self, mode: ModeSpec) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the quorum policy.
    pub fn quorum(mut self, quorum: QuorumPolicy) -> Self {
        self.quorum = quorum;
        self
    }

    /// Enables heartbeats.
    pub fn heartbeat(mut self, hb: HeartbeatConfig) -> Self {
        self.heartbeat = Some(hb);
        self
    }

    /// Sets the scheduler seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets uniform latency bounds.
    pub fn latency(mut self, min: u64, max: u64) -> Self {
        self.latency = (min, max);
        self
    }

    /// Sets the virtual-time horizon.
    pub fn max_time(mut self, t: u64) -> Self {
        self.max_time = VirtualTime::from_ticks(t);
        self
    }

    /// Schedules a crash.
    pub fn crash(mut self, victim: ProcessId, at: u64) -> Self {
        self.crashes.push((victim, at));
        self
    }

    /// Schedules an erroneous suspicion.
    pub fn suspect(mut self, suspector: ProcessId, suspect: ProcessId, at: u64) -> Self {
        self.suspicions.push((suspector, suspect, at));
        self
    }

    /// Ablation: disable sFS2d receive gating.
    pub fn without_gating(mut self) -> Self {
        self.gate_app_messages = false;
        self
    }

    /// Ablation: survive one's own obituary.
    pub fn without_self_crash(mut self) -> Self {
        self.crash_on_own_obituary = false;
        self
    }

    /// The per-process protocol configuration this spec describes, with
    /// oracle mode wired to `registry` — the one construction site every
    /// build path (sim, threaded, and their net legs) shares.
    fn sfs_config(&self, registry: &CrashRegistry) -> SfsConfig {
        let mode = match self.mode {
            ModeSpec::SfsOneRound => crate::config::DetectionMode::SfsOneRound,
            ModeSpec::Unilateral => crate::config::DetectionMode::Unilateral,
            ModeSpec::CheapBroadcast => crate::config::DetectionMode::CheapBroadcast,
            ModeSpec::Oracle => crate::config::DetectionMode::Oracle(registry.clone()),
        };
        SfsConfig::new(self.n, self.t)
            .mode(mode)
            .quorum(self.quorum)
            .heartbeat(self.heartbeat)
            .gate_app_messages(self.gate_app_messages)
            .crash_on_own_obituary(self.crash_on_own_obituary)
    }

    /// The scripted crashes and suspicions as a fault plan over an
    /// arbitrary wire alphabet: `wrap` embeds each suspicion stimulus
    /// (bare legs use `SfsMsg::Control`; net legs add the transport
    /// envelope).
    fn fault_plan_wrapped<P: Clone>(&self, wrap: impl Fn(Control) -> P) -> FaultPlan<P> {
        let mut plan = FaultPlan::new();
        for &(victim, at) in &self.crashes {
            plan = plan.crash_at(victim, VirtualTime::from_ticks(at));
        }
        for &(by, suspect, at) in &self.suspicions {
            plan = plan.external_at(
                by,
                VirtualTime::from_ticks(at),
                wrap(Control::Suspect { suspect }),
            );
        }
        plan
    }

    fn fault_plan<M: Clone>(&self) -> FaultPlan<SfsMsg<M>> {
        self.fault_plan_wrapped(SfsMsg::Control)
    }

    /// Runs the cluster with [`NullApp`] on every process and the spec's
    /// uniform latency model.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is infeasible; [`ClusterSpec::try_run`]
    /// returns the typed [`QuorumError`] instead.
    pub fn run(self) -> Trace {
        self.try_run().expect("infeasible cluster configuration")
    }

    /// Fallible twin of [`ClusterSpec::run`]: infeasible shapes (`n = 0`,
    /// or `n ≤ t²` under the fixed minimum quorum) come back as typed
    /// errors instead of panics.
    ///
    /// # Errors
    ///
    /// Whatever [`ClusterSpec::validate`] reports ([`SpecError`]).
    pub fn try_run(self) -> Result<Trace, SpecError> {
        let latency = self.latency_model()?;
        self.try_run_with_latency(latency, |_| NullApp)
    }

    /// Runs the cluster with an application per process.
    ///
    /// # Panics
    ///
    /// Panics on infeasible configurations; see
    /// [`ClusterSpec::try_run_apps`].
    pub fn run_apps<A, F>(self, make_app: F) -> Trace
    where
        A: Application,
        F: FnMut(ProcessId) -> A,
    {
        self.try_run_apps(make_app)
            .expect("infeasible cluster configuration")
    }

    /// Fallible twin of [`ClusterSpec::run_apps`].
    ///
    /// # Errors
    ///
    /// Whatever [`ClusterSpec::validate`] reports ([`SpecError`]).
    pub fn try_run_apps<A, F>(self, make_app: F) -> Result<Trace, SpecError>
    where
        A: Application,
        F: FnMut(ProcessId) -> A,
    {
        let latency = self.latency_model()?;
        self.try_run_with_latency(latency, make_app)
    }

    /// Runs the cluster with a custom latency model (e.g. the adversarial
    /// [`OverrideLatency`](sfs_asys::OverrideLatency) used by the Theorem 6
    /// experiment).
    ///
    /// # Panics
    ///
    /// Panics on infeasible configurations; see
    /// [`ClusterSpec::try_run_with_latency`].
    pub fn run_with_latency<A, F>(self, latency: impl LinkModel + 'static, make_app: F) -> Trace
    where
        A: Application,
        F: FnMut(ProcessId) -> A,
    {
        self.try_run_with_latency(latency, make_app)
            .expect("infeasible cluster configuration")
    }

    /// Fallible twin of [`ClusterSpec::run_with_latency`].
    ///
    /// # Errors
    ///
    /// Whatever [`ClusterSpec::validate`] reports ([`SpecError`]).
    pub fn try_run_with_latency<A, F>(
        self,
        latency: impl LinkModel + 'static,
        make_app: F,
    ) -> Result<Trace, SpecError>
    where
        A: Application,
        F: FnMut(ProcessId) -> A,
    {
        Ok(self.try_build_with_latency(latency, make_app)?.run())
    }

    /// Builds the cluster's simulator **without running it** — the hook
    /// for schedule exploration: the `sfs-explore` crate re-executes the
    /// same cluster under every schedule its search prescribes, so it
    /// needs a fresh, un-run [`Sim`] per execution (the spec is `Clone`;
    /// clone it once per build).
    ///
    /// # Panics
    ///
    /// Panics on infeasible configurations; see
    /// [`ClusterSpec::try_build_with_latency`].
    pub fn build_with_latency<A, F>(
        self,
        latency: impl LinkModel + 'static,
        make_app: F,
    ) -> Sim<SfsMsg<A::Msg>>
    where
        A: Application,
        F: FnMut(ProcessId) -> A,
    {
        self.try_build_with_latency(latency, make_app)
            .expect("infeasible cluster configuration")
    }

    /// Fallible twin of [`ClusterSpec::build_with_latency`].
    ///
    /// # Errors
    ///
    /// Whatever [`ClusterSpec::validate`] reports ([`SpecError`]).
    pub fn try_build_with_latency<A, F>(
        self,
        latency: impl LinkModel + 'static,
        mut make_app: F,
    ) -> Result<Sim<SfsMsg<A::Msg>>, SpecError>
    where
        A: Application,
        F: FnMut(ProcessId) -> A,
    {
        self.validate()?;
        let builder = Sim::<SfsMsg<A::Msg>>::builder(self.n)
            .seed(self.seed)
            .max_time(self.max_time)
            .max_events(self.max_events)
            .batch_deliveries(self.batch)
            .link(latency)
            // Obituaries and heartbeats are the detector's own mechanism,
            // beneath the paper's formal model; only App messages are
            // model-level events.
            .classify(|m: &SfsMsg<A::Msg>| !m.is_app())
            .faults(self.fault_plan());
        let builder = match &self.obs {
            Some(obs) => builder.observe(obs.clone()),
            None => builder,
        };
        let builder = match &self.sink {
            Some(sink) => builder.event_sink(sink.clone()),
            None => builder,
        };
        let registry = builder.crash_registry();
        Ok(builder.build(|pid| {
            let config = self.sfs_config(&registry);
            let process = SfsProcess::new(config, make_app(pid))
                .expect("validate() already admitted this shape");
            Box::new(process)
        }))
    }

    /// Spawns the cluster on the **threaded runtime** — identical protocol
    /// code on real OS threads, on the event-driven virtual clock. The
    /// spec's scripted crashes and suspicions are seeded onto the
    /// router's timer wheel at spawn, so they fire at their exact
    /// virtual ticks (before any message due at the same instant);
    /// the caller may inject *additional* stimuli and must shut the
    /// runtime down. Most callers want [`ClusterSpec::run_threaded`].
    ///
    /// The runtime gets the same infrastructure classifier as the
    /// simulator build (so histories project identically), a
    /// [`CrashRegistry`] the router marks (which makes
    /// [`ModeSpec::Oracle`] work on threads too), and the spec's
    /// `max_time`/`max_events` bounds — the same horizon the simulator
    /// honours, now meaningful on threads because the router's clock is
    /// logical, not wall-clock.
    ///
    /// # Panics
    ///
    /// Panics on infeasible configurations, as the simulator builds do;
    /// see [`ClusterSpec::try_spawn_runtime`].
    pub fn spawn_runtime<A, F>(&self, make_app: F) -> Runtime<SfsMsg<A::Msg>>
    where
        A: Application + Send + 'static,
        A::Msg: Send,
        F: FnMut(ProcessId) -> A,
    {
        self.try_spawn_runtime(make_app)
            .expect("infeasible cluster configuration")
    }

    /// Fallible twin of [`ClusterSpec::spawn_runtime`].
    ///
    /// # Errors
    ///
    /// Whatever [`ClusterSpec::validate`] reports ([`SpecError`]).
    pub fn try_spawn_runtime<A, F>(
        &self,
        mut make_app: F,
    ) -> Result<Runtime<SfsMsg<A::Msg>>, SpecError>
    where
        A: Application + Send + 'static,
        A::Msg: Send,
        F: FnMut(ProcessId) -> A,
    {
        self.validate()?;
        let registry = CrashRegistry::new(self.n);
        let config = RuntimeConfig {
            seed: self.seed,
            delay: None,
            link: None,
            record_payloads: false,
            classify: Some(Box::new(|m: &SfsMsg<A::Msg>| !m.is_app())),
            measure: None,
            obs: self.obs.clone(),
            sink: self.sink.clone(),
            registry: Some(registry.clone()),
            batch: self.batch,
            faults: self.fault_plan::<A::Msg>(),
            max_time: self.max_time,
            max_events: self.max_events,
        };
        let spec = self.clone();
        Ok(Runtime::spawn(self.n, config, move |pid| {
            let config = spec.sfs_config(&registry);
            let process = SfsProcess::new(config, make_app(pid))
                .expect("validate() already admitted this shape");
            Box::new(process)
        }))
    }

    /// Runs the cluster on the threaded runtime: spawns it with the
    /// scripted crashes and suspicions on the router's timer wheel (they
    /// fire at their exact virtual ticks), waits up to `settle` wall
    /// clock for quiescence, and returns the recorded trace. See
    /// [`ClusterSpec::run_threaded_quiesced`] for the quiescence verdict
    /// itself.
    ///
    /// # Panics
    ///
    /// Panics on infeasible configurations; see
    /// [`ClusterSpec::try_run_threaded`].
    pub fn run_threaded<A, F>(&self, make_app: F, settle: Duration) -> Trace
    where
        A: Application + Send + 'static,
        A::Msg: Send,
        F: FnMut(ProcessId) -> A,
    {
        self.run_threaded_quiesced(make_app, settle).0
    }

    /// Fallible twin of [`ClusterSpec::run_threaded`].
    ///
    /// # Errors
    ///
    /// Whatever [`ClusterSpec::validate`] reports ([`SpecError`]).
    pub fn try_run_threaded<A, F>(&self, make_app: F, settle: Duration) -> Result<Trace, SpecError>
    where
        A: Application + Send + 'static,
        A::Msg: Send,
        F: FnMut(ProcessId) -> A,
    {
        Ok(self.try_run_threaded_quiesced(make_app, settle)?.0)
    }

    /// [`ClusterSpec::run_threaded`], also reporting whether the system
    /// **quiesced** before shutdown, via the runtime's drain handshake
    /// ([`Runtime::drain`]): every forwarded event fully dispatched, no
    /// pending deliveries, timers, or scheduled injections. A `true`
    /// means the trace is maximal — no recorded receive is missing its
    /// handler's effects — and matches a
    /// [`Quiescent`](sfs_asys::StopReason::Quiescent) stop reason on the
    /// trace, exactly as on the simulator. Heartbeat and oracle
    /// configurations re-arm timers forever and thus never quiesce: they
    /// run to the spec's `max_time` horizon (or `max_events` budget) at
    /// compute speed and the drain reports `false`. The `settle`
    /// duration is only a wall-clock upper bound on waiting for either
    /// outcome, not a pacing parameter.
    ///
    /// This is the third execution backend next to [`ClusterSpec::run`]
    /// (deterministic simulation) and the explorer's scheduled
    /// re-execution; the conformance harness in `sfs-apps` cross-checks
    /// all three.
    ///
    /// # Panics
    ///
    /// Panics on infeasible configurations; see
    /// [`ClusterSpec::try_run_threaded_quiesced`].
    pub fn run_threaded_quiesced<A, F>(&self, make_app: F, settle: Duration) -> (Trace, bool)
    where
        A: Application + Send + 'static,
        A::Msg: Send,
        F: FnMut(ProcessId) -> A,
    {
        self.try_run_threaded_quiesced(make_app, settle)
            .expect("infeasible cluster configuration")
    }

    /// Fallible twin of [`ClusterSpec::run_threaded_quiesced`].
    ///
    /// # Errors
    ///
    /// Whatever [`ClusterSpec::validate`] reports ([`SpecError`]).
    pub fn try_run_threaded_quiesced<A, F>(
        &self,
        make_app: F,
        settle: Duration,
    ) -> Result<(Trace, bool), SpecError>
    where
        A: Application + Send + 'static,
        A::Msg: Send,
        F: FnMut(ProcessId) -> A,
    {
        let rt = self.try_spawn_runtime(make_app)?;
        let quiesced = rt.drain(settle);
        Ok((rt.shutdown(), quiesced))
    }

    // ---- the faulty-network (transport-backed) legs ----------------------

    /// The spec's fault plan over the transport wire alphabet: crashes
    /// unchanged; suspicions wrapped as [`TransportMsg::Ctl`] stimuli the
    /// ARQ wrapper unwraps to the protocol's `on_external`.
    fn fault_plan_net<M: Clone>(&self) -> FaultPlan<TransportMsg<SfsMsg<M>>> {
        self.fault_plan_wrapped(|c| TransportMsg::Ctl(SfsMsg::Control(c)))
    }

    /// One transport-wrapped protocol process, as the net legs build it:
    /// the §5 automaton inside the ARQ layer, with inner-payload
    /// classification (only `App` messages are model-level) and — when
    /// the [`NetSpec`] enables probing — endogenous suspicion wired to
    /// `Control::Suspect`.
    fn wrap_process<A: Application>(
        &self,
        net: &NetSpec,
        registry: &CrashRegistry,
        app: A,
    ) -> Reliable<SfsProcess<A>, SfsMsg<A::Msg>> {
        let process = SfsProcess::new(self.sfs_config(registry), app)
            .expect("validate() already admitted this shape");
        let mut wrapped =
            Reliable::new(process, net.arq).classify(|m: &SfsMsg<A::Msg>| !m.is_app());
        if let Some(probe) = net.probe {
            wrapped = wrapped.suspicion(probe, |peer| {
                SfsMsg::Control(Control::Suspect { suspect: peer })
            });
        }
        if let Some(adaptive) = net.adaptive {
            wrapped = wrapped.adaptive(adaptive);
        }
        wrapped
    }

    /// Builds the **transport-backed** simulator for this spec — the §5
    /// protocol wrapped in the `sfs-transport` ARQ layer, over the
    /// faulty link the spec's [`NetSpec`] describes — without running
    /// it. The net-leg mirror of [`ClusterSpec::build_with_latency`]:
    /// schedule exploration and conformance re-execute from here.
    ///
    /// All wire frames are classified as infrastructure; the model-level
    /// history comes from the wrapper's logical send/receive events, so
    /// the usual projections and property checkers apply unchanged.
    ///
    /// # Errors
    ///
    /// Whatever [`ClusterSpec::validate`] reports ([`SpecError`]).
    pub fn try_build_net<A, F>(
        &self,
        make_app: F,
    ) -> Result<Sim<TransportMsg<SfsMsg<A::Msg>>>, SpecError>
    where
        A: Application,
        F: FnMut(ProcessId) -> A,
    {
        self.try_build_net_with(|b| b, make_app)
    }

    /// [`ClusterSpec::try_build_net`] with a builder-tuning hook: `tune`
    /// receives the fully configured [`SimBuilder`](sfs_asys::SimBuilder)
    /// right before processes are constructed, for instrumentation the
    /// spec itself does not model — e.g. the wire-byte measure behind
    /// [`ClusterSpec::try_run_net_measured`](crate::udp).
    ///
    /// # Errors
    ///
    /// Whatever [`ClusterSpec::validate`] reports ([`SpecError`]).
    pub fn try_build_net_with<A, F, G>(
        &self,
        tune: G,
        mut make_app: F,
    ) -> Result<Sim<TransportMsg<SfsMsg<A::Msg>>>, SpecError>
    where
        A: Application,
        F: FnMut(ProcessId) -> A,
        G: FnOnce(
            sfs_asys::SimBuilder<TransportMsg<SfsMsg<A::Msg>>>,
        ) -> sfs_asys::SimBuilder<TransportMsg<SfsMsg<A::Msg>>>,
    {
        self.validate()?;
        let net = self.net.clone().unwrap_or_default();
        let link = self.link_model()?;
        let builder = Sim::<TransportMsg<SfsMsg<A::Msg>>>::builder(self.n)
            .seed(self.seed)
            .max_time(self.max_time)
            .max_events(self.max_events)
            .batch_deliveries(self.batch)
            .link(link)
            // Every wire frame is transport infrastructure; the model
            // alphabet is reconstructed from the wrapper's logical events.
            .classify(|_| true)
            .faults(self.fault_plan_net());
        let builder = match &self.obs {
            Some(obs) => builder.observe(obs.clone()),
            None => builder,
        };
        let builder = match &self.sink {
            Some(sink) => builder.event_sink(sink.clone()),
            None => builder,
        };
        let builder = tune(builder);
        let registry = builder.crash_registry();
        Ok(builder.build(|pid| Box::new(self.wrap_process(&net, &registry, make_app(pid)))))
    }

    /// Runs the transport-backed cluster on the simulator; panicking twin
    /// of [`ClusterSpec::try_run_net`].
    ///
    /// # Panics
    ///
    /// Panics on infeasible configurations.
    pub fn run_net(self) -> Trace {
        self.try_run_net(|_| NullApp)
            .expect("infeasible cluster configuration")
    }

    /// Runs the transport-backed cluster with an application per process.
    ///
    /// # Errors
    ///
    /// Whatever [`ClusterSpec::validate`] reports ([`SpecError`]).
    pub fn try_run_net<A, F>(&self, make_app: F) -> Result<Trace, SpecError>
    where
        A: Application,
        F: FnMut(ProcessId) -> A,
    {
        Ok(self.try_build_net(make_app)?.run())
    }

    /// Spawns the transport-backed cluster on the **threaded runtime**:
    /// the same ARQ-wrapped processes on real OS threads, with the
    /// spec's [`NetSpec`] driving the router's link seam on the virtual
    /// clock (link-verdict delays are wheel deadlines). The spec's
    /// fault plan is seeded onto the wheel at spawn; the caller may
    /// inject additional stimuli and must shut down. Most callers want
    /// [`ClusterSpec::try_run_threaded_net`].
    ///
    /// # Errors
    ///
    /// Whatever [`ClusterSpec::validate`] reports ([`SpecError`]).
    pub fn try_spawn_net_runtime<A, F>(
        &self,
        make_app: F,
    ) -> Result<Runtime<TransportMsg<SfsMsg<A::Msg>>>, SpecError>
    where
        A: Application + Send + 'static,
        A::Msg: Send,
        F: FnMut(ProcessId) -> A,
    {
        self.try_spawn_net_runtime_measured(None, make_app)
    }

    /// [`ClusterSpec::try_spawn_net_runtime`] with an optional wire-byte
    /// measure, the threaded mirror of the simulator's
    /// `SimBuilder::measure` tuning in
    /// [`ClusterSpec::try_run_net_measured`](crate::udp): every sent
    /// frame is charged `measure(frame)` bytes to
    /// [`SimStats::wire_bytes`](sfs_asys::SimStats), making the threaded
    /// leg's byte accounting directly comparable to the simulator's and
    /// the UDP backend's.
    ///
    /// # Errors
    ///
    /// Whatever [`ClusterSpec::validate`] reports ([`SpecError`]).
    pub fn try_spawn_net_runtime_measured<A, F>(
        &self,
        measure: Option<sfs_asys::net::Measure<TransportMsg<SfsMsg<A::Msg>>>>,
        mut make_app: F,
    ) -> Result<Runtime<TransportMsg<SfsMsg<A::Msg>>>, SpecError>
    where
        A: Application + Send + 'static,
        A::Msg: Send,
        F: FnMut(ProcessId) -> A,
    {
        self.validate()?;
        let net = self.net.clone().unwrap_or_default();
        let registry = CrashRegistry::new(self.n);
        let config = RuntimeConfig {
            seed: self.seed,
            delay: None,
            link: Some(Box::new(self.link_model()?)),
            record_payloads: false,
            classify: Some(Box::new(|_: &TransportMsg<SfsMsg<A::Msg>>| true)),
            measure,
            obs: self.obs.clone(),
            sink: self.sink.clone(),
            registry: Some(registry.clone()),
            batch: self.batch,
            faults: self.fault_plan_net::<A::Msg>(),
            max_time: self.max_time,
            max_events: self.max_events,
        };
        let spec = self.clone();
        Ok(Runtime::spawn(self.n, config, move |pid| {
            Box::new(spec.wrap_process(&net, &registry, make_app(pid)))
        }))
    }

    /// Runs the transport-backed cluster on the threaded runtime, with
    /// the scripted crashes and suspicions firing at their exact virtual
    /// ticks, and reports whether the run quiesced — the net-leg mirror
    /// of [`ClusterSpec::run_threaded_quiesced`].
    ///
    /// # Errors
    ///
    /// Whatever [`ClusterSpec::validate`] reports ([`SpecError`]).
    pub fn try_run_threaded_net<A, F>(
        &self,
        make_app: F,
        settle: Duration,
    ) -> Result<(Trace, bool), SpecError>
    where
        A: Application + Send + 'static,
        A::Msg: Send,
        F: FnMut(ProcessId) -> A,
    {
        let rt = self.try_spawn_net_runtime(make_app)?;
        let quiesced = rt.drain(settle);
        Ok((rt.shutdown(), quiesced))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_asys::StopReason;
    use sfs_history::History;
    use sfs_tlogic::{properties, Verdict};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn injected_suspicion_detects_and_kills_the_victim() {
        // p1 erroneously suspects p0; the protocol must (a) eventually make
        // every live process detect p0, and (b) crash p0 (sFS2a).
        let trace = ClusterSpec::new(5, 2).seed(3).suspect(p(1), p(0), 10).run();
        assert_eq!(trace.stop_reason(), StopReason::Quiescent);
        assert_eq!(trace.crashed(), vec![p(0)]);
        let h = History::from_trace(&trace);
        let reports = properties::check_sfs_suite(&h, true);
        for r in &reports {
            assert!(r.is_ok(), "{r}\n{}", trace.to_pretty_string());
        }
        // All four survivors detected p0.
        let detectors: std::collections::BTreeSet<_> =
            trace.detections().into_iter().map(|(by, _)| by).collect();
        assert_eq!(detectors.len(), 4);
    }

    #[test]
    fn real_crash_with_heartbeats_is_detected_by_all() {
        let trace = ClusterSpec::new(4, 1)
            .heartbeat(HeartbeatConfig::default())
            .crash(p(2), 50)
            .max_time(2_000)
            .seed(7)
            .run();
        let h = History::from_trace(&trace);
        assert_eq!(
            properties::check_fs2(&h).verdict,
            Verdict::Holds,
            "true crash: FS2 holds"
        );
        let detectors: std::collections::BTreeSet<_> = trace
            .detections()
            .into_iter()
            .map(|(by, of)| {
                assert_eq!(of, p(2));
                by
            })
            .collect();
        assert_eq!(detectors.len(), 3, "{}", trace.to_pretty_string());
    }

    #[test]
    fn oracle_mode_produces_fs_runs() {
        let trace = ClusterSpec::new(4, 1)
            .mode(ModeSpec::Oracle)
            .heartbeat(HeartbeatConfig::default())
            .crash(p(1), 40)
            .max_time(1_000)
            .seed(5)
            .run();
        let h = History::from_trace(&trace);
        assert_eq!(properties::check_fs2(&h).verdict, Verdict::Holds);
        assert_eq!(properties::check_fs1(&h, false).verdict, Verdict::Holds);
    }

    #[test]
    fn unilateral_mode_detects_without_killing() {
        // Unilateral detection does not propagate an obituary, so the
        // victim survives — an sFS2a violation on a complete run.
        let trace = ClusterSpec::new(3, 1)
            .mode(ModeSpec::Unilateral)
            .suspect(p(1), p(0), 10)
            .run();
        assert_eq!(trace.crashed(), vec![]);
        let h = History::from_trace(&trace);
        assert_eq!(properties::check_sfs2a(&h, true).verdict, Verdict::Violated);
    }

    #[test]
    fn cheap_broadcast_kills_but_skips_quorum() {
        let trace = ClusterSpec::new(5, 2)
            .mode(ModeSpec::CheapBroadcast)
            .suspect(p(1), p(0), 10)
            .run();
        assert_eq!(trace.crashed(), vec![p(0)]);
        let h = History::from_trace(&trace);
        assert_eq!(properties::check_sfs2a(&h, true).verdict, Verdict::Holds);
        assert_eq!(properties::check_sfs2c(&h).verdict, Verdict::Holds);
        assert_eq!(properties::check_sfs2d(&h).verdict, Verdict::Holds);
    }

    #[test]
    fn threaded_backend_runs_the_same_spec() {
        // The same declarative spec, on real threads: p1's injected
        // suspicion must detect-and-kill p0 exactly as in the simulator.
        let trace = ClusterSpec::new(4, 1)
            .suspect(p(1), p(0), 10)
            .run_threaded(|_| NullApp, Duration::from_millis(300));
        assert_eq!(trace.crashed(), vec![p(0)], "{}", trace.to_pretty_string());
        assert!(trace.channels_drained(), "{}", trace.to_pretty_string());
        let h = History::from_trace(&trace);
        assert_eq!(properties::check_sfs2b(&h).verdict, Verdict::Holds);
    }

    #[test]
    fn threaded_crash_at_tick_t_precedes_every_event_at_t_plus_one() {
        // The spec's fault plan rides the router's timer wheel, so a
        // scripted crash at tick 40 must be recorded at exactly tick 40,
        // before any event of tick 41 or later, and the victim must act
        // at no instant after it — the same guarantee the simulator's
        // build-time fault queue gives. Heartbeats keep the survivors
        // busy well past the crash so the ordering claim has teeth.
        use sfs_asys::TraceEventKind;

        let (trace, _quiesced) = ClusterSpec::new(4, 1)
            .heartbeat(HeartbeatConfig::default())
            .crash(p(2), 40)
            .max_time(200)
            .seed(7)
            .run_threaded_quiesced(|_| NullApp, Duration::from_secs(10));
        let crash = trace
            .events()
            .iter()
            .find(|e| matches!(e.kind, TraceEventKind::Crash { pid } if pid == p(2)))
            .expect("scripted crash is recorded");
        assert_eq!(crash.time, VirtualTime::from_ticks(40));
        let mut saw_later_event = false;
        for e in trace.events() {
            if e.time > crash.time {
                saw_later_event = true;
                assert!(
                    e.seq > crash.seq,
                    "event at tick {} recorded before the tick-40 crash:\n{}",
                    e.time.ticks(),
                    trace.to_pretty_string()
                );
                assert_ne!(
                    e.kind.process(),
                    p(2),
                    "victim acted after its crash:\n{}",
                    trace.to_pretty_string()
                );
            }
        }
        assert!(saw_later_event, "run continued past the crash tick");
    }

    #[test]
    fn threaded_oracle_mode_detects_via_the_shared_registry() {
        let trace = ClusterSpec::new(3, 1)
            .mode(ModeSpec::Oracle)
            .crash(p(2), 20)
            .run_threaded(|_| NullApp, Duration::from_millis(400));
        let detectors: std::collections::BTreeSet<_> = trace
            .detections()
            .into_iter()
            .map(|(by, of)| {
                assert_eq!(of, p(2));
                by
            })
            .collect();
        assert_eq!(detectors.len(), 2, "{}", trace.to_pretty_string());
        assert_eq!(
            properties::check_fs2(&History::from_trace(&trace)).verdict,
            Verdict::Holds
        );
    }

    #[test]
    fn infeasible_shapes_return_typed_errors_not_panics() {
        use crate::quorum::QuorumError;

        // n = t² sits exactly on the wrong side of Corollary 8.
        let err = ClusterSpec::new(9, 3).try_run().unwrap_err();
        assert_eq!(
            err,
            SpecError::Quorum(QuorumError::Infeasible {
                n: 9,
                t: 3,
                required: 7
            })
        );
        // Every fallible entry point reports the same typed error.
        assert!(ClusterSpec::new(9, 3).try_run_apps(|_| NullApp).is_err());
        assert!(ClusterSpec::new(9, 3)
            .try_build_with_latency(UniformLatency::new(1, 10), |_| NullApp)
            .is_err());
        assert!(ClusterSpec::new(9, 3)
            .try_spawn_runtime(|_| NullApp)
            .is_err());
        assert!(ClusterSpec::new(9, 3)
            .try_run_threaded(|_| NullApp, Duration::from_millis(10))
            .is_err());
        // The empty system is its own error, caught before any engine
        // (whose constructors assert n > 0) can panic.
        assert_eq!(
            ClusterSpec::new(0, 0).try_run().unwrap_err(),
            SpecError::Quorum(QuorumError::NoProcesses)
        );
        // Inverted latency bounds are the other class of spec error,
        // surfaced through the same validation (never a panic).
        assert_eq!(
            ClusterSpec::new(10, 3).latency(9, 2).try_run().unwrap_err(),
            SpecError::Latency(sfs_asys::LatencyError::InvertedRange { min: 9, max: 2 })
        );
        // Degenerate transport configurations surface as typed spec
        // errors through the same validation, like latency errors.
        assert_eq!(
            ClusterSpec::new(10, 3)
                .net(NetSpec::faultless().arq(ArqConfig {
                    window: 0,
                    retransmit_after: 40,
                }))
                .validate()
                .unwrap_err(),
            SpecError::Transport(TransportError::ZeroWindow)
        );
        assert_eq!(
            ClusterSpec::new(10, 3)
                .net(NetSpec::faultless().probe(ProbeConfig {
                    interval: 20,
                    timeout: 0,
                    check_every: 25,
                }))
                .validate()
                .unwrap_err(),
            SpecError::Transport(TransportError::ZeroTimeout)
        );
        assert_eq!(
            ClusterSpec::new(10, 3)
                .net(NetSpec::faultless().adaptive(AdaptiveConfig {
                    min_rto: 50,
                    max_rto: 20,
                    jitter: 5,
                    max_suspicion: 1_000,
                }))
                .validate()
                .unwrap_err(),
            SpecError::Transport(TransportError::InvertedRtoBounds { min: 50, max: 20 })
        );
        // Non-quorum modes skip the Corollary 8 check, as in SfsConfig.
        assert!(ClusterSpec::new(9, 3)
            .mode(ModeSpec::Unilateral)
            .validate()
            .is_ok());
        // WaitForAll only needs t < n.
        assert!(ClusterSpec::new(9, 3)
            .quorum(QuorumPolicy::WaitForAll)
            .validate()
            .is_ok());
    }

    #[test]
    fn batched_spec_produces_equivalent_runs_on_sim() {
        // The batch switch must not change what any process observes:
        // detection outcome, crash set, and per-process event order are
        // identical; only cross-process interleaving within an instant
        // may differ (pinned in full by the HB fingerprint test in
        // sfs-apps).
        let spec = |batch: bool| {
            ClusterSpec::new(6, 2)
                .seed(9)
                .batched(batch)
                .suspect(p(1), p(0), 10)
        };
        let plain = spec(false).run();
        let batched = spec(true).run();
        let sorted = |mut v: Vec<_>| {
            v.sort();
            v
        };
        assert_eq!(plain.crashed(), batched.crashed());
        assert_eq!(sorted(plain.detections()), sorted(batched.detections()));
        assert_eq!(plain.stop_reason(), batched.stop_reason());
        assert_eq!(
            plain.stats().messages_delivered,
            batched.stats().messages_delivered
        );
    }

    #[test]
    fn net_leg_loss_free_run_matches_the_bare_outcome() {
        // The transport-wrapped run of a faultless net must reproduce the
        // bare run's observable outcome: same victim, full sFS suite.
        let spec = ClusterSpec::new(5, 2).seed(3).suspect(p(1), p(0), 10);
        let bare = spec.clone().run();
        let net = spec.net(NetSpec::faultless()).run_net();
        assert_eq!(net.stop_reason(), StopReason::Quiescent);
        assert_eq!(net.crashed(), bare.crashed());
        let h = History::from_trace(&net);
        assert!(h.validate().is_ok(), "{h}", h = h.to_pretty_string());
        for r in properties::check_sfs_suite(&h, true) {
            assert!(r.is_ok(), "{r}\n{}", net.to_pretty_string());
        }
        let detectors: std::collections::BTreeSet<_> =
            net.detections().into_iter().map(|(by, _)| by).collect();
        assert_eq!(detectors.len(), 4);
    }

    #[test]
    fn net_leg_keeps_every_sfs_clause_under_heavy_loss() {
        // 25% i.i.d. loss: the ARQ layer must reconstruct the reliable
        // channels and the protocol must keep all sFS clauses.
        for seed in [1, 7, 23] {
            let trace = ClusterSpec::new(5, 2)
                .seed(seed)
                .suspect(p(1), p(0), 10)
                .net(NetSpec::faultless().loss(0.25))
                .run_net();
            assert_eq!(trace.crashed(), vec![p(0)], "seed {seed}");
            assert!(trace.stats().messages_dropped > 0, "seed {seed}: not lossy");
            let h = History::from_trace(&trace);
            assert!(h.validate().is_ok(), "seed {seed}");
            let complete = trace.stop_reason().is_complete();
            for r in properties::check_sfs_suite(&h, complete) {
                assert!(r.is_ok(), "seed {seed}: {r}\n{}", trace.to_pretty_string());
            }
        }
    }

    #[test]
    fn endogenous_false_suspicion_becomes_a_clean_sfs_kill() {
        // No scripted suspicions, no crashes: p0's outbound links are
        // severed for [50, 600), so its transport heartbeats stop
        // arriving while p0 itself stays perfectly alive. The probers on
        // the other side time out — an endogenous FALSE suspicion — and
        // the §5 protocol converts it into a clean kill: quorum detection
        // by every survivor plus crash-by-own-obituary for p0 (whose
        // inbound links still work).
        let outbound: Vec<_> = (1..5).map(|j| (p(0), p(j))).collect();
        let trace = ClusterSpec::new(5, 2)
            .seed(11)
            .max_time(3_000)
            .net(
                NetSpec::faultless()
                    .probe(sfs_transport::ProbeConfig::default())
                    .partitions(PartitionSchedule::new().cut_links(
                        VirtualTime::from_ticks(50),
                        VirtualTime::from_ticks(600),
                        &outbound,
                    )),
            )
            .run_net();
        assert_eq!(trace.crashed(), vec![p(0)], "{}", trace.to_pretty_string());
        let detectors: std::collections::BTreeSet<_> = trace
            .detections()
            .into_iter()
            .map(|(by, of)| {
                assert_eq!(of, p(0), "only the isolated process is detected");
                by
            })
            .collect();
        assert_eq!(detectors.len(), 4, "every survivor detects p0");
        let h = History::from_trace(&trace);
        assert!(h.validate().is_ok());
        // Probing re-arms forever, so the run is horizon-bounded; all
        // safety clauses must hold on the prefix.
        for r in properties::check_sfs_suite(&h, false) {
            assert!(r.is_ok(), "{r}\n{}", trace.to_pretty_string());
        }
    }

    #[test]
    fn net_leg_runs_on_the_threaded_backend() {
        let (trace, _quiesced) = ClusterSpec::new(4, 1)
            .suspect(p(1), p(0), 10)
            .net(NetSpec::faultless())
            .try_run_threaded_net(|_| NullApp, Duration::from_millis(400))
            .expect("feasible spec");
        assert_eq!(trace.crashed(), vec![p(0)], "{}", trace.to_pretty_string());
        let h = History::from_trace(&trace);
        assert!(h.validate().is_ok(), "{}", h.to_pretty_string());
        assert_eq!(properties::check_sfs2b(&h).verdict, Verdict::Holds);
    }

    #[test]
    fn concurrent_mutual_suspicion_does_not_cycle() {
        // p0 suspects p1 and p1 suspects p0 at the same instant. sFS2b must
        // hold: at most one of failed_*(p0)/failed_*(p1) directions wins.
        for seed in 0..30 {
            let trace = ClusterSpec::new(5, 2)
                .seed(seed)
                .suspect(p(0), p(1), 10)
                .suspect(p(1), p(0), 10)
                .run();
            let h = History::from_trace(&trace);
            let r = properties::check_sfs2b(&h);
            assert!(r.is_ok(), "seed {seed}: {r}\n{}", trace.to_pretty_string());
        }
    }
}
