//! Determining the last process to fail (\[Ske85\], discussed in §6).
//!
//! After a *total failure* (every process crashes), recovering processes
//! want to know which process(es) failed last — e.g. to restart from the
//! freshest state. Each process logs its view of the failed-before
//! relation to stable storage as it detects failures; recovery intersects
//! the logs.
//!
//! The paper's point: this problem is **sensitive to sFS2b**. If
//! failed-before is acyclic, the sinks of the logged relation are exactly
//! the candidates for "last to fail", and recovery can proceed once they
//! have recovered. If cyclic detections are possible (the §6 cheap model,
//! or unilateral timeouts), every process can appear in some log as
//! "failed before another", leaving **no** consistent candidate — the only
//! safe recovery is to wait for *everyone*, or worse, conclude something
//! false (the paper's two-process example: process 1 falsely detects 2,
//! crashes; 2 works on, crashes last; 1 recovers and wrongly concludes it
//! was last).
//!
//! Stable storage is modelled by the trace itself: the detections a
//! process executed before its crash are exactly what it would have
//! logged. (Only the contents' survival across the crash matters to the
//! algorithm; see DESIGN.md.)

use sfs_asys::{ProcessId, Trace};
use sfs_history::{FailedBefore, History};

/// Result of the recovery computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recovery {
    /// The logged failed-before relation is acyclic; these are the
    /// processes that no log records as having failed before anyone —
    /// the candidates for "last to fail".
    Candidates(Vec<ProcessId>),
    /// The logs contain a failed-before cycle: no consistent answer
    /// exists. The cycle (as processes) is returned as the certificate.
    Inconsistent(Vec<ProcessId>),
}

impl Recovery {
    /// Whether recovery produced a usable answer.
    pub fn is_consistent(&self) -> bool {
        matches!(self, Recovery::Candidates(_))
    }
}

/// Replays the stable-storage logs from a total-failure trace and computes
/// the last-to-fail candidates.
///
/// All processes that crashed participate; detections by processes that
/// never crashed are also consulted (they are simply recovering peers
/// whose log is current).
pub fn recover_last_to_fail(trace: &Trace) -> Recovery {
    let h = History::from_trace(trace);
    let fb = FailedBefore::from_history(&h);
    if let Some(cycle) = fb.find_cycle() {
        return Recovery::Inconsistent(cycle);
    }
    let crashed = h.crashed();
    let candidates = if crashed.is_empty() {
        Vec::new()
    } else {
        fb.sinks_among(&crashed)
    };
    Recovery::Candidates(candidates)
}

/// The process whose crash event is last in the trace — the ground truth
/// a global observer would name, available to experiments but not to any
/// process.
pub fn true_last_to_fail(trace: &Trace) -> Option<ProcessId> {
    trace.crashed().last().copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs::{ClusterSpec, ModeSpec};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// Staggered total failure: crash everyone with time for detections in
    /// between.
    fn total_failure(mode: ModeSpec, n: usize, t: usize, seed: u64) -> Trace {
        let mut spec = ClusterSpec::new(n, t)
            .mode(mode)
            .heartbeat(sfs::HeartbeatConfig {
                interval: 10,
                timeout: 50,
                check_every: 10,
            })
            .seed(seed)
            .max_time(5_000);
        for i in 0..n {
            spec = spec.crash(p(i), 300 + 300 * i as u64);
        }
        spec.run()
    }

    #[test]
    fn oracle_recovery_names_the_true_last() {
        for seed in 0..5 {
            let trace = total_failure(ModeSpec::Oracle, 4, 1, seed);
            let truth = true_last_to_fail(&trace).expect("total failure");
            match recover_last_to_fail(&trace) {
                Recovery::Candidates(c) => {
                    assert!(c.contains(&truth), "seed {seed}: {c:?} missing {truth}")
                }
                Recovery::Inconsistent(cycle) => {
                    panic!("seed {seed}: oracle produced a cycle {cycle:?}")
                }
            }
        }
    }

    #[test]
    fn sfs_recovery_is_always_consistent() {
        for seed in 0..5 {
            let trace = total_failure(ModeSpec::SfsOneRound, 5, 2, seed);
            let rec = recover_last_to_fail(&trace);
            assert!(rec.is_consistent(), "seed {seed}: {rec:?}");
            if let Recovery::Candidates(c) = rec {
                assert!(
                    !c.is_empty(),
                    "seed {seed}: total failure must leave candidates"
                );
            }
        }
    }

    #[test]
    fn cyclic_detection_breaks_recovery() {
        // The paper's two-process story, forced via the cheap model:
        // p0 falsely detects p1 and crashes; p1 detects p0 and crashes.
        // Both logs say "the other failed first" — a cycle.
        let trace = ClusterSpec::new(2, 1)
            .mode(ModeSpec::CheapBroadcast)
            .without_self_crash() // victims survive their obituaries...
            .suspect(p(0), p(1), 10)
            .suspect(p(1), p(0), 10)
            .crash(p(0), 100)
            .crash(p(1), 200)
            .run();
        match recover_last_to_fail(&trace) {
            Recovery::Inconsistent(cycle) => assert_eq!(cycle.len(), 2),
            Recovery::Candidates(c) => {
                panic!(
                    "expected a cycle, got candidates {c:?}\n{}",
                    trace.to_pretty_string()
                )
            }
        }
    }

    #[test]
    fn unilateral_false_detection_misidentifies_the_last() {
        // p0 unilaterally (and falsely) detects p1, then crashes. p1 lives
        // on and crashes last. p0's log says "p1 failed before p0", so
        // recovery excludes the true last process.
        let trace = ClusterSpec::new(2, 1)
            .mode(ModeSpec::Unilateral)
            .suspect(p(0), p(1), 10)
            .crash(p(0), 100)
            .crash(p(1), 500)
            .run();
        let truth = true_last_to_fail(&trace).unwrap();
        assert_eq!(truth, p(1));
        match recover_last_to_fail(&trace) {
            Recovery::Candidates(c) => {
                assert!(
                    !c.contains(&truth),
                    "the false log should exclude {truth}: {c:?}"
                );
            }
            Recovery::Inconsistent(_) => {}
        }
    }
}
