//! Fault-tolerant work distribution on the fail-stop abstraction.
//!
//! This is the kind of protocol the paper's introduction motivates:
//! coordination logic that is easy to write **if** failures look
//! fail-stop. A coordinator (the smallest non-failed process, as in the
//! §1 election) assigns tasks round-robin to workers; workers execute and
//! broadcast completion; when a worker is detected failed its outstanding
//! tasks are reassigned, and when the coordinator is detected failed the
//! next process takes over with the completion knowledge it already has.
//!
//! The failover code never has to reason about "maybe the dead worker is
//! still executing" — under simulated fail-stop, a detected worker is
//! guaranteed dead (sFS2a), so at-least-once execution with reassignment
//! is trivially correct, and the quiescent system always finishes every
//! task (provided a process survives).

use serde::{Deserialize, Serialize};
use sfs::{AppApi, Application};
use sfs_asys::{Note, ProcessId, Trace};
use std::collections::{BTreeMap, BTreeSet};

/// Trace-note key recording a task execution (`val` = task id).
pub const NOTE_EXEC: &str = "exec";

/// Trace-note key recorded by a coordinator observing all tasks done.
pub const NOTE_ALL_DONE: &str = "all-done";

/// Work-pool messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkMsg {
    /// Coordinator → worker: execute this task.
    Assign {
        /// Task id in `0..k`.
        task: u64,
    },
    /// Worker → everyone: this task is complete (broadcast so any future
    /// coordinator knows).
    Done {
        /// Task id in `0..k`.
        task: u64,
    },
}

/// The work-pool automaton. All processes run the same code; coordinator
/// and worker are roles derived from the failure view.
#[derive(Debug, Clone)]
pub struct WorkPoolApp {
    tasks: u64,
    failed: BTreeSet<ProcessId>,
    executed: BTreeSet<u64>,
    done: BTreeSet<u64>,
    /// Task → worker, as assigned by *this* process while coordinating.
    assigned: BTreeMap<u64, ProcessId>,
    coordinating: bool,
}

impl WorkPoolApp {
    /// A pool of `tasks` tasks.
    pub fn new(tasks: u64) -> Self {
        WorkPoolApp {
            tasks,
            failed: BTreeSet::new(),
            executed: BTreeSet::new(),
            done: BTreeSet::new(),
            assigned: BTreeMap::new(),
            coordinating: false,
        }
    }

    /// Tasks this process has executed.
    pub fn executed(&self) -> &BTreeSet<u64> {
        &self.executed
    }

    /// Tasks this process knows to be complete.
    pub fn done(&self) -> &BTreeSet<u64> {
        &self.done
    }

    fn coordinator(&self, api: &AppApi<'_, '_, WorkMsg>) -> ProcessId {
        ProcessId::all(api.n())
            .find(|p| !self.failed.contains(p))
            .expect("a running process cannot have removed everyone")
    }

    fn workers(&self, api: &AppApi<'_, '_, WorkMsg>) -> Vec<ProcessId> {
        ProcessId::all(api.n())
            .filter(|p| !self.failed.contains(p))
            .collect()
    }

    /// (Re)assigns every not-known-done, not-assigned-to-a-live-worker
    /// task.
    fn assign_outstanding(&mut self, api: &mut AppApi<'_, '_, WorkMsg>) {
        let workers = self.workers(api);
        debug_assert!(!workers.is_empty());
        let mut wheel = workers.iter().copied().cycle();
        for task in 0..self.tasks {
            if self.done.contains(&task) {
                continue;
            }
            let needs_assignment = match self.assigned.get(&task) {
                None => true,
                Some(w) => self.failed.contains(w),
            };
            if needs_assignment {
                let worker = wheel.next().expect("nonempty");
                self.assigned.insert(task, worker);
                if worker == api.id() {
                    // Self-assignment executes locally.
                    self.execute(api, task);
                } else {
                    api.send(worker, WorkMsg::Assign { task });
                }
            }
        }
    }

    fn execute(&mut self, api: &mut AppApi<'_, '_, WorkMsg>, task: u64) {
        if self.executed.insert(task) {
            api.annotate(Note::key_val(NOTE_EXEC, task));
        }
        // Broadcast completion (idempotent on the receiving side) and
        // record it locally.
        self.record_done(api, task);
        api.broadcast(WorkMsg::Done { task });
    }

    fn record_done(&mut self, api: &mut AppApi<'_, '_, WorkMsg>, task: u64) {
        self.done.insert(task);
        self.check_completion(api);
    }

    fn check_completion(&mut self, api: &mut AppApi<'_, '_, WorkMsg>) {
        if self.coordinating && self.done.len() as u64 == self.tasks {
            api.annotate(Note::key_val(NOTE_ALL_DONE, self.done.len()));
        }
    }

    fn reconsider_role(&mut self, api: &mut AppApi<'_, '_, WorkMsg>) {
        let leader = self.coordinator(api);
        if leader == api.id() {
            self.coordinating = true;
            self.assign_outstanding(api);
            // Completion may already have happened before we took over.
            self.check_completion(api);
        }
    }
}

impl Application for WorkPoolApp {
    type Msg = WorkMsg;

    fn on_start(&mut self, api: &mut AppApi<'_, '_, WorkMsg>) {
        self.reconsider_role(api);
    }

    fn on_message(&mut self, api: &mut AppApi<'_, '_, WorkMsg>, _from: ProcessId, msg: WorkMsg) {
        match msg {
            WorkMsg::Assign { task } => {
                if !self.done.contains(&task) {
                    self.execute(api, task);
                } else {
                    // Already complete; re-announce for the assigner.
                    api.broadcast(WorkMsg::Done { task });
                }
            }
            WorkMsg::Done { task } => self.record_done(api, task),
        }
    }

    fn on_failure(&mut self, api: &mut AppApi<'_, '_, WorkMsg>, failed: ProcessId) {
        self.failed.insert(failed);
        self.reconsider_role(api);
        if self.coordinating {
            self.assign_outstanding(api);
        }
    }
}

/// Post-run analysis of a work-pool trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkPoolOutcome {
    /// Distinct tasks executed at least once.
    pub tasks_executed: BTreeSet<u64>,
    /// Total executions (≥ tasks when reassignment duplicated work).
    pub total_executions: usize,
    /// Whether some coordinator observed full completion.
    pub all_done_observed: bool,
}

/// Extracts execution counts and completion from a trace.
pub fn analyze_workpool(trace: &Trace) -> WorkPoolOutcome {
    let mut tasks_executed = BTreeSet::new();
    let mut total = 0usize;
    for (_, _, note) in trace.notes_with_key(NOTE_EXEC) {
        if let Note::KeyVal { val, .. } = note {
            if let Ok(task) = val.parse::<u64>() {
                tasks_executed.insert(task);
                total += 1;
            }
        }
    }
    WorkPoolOutcome {
        tasks_executed,
        total_executions: total,
        all_done_observed: trace.notes_with_key(NOTE_ALL_DONE).next().is_some(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs::ClusterSpec;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn all_tasks_complete_without_failures() {
        let trace = ClusterSpec::new(4, 1)
            .seed(2)
            .run_apps(|_| WorkPoolApp::new(12));
        let outcome = analyze_workpool(&trace);
        assert_eq!(outcome.tasks_executed.len(), 12);
        assert_eq!(
            outcome.total_executions, 12,
            "no duplicates without failures"
        );
        assert!(outcome.all_done_observed);
    }

    #[test]
    fn worker_failure_reassigns_its_tasks() {
        for seed in 0..10 {
            let trace = ClusterSpec::new(5, 2)
                .seed(seed)
                .suspect(p(0), p(3), 30)
                .run_apps(|_| WorkPoolApp::new(10));
            let outcome = analyze_workpool(&trace);
            assert_eq!(
                outcome.tasks_executed.len(),
                10,
                "seed {seed}: lost tasks\n{}",
                trace.to_pretty_string()
            );
            assert!(outcome.all_done_observed, "seed {seed}");
        }
    }

    #[test]
    fn coordinator_failure_hands_over() {
        for seed in 0..10 {
            let trace = ClusterSpec::new(5, 2)
                .seed(seed)
                .suspect(p(2), p(0), 25) // kill the coordinator mid-stream
                .run_apps(|_| WorkPoolApp::new(10));
            let outcome = analyze_workpool(&trace);
            assert_eq!(outcome.tasks_executed.len(), 10, "seed {seed}: lost tasks");
            assert!(outcome.all_done_observed, "seed {seed}");
        }
    }

    #[test]
    fn double_failure_still_completes() {
        for seed in 0..10 {
            let trace = ClusterSpec::new(6, 2)
                .seed(seed)
                .suspect(p(2), p(0), 25)
                .suspect(p(3), p(1), 40)
                .run_apps(|_| WorkPoolApp::new(8));
            let outcome = analyze_workpool(&trace);
            assert_eq!(outcome.tasks_executed.len(), 8, "seed {seed}: lost tasks");
        }
    }

    #[test]
    fn reassignment_may_duplicate_but_never_loses() {
        // High-variance latency plus an early kill maximizes the window in
        // which a completed task's Done broadcast is still in flight when
        // the coordinator reassigns.
        let mut duplicates_seen = false;
        for seed in 0..30 {
            let trace = ClusterSpec::new(5, 2)
                .seed(seed)
                .latency(1, 200)
                .suspect(p(0), p(1), 5)
                .run_apps(|_| WorkPoolApp::new(10));
            let outcome = analyze_workpool(&trace);
            assert_eq!(outcome.tasks_executed.len(), 10, "seed {seed}");
            if outcome.total_executions > 10 {
                duplicates_seen = true;
            }
        }
        assert!(
            duplicates_seen,
            "expected at-least-once duplicates in some schedule"
        );
    }
}
