//! A minimal group-membership view service on the fail-stop abstraction.
//!
//! The paper (§6) notes that failure detection "is typically done as part
//! of a group membership service" and argues its protocol can serve as the
//! basis of one. This module is that basis: each process maintains a
//! sequence of *views* — the initial membership, shrunk by one process per
//! detected failure. Because the detector provides fail-stop semantics,
//! the view sequences of any two survivors converge: by FS1 every survivor
//! learns every failure, by sFS2a detected processes really are gone, so
//! at quiescence all survivors hold the identical final view.

use serde::{Deserialize, Serialize};
use sfs::{AppApi, Application};
use sfs_asys::{Note, ProcessId, Trace};
use std::collections::BTreeSet;

/// Trace-note key for view installations. The value is the rendered view.
pub const NOTE_VIEW: &str = "view";

/// One membership view.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct View {
    /// Monotone view number, starting at 0 for the full membership.
    pub id: u64,
    /// Members, ascending.
    pub members: Vec<ProcessId>,
}

impl std::fmt::Display for View {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}{{", self.id)?;
        for (i, m) in self.members.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "}}")
    }
}

/// The membership automaton: installs a new view on every failure
/// notification.
#[derive(Debug, Clone)]
pub struct MembershipApp {
    views: Vec<View>,
    members: BTreeSet<ProcessId>,
}

impl MembershipApp {
    /// A fresh instance; the initial view is installed on start.
    pub fn new() -> Self {
        MembershipApp {
            views: Vec::new(),
            members: BTreeSet::new(),
        }
    }

    /// The view history so far.
    pub fn views(&self) -> &[View] {
        &self.views
    }

    /// The current view.
    pub fn current(&self) -> Option<&View> {
        self.views.last()
    }

    fn install(&mut self, api: &mut AppApi<'_, '_, ()>) {
        let view = View {
            id: self.views.len() as u64,
            members: self.members.iter().copied().collect(),
        };
        api.annotate(Note::key_val(NOTE_VIEW, &view));
        self.views.push(view);
    }
}

impl Default for MembershipApp {
    fn default() -> Self {
        Self::new()
    }
}

impl Application for MembershipApp {
    type Msg = ();

    fn on_start(&mut self, api: &mut AppApi<'_, '_, ()>) {
        self.members = ProcessId::all(api.n()).collect();
        self.install(api);
    }

    fn on_message(&mut self, _: &mut AppApi<'_, '_, ()>, _: ProcessId, _: ()) {}

    fn on_failure(&mut self, api: &mut AppApi<'_, '_, ()>, failed: ProcessId) {
        if self.members.remove(&failed) {
            self.install(api);
        }
    }
}

/// The view sequence each process installed, recovered from a trace.
pub fn view_log(trace: &Trace) -> Vec<(ProcessId, Vec<String>)> {
    let mut per_process: Vec<(ProcessId, Vec<String>)> =
        ProcessId::all(trace.n()).map(|p| (p, Vec::new())).collect();
    for (_, pid, note) in trace.notes_with_key(NOTE_VIEW) {
        if let Note::KeyVal { val, .. } = note {
            per_process[pid.index()].1.push(val.clone());
        }
    }
    per_process
}

/// Checks view convergence: every process that did not crash installed the
/// same final view. Returns the offending pair on failure.
pub fn check_convergence(trace: &Trace) -> Result<(), (ProcessId, ProcessId)> {
    let crashed: BTreeSet<ProcessId> = trace.crashed().into_iter().collect();
    let logs = view_log(trace);
    let survivors: Vec<&(ProcessId, Vec<String>)> =
        logs.iter().filter(|(p, _)| !crashed.contains(p)).collect();
    for pair in survivors.windows(2) {
        let (pa, la) = pair[0];
        let (pb, lb) = pair[1];
        if la.last() != lb.last() {
            return Err((*pa, *pb));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs::ClusterSpec;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn views_shrink_on_detection_and_converge() {
        let trace = ClusterSpec::new(5, 2)
            .seed(11)
            .suspect(p(3), p(4), 10)
            .run_apps(|_| MembershipApp::new());
        check_convergence(&trace).expect("survivor views diverged");
        let logs = view_log(&trace);
        // Survivors installed exactly two views: full membership, then
        // membership minus p4.
        for (pid, views) in &logs {
            if *pid == p(4) {
                continue;
            }
            assert_eq!(views.len(), 2, "{pid}: {views:?}");
            assert!(views[0].contains("p4"));
            assert!(!views[1].contains("p4"), "{pid}: {views:?}");
        }
    }

    #[test]
    fn two_failures_converge_regardless_of_order() {
        for seed in 0..10 {
            let trace = ClusterSpec::new(6, 2)
                .seed(seed)
                .suspect(p(1), p(0), 10)
                .suspect(p(2), p(5), 12)
                .run_apps(|_| MembershipApp::new());
            check_convergence(&trace)
                .unwrap_or_else(|(a, b)| panic!("seed {seed}: {a} and {b} diverged"));
        }
    }

    #[test]
    fn view_ids_are_dense_and_monotone() {
        let trace = ClusterSpec::new(4, 1)
            .seed(3)
            .suspect(p(1), p(2), 10)
            .run_apps(|_| MembershipApp::new());
        for (pid, views) in view_log(&trace) {
            for (i, v) in views.iter().enumerate() {
                assert!(v.starts_with(&format!("v{i}")), "{pid}: {views:?}");
            }
        }
    }
}
