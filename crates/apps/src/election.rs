//! The paper's motivating example (§1): leader election on a failure
//! detector.
//!
//! Each process keeps the list `⟨1, 2, ..., n⟩`; whoever is the smallest
//! not-yet-detected process considers itself the leader. On fail-stop this
//! is trivially safe (at most one leader at a time). Under simulated
//! fail-stop, a *global* observer may see two leaders simultaneously — but
//! no process can ever observe evidence of it (Theorem 5). Under weaker
//! detectors (unilateral timeouts), a process *can* observe such evidence.
//!
//! The observable evidence we instrument is causal: a leader broadcasts a
//! claim; any process that still considers itself leader *rebukes* claims
//! from others. Receiving a rebuke from a process you have already
//! detected as failed is impossible in any fail-stop run — the rebuke is
//! causally after your claim, which is causally after your detection, so
//! in a fail-stop run the rebuker would have crashed before sending it
//! (Condition 3 of the paper). The election app counts these
//! "FS-impossible observations".

use serde::{Deserialize, Serialize};
use sfs::{AppApi, Application};
use sfs_asys::{Note, ProcessId, Trace, TraceEventKind, NOTE_LEADER};
use std::collections::BTreeSet;

/// Trace-note key recording an FS-impossible observation.
pub const NOTE_ANOMALY: &str = "fs-impossible";

/// Messages exchanged by the election application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ElectionMsg {
    /// "I am the leader."
    Claim,
    /// "No you are not — I am." Sent by a self-believed leader in response
    /// to another process's claim.
    Rebuke,
}

/// The election automaton.
#[derive(Debug, Clone)]
pub struct ElectionApp {
    /// Whether this process currently believes it is the leader.
    is_leader: bool,
    /// Processes this app has been told have failed.
    failed: BTreeSet<ProcessId>,
    /// FS-impossible observations (rebukes from detected-failed processes).
    anomalies: u64,
}

impl ElectionApp {
    /// A fresh, followership-assuming instance.
    pub fn new() -> Self {
        ElectionApp {
            is_leader: false,
            failed: BTreeSet::new(),
            anomalies: 0,
        }
    }

    /// Whether this process currently believes it is the leader.
    pub fn is_leader(&self) -> bool {
        self.is_leader
    }

    /// FS-impossible observations made so far.
    pub fn anomalies(&self) -> u64 {
        self.anomalies
    }

    fn leader_of(&self, api: &AppApi<'_, '_, ElectionMsg>) -> ProcessId {
        // The first element of the list that has not been removed.
        ProcessId::all(api.n())
            .find(|p| !self.failed.contains(p))
            .expect("a process that runs cannot have removed everyone including itself")
    }

    fn reconsider(&mut self, api: &mut AppApi<'_, '_, ElectionMsg>) {
        let leader = self.leader_of(api);
        let me = api.id();
        if leader == me && !self.is_leader {
            self.is_leader = true;
            api.annotate(Note::key_val(NOTE_LEADER, me));
            api.broadcast(ElectionMsg::Claim);
        }
    }
}

impl Default for ElectionApp {
    fn default() -> Self {
        Self::new()
    }
}

impl Application for ElectionApp {
    type Msg = ElectionMsg;

    fn on_start(&mut self, api: &mut AppApi<'_, '_, ElectionMsg>) {
        self.reconsider(api);
    }

    fn on_failure(&mut self, api: &mut AppApi<'_, '_, ElectionMsg>, failed: ProcessId) {
        self.failed.insert(failed);
        self.reconsider(api);
    }

    fn on_message(
        &mut self,
        api: &mut AppApi<'_, '_, ElectionMsg>,
        from: ProcessId,
        msg: ElectionMsg,
    ) {
        match msg {
            ElectionMsg::Claim => {
                if self.is_leader && from != api.id() {
                    api.send(from, ElectionMsg::Rebuke);
                }
            }
            ElectionMsg::Rebuke => {
                if self.is_leader && self.failed.contains(&from) {
                    // Causally: my claim → their rebuke; but I detected
                    // them before claiming. In a fail-stop run they crashed
                    // before my detection, so they could not have received
                    // my claim. This observation has no fail-stop
                    // explanation.
                    self.anomalies += 1;
                    api.annotate(Note::key_val(NOTE_ANOMALY, format!("rebuke-from-{from}")));
                }
            }
        }
    }
}

/// Post-run election analysis extracted from a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElectionOutcome {
    /// Leadership claims in order `(seq, claimant)`.
    pub claims: Vec<(usize, ProcessId)>,
    /// Maximum number of *globally* concurrent leaders (a claimant stays
    /// leader until it crashes; under sFS this can exceed 1 even though no
    /// process can tell).
    pub max_concurrent_leaders: usize,
    /// FS-impossible observations recorded by any process.
    pub observed_anomalies: usize,
}

/// Computes leadership intervals and anomaly counts from a trace.
pub fn analyze_election(trace: &Trace) -> ElectionOutcome {
    let claims: Vec<(usize, ProcessId)> = trace
        .notes_with_key(NOTE_LEADER)
        .map(|(seq, pid, _)| (seq, pid))
        .collect();
    let observed_anomalies = trace.notes_with_key(NOTE_ANOMALY).count();
    // Leadership interval of claimant c: [claim_seq, crash_seq or end).
    let end = trace.events().len();
    let mut intervals: Vec<(usize, usize)> = Vec::new();
    for &(start, claimant) in &claims {
        let stop = trace
            .events()
            .iter()
            .skip(start)
            .find_map(|e| match e.kind {
                TraceEventKind::Crash { pid } if pid == claimant => Some(e.seq),
                _ => None,
            })
            .unwrap_or(end);
        intervals.push((start, stop));
    }
    let mut max_concurrent = 0;
    for &(start, _) in &intervals {
        let concurrent = intervals
            .iter()
            .filter(|&&(s, e)| s <= start && start < e)
            .count();
        max_concurrent = max_concurrent.max(concurrent);
    }
    ElectionOutcome {
        claims,
        max_concurrent_leaders: max_concurrent,
        observed_anomalies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs::{ClusterSpec, ModeSpec};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn run_election(mode: ModeSpec, seed: u64) -> Trace {
        ClusterSpec::new(5, 2)
            .mode(mode)
            .seed(seed)
            .suspect(p(1), p(0), 10) // p1 falsely suspects the leader
            .run_apps(|_| ElectionApp::new())
    }

    #[test]
    fn initial_leader_is_p0() {
        let trace = ClusterSpec::new(4, 1).run_apps(|_| ElectionApp::new());
        let outcome = analyze_election(&trace);
        assert_eq!(outcome.claims.len(), 1);
        assert_eq!(outcome.claims[0].1, p(0));
        assert_eq!(outcome.observed_anomalies, 0);
    }

    #[test]
    fn sfs_election_observes_no_anomalies() {
        for seed in 0..20 {
            let trace = run_election(ModeSpec::SfsOneRound, seed);
            let outcome = analyze_election(&trace);
            assert_eq!(
                outcome.observed_anomalies,
                0,
                "seed {seed}: sFS run leaked an FS-impossible observation\n{}",
                trace.to_pretty_string()
            );
            // Leadership must transfer to p1 once p0 is detected+killed.
            assert!(
                outcome.claims.iter().any(|&(_, c)| c == p(1)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn unilateral_election_observes_split_brain() {
        // With unilateral detection, p0 is never killed, so p1's false
        // detection creates a live second leader; p0 rebukes p1's claim,
        // and p1 observes the FS-impossible rebuke.
        let mut anomaly_seen = false;
        for seed in 0..20 {
            let trace = run_election(ModeSpec::Unilateral, seed);
            let outcome = analyze_election(&trace);
            if outcome.observed_anomalies > 0 {
                anomaly_seen = true;
            }
        }
        assert!(
            anomaly_seen,
            "unilateral detection never produced an observable anomaly"
        );
    }

    #[test]
    fn global_two_leader_window_exists_even_under_sfs() {
        // Under sFS a global observer may see both p0 (not yet crashed) and
        // p1 (already detected p0) as leaders simultaneously; internally
        // this is undetectable. At least one seed should exhibit it.
        let mut window_seen = false;
        for seed in 0..60 {
            let trace = run_election(ModeSpec::SfsOneRound, seed);
            let outcome = analyze_election(&trace);
            if outcome.max_concurrent_leaders >= 2 {
                window_seen = true;
                assert_eq!(outcome.observed_anomalies, 0, "internally invisible");
            }
        }
        assert!(window_seen, "no seed produced a concurrent-leader window");
    }
}
