//! # sfs-apps — applications and adversarial scenarios on simulated
//! fail-stop
//!
//! The downstream-user layer of the Sabel & Marzullo (1994) reproduction:
//! protocols written against the fail-stop abstraction, run on the sFS
//! detector, plus the adversarial executions from the paper's proofs.
//!
//! * [`election`] — the §1 leader-election example, instrumented to count
//!   *FS-impossible observations* (none occur under sFS; they do under
//!   unilateral detection);
//! * [`last_to_fail`] — Skeen's problem (§6): recovery after total
//!   failure, which works iff failed-before is acyclic (sFS2b);
//! * [`membership`] — a view-based group membership service whose
//!   survivor views converge under fail-stop semantics;
//! * [`scenarios`] — the Appendix A.3 witness-violation attack showing
//!   the Theorem 7 quorum bound is tight, and schedule-space exploration
//!   of bounded instances (`ExploreInstance`, experiment E9) producing
//!   certify/violate verdicts per sFS property;
//! * [`workpool`] — fault-tolerant work distribution with coordinator
//!   failover, the style of protocol the paper's introduction motivates.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod election;
pub mod last_to_fail;
pub mod membership;
pub mod scenarios;
pub mod workpool;
