//! Adversarial executions from the paper's lower-bound proofs, plus
//! systematic schedule-space exploration of small protocol instances.
//!
//! Two kinds of adversary live here:
//!
//! * [`WitnessAttack`] — the *constructed* adversary of Appendix A.3: one
//!   specific latency schedule forcing a failed-before cycle (Theorem 6);
//! * [`ExploreInstance`] — the *universal* adversary: every schedule of a
//!   bounded instance, enumerated via the `sfs-explore` crate, with each
//!   explored history pushed through the full property suite
//!   ([`check_sfs_suite`](sfs_tlogic::properties::check_sfs_suite)) and
//!   the Theorem 5 rearrangement engine ([`rearrange_to_fs`]) to produce
//!   per-property **certify/violate** verdicts (experiment E9).
//!
//! The centerpiece of the first kind is the Appendix A.3 construction behind Theorem 6: if
//! the quorum sets of `k = t` detections can have empty intersection (no
//! witness), an asynchronous adversary can schedule message delays so that
//! the failed-before relation acquires a `k`-cycle, violating sFS2b.
//!
//! The construction: divide `P` into `k` sets `S_0 .. S_{k-1}` with
//! initiator `i ∈ S_i`. Every process in `S_j` has its messages to all of
//! `S_{j⊕1}` delayed indefinitely. Each process is made to suspect the
//! `k` victims in an order chosen so that, for every victim `x`, the vote
//! `"x⊕1 failed"` is sent before `"x failed"` on every non-delayed
//! channel — so victim `x` completes its quorum for `x⊕1` *before* its own
//! obituary kills it. Each victim can gather at most `n - |S_{x⊖1}|
//! = n(t-1)/t` votes; if the protocol's quorum threshold is at or below
//! that bound, all `k` detections fire and `failed_0(1), failed_1(2), ...,
//! failed_{k-1}(0)` close the cycle. At the Theorem 7 threshold
//! `⌊n(t-1)/t⌋ + 1`, no victim can complete its round and the attack
//! fails — the bound is tight.

use sfs::{ClusterSpec, ModeSpec, NetSpec, NullApp, ProbeConfig, QuorumPolicy, SfsMsg};
use sfs_asys::{
    ChoiceTrace, FixedLatency, OverrideLatency, PartitionSchedule, ProcessId, Sim, Trace,
    VirtualTime,
};
use sfs_explore::{
    class_fingerprint, explore, random_walks, replay, replay_fidelity, shrink, DifferentialOracle,
    Divergence, Envelope, ExploreConfig, ExploreStats, PropertyEnvelope, Pruning, ScheduleRun,
    ShrinkConfig, ShrinkOutcome, WalkConfig,
};
use sfs_history::{rearrange_to_fs, FailedBefore, History};
use sfs_tlogic::{properties, Verdict};
use std::collections::HashSet;
use std::time::Duration;

/// Parameters of the A.3 witness-violation attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WitnessAttack {
    /// System size; must satisfy `n ≥ t` (sets need one initiator each).
    pub n: usize,
    /// Cycle size `k = t` — the number of victims.
    pub t: usize,
    /// Vote threshold the protocol is (mis)configured with.
    pub quorum: usize,
    /// Scheduler seed (the attack is deterministic; the seed only affects
    /// inconsequential tie-breaks).
    pub seed: u64,
}

impl WitnessAttack {
    /// The largest vote count any victim can gather under this attack:
    /// `n - |S_{x⊖1}| - 1`, minimized over victims (sets are near-equal).
    ///
    /// The `-1` is a nuance of the concrete §5 protocol relative to the
    /// abstract §4 model the Theorem 7 bound is stated for: in §4 the
    /// suspected process may still ACK its own suspicion, so the
    /// construction reaches `n(t-1)/t` votes; in §5 the acknowledgement
    /// *is* the obituary and the victim crashes instead of acking, costing
    /// every round exactly one vote. The concrete protocol therefore
    /// resists the attack even one vote below the abstract bound.
    pub fn max_available_votes(&self) -> usize {
        let k = self.t;
        // |S_j| = processes with index ≡ j (mod k); the largest set bounds
        // the tightest victim.
        let largest_set = self.n.div_ceil(k);
        self.n - largest_set - 1
    }

    /// Runs the attack and returns the trace.
    ///
    /// # Panics
    ///
    /// Panics if `t < 2` (a cycle needs at least two victims) or `n < t`.
    pub fn run(&self) -> Trace {
        assert!(
            self.t >= 2,
            "a failed-before cycle needs at least two victims"
        );
        assert!(self.n >= self.t, "need one initiator per set");
        let n = self.n;
        let k = self.t;
        let set_of = |p: ProcessId| p.index() % k;
        let members_of = |j: usize| -> Vec<ProcessId> {
            ProcessId::all(n).filter(|p| set_of(*p) == j).collect()
        };

        // Timing: suspicion steps are `d` ticks apart; the base channel
        // latency `l` exceeds the whole injection window so no process
        // learns a suspicion from a peer before its own schedule says so.
        let d = k as u64; // injection step spacing
        let l = (k * k + k + 10) as u64; // base latency

        // Adversarial latency. Two layers (first match wins):
        //  1. S_j -> S_{j+1} held past the horizon ("delayed
        //     indefinitely");
        //  2. channels into each victim x are sped up in proportion to how
        //     *late* the sender's schedule votes for x's suspect x+1, so
        //     every quorum vote for x+1 arrives strictly before any
        //     obituary of x. (On each channel FIFO already orders the two;
        //     this handles the race *between* channels.)
        let mut latency = OverrideLatency::new(FixedLatency(l));
        for from in ProcessId::all(n) {
            let blocked = members_of((set_of(from) + 1) % k);
            latency = latency.hold_set(from, &blocked, sfs_asys::NEVER);
        }
        for from in ProcessId::all(n) {
            let j = set_of(from);
            for x in 0..k {
                // Position of victim x+1 in `from`'s descending schedule.
                let pos = ((j + k) - x) % k;
                if pos == k - 1 {
                    continue; // that's the held channel (j = x-1)
                }
                let victim = ProcessId::new(x);
                let chan_latency = l - (pos as u64) * (d - 1);
                latency = latency.hold(from, victim, chan_latency);
            }
        }

        // Suspicion schedule: process v in S_j suspects the victims in the
        // order j+1, j, j-1, ... (descending mod k). On every non-delayed
        // channel FIFO then delivers the obituary of x+1 before the
        // obituary of x, so each victim completes its round before dying.
        let mut spec = ClusterSpec::new(n, k)
            .quorum(QuorumPolicy::FixedCount(self.quorum))
            .seed(self.seed)
            .max_time(100_000);
        for v in ProcessId::all(n) {
            let j = set_of(v);
            for step in 0..k {
                // Descending from j+1: victim = (j + 1 - step) mod k.
                let victim = ProcessId::new((j + 1 + k - step) % k);
                spec = spec.suspect(v, victim, 1 + step as u64 * d);
            }
        }
        spec.run_with_latency(latency, |_| sfs::NullApp)
    }
}

/// Whether the trace's failed-before relation contains a cycle exactly
/// over the `t` victims `{0, .., t-1}`.
pub fn cycle_among_victims(trace: &Trace, t: usize) -> bool {
    let h = History::from_trace(trace);
    let fb = FailedBefore::from_history(&h);
    match fb.find_cycle() {
        None => false,
        Some(cycle) => cycle.iter().all(|p| p.index() < t),
    }
}

/// A bounded protocol instance whose **entire schedule space** is to be
/// checked: the universal-adversary counterpart of [`WitnessAttack`].
///
/// Exploration re-runs the cluster once per schedule, so the spec should
/// be small (3–4 processes, a couple of injected suspicions/crashes);
/// larger instances fall back to [`ExploreInstance::random_walks`].
///
/// # Examples
///
/// Certify the full sFS suite over *every* schedule of a 3-process
/// instance with one erroneous suspicion:
///
/// ```
/// use sfs::ClusterSpec;
/// use sfs_apps::scenarios::ExploreInstance;
/// use sfs_asys::ProcessId;
///
/// let spec = ClusterSpec::new(3, 1).suspect(ProcessId::new(1), ProcessId::new(0), 10);
/// let outcome = ExploreInstance::new(spec).explore();
/// assert!(outcome.stats.complete, "small instance: fully enumerated");
/// assert!(outcome.all_certified(), "no schedule violates any sFS property");
/// ```
#[derive(Debug, Clone)]
pub struct ExploreInstance {
    /// The cluster under test. Its `seed`/`latency` fields are largely
    /// moot: the explorer overrides the schedule entirely.
    pub spec: ClusterSpec,
    /// Exploration budgets and pruning policy.
    pub config: ExploreConfig,
}

/// The exploration verdict for one property on one instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyCertificate {
    /// Property name as reported by the checker (e.g. `"sFS2a"`), or the
    /// synthetic `"Theorem5"` entry for "an isomorphic fail-stop run
    /// exists" — the schedule-robust reading of FS2 (raw FS2 order is
    /// interleaving-sensitive, so it is exactly the thing exploration
    /// must *not* quantify class-wise; Theorem 5 rearrangeability is its
    /// commutation-invariant counterpart).
    pub property: String,
    /// `true` when the exploration was complete and no schedule violated
    /// the property: a proof over the instance's whole schedule space.
    pub certified: bool,
    /// Schedule-equivalence classes on which the property was violated
    /// (an upper bound after [`ExploreOutcome::merge`]: parallel branches
    /// dedup independently, so a class seen by two branches counts
    /// twice).
    pub violations: usize,
    /// The choice trace of the first violating schedule, replayable via
    /// [`ExploreInstance::replay`].
    pub witness: Option<ChoiceTrace>,
}

/// Aggregated result of exploring one instance.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// Raw exploration counters (schedules, pruning, completeness).
    pub stats: ExploreStats,
    /// Sorted fingerprints of the distinct happens-before classes
    /// checked (see [`class_fingerprint`]).
    pub fingerprints: Vec<u64>,
    /// Visited schedules skipped because their class fingerprint had
    /// already been checked (catches equivalences sleep sets miss, e.g.
    /// the pruning lost across parallel root branches).
    pub deduped: usize,
    /// Simulator trace events across every *visited* schedule — the
    /// experiment harness's throughput denominator.
    pub trace_events: u64,
    /// One certificate per property, in suite order, `"Theorem5"` last.
    pub properties: Vec<PropertyCertificate>,
    /// Whether this outcome was [merged](ExploreOutcome::merge) from
    /// parallel root branches. Merged per-property violation counts are
    /// upper bounds (branches dedup independently), which weakens what an
    /// [`Envelope`](ExploreOutcome::envelope) may claim.
    pub merged: bool,
}

impl ExploreOutcome {
    /// Distinct happens-before classes actually checked.
    pub fn classes(&self) -> usize {
        self.fingerprints.len()
    }

    /// The certificate for `property`, if present.
    pub fn certificate(&self, property: &str) -> Option<&PropertyCertificate> {
        self.properties.iter().find(|c| c.property == property)
    }

    /// Whether every property was certified (requires a complete
    /// exploration with zero violations across the board).
    pub fn all_certified(&self) -> bool {
        self.properties.iter().all(|c| c.certified)
    }

    /// Folds the outcome of another (root-branch) exploration of the
    /// **same instance** into this one: counters sum, class fingerprints
    /// union, per-property violations sum (first witness wins), and a
    /// property stays certified only if the merged exploration is
    /// complete with zero violations.
    pub fn merge(mut self, other: ExploreOutcome) -> ExploreOutcome {
        self.merged = true;
        self.stats.absorb(&other.stats);
        self.fingerprints.extend(other.fingerprints);
        self.fingerprints.sort_unstable();
        self.fingerprints.dedup();
        self.deduped += other.deduped;
        self.trace_events += other.trace_events;
        for theirs in other.properties {
            match self
                .properties
                .iter_mut()
                .find(|c| c.property == theirs.property)
            {
                Some(ours) => {
                    ours.violations += theirs.violations;
                    if ours.witness.is_none() {
                        ours.witness = theirs.witness;
                    }
                }
                None => self.properties.push(theirs),
            }
        }
        for c in &mut self.properties {
            c.certified = self.stats.complete && c.violations == 0;
        }
        self
    }
}

/// The standard per-run evaluator behind every backend comparison: the
/// full sFS suite ([`check_sfs_suite`](properties::check_sfs_suite)) plus
/// the synthetic `"Theorem5"` entry ("an isomorphic fail-stop run
/// exists", via [`rearrange_to_fs`] after completing missing crashes —
/// sFS2a guarantees those crashes in the full run, so they are charged to
/// the already-checked sFS2a, as the paper does).
///
/// `complete` gates liveness: on a truncated prefix unmet eventualities
/// come back [`Verdict::Vacuous`], never [`Verdict::Violated`].
pub fn sfs_verdicts(trace: &Trace, complete: bool) -> Vec<(&'static str, Verdict)> {
    sfs_verdicts_of(&History::from_trace(trace), complete)
}

/// [`sfs_verdicts`] on an already-projected [`History`] — the form the
/// exploration hot path uses, where the history is also needed for the
/// class fingerprint and must not be rebuilt per check.
pub fn sfs_verdicts_of(h: &History, complete: bool) -> Vec<(&'static str, Verdict)> {
    let mut verdicts: Vec<(&'static str, Verdict)> = properties::check_sfs_suite(h, complete)
        .into_iter()
        .map(|report| (report.property, report.verdict))
        .collect();
    let theorem5 = match rearrange_to_fs(&h.complete_missing_crashes()) {
        Ok(_) => Verdict::Holds,
        Err(_) => Verdict::Violated,
    };
    verdicts.push(("Theorem5", theorem5));
    verdicts
}

/// Verdict accumulator shared by the exhaustive and sampling drivers.
#[derive(Debug, Default)]
struct Verdicts {
    seen: HashSet<u64>,
    deduped: usize,
    trace_events: u64,
    /// name → (violations, first witness)
    table: Vec<(String, usize, Option<ChoiceTrace>)>,
}

impl Verdicts {
    fn note(&mut self, name: &str, verdict: Verdict, choices: &ChoiceTrace) {
        let entry = match self.table.iter_mut().find(|(n, _, _)| n == name) {
            Some(e) => e,
            None => {
                self.table.push((name.to_owned(), 0, None));
                self.table.last_mut().expect("just pushed")
            }
        };
        if verdict == Verdict::Violated {
            entry.1 += 1;
            if entry.2.is_none() {
                entry.2 = Some(choices.clone());
            }
        }
    }

    fn ingest(&mut self, run: &ScheduleRun) {
        self.trace_events += run.trace.events().len() as u64;
        let h = History::from_trace(&run.trace);
        let fp = class_fingerprint(&h);
        if !self.seen.insert(fp) {
            self.deduped += 1;
            return;
        }
        // Liveness obligations are only judged on complete (quiescent)
        // schedules; truncated ones still check all safety properties.
        let complete = run.trace.stop_reason().is_complete();
        for (property, verdict) in sfs_verdicts_of(&h, complete) {
            self.note(property, verdict, &run.choices);
        }
    }

    fn finish(self, stats: ExploreStats) -> ExploreOutcome {
        let mut fingerprints: Vec<u64> = self.seen.iter().copied().collect();
        fingerprints.sort_unstable();
        ExploreOutcome {
            stats,
            fingerprints,
            deduped: self.deduped,
            trace_events: self.trace_events,
            merged: false,
            properties: self
                .table
                .into_iter()
                .map(|(property, violations, witness)| PropertyCertificate {
                    certified: stats.complete && violations == 0,
                    property,
                    violations,
                    witness,
                })
                .collect(),
        }
    }
}

impl ExploreInstance {
    /// An instance with default exploration budgets.
    pub fn new(spec: ClusterSpec) -> Self {
        ExploreInstance {
            spec,
            config: ExploreConfig::default(),
        }
    }

    /// A fresh, un-run simulator for the spec. Exploration ignores the
    /// spec's latency model, so a fixed one keeps `at` annotations tame.
    fn build(&self) -> Sim<SfsMsg<()>> {
        self.spec
            .clone()
            .build_with_latency(FixedLatency(1), |_| NullApp)
    }

    /// Sleep-set pruning is sound only when process behaviour is a
    /// function of (local state, delivered event) — the paper's own
    /// determinism assumption. Heartbeat detection reads the virtual
    /// clock (`ctx.now()`), and the oracle detector reads the shared
    /// crash registry; both can observe *when* a step runs relative to
    /// steps at other loci, so commuting locus-disjoint steps is no
    /// longer behaviour-preserving and a "complete" pruned exploration
    /// could falsely certify. Refuse rather than mis-prove.
    fn assert_pruning_sound(&self) {
        if self.config.pruning != Pruning::SleepSets {
            return;
        }
        assert!(
            self.spec.heartbeat.is_none(),
            "sleep-set pruning is unsound under heartbeat detection (handlers read \
             ctx.now()); use Pruning::None or random_walks"
        );
        assert!(
            self.spec.mode != ModeSpec::Oracle,
            "sleep-set pruning is unsound under the oracle detector (handlers read \
             the shared crash registry); use Pruning::None or random_walks"
        );
    }

    /// Exhaustively explores the instance's schedule space (within the
    /// configured budgets) and checks every schedule class against the
    /// sFS suite and the Theorem 5 rearrangement engine.
    ///
    /// # Panics
    ///
    /// Panics on spec/pruning combinations where sleep-set pruning would
    /// be unsound (heartbeat or oracle detection): use
    /// [`Pruning::None`] or [`ExploreInstance::random_walks`] there.
    pub fn explore(&self) -> ExploreOutcome {
        self.assert_pruning_sound();
        let mut verdicts = Verdicts::default();
        let stats = explore(&self.config, || self.build(), |run| verdicts.ingest(&run));
        verdicts.finish(stats)
    }

    /// Explores only the subtree under `prefix` — the unit the E9 sweep
    /// parallelizes over (one rayon task per root branch).
    ///
    /// # Panics
    ///
    /// As [`ExploreInstance::explore`].
    pub fn explore_prefix(&self, prefix: &[u32]) -> ExploreOutcome {
        self.assert_pruning_sound();
        let mut verdicts = Verdicts::default();
        let stats = sfs_explore::explore_with_prefix(
            &self.config,
            prefix,
            || self.build(),
            |run| verdicts.ingest(&run),
        );
        verdicts.finish(stats)
    }

    /// The root branching width of the instance's schedule tree.
    pub fn width(&self) -> usize {
        sfs_explore::probe_width(|| self.build())
    }

    /// The sampling fallback: `config.walks` random schedules. Verdicts
    /// are aggregated identically but nothing is ever certified
    /// (`certified` stays `false` on every entry).
    pub fn random_walks(&self, config: &WalkConfig) -> ExploreOutcome {
        let mut verdicts = Verdicts::default();
        let stats = random_walks(config, || self.build(), |run| verdicts.ingest(&run));
        verdicts.finish(stats)
    }

    /// Replays a recorded witness against a fresh instance, reproducing
    /// its trace byte-for-byte.
    pub fn replay(&self, choices: &[u32]) -> Trace {
        replay(self.build(), choices)
    }
}

// ---- faulty-network scenarios (experiment E12) --------------------------

/// One adversarial network condition for a transport-backed cluster run:
/// the scenario family behind experiment E12 and the faulty-net behaviour
/// suites of the election/membership/workpool applications.
///
/// Every scenario runs the §5 protocol inside the `sfs-transport` ARQ
/// layer with heartbeat probing, so **all** suspicions are endogenous
/// (missed-heartbeat timeouts), never scripted.
#[derive(Debug, Clone, PartialEq)]
pub enum NetScenario {
    /// I.i.d. per-message loss at the given rate.
    Loss(f64),
    /// I.i.d. per-message duplication at the given rate.
    Duplicate(f64),
    /// A transmit-side blackout: the first `island` processes cannot
    /// *send* for `[cut_at, heal_at)` (their inbound links stay up — the
    /// gray-failure shape: alive but silent, exactly the "erroneous
    /// suspicion" the paper's model admits). Survivors' probes time out,
    /// the protocol detects the island and kills it cleanly; a
    /// sufficiently short cut is harmless. `island` must stay within the
    /// failure bound `t` for the run to stay within the paper's model.
    HealedPartition {
        /// Number of silenced processes (ids `0..island`).
        island: usize,
        /// Cut start (ticks).
        cut_at: u64,
        /// Heal time (ticks).
        heal_at: u64,
    },
    /// Membership churn: `crashes` staggered real crashes, one every
    /// `every` ticks starting at 100, victims from the top of the id
    /// space. Detection is endogenous (probe timeouts).
    Churn {
        /// Number of crashes (keep `<= t`).
        crashes: usize,
        /// Tick gap between consecutive crashes.
        every: u64,
    },
}

impl NetScenario {
    /// A short, stable label for tables and test names.
    pub fn label(&self) -> String {
        match self {
            NetScenario::Loss(p) => format!("loss {:.0}%", p * 100.0),
            NetScenario::Duplicate(p) => format!("dup {:.0}%", p * 100.0),
            NetScenario::HealedPartition {
                island,
                cut_at,
                heal_at,
            } => format!("cut {island} [{cut_at},{heal_at})"),
            NetScenario::Churn { crashes, every } => format!("churn {crashes}/{every}"),
        }
    }

    /// The transport-backed cluster spec for this scenario over `(n, t)`:
    /// probe-driven endogenous detection, a horizon long enough for
    /// every scenario of this family to settle, and — for the crash-ful
    /// scenarios — one real crash at tick 100 so detection latency is
    /// measurable.
    ///
    /// The probe timeout is provisioned for the family's worst tested
    /// loss rate (250 ticks ≈ 12 heartbeat intervals: at 20% i.i.d.
    /// loss the chance of losing a whole window of pings is ~10⁻⁸).
    /// An *under*provisioned timeout is not a bug in the transport but
    /// physics: enough consecutive losses are indistinguishable from a
    /// crash, the prober suspects a live peer, and each such false
    /// suspicion spends one unit of the failure budget `t` — beyond
    /// which the paper's guarantees genuinely end.
    pub fn spec(&self, n: usize, t: usize, seed: u64) -> ClusterSpec {
        let probe = ProbeConfig {
            interval: 20,
            timeout: 250,
            check_every: 25,
        };
        let mut net = NetSpec::faultless().probe(probe);
        let mut spec = ClusterSpec::new(n, t).seed(seed).max_time(6_000);
        match *self {
            NetScenario::Loss(p) => {
                net = net.loss(p);
                spec = spec.crash(ProcessId::new(n - 1), 100);
            }
            NetScenario::Duplicate(p) => {
                net = net.duplicate(p);
                spec = spec.crash(ProcessId::new(n - 1), 100);
            }
            NetScenario::HealedPartition {
                island,
                cut_at,
                heal_at,
            } => {
                let outbound: Vec<(ProcessId, ProcessId)> = (0..island)
                    .flat_map(|i| {
                        (0..n)
                            .filter(move |&j| j != i)
                            .map(move |j| (ProcessId::new(i), ProcessId::new(j)))
                    })
                    .collect();
                net = net.partitions(PartitionSchedule::new().cut_links(
                    VirtualTime::from_ticks(cut_at),
                    VirtualTime::from_ticks(heal_at),
                    &outbound,
                ));
            }
            NetScenario::Churn { crashes, every } => {
                for i in 0..crashes {
                    spec = spec.crash(ProcessId::new(n - 1 - i), 100 + i as u64 * every);
                }
            }
        }
        spec.net(net)
    }
}

// ---- differential conformance ------------------------------------------

/// Budgets for one differential-conformance check of one instance.
#[derive(Debug, Clone, Copy)]
pub struct ConformanceConfig {
    /// Scheduled simulator runs under [`RandomStrategy`](sfs_asys::RandomStrategy)
    /// (each also replay-checked), seeds `seed..seed + random_runs`.
    pub random_runs: usize,
    /// Repetitions on the threaded runtime (real-concurrency
    /// nondeterminism: every repetition is a fresh schedule).
    pub threaded_runs: usize,
    /// Transport-backed simulator runs (`sim:transport`): the instance
    /// on the loss-free faulty-net leg — §5 inside the `sfs-transport`
    /// ARQ layer — whose model-level history must land in the bare
    /// exploration's envelope. Seeds `seed..seed + transport_runs`.
    pub transport_runs: usize,
    /// Multi-process UDP backend runs (`net:udp`): the instance across
    /// real OS processes and localhost datagrams, whose Lamport-merged
    /// trace must land in the same envelope. Skipped (with a stderr
    /// note) when the `sfs-udp-node` binary is not built, so library
    /// test runs stay self-contained.
    pub udp_runs: usize,
    /// Wall-clock drain timeout per threaded run, in milliseconds.
    /// Purely an upper bound on waiting: the event-driven runtime
    /// answers as soon as the run quiesces or stalls at its bounds.
    /// UDP runs, whose ticks are real milliseconds, wait at least 5 s
    /// regardless (the handshake returns as soon as quiescence is
    /// confirmed, so the floor costs nothing on healthy runs).
    pub settle_ms: u64,
    /// Base seed for the random-strategy runs.
    pub seed: u64,
    /// Budgets for minimizing the reference exploration's witnesses.
    pub shrink: ShrinkConfig,
}

impl Default for ConformanceConfig {
    fn default() -> Self {
        ConformanceConfig {
            random_runs: 8,
            threaded_runs: 2,
            transport_runs: 2,
            udp_runs: 0,
            settle_ms: 250,
            seed: 1,
            shrink: ShrinkConfig::default(),
        }
    }
}

/// What one backend contributed to a conformance check.
#[derive(Debug, Clone)]
pub struct BackendReport {
    /// Backend label (`"sim:time-ordered"`, `"sim:random"`, `"replay"`,
    /// `"threaded:event"`, `"threaded:event+net"`, `"sim:transport"`,
    /// `"sim:transport-adaptive"`, `"net:udp"`).
    pub backend: &'static str,
    /// Runs executed on this backend.
    pub runs: usize,
    /// Runs that were maximal (quiescent, or drained on the threaded
    /// runtime) and therefore subject to the full envelope.
    pub complete_runs: usize,
    /// Runs that produced at least one divergence.
    pub divergent_runs: usize,
    /// Divergences this backend produced (empty = agreement).
    pub divergences: Vec<Divergence>,
}

impl BackendReport {
    fn new(backend: &'static str) -> Self {
        BackendReport {
            backend,
            runs: 0,
            complete_runs: 0,
            divergent_runs: 0,
            divergences: Vec::new(),
        }
    }

    fn absorb_run(&mut self, complete: bool, divergences: Vec<Divergence>) {
        self.runs += 1;
        self.complete_runs += usize::from(complete);
        self.divergent_runs += usize::from(!divergences.is_empty());
        self.divergences.extend(divergences);
    }
}

/// A reference witness minimized by the delta-debugging shrinker.
#[derive(Debug, Clone)]
pub struct ShrunkWitness {
    /// The violated property the witness exhibits.
    pub property: String,
    /// The minimized, strictly replayable witness and its statistics.
    pub outcome: ShrinkOutcome,
}

/// Aggregate result of one differential-conformance check.
#[derive(Debug)]
pub struct ConformanceOutcome {
    /// The reference exploration (sequential, so per-class violation
    /// counts are exact).
    pub reference: ExploreOutcome,
    /// One report per backend.
    pub backends: Vec<BackendReport>,
    /// Recorded schedules strictly re-executed for byte-identity.
    pub replay_checks: usize,
    /// Reference witnesses after shrinking, one per violated property.
    pub shrunk: Vec<ShrunkWitness>,
}

impl ConformanceOutcome {
    /// Whether every backend agreed with the reference envelope.
    pub fn agreement(&self) -> bool {
        self.backends.iter().all(|b| b.divergences.is_empty())
    }

    /// Every divergence across all backends.
    pub fn divergences(&self) -> impl Iterator<Item = &Divergence> {
        self.backends.iter().flat_map(|b| b.divergences.iter())
    }

    /// Total backend runs executed.
    pub fn total_runs(&self) -> usize {
        self.backends.iter().map(|b| b.runs).sum()
    }

    /// Fraction of backend runs that produced no divergence, in `[0, 1]`.
    pub fn agreement_rate(&self) -> f64 {
        let total = self.total_runs();
        if total == 0 {
            return 1.0;
        }
        let divergent: usize = self.backends.iter().map(|b| b.divergent_runs).sum();
        (total - divergent) as f64 / total as f64
    }
}

impl ExploreOutcome {
    /// The conformance [`Envelope`] this exploration establishes.
    ///
    /// `always_violated` is derived from exact per-class violation
    /// counts, which holds for outcomes produced by a *sequential*
    /// [`ExploreInstance::explore`]; on a
    /// [merged](ExploreOutcome::merge) outcome the violation count is an
    /// upper bound (branches dedup independently), so the flag is
    /// suppressed there to stay sound.
    pub fn envelope(&self) -> Envelope {
        // A merged outcome can double-count a class seen by two branches,
        // so `violations >= classes` stops implying "every class
        // violates"; suppress the universal flag there.
        let exact = self.stats.complete && !self.merged;
        Envelope {
            complete: self.stats.complete,
            fingerprints: self.fingerprints.clone(),
            properties: self
                .properties
                .iter()
                .map(|c| PropertyEnvelope {
                    property: c.property.clone(),
                    certified: c.certified,
                    always_violated: exact
                        && c.violations > 0
                        && c.violations >= self.fingerprints.len(),
                    witness: c.witness.clone(),
                })
                .collect(),
        }
    }
}

impl ExploreInstance {
    /// Runs the cluster on the event-driven threaded runtime — the
    /// spec's scripted injections ride the router's timer wheel and fire
    /// at their exact virtual ticks — and reports the trace plus whether
    /// the run was maximal. Maximality comes from the runtime's drain
    /// handshake (every forwarded event fully dispatched, nothing
    /// pending) — not from trace-level accounting, which cannot see an
    /// event whose handler was still running at shutdown.
    pub fn run_threaded(&self, settle: Duration) -> (Trace, bool) {
        self.spec.run_threaded_quiesced(|_| NullApp, settle)
    }

    /// The full differential-conformance check of this instance: explores
    /// the schedule space into a reference [`Envelope`], then drives the
    /// other backends through the [`DifferentialOracle`]:
    ///
    /// 1. `sim:time-ordered` — one scheduled run under
    ///    [`TimeOrderedStrategy`](sfs_asys::TimeOrderedStrategy) (the
    ///    default engine's schedule);
    /// 2. `sim:random` — `random_runs` scheduled runs under seeded
    ///    [`RandomStrategy`](sfs_asys::RandomStrategy);
    /// 3. `replay` — every recorded schedule from (1) and (2) strictly
    ///    re-executed and byte-compared;
    /// 4. `threaded:event` — `threaded_runs` executions on real OS
    ///    threads under the event-driven virtual clock;
    /// 5. `threaded:event+net` — `threaded_runs` threaded executions
    ///    over the router's link seam (ARQ-wrapped processes on a
    ///    loss-free [`NetSpec`]), so real concurrency and the emulated
    ///    transport are exercised *together*;
    /// 6. `sim:transport` / `sim:transport-adaptive` — the simulated
    ///    transport-backed legs, pinning that the ARQ layer re-earns the
    ///    §2 channel axioms;
    /// 7. `net:udp` — `udp_runs` executions with every process in its
    ///    own OS process over real localhost UDP (the `sfs-wire`
    ///    backend). Trace times are Lamport ticks, so this column pins
    ///    the causal-order properties; runs are skipped with a stderr
    ///    note when the `sfs-udp-node` binary is not built.
    ///
    /// Reference witnesses are then minimized by the delta-debugging
    /// shrinker, each shrink candidate re-validated by replay.
    pub fn conformance(&self, config: &ConformanceConfig) -> ConformanceOutcome {
        let reference = self.explore();
        let envelope = reference.envelope();
        let oracle = DifferentialOracle::new(envelope, |trace: &Trace, complete| {
            sfs_verdicts(trace, complete)
                .into_iter()
                .map(|(p, v)| (p.to_owned(), v))
                .collect()
        });

        let mut backends = Vec::new();
        let mut replay_checks = 0usize;
        let mut replay_report = BackendReport::new("replay");
        let mut check_recorded = |report: &mut BackendReport, run: ScheduleRun| {
            let complete = run.trace.stop_reason().is_complete();
            report.absorb_run(complete, oracle.check(report.backend, &run.trace, complete));
            replay_checks += 1;
            replay_report.absorb_run(
                complete,
                replay_fidelity("replay", || self.build(), &run)
                    .into_iter()
                    .collect(),
            );
        };

        // Backend 1: the default engine's schedule, recorded.
        let mut time_ordered = BackendReport::new("sim:time-ordered");
        {
            let mut sim = self.build();
            sim.set_strategy(sfs_asys::TimeOrderedStrategy);
            let (trace, log) = sim.run_scheduled();
            let truncated = !trace.stop_reason().is_complete();
            check_recorded(
                &mut time_ordered,
                ScheduleRun {
                    trace,
                    choices: log.choices(),
                    truncated,
                },
            );
        }

        // Backend 2: seeded random schedulers.
        let mut random = BackendReport::new("sim:random");
        for i in 0..config.random_runs {
            let mut sim = self.build();
            sim.set_strategy(sfs_asys::RandomStrategy::new(
                config.seed.wrapping_add(i as u64),
            ));
            let (trace, log) = sim.run_scheduled();
            let truncated = !trace.stop_reason().is_complete();
            check_recorded(
                &mut random,
                ScheduleRun {
                    trace,
                    choices: log.choices(),
                    truncated,
                },
            );
        }
        backends.push(time_ordered);
        backends.push(random);
        backends.push(replay_report);

        // Backend 3: real concurrency on the event-driven runtime.
        let mut threaded = BackendReport::new("threaded:event");
        for _ in 0..config.threaded_runs {
            let (trace, complete) = self.run_threaded(Duration::from_millis(config.settle_ms));
            threaded.absorb_run(complete, oracle.check("threaded:event", &trace, complete));
        }
        backends.push(threaded);

        // Backend 3b: real concurrency *and* the emulated transport at
        // once — the ARQ-wrapped processes over the threaded router's
        // loss-free link seam. Its model-level history must land in the
        // same bare envelope.
        let mut threaded_net = BackendReport::new("threaded:event+net");
        for _ in 0..config.threaded_runs {
            let (trace, complete) = self
                .spec
                .clone()
                .net(NetSpec::faultless())
                .try_run_threaded_net(|_| NullApp, Duration::from_millis(config.settle_ms))
                .expect("explored instance is feasible");
            threaded_net.absorb_run(
                complete,
                oracle.check("threaded:event+net", &trace, complete),
            );
        }
        backends.push(threaded_net);

        // Backend 4: the transport-backed leg — the same instance with
        // its channels *emulated* (ARQ over a loss-free faulty link)
        // rather than assumed. Its model-level history must land in the
        // bare exploration's envelope: same class set, same verdict
        // bounds. This is what pins "the transport earns the §2 channel
        // axioms" differentially rather than axiomatically.
        let mut transport = BackendReport::new("sim:transport");
        for i in 0..config.transport_runs {
            let trace = self
                .spec
                .clone()
                .seed(config.seed.wrapping_add(i as u64))
                .net(NetSpec::faultless())
                .try_run_net(|_| NullApp)
                .expect("explored instance is feasible");
            let complete = trace.stop_reason().is_complete();
            transport.absorb_run(complete, oracle.check("sim:transport", &trace, complete));
        }
        backends.push(transport);

        // Backend 5: the transport-backed leg again, with adaptive
        // timeouts. Jacobson RTO estimation and learned suspicion
        // thresholds must be model-invisible on the loss-free link, so
        // the adaptive run's history lands in the same bare envelope.
        let mut adaptive = BackendReport::new("sim:transport-adaptive");
        for i in 0..config.transport_runs {
            let trace = self
                .spec
                .clone()
                .seed(config.seed.wrapping_add(i as u64))
                .net(NetSpec::faultless().adaptive(sfs::AdaptiveConfig::default()))
                .try_run_net(|_| NullApp)
                .expect("explored instance is feasible");
            let complete = trace.stop_reason().is_complete();
            adaptive.absorb_run(
                complete,
                oracle.check("sim:transport-adaptive", &trace, complete),
            );
        }
        backends.push(adaptive);

        // Backend 6: bytes on a real wire — every process its own OS
        // process, every frame a real localhost datagram. Real-kernel
        // nondeterminism (scheduling, socket buffering) replaces the
        // seeded strategies; the Lamport-merged trace must still land in
        // the reference envelope. A missing node binary downgrades the
        // column to a skip so `cargo test` without `--bins` still passes.
        let mut udp = BackendReport::new("net:udp");
        let udp_settle = Duration::from_millis(config.settle_ms.max(5_000));
        for i in 0..config.udp_runs {
            if let Err(e) = sfs::udp_node_binary() {
                eprintln!("net:udp: skipping remaining runs ({e})");
                break;
            }
            match self
                .spec
                .clone()
                .seed(config.seed.wrapping_add(i as u64))
                .net(NetSpec::faultless())
                .try_run_udp(udp_settle)
            {
                Ok((trace, complete)) => {
                    udp.absorb_run(complete, oracle.check("net:udp", &trace, complete));
                }
                Err(e) => {
                    eprintln!("net:udp: run {i} failed to execute ({e})");
                    break;
                }
            }
        }
        backends.push(udp);

        // Minimize every reference witness.
        let shrunk = reference
            .properties
            .iter()
            .filter_map(|c| {
                let witness = c.witness.as_ref()?;
                let outcome = self.shrink_witness(&c.property, witness, &config.shrink)?;
                Some(ShrunkWitness {
                    property: c.property.clone(),
                    outcome,
                })
            })
            .collect();

        ConformanceOutcome {
            reference,
            backends,
            replay_checks,
            shrunk,
        }
    }

    /// Delta-debugs `witness` down to a minimal choice trace whose replay
    /// still violates `property`, re-validating every candidate by
    /// replay. Returns `None` if the witness itself does not reproduce
    /// the violation (a conformance failure the oracle reports
    /// separately).
    pub fn shrink_witness(
        &self,
        property: &str,
        witness: &[u32],
        config: &ShrinkConfig,
    ) -> Option<ShrinkOutcome> {
        shrink(
            config,
            || self.build(),
            witness,
            |run| {
                let complete = run.trace.stop_reason().is_complete();
                sfs_verdicts(&run.trace, complete)
                    .into_iter()
                    .any(|(p, v)| p == property && v == Verdict::Violated)
            },
        )
    }

    /// Whether a bounded (sequential) exploration of this instance still
    /// finds a violation of `property`; the witness if so. The
    /// re-validation step for [`ExploreInstance::shrink_instance`]
    /// candidates — a spec change invalidates recorded choice traces, so
    /// candidates are vetted by re-exploration, not replay.
    fn violation_witness(&self, property: &str) -> Option<ChoiceTrace> {
        if self
            .spec
            .quorum
            .validated(self.spec.n, self.spec.t)
            .is_err()
        {
            return None; // infeasible candidate: building would panic
        }
        let out = self.explore();
        out.certificate(property)
            .filter(|c| c.violations > 0)
            .and_then(|c| c.witness.clone())
    }

    /// Shrinks the **instance itself** — the other delta-debugging axis:
    /// greedily drops scripted suspicions and crashes, removes
    /// unreferenced top processes (`n`), and lowers the failure bound
    /// (`t`), keeping any candidate whose re-exploration still violates
    /// `property` (infeasible candidates are skipped). The reduced
    /// instance's witness is then choice-shrunk via
    /// [`ExploreInstance::shrink_witness`].
    ///
    /// Returns `None` when this instance's own exploration does not
    /// violate `property` in the first place.
    pub fn shrink_instance(
        &self,
        property: &str,
        config: &ShrinkConfig,
    ) -> Option<InstanceShrinkOutcome> {
        let mut current = self.clone();
        let mut witness = current.violation_witness(property)?;
        let mut dropped_suspicions = 0usize;
        let mut dropped_crashes = 0usize;
        let mut dropped_processes = 0usize;
        let mut t_reduction = 0usize;
        #[derive(Clone, Copy)]
        enum Axis {
            Suspicion,
            Crash,
            Process,
            Bound,
        }
        loop {
            let mut improved = false;
            let mut candidates: Vec<(ExploreInstance, Axis)> = Vec::new();
            let derived = |spec: ClusterSpec| ExploreInstance {
                spec,
                config: current.config,
            };
            for i in 0..current.spec.suspicions.len() {
                let mut spec = current.spec.clone();
                spec.suspicions.remove(i);
                candidates.push((derived(spec), Axis::Suspicion));
            }
            for i in 0..current.spec.crashes.len() {
                let mut spec = current.spec.clone();
                spec.crashes.remove(i);
                candidates.push((derived(spec), Axis::Crash));
            }
            let top = ProcessId::new(current.spec.n.saturating_sub(1));
            let top_referenced = current.spec.crashes.iter().any(|&(p, _)| p == top)
                || current
                    .spec
                    .suspicions
                    .iter()
                    .any(|&(by, of, _)| by == top || of == top);
            if current.spec.n > 1 && !top_referenced {
                let mut spec = current.spec.clone();
                spec.n -= 1;
                spec.t = spec.t.min(spec.n);
                candidates.push((derived(spec), Axis::Process));
            }
            if current.spec.t > 0 {
                let mut spec = current.spec.clone();
                spec.t -= 1;
                candidates.push((derived(spec), Axis::Bound));
            }
            for (candidate, axis) in candidates {
                if let Some(w) = candidate.violation_witness(property) {
                    current = candidate;
                    witness = w;
                    match axis {
                        Axis::Suspicion => dropped_suspicions += 1,
                        Axis::Crash => dropped_crashes += 1,
                        Axis::Process => dropped_processes += 1,
                        Axis::Bound => t_reduction += 1,
                    }
                    improved = true;
                    break;
                }
            }
            if !improved {
                break;
            }
        }
        let witness = current
            .shrink_witness(property, &witness, config)
            .expect("re-explored witness reproduces by construction");
        Some(InstanceShrinkOutcome {
            instance: current,
            dropped_suspicions,
            dropped_crashes,
            dropped_processes,
            t_reduction,
            witness,
        })
    }
}

/// Result of [`ExploreInstance::shrink_instance`]: the reduced instance
/// plus its minimized witness.
#[derive(Debug)]
pub struct InstanceShrinkOutcome {
    /// The reduced instance (still violating the property).
    pub instance: ExploreInstance,
    /// Scripted suspicions dropped from the spec.
    pub dropped_suspicions: usize,
    /// Scripted crashes dropped from the spec.
    pub dropped_crashes: usize,
    /// Processes removed (`n` reduction).
    pub dropped_processes: usize,
    /// Failure-bound reduction (`t`).
    pub t_reduction: usize,
    /// The reduced instance's minimal choice-trace witness.
    pub witness: ShrinkOutcome,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs::quorum::min_quorum;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn attack_below_the_bound_builds_a_two_cycle() {
        let n = 6;
        let t = 2;
        let attack = WitnessAttack {
            n,
            t,
            quorum: attack_quorum(n, t),
            seed: 0,
        };
        assert!(attack.quorum < min_quorum(n, t) || attack.quorum <= attack.max_available_votes());
        let trace = attack.run();
        assert!(
            cycle_among_victims(&trace, t),
            "no cycle found:\n{}",
            trace.to_pretty_string()
        );
    }

    #[test]
    fn attack_below_the_bound_builds_a_three_cycle() {
        let n = 9;
        let t = 3;
        let attack = WitnessAttack {
            n,
            t,
            quorum: attack_quorum(n, t),
            seed: 0,
        };
        let trace = attack.run();
        assert!(
            cycle_among_victims(&trace, t),
            "no cycle found:\n{}",
            trace.to_pretty_string()
        );
    }

    #[test]
    fn attack_fails_at_the_theorem7_threshold() {
        for (n, t) in [(6usize, 2usize), (12, 3), (10, 2)] {
            let attack = WitnessAttack {
                n,
                t,
                quorum: min_quorum(n, t),
                seed: 0,
            };
            let trace = attack.run();
            assert!(
                !cycle_among_victims(&trace, t),
                "n={n}, t={t}: cycle formed at the safe threshold\n{}",
                trace.to_pretty_string()
            );
            // Stronger: the history must satisfy sFS2b outright.
            let h = History::from_trace(&trace);
            assert!(FailedBefore::from_history(&h).is_acyclic());
        }
    }

    /// The vote threshold the attack targets: the largest count every
    /// victim can still gather.
    fn attack_quorum(n: usize, t: usize) -> usize {
        WitnessAttack {
            n,
            t,
            quorum: 0,
            seed: 0,
        }
        .max_available_votes()
    }

    #[test]
    fn exploration_certifies_the_full_protocol_within_the_failure_bound() {
        // n = 3, t = 1, one erroneous suspicion: ONE crash, within the
        // bound. Every schedule must satisfy the whole sFS suite and
        // rearrange into a fail-stop run (Theorem 5) — and the
        // exploration is small enough to prove it.
        let inst = ExploreInstance::new(ClusterSpec::new(3, 1).suspect(p(1), p(0), 10));
        let out = inst.explore();
        assert!(out.stats.complete, "{:?}", out.stats);
        assert!(out.all_certified(), "{:#?}", out.properties);
        assert!(out.certificate("sFS2b").is_some());
        assert!(out.certificate("Theorem5").is_some());
        assert!(out.classes() >= 1);
    }

    #[test]
    fn exploration_finds_a_replayable_cycle_beyond_the_failure_bound() {
        // Two suspicions → two crashes > t = 1: some schedule builds a
        // failed-before cycle (sFS2b violation), and consequently no
        // isomorphic fail-stop run exists (Theorem 5 inapplicable).
        let inst = ExploreInstance::new(ClusterSpec::new(3, 1).suspect(p(1), p(0), 10).suspect(
            p(0),
            p(1),
            10,
        ));
        let out = inst.explore();
        assert!(out.stats.complete);
        let cycle = out.certificate("sFS2b").expect("sFS2b checked");
        assert!(!cycle.certified);
        assert!(cycle.violations > 0);
        // The recorded witness replays to a schedule exhibiting the
        // violation, byte-for-byte.
        let witness = cycle.witness.clone().expect("violation recorded");
        let trace = inst.replay(&witness);
        let h = History::from_trace(&trace);
        assert_eq!(
            sfs_tlogic::properties::check_sfs2b(&h).verdict,
            Verdict::Violated,
            "replayed witness must reproduce the cycle:\n{}",
            trace.to_pretty_string()
        );
        assert!(!out.certificate("Theorem5").expect("checked").certified);
        // Properties indifferent to the cycle stay certified.
        assert!(out.certificate("sFS2c").expect("checked").certified);
    }

    #[test]
    fn exploration_pins_the_ablation_violation_on_every_schedule_class() {
        // Disabling crash-on-own-obituary: the victim survives its
        // detection on EVERY schedule — sFS2a (and Condition 1) violated.
        let inst = ExploreInstance::new(
            ClusterSpec::new(3, 1)
                .suspect(p(1), p(0), 10)
                .without_self_crash(),
        );
        let out = inst.explore();
        assert!(out.stats.complete);
        let a = out.certificate("sFS2a").expect("checked");
        assert!(!a.certified && a.violations > 0);
        assert!(a.witness.is_some());
        assert!(!out.certificate("Condition1").expect("checked").certified);
    }

    #[test]
    fn root_branch_partition_merges_to_the_sequential_outcome() {
        let inst = ExploreInstance::new(ClusterSpec::new(3, 1).suspect(p(1), p(0), 10).suspect(
            p(2),
            p(1),
            12,
        ));
        let sequential = inst.explore();
        let width = inst.width();
        assert!(width >= 1);
        let merged = (0..width as u32)
            .map(|b| inst.explore_prefix(&[b]))
            .reduce(ExploreOutcome::merge)
            .expect("at least one branch");
        assert!(merged.stats.complete);
        assert_eq!(
            merged.fingerprints, sequential.fingerprints,
            "branch partition must cover exactly the same classes"
        );
        let verdicts = |o: &ExploreOutcome| {
            let mut v: Vec<(String, bool)> = o
                .properties
                .iter()
                .map(|c| (c.property.clone(), c.certified))
                .collect();
            v.sort();
            v
        };
        assert_eq!(verdicts(&merged), verdicts(&sequential));
    }

    /// A cheap conformance budget for tests: fewer random runs, one
    /// threaded repetition, small shrink budget.
    fn test_conformance_config() -> ConformanceConfig {
        ConformanceConfig {
            random_runs: 4,
            threaded_runs: 1,
            transport_runs: 1,
            // Deterministic totals for the assertions below: the UDP leg
            // depends on a separately built binary, so the cheap budget
            // leaves it to the dedicated `udp_backend` integration tests.
            udp_runs: 0,
            settle_ms: 250,
            seed: 7,
            shrink: ShrinkConfig {
                max_replays: 2048,
                canonicalize: true,
            },
        }
    }

    #[test]
    fn conformance_all_backends_agree_on_the_certified_instance() {
        let inst = ExploreInstance::new(ClusterSpec::new(3, 1).suspect(p(1), p(0), 10));
        let out = inst.conformance(&test_conformance_config());
        assert!(out.reference.stats.complete);
        assert!(out.reference.all_certified());
        assert!(
            out.agreement(),
            "{:#?}",
            out.divergences().collect::<Vec<_>>()
        );
        assert!(out.replay_checks >= 5, "{}", out.replay_checks);
        // time-ordered + random + replay + threaded:event +
        // threaded:event+net + transport + transport-adaptive; the
        // net:udp column is present but budgeted to zero runs here.
        assert_eq!(
            out.total_runs(),
            1 + 4 + 5 + 1 + 1 + 1 + 1,
            "{:#?}",
            out.backends
        );
        assert!(out.backends.iter().any(|b| b.backend == "net:udp"));
        // Nothing was violated, so nothing was shrunk.
        assert!(out.shrunk.is_empty());
    }

    #[test]
    fn conformance_agrees_beyond_the_bound_and_shrinks_the_cycle_witness() {
        // The PR 2 sFS2b cycle instance: mutual suspicion, 2 crashes > t.
        let inst = ExploreInstance::new(ClusterSpec::new(3, 1).suspect(p(1), p(0), 10).suspect(
            p(0),
            p(1),
            10,
        ));
        let out = inst.conformance(&test_conformance_config());
        assert!(out.reference.stats.complete);
        assert!(
            out.agreement(),
            "{:#?}",
            out.divergences().collect::<Vec<_>>()
        );
        let cycle = out
            .shrunk
            .iter()
            .find(|s| s.property == "sFS2b")
            .expect("cycle witness shrunk");
        assert!(
            cycle.outcome.final_len < cycle.outcome.initial_len,
            "no reduction: {} -> {}",
            cycle.outcome.initial_len,
            cycle.outcome.final_len
        );
        // The minimal witness still replays to the violation, strictly.
        let trace = inst.replay(&cycle.outcome.run.choices);
        assert_eq!(trace, cycle.outcome.run.trace);
        let h = History::from_trace(&trace);
        assert_eq!(properties::check_sfs2b(&h).verdict, Verdict::Violated);
    }

    #[test]
    fn envelope_of_a_merged_outcome_drops_the_universal_claim() {
        // Two injections give the schedule tree a root width of 2, so the
        // branch partition genuinely merges.
        let inst = ExploreInstance::new(
            ClusterSpec::new(3, 1)
                .suspect(p(1), p(0), 10)
                .suspect(p(2), p(0), 12)
                .without_self_crash(),
        );
        let sequential = inst.explore();
        assert!(!sequential.merged);
        // sFS2a is violated on every class: the sequential envelope says so.
        let envelope = sequential.envelope();
        assert!(envelope.property("sFS2a").expect("present").always_violated);
        let width = inst.width();
        let merged = (0..width as u32)
            .map(|b| inst.explore_prefix(&[b]))
            .reduce(ExploreOutcome::merge)
            .expect("width >= 1");
        assert!(merged.merged);
        // The merged outcome may double-count, so its envelope must not
        // make the universal claim even though it happens to be true.
        let envelope = merged.envelope();
        assert!(!envelope.property("sFS2a").expect("present").always_violated);
        assert!(envelope.complete);
    }

    #[test]
    fn shrink_instance_reduces_spec_and_witness() {
        // A cycle-exhibiting spec padded with an irrelevant third
        // suspicion. The instance shrinker must strip scripted noise
        // while the sFS2b cycle keeps reproducing, then choice-shrink the
        // reduced instance's witness.
        let inst = ExploreInstance::new(
            ClusterSpec::new(3, 1)
                .suspect(p(1), p(0), 10)
                .suspect(p(0), p(1), 10)
                .suspect(p(2), p(0), 50),
        );
        let out = inst
            .shrink_instance("sFS2b", &ShrinkConfig::default())
            .expect("cycle reproducible");
        assert!(
            out.dropped_suspicions >= 1,
            "no suspicion dropped: {:?}",
            out.instance.spec
        );
        assert!(out.instance.spec.suspicions.len() < 3);
        // The reduced instance still violates, with a replayable witness.
        let trace = out.instance.replay(&out.witness.run.choices);
        assert_eq!(trace, out.witness.run.trace);
        let h = History::from_trace(&trace);
        assert_eq!(properties::check_sfs2b(&h).verdict, Verdict::Violated);
    }

    #[test]
    fn random_walks_sample_without_certifying() {
        let inst = ExploreInstance::new(ClusterSpec::new(3, 1).suspect(p(1), p(0), 10));
        let out = inst.random_walks(&sfs_explore::WalkConfig {
            walks: 16,
            ..Default::default()
        });
        assert!(!out.stats.complete);
        assert!(out.properties.iter().all(|c| !c.certified));
        assert_eq!(out.stats.visited, 16);
    }
}
