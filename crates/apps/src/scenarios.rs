//! Adversarial executions from the paper's lower-bound proofs, plus
//! systematic schedule-space exploration of small protocol instances.
//!
//! Two kinds of adversary live here:
//!
//! * [`WitnessAttack`] — the *constructed* adversary of Appendix A.3: one
//!   specific latency schedule forcing a failed-before cycle (Theorem 6);
//! * [`ExploreInstance`] — the *universal* adversary: every schedule of a
//!   bounded instance, enumerated via the `sfs-explore` crate, with each
//!   explored history pushed through the full property suite
//!   ([`check_sfs_suite`](sfs_tlogic::properties::check_sfs_suite)) and
//!   the Theorem 5 rearrangement engine ([`rearrange_to_fs`]) to produce
//!   per-property **certify/violate** verdicts (experiment E9).
//!
//! The centerpiece of the first kind is the Appendix A.3 construction behind Theorem 6: if
//! the quorum sets of `k = t` detections can have empty intersection (no
//! witness), an asynchronous adversary can schedule message delays so that
//! the failed-before relation acquires a `k`-cycle, violating sFS2b.
//!
//! The construction: divide `P` into `k` sets `S_0 .. S_{k-1}` with
//! initiator `i ∈ S_i`. Every process in `S_j` has its messages to all of
//! `S_{j⊕1}` delayed indefinitely. Each process is made to suspect the
//! `k` victims in an order chosen so that, for every victim `x`, the vote
//! `"x⊕1 failed"` is sent before `"x failed"` on every non-delayed
//! channel — so victim `x` completes its quorum for `x⊕1` *before* its own
//! obituary kills it. Each victim can gather at most `n - |S_{x⊖1}|
//! = n(t-1)/t` votes; if the protocol's quorum threshold is at or below
//! that bound, all `k` detections fire and `failed_0(1), failed_1(2), ...,
//! failed_{k-1}(0)` close the cycle. At the Theorem 7 threshold
//! `⌊n(t-1)/t⌋ + 1`, no victim can complete its round and the attack
//! fails — the bound is tight.

use sfs::{ClusterSpec, ModeSpec, NullApp, QuorumPolicy, SfsMsg};
use sfs_asys::{ChoiceTrace, FixedLatency, OverrideLatency, ProcessId, Sim, Trace};
use sfs_explore::{
    class_fingerprint, explore, random_walks, replay, ExploreConfig, ExploreStats, Pruning,
    ScheduleRun, WalkConfig,
};
use sfs_history::{rearrange_to_fs, FailedBefore, History};
use sfs_tlogic::{properties, Verdict};
use std::collections::HashSet;

/// Parameters of the A.3 witness-violation attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WitnessAttack {
    /// System size; must satisfy `n ≥ t` (sets need one initiator each).
    pub n: usize,
    /// Cycle size `k = t` — the number of victims.
    pub t: usize,
    /// Vote threshold the protocol is (mis)configured with.
    pub quorum: usize,
    /// Scheduler seed (the attack is deterministic; the seed only affects
    /// inconsequential tie-breaks).
    pub seed: u64,
}

impl WitnessAttack {
    /// The largest vote count any victim can gather under this attack:
    /// `n - |S_{x⊖1}| - 1`, minimized over victims (sets are near-equal).
    ///
    /// The `-1` is a nuance of the concrete §5 protocol relative to the
    /// abstract §4 model the Theorem 7 bound is stated for: in §4 the
    /// suspected process may still ACK its own suspicion, so the
    /// construction reaches `n(t-1)/t` votes; in §5 the acknowledgement
    /// *is* the obituary and the victim crashes instead of acking, costing
    /// every round exactly one vote. The concrete protocol therefore
    /// resists the attack even one vote below the abstract bound.
    pub fn max_available_votes(&self) -> usize {
        let k = self.t;
        // |S_j| = processes with index ≡ j (mod k); the largest set bounds
        // the tightest victim.
        let largest_set = self.n.div_ceil(k);
        self.n - largest_set - 1
    }

    /// Runs the attack and returns the trace.
    ///
    /// # Panics
    ///
    /// Panics if `t < 2` (a cycle needs at least two victims) or `n < t`.
    pub fn run(&self) -> Trace {
        assert!(
            self.t >= 2,
            "a failed-before cycle needs at least two victims"
        );
        assert!(self.n >= self.t, "need one initiator per set");
        let n = self.n;
        let k = self.t;
        let set_of = |p: ProcessId| p.index() % k;
        let members_of = |j: usize| -> Vec<ProcessId> {
            ProcessId::all(n).filter(|p| set_of(*p) == j).collect()
        };

        // Timing: suspicion steps are `d` ticks apart; the base channel
        // latency `l` exceeds the whole injection window so no process
        // learns a suspicion from a peer before its own schedule says so.
        let d = k as u64; // injection step spacing
        let l = (k * k + k + 10) as u64; // base latency

        // Adversarial latency. Two layers (first match wins):
        //  1. S_j -> S_{j+1} held past the horizon ("delayed
        //     indefinitely");
        //  2. channels into each victim x are sped up in proportion to how
        //     *late* the sender's schedule votes for x's suspect x+1, so
        //     every quorum vote for x+1 arrives strictly before any
        //     obituary of x. (On each channel FIFO already orders the two;
        //     this handles the race *between* channels.)
        let mut latency = OverrideLatency::new(FixedLatency(l));
        for from in ProcessId::all(n) {
            let blocked = members_of((set_of(from) + 1) % k);
            latency = latency.hold_set(from, &blocked, sfs_asys::NEVER);
        }
        for from in ProcessId::all(n) {
            let j = set_of(from);
            for x in 0..k {
                // Position of victim x+1 in `from`'s descending schedule.
                let pos = ((j + k) - x) % k;
                if pos == k - 1 {
                    continue; // that's the held channel (j = x-1)
                }
                let victim = ProcessId::new(x);
                let chan_latency = l - (pos as u64) * (d - 1);
                latency = latency.hold(from, victim, chan_latency);
            }
        }

        // Suspicion schedule: process v in S_j suspects the victims in the
        // order j+1, j, j-1, ... (descending mod k). On every non-delayed
        // channel FIFO then delivers the obituary of x+1 before the
        // obituary of x, so each victim completes its round before dying.
        let mut spec = ClusterSpec::new(n, k)
            .quorum(QuorumPolicy::FixedCount(self.quorum))
            .seed(self.seed)
            .max_time(100_000);
        for v in ProcessId::all(n) {
            let j = set_of(v);
            for step in 0..k {
                // Descending from j+1: victim = (j + 1 - step) mod k.
                let victim = ProcessId::new((j + 1 + k - step) % k);
                spec = spec.suspect(v, victim, 1 + step as u64 * d);
            }
        }
        spec.run_with_latency(latency, |_| sfs::NullApp)
    }
}

/// Whether the trace's failed-before relation contains a cycle exactly
/// over the `t` victims `{0, .., t-1}`.
pub fn cycle_among_victims(trace: &Trace, t: usize) -> bool {
    let h = History::from_trace(trace);
    let fb = FailedBefore::from_history(&h);
    match fb.find_cycle() {
        None => false,
        Some(cycle) => cycle.iter().all(|p| p.index() < t),
    }
}

/// A bounded protocol instance whose **entire schedule space** is to be
/// checked: the universal-adversary counterpart of [`WitnessAttack`].
///
/// Exploration re-runs the cluster once per schedule, so the spec should
/// be small (3–4 processes, a couple of injected suspicions/crashes);
/// larger instances fall back to [`ExploreInstance::random_walks`].
///
/// # Examples
///
/// Certify the full sFS suite over *every* schedule of a 3-process
/// instance with one erroneous suspicion:
///
/// ```
/// use sfs::ClusterSpec;
/// use sfs_apps::scenarios::ExploreInstance;
/// use sfs_asys::ProcessId;
///
/// let spec = ClusterSpec::new(3, 1).suspect(ProcessId::new(1), ProcessId::new(0), 10);
/// let outcome = ExploreInstance::new(spec).explore();
/// assert!(outcome.stats.complete, "small instance: fully enumerated");
/// assert!(outcome.all_certified(), "no schedule violates any sFS property");
/// ```
#[derive(Debug, Clone)]
pub struct ExploreInstance {
    /// The cluster under test. Its `seed`/`latency` fields are largely
    /// moot: the explorer overrides the schedule entirely.
    pub spec: ClusterSpec,
    /// Exploration budgets and pruning policy.
    pub config: ExploreConfig,
}

/// The exploration verdict for one property on one instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyCertificate {
    /// Property name as reported by the checker (e.g. `"sFS2a"`), or the
    /// synthetic `"Theorem5"` entry for "an isomorphic fail-stop run
    /// exists" — the schedule-robust reading of FS2 (raw FS2 order is
    /// interleaving-sensitive, so it is exactly the thing exploration
    /// must *not* quantify class-wise; Theorem 5 rearrangeability is its
    /// commutation-invariant counterpart).
    pub property: String,
    /// `true` when the exploration was complete and no schedule violated
    /// the property: a proof over the instance's whole schedule space.
    pub certified: bool,
    /// Schedule-equivalence classes on which the property was violated
    /// (an upper bound after [`ExploreOutcome::merge`]: parallel branches
    /// dedup independently, so a class seen by two branches counts
    /// twice).
    pub violations: usize,
    /// The choice trace of the first violating schedule, replayable via
    /// [`ExploreInstance::replay`].
    pub witness: Option<ChoiceTrace>,
}

/// Aggregated result of exploring one instance.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// Raw exploration counters (schedules, pruning, completeness).
    pub stats: ExploreStats,
    /// Sorted fingerprints of the distinct happens-before classes
    /// checked (see [`class_fingerprint`]).
    pub fingerprints: Vec<u64>,
    /// Visited schedules skipped because their class fingerprint had
    /// already been checked (catches equivalences sleep sets miss, e.g.
    /// the pruning lost across parallel root branches).
    pub deduped: usize,
    /// Simulator trace events across every *visited* schedule — the
    /// experiment harness's throughput denominator.
    pub trace_events: u64,
    /// One certificate per property, in suite order, `"Theorem5"` last.
    pub properties: Vec<PropertyCertificate>,
}

impl ExploreOutcome {
    /// Distinct happens-before classes actually checked.
    pub fn classes(&self) -> usize {
        self.fingerprints.len()
    }

    /// The certificate for `property`, if present.
    pub fn certificate(&self, property: &str) -> Option<&PropertyCertificate> {
        self.properties.iter().find(|c| c.property == property)
    }

    /// Whether every property was certified (requires a complete
    /// exploration with zero violations across the board).
    pub fn all_certified(&self) -> bool {
        self.properties.iter().all(|c| c.certified)
    }

    /// Folds the outcome of another (root-branch) exploration of the
    /// **same instance** into this one: counters sum, class fingerprints
    /// union, per-property violations sum (first witness wins), and a
    /// property stays certified only if the merged exploration is
    /// complete with zero violations.
    pub fn merge(mut self, other: ExploreOutcome) -> ExploreOutcome {
        self.stats.absorb(&other.stats);
        self.fingerprints.extend(other.fingerprints);
        self.fingerprints.sort_unstable();
        self.fingerprints.dedup();
        self.deduped += other.deduped;
        self.trace_events += other.trace_events;
        for theirs in other.properties {
            match self
                .properties
                .iter_mut()
                .find(|c| c.property == theirs.property)
            {
                Some(ours) => {
                    ours.violations += theirs.violations;
                    if ours.witness.is_none() {
                        ours.witness = theirs.witness;
                    }
                }
                None => self.properties.push(theirs),
            }
        }
        for c in &mut self.properties {
            c.certified = self.stats.complete && c.violations == 0;
        }
        self
    }
}

/// Verdict accumulator shared by the exhaustive and sampling drivers.
#[derive(Debug, Default)]
struct Verdicts {
    seen: HashSet<u64>,
    deduped: usize,
    trace_events: u64,
    /// name → (violations, first witness)
    table: Vec<(String, usize, Option<ChoiceTrace>)>,
}

impl Verdicts {
    fn note(&mut self, name: &str, verdict: Verdict, choices: &ChoiceTrace) {
        let entry = match self.table.iter_mut().find(|(n, _, _)| n == name) {
            Some(e) => e,
            None => {
                self.table.push((name.to_owned(), 0, None));
                self.table.last_mut().expect("just pushed")
            }
        };
        if verdict == Verdict::Violated {
            entry.1 += 1;
            if entry.2.is_none() {
                entry.2 = Some(choices.clone());
            }
        }
    }

    fn ingest(&mut self, run: &ScheduleRun) {
        self.trace_events += run.trace.events().len() as u64;
        let h = History::from_trace(&run.trace);
        let fp = class_fingerprint(&h);
        if !self.seen.insert(fp) {
            self.deduped += 1;
            return;
        }
        // Liveness obligations are only judged on complete (quiescent)
        // schedules; truncated ones still check all safety properties.
        let complete = run.trace.stop_reason().is_complete();
        for report in properties::check_sfs_suite(&h, complete) {
            self.note(report.property, report.verdict, &run.choices);
        }
        // Theorem 5: does an isomorphic fail-stop run exist? sFS2a
        // guarantees the crash of every detected process in the *full*
        // run, so charge missing crashes to sFS2a (already checked) and
        // complete the prefix before rearranging, as the paper does.
        let verdict = match rearrange_to_fs(&h.complete_missing_crashes()) {
            Ok(_) => Verdict::Holds,
            Err(_) => Verdict::Violated,
        };
        self.note("Theorem5", verdict, &run.choices);
    }

    fn finish(self, stats: ExploreStats) -> ExploreOutcome {
        let mut fingerprints: Vec<u64> = self.seen.iter().copied().collect();
        fingerprints.sort_unstable();
        ExploreOutcome {
            stats,
            fingerprints,
            deduped: self.deduped,
            trace_events: self.trace_events,
            properties: self
                .table
                .into_iter()
                .map(|(property, violations, witness)| PropertyCertificate {
                    certified: stats.complete && violations == 0,
                    property,
                    violations,
                    witness,
                })
                .collect(),
        }
    }
}

impl ExploreInstance {
    /// An instance with default exploration budgets.
    pub fn new(spec: ClusterSpec) -> Self {
        ExploreInstance {
            spec,
            config: ExploreConfig::default(),
        }
    }

    /// A fresh, un-run simulator for the spec. Exploration ignores the
    /// spec's latency model, so a fixed one keeps `at` annotations tame.
    fn build(&self) -> Sim<SfsMsg<()>> {
        self.spec
            .clone()
            .build_with_latency(FixedLatency(1), |_| NullApp)
    }

    /// Sleep-set pruning is sound only when process behaviour is a
    /// function of (local state, delivered event) — the paper's own
    /// determinism assumption. Heartbeat detection reads the virtual
    /// clock (`ctx.now()`), and the oracle detector reads the shared
    /// crash registry; both can observe *when* a step runs relative to
    /// steps at other loci, so commuting locus-disjoint steps is no
    /// longer behaviour-preserving and a "complete" pruned exploration
    /// could falsely certify. Refuse rather than mis-prove.
    fn assert_pruning_sound(&self) {
        if self.config.pruning != Pruning::SleepSets {
            return;
        }
        assert!(
            self.spec.heartbeat.is_none(),
            "sleep-set pruning is unsound under heartbeat detection (handlers read \
             ctx.now()); use Pruning::None or random_walks"
        );
        assert!(
            self.spec.mode != ModeSpec::Oracle,
            "sleep-set pruning is unsound under the oracle detector (handlers read \
             the shared crash registry); use Pruning::None or random_walks"
        );
    }

    /// Exhaustively explores the instance's schedule space (within the
    /// configured budgets) and checks every schedule class against the
    /// sFS suite and the Theorem 5 rearrangement engine.
    ///
    /// # Panics
    ///
    /// Panics on spec/pruning combinations where sleep-set pruning would
    /// be unsound (heartbeat or oracle detection): use
    /// [`Pruning::None`] or [`ExploreInstance::random_walks`] there.
    pub fn explore(&self) -> ExploreOutcome {
        self.assert_pruning_sound();
        let mut verdicts = Verdicts::default();
        let stats = explore(&self.config, || self.build(), |run| verdicts.ingest(&run));
        verdicts.finish(stats)
    }

    /// Explores only the subtree under `prefix` — the unit the E9 sweep
    /// parallelizes over (one rayon task per root branch).
    ///
    /// # Panics
    ///
    /// As [`ExploreInstance::explore`].
    pub fn explore_prefix(&self, prefix: &[u32]) -> ExploreOutcome {
        self.assert_pruning_sound();
        let mut verdicts = Verdicts::default();
        let stats = sfs_explore::explore_with_prefix(
            &self.config,
            prefix,
            || self.build(),
            |run| verdicts.ingest(&run),
        );
        verdicts.finish(stats)
    }

    /// The root branching width of the instance's schedule tree.
    pub fn width(&self) -> usize {
        sfs_explore::probe_width(|| self.build())
    }

    /// The sampling fallback: `config.walks` random schedules. Verdicts
    /// are aggregated identically but nothing is ever certified
    /// (`certified` stays `false` on every entry).
    pub fn random_walks(&self, config: &WalkConfig) -> ExploreOutcome {
        let mut verdicts = Verdicts::default();
        let stats = random_walks(config, || self.build(), |run| verdicts.ingest(&run));
        verdicts.finish(stats)
    }

    /// Replays a recorded witness against a fresh instance, reproducing
    /// its trace byte-for-byte.
    pub fn replay(&self, choices: &[u32]) -> Trace {
        replay(self.build(), choices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs::quorum::min_quorum;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn attack_below_the_bound_builds_a_two_cycle() {
        let n = 6;
        let t = 2;
        let attack = WitnessAttack {
            n,
            t,
            quorum: attack_quorum(n, t),
            seed: 0,
        };
        assert!(attack.quorum < min_quorum(n, t) || attack.quorum <= attack.max_available_votes());
        let trace = attack.run();
        assert!(
            cycle_among_victims(&trace, t),
            "no cycle found:\n{}",
            trace.to_pretty_string()
        );
    }

    #[test]
    fn attack_below_the_bound_builds_a_three_cycle() {
        let n = 9;
        let t = 3;
        let attack = WitnessAttack {
            n,
            t,
            quorum: attack_quorum(n, t),
            seed: 0,
        };
        let trace = attack.run();
        assert!(
            cycle_among_victims(&trace, t),
            "no cycle found:\n{}",
            trace.to_pretty_string()
        );
    }

    #[test]
    fn attack_fails_at_the_theorem7_threshold() {
        for (n, t) in [(6usize, 2usize), (12, 3), (10, 2)] {
            let attack = WitnessAttack {
                n,
                t,
                quorum: min_quorum(n, t),
                seed: 0,
            };
            let trace = attack.run();
            assert!(
                !cycle_among_victims(&trace, t),
                "n={n}, t={t}: cycle formed at the safe threshold\n{}",
                trace.to_pretty_string()
            );
            // Stronger: the history must satisfy sFS2b outright.
            let h = History::from_trace(&trace);
            assert!(FailedBefore::from_history(&h).is_acyclic());
        }
    }

    /// The vote threshold the attack targets: the largest count every
    /// victim can still gather.
    fn attack_quorum(n: usize, t: usize) -> usize {
        WitnessAttack {
            n,
            t,
            quorum: 0,
            seed: 0,
        }
        .max_available_votes()
    }

    #[test]
    fn exploration_certifies_the_full_protocol_within_the_failure_bound() {
        // n = 3, t = 1, one erroneous suspicion: ONE crash, within the
        // bound. Every schedule must satisfy the whole sFS suite and
        // rearrange into a fail-stop run (Theorem 5) — and the
        // exploration is small enough to prove it.
        let inst = ExploreInstance::new(ClusterSpec::new(3, 1).suspect(p(1), p(0), 10));
        let out = inst.explore();
        assert!(out.stats.complete, "{:?}", out.stats);
        assert!(out.all_certified(), "{:#?}", out.properties);
        assert!(out.certificate("sFS2b").is_some());
        assert!(out.certificate("Theorem5").is_some());
        assert!(out.classes() >= 1);
    }

    #[test]
    fn exploration_finds_a_replayable_cycle_beyond_the_failure_bound() {
        // Two suspicions → two crashes > t = 1: some schedule builds a
        // failed-before cycle (sFS2b violation), and consequently no
        // isomorphic fail-stop run exists (Theorem 5 inapplicable).
        let inst = ExploreInstance::new(ClusterSpec::new(3, 1).suspect(p(1), p(0), 10).suspect(
            p(0),
            p(1),
            10,
        ));
        let out = inst.explore();
        assert!(out.stats.complete);
        let cycle = out.certificate("sFS2b").expect("sFS2b checked");
        assert!(!cycle.certified);
        assert!(cycle.violations > 0);
        // The recorded witness replays to a schedule exhibiting the
        // violation, byte-for-byte.
        let witness = cycle.witness.clone().expect("violation recorded");
        let trace = inst.replay(&witness);
        let h = History::from_trace(&trace);
        assert_eq!(
            sfs_tlogic::properties::check_sfs2b(&h).verdict,
            Verdict::Violated,
            "replayed witness must reproduce the cycle:\n{}",
            trace.to_pretty_string()
        );
        assert!(!out.certificate("Theorem5").expect("checked").certified);
        // Properties indifferent to the cycle stay certified.
        assert!(out.certificate("sFS2c").expect("checked").certified);
    }

    #[test]
    fn exploration_pins_the_ablation_violation_on_every_schedule_class() {
        // Disabling crash-on-own-obituary: the victim survives its
        // detection on EVERY schedule — sFS2a (and Condition 1) violated.
        let inst = ExploreInstance::new(
            ClusterSpec::new(3, 1)
                .suspect(p(1), p(0), 10)
                .without_self_crash(),
        );
        let out = inst.explore();
        assert!(out.stats.complete);
        let a = out.certificate("sFS2a").expect("checked");
        assert!(!a.certified && a.violations > 0);
        assert!(a.witness.is_some());
        assert!(!out.certificate("Condition1").expect("checked").certified);
    }

    #[test]
    fn root_branch_partition_merges_to_the_sequential_outcome() {
        let inst = ExploreInstance::new(ClusterSpec::new(3, 1).suspect(p(1), p(0), 10).suspect(
            p(2),
            p(1),
            12,
        ));
        let sequential = inst.explore();
        let width = inst.width();
        assert!(width >= 1);
        let merged = (0..width as u32)
            .map(|b| inst.explore_prefix(&[b]))
            .reduce(ExploreOutcome::merge)
            .expect("at least one branch");
        assert!(merged.stats.complete);
        assert_eq!(
            merged.fingerprints, sequential.fingerprints,
            "branch partition must cover exactly the same classes"
        );
        let verdicts = |o: &ExploreOutcome| {
            let mut v: Vec<(String, bool)> = o
                .properties
                .iter()
                .map(|c| (c.property.clone(), c.certified))
                .collect();
            v.sort();
            v
        };
        assert_eq!(verdicts(&merged), verdicts(&sequential));
    }

    #[test]
    fn random_walks_sample_without_certifying() {
        let inst = ExploreInstance::new(ClusterSpec::new(3, 1).suspect(p(1), p(0), 10));
        let out = inst.random_walks(&sfs_explore::WalkConfig {
            walks: 16,
            ..Default::default()
        });
        assert!(!out.stats.complete);
        assert!(out.properties.iter().all(|c| !c.certified));
        assert_eq!(out.stats.visited, 16);
    }
}
