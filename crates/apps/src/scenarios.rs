//! Adversarial executions from the paper's lower-bound proofs.
//!
//! The centerpiece is the Appendix A.3 construction behind Theorem 6: if
//! the quorum sets of `k = t` detections can have empty intersection (no
//! witness), an asynchronous adversary can schedule message delays so that
//! the failed-before relation acquires a `k`-cycle, violating sFS2b.
//!
//! The construction: divide `P` into `k` sets `S_0 .. S_{k-1}` with
//! initiator `i ∈ S_i`. Every process in `S_j` has its messages to all of
//! `S_{j⊕1}` delayed indefinitely. Each process is made to suspect the
//! `k` victims in an order chosen so that, for every victim `x`, the vote
//! `"x⊕1 failed"` is sent before `"x failed"` on every non-delayed
//! channel — so victim `x` completes its quorum for `x⊕1` *before* its own
//! obituary kills it. Each victim can gather at most `n - |S_{x⊖1}|
//! = n(t-1)/t` votes; if the protocol's quorum threshold is at or below
//! that bound, all `k` detections fire and `failed_0(1), failed_1(2), ...,
//! failed_{k-1}(0)` close the cycle. At the Theorem 7 threshold
//! `⌊n(t-1)/t⌋ + 1`, no victim can complete its round and the attack
//! fails — the bound is tight.

use sfs::{ClusterSpec, QuorumPolicy};
use sfs_asys::{FixedLatency, OverrideLatency, ProcessId, Trace};
use sfs_history::{FailedBefore, History};

/// Parameters of the A.3 witness-violation attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WitnessAttack {
    /// System size; must satisfy `n ≥ t` (sets need one initiator each).
    pub n: usize,
    /// Cycle size `k = t` — the number of victims.
    pub t: usize,
    /// Vote threshold the protocol is (mis)configured with.
    pub quorum: usize,
    /// Scheduler seed (the attack is deterministic; the seed only affects
    /// inconsequential tie-breaks).
    pub seed: u64,
}

impl WitnessAttack {
    /// The largest vote count any victim can gather under this attack:
    /// `n - |S_{x⊖1}| - 1`, minimized over victims (sets are near-equal).
    ///
    /// The `-1` is a nuance of the concrete §5 protocol relative to the
    /// abstract §4 model the Theorem 7 bound is stated for: in §4 the
    /// suspected process may still ACK its own suspicion, so the
    /// construction reaches `n(t-1)/t` votes; in §5 the acknowledgement
    /// *is* the obituary and the victim crashes instead of acking, costing
    /// every round exactly one vote. The concrete protocol therefore
    /// resists the attack even one vote below the abstract bound.
    pub fn max_available_votes(&self) -> usize {
        let k = self.t;
        // |S_j| = processes with index ≡ j (mod k); the largest set bounds
        // the tightest victim.
        let largest_set = self.n.div_ceil(k);
        self.n - largest_set - 1
    }

    /// Runs the attack and returns the trace.
    ///
    /// # Panics
    ///
    /// Panics if `t < 2` (a cycle needs at least two victims) or `n < t`.
    pub fn run(&self) -> Trace {
        assert!(
            self.t >= 2,
            "a failed-before cycle needs at least two victims"
        );
        assert!(self.n >= self.t, "need one initiator per set");
        let n = self.n;
        let k = self.t;
        let set_of = |p: ProcessId| p.index() % k;
        let members_of = |j: usize| -> Vec<ProcessId> {
            ProcessId::all(n).filter(|p| set_of(*p) == j).collect()
        };

        // Timing: suspicion steps are `d` ticks apart; the base channel
        // latency `l` exceeds the whole injection window so no process
        // learns a suspicion from a peer before its own schedule says so.
        let d = k as u64; // injection step spacing
        let l = (k * k + k + 10) as u64; // base latency

        // Adversarial latency. Two layers (first match wins):
        //  1. S_j -> S_{j+1} held past the horizon ("delayed
        //     indefinitely");
        //  2. channels into each victim x are sped up in proportion to how
        //     *late* the sender's schedule votes for x's suspect x+1, so
        //     every quorum vote for x+1 arrives strictly before any
        //     obituary of x. (On each channel FIFO already orders the two;
        //     this handles the race *between* channels.)
        let mut latency = OverrideLatency::new(FixedLatency(l));
        for from in ProcessId::all(n) {
            let blocked = members_of((set_of(from) + 1) % k);
            latency = latency.hold_set(from, &blocked, sfs_asys::NEVER);
        }
        for from in ProcessId::all(n) {
            let j = set_of(from);
            for x in 0..k {
                // Position of victim x+1 in `from`'s descending schedule.
                let pos = ((j + k) - x) % k;
                if pos == k - 1 {
                    continue; // that's the held channel (j = x-1)
                }
                let victim = ProcessId::new(x);
                let chan_latency = l - (pos as u64) * (d - 1);
                latency = latency.hold(from, victim, chan_latency);
            }
        }

        // Suspicion schedule: process v in S_j suspects the victims in the
        // order j+1, j, j-1, ... (descending mod k). On every non-delayed
        // channel FIFO then delivers the obituary of x+1 before the
        // obituary of x, so each victim completes its round before dying.
        let mut spec = ClusterSpec::new(n, k)
            .quorum(QuorumPolicy::FixedCount(self.quorum))
            .seed(self.seed)
            .max_time(100_000);
        for v in ProcessId::all(n) {
            let j = set_of(v);
            for step in 0..k {
                // Descending from j+1: victim = (j + 1 - step) mod k.
                let victim = ProcessId::new((j + 1 + k - step) % k);
                spec = spec.suspect(v, victim, 1 + step as u64 * d);
            }
        }
        spec.run_with_latency(latency, |_| sfs::NullApp)
    }
}

/// Whether the trace's failed-before relation contains a cycle exactly
/// over the `t` victims `{0, .., t-1}`.
pub fn cycle_among_victims(trace: &Trace, t: usize) -> bool {
    let h = History::from_trace(trace);
    let fb = FailedBefore::from_history(&h);
    match fb.find_cycle() {
        None => false,
        Some(cycle) => cycle.iter().all(|p| p.index() < t),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs::quorum::min_quorum;

    #[test]
    fn attack_below_the_bound_builds_a_two_cycle() {
        let n = 6;
        let t = 2;
        let attack = WitnessAttack {
            n,
            t,
            quorum: attack_quorum(n, t),
            seed: 0,
        };
        assert!(attack.quorum < min_quorum(n, t) || attack.quorum <= attack.max_available_votes());
        let trace = attack.run();
        assert!(
            cycle_among_victims(&trace, t),
            "no cycle found:\n{}",
            trace.to_pretty_string()
        );
    }

    #[test]
    fn attack_below_the_bound_builds_a_three_cycle() {
        let n = 9;
        let t = 3;
        let attack = WitnessAttack {
            n,
            t,
            quorum: attack_quorum(n, t),
            seed: 0,
        };
        let trace = attack.run();
        assert!(
            cycle_among_victims(&trace, t),
            "no cycle found:\n{}",
            trace.to_pretty_string()
        );
    }

    #[test]
    fn attack_fails_at_the_theorem7_threshold() {
        for (n, t) in [(6usize, 2usize), (12, 3), (10, 2)] {
            let attack = WitnessAttack {
                n,
                t,
                quorum: min_quorum(n, t),
                seed: 0,
            };
            let trace = attack.run();
            assert!(
                !cycle_among_victims(&trace, t),
                "n={n}, t={t}: cycle formed at the safe threshold\n{}",
                trace.to_pretty_string()
            );
            // Stronger: the history must satisfy sFS2b outright.
            let h = History::from_trace(&trace);
            assert!(FailedBefore::from_history(&h).is_acyclic());
        }
    }

    /// The vote threshold the attack targets: the largest count every
    /// victim can still gather.
    fn attack_quorum(n: usize, t: usize) -> usize {
        WitnessAttack {
            n,
            t,
            quorum: 0,
            seed: 0,
        }
        .max_available_votes()
    }
}
