//! Behavioral tests of the work-pool app on both backends: tasks are
//! never lost — under worker failure, coordinator failover, and real
//! concurrency — because reassignment only relies on sFS2a ("a detected
//! worker is really dead"), which holds on either runtime.

use sfs::ClusterSpec;
use sfs_apps::workpool::{analyze_workpool, WorkPoolApp};
use sfs_asys::ProcessId;
use std::time::Duration;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

#[test]
fn sim_worker_and_coordinator_failures_lose_nothing() {
    for seed in 0..10 {
        // Kill a worker and the coordinator in the same run.
        let trace = ClusterSpec::new(6, 2)
            .seed(seed)
            .suspect(p(2), p(0), 25) // coordinator
            .suspect(p(3), p(4), 40) // worker
            .run_apps(|_| WorkPoolApp::new(12));
        let outcome = analyze_workpool(&trace);
        assert_eq!(
            outcome.tasks_executed.len(),
            12,
            "seed {seed}: lost tasks\n{}",
            trace.to_pretty_string()
        );
        assert!(
            outcome.total_executions >= 12,
            "seed {seed}: at-least-once violated"
        );
    }
}

#[test]
fn threaded_pool_completes_all_tasks() {
    let trace =
        ClusterSpec::new(4, 1).run_threaded(|_| WorkPoolApp::new(10), Duration::from_millis(400));
    let outcome = analyze_workpool(&trace);
    assert_eq!(
        outcome.tasks_executed.len(),
        10,
        "lost tasks on threads:\n{}",
        trace.to_pretty_string()
    );
    assert!(
        outcome.all_done_observed,
        "no coordinator observed completion:\n{}",
        trace.to_pretty_string()
    );
}

#[test]
fn threaded_worker_failure_reassigns_its_tasks() {
    let trace = ClusterSpec::new(5, 2)
        .suspect(p(0), p(3), 30)
        .run_threaded(|_| WorkPoolApp::new(10), Duration::from_millis(500));
    assert_eq!(trace.crashed(), vec![p(3)], "{}", trace.to_pretty_string());
    let outcome = analyze_workpool(&trace);
    assert_eq!(
        outcome.tasks_executed.len(),
        10,
        "worker failure lost tasks on threads:\n{}",
        trace.to_pretty_string()
    );
    assert!(outcome.all_done_observed);
}

#[test]
fn threaded_coordinator_failover_hands_over() {
    let trace = ClusterSpec::new(5, 2)
        .suspect(p(2), p(0), 30)
        .run_threaded(|_| WorkPoolApp::new(10), Duration::from_millis(500));
    assert_eq!(trace.crashed(), vec![p(0)], "{}", trace.to_pretty_string());
    let outcome = analyze_workpool(&trace);
    assert_eq!(
        outcome.tasks_executed.len(),
        10,
        "failover lost tasks on threads:\n{}",
        trace.to_pretty_string()
    );
    assert!(
        outcome.all_done_observed,
        "the successor coordinator never observed completion:\n{}",
        trace.to_pretty_string()
    );
}
