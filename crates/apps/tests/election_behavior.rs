//! Behavioral tests of the election app (§1 of the paper) on **both**
//! execution backends: the deterministic simulator and the threaded
//! runtime. Same protocol code, same application automaton; only the
//! scheduler differs — which is exactly what the paper's Theorem 5
//! says no process may be able to observe.

use sfs::{ClusterSpec, ModeSpec};
use sfs_apps::election::{analyze_election, ElectionApp};
use sfs_asys::ProcessId;
use std::time::Duration;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// A 5-process cluster where p1 falsely suspects the initial leader p0.
fn spec(mode: ModeSpec, seed: u64) -> ClusterSpec {
    ClusterSpec::new(5, 2)
        .mode(mode)
        .seed(seed)
        .suspect(p(1), p(0), 10)
}

#[test]
fn sim_leadership_transfers_without_fs_impossible_observations() {
    for seed in 0..10 {
        let trace = spec(ModeSpec::SfsOneRound, seed).run_apps(|_| ElectionApp::new());
        let outcome = analyze_election(&trace);
        assert_eq!(
            outcome.observed_anomalies, 0,
            "seed {seed}: FS-impossible observation under sFS"
        );
        assert_eq!(outcome.claims.first().map(|&(_, c)| c), Some(p(0)));
        assert!(
            outcome.claims.iter().any(|&(_, c)| c == p(1)),
            "seed {seed}: leadership never transferred to p1"
        );
    }
}

#[test]
fn threaded_leadership_transfers_without_fs_impossible_observations() {
    // Real concurrency: the wrongly-suspected leader must still be killed
    // by its own obituary, leadership must still transfer, and no process
    // may observe anything a fail-stop run could not produce.
    let trace = spec(ModeSpec::SfsOneRound, 3)
        .run_threaded(|_| ElectionApp::new(), Duration::from_millis(400));
    assert_eq!(
        trace.crashed(),
        vec![p(0)],
        "own obituary must kill the false-suspected leader:\n{}",
        trace.to_pretty_string()
    );
    let outcome = analyze_election(&trace);
    assert_eq!(
        outcome.observed_anomalies,
        0,
        "FS-impossible observation on threads:\n{}",
        trace.to_pretty_string()
    );
    assert_eq!(outcome.claims.first().map(|&(_, c)| c), Some(p(0)));
    assert!(
        outcome.claims.iter().any(|&(_, c)| c == p(1)),
        "leadership never transferred:\n{}",
        trace.to_pretty_string()
    );
}

#[test]
fn threaded_unilateral_detection_leaks_split_brain_evidence() {
    // The negative control on real threads: unilateral detection never
    // kills p0, so p1's false detection makes two live self-believed
    // leaders, and p0's rebuke is an observation no fail-stop run admits.
    let mut anomaly_seen = false;
    for seed in 0..5 {
        let trace = spec(ModeSpec::Unilateral, seed)
            .run_threaded(|_| ElectionApp::new(), Duration::from_millis(300));
        assert!(trace.crashed().is_empty(), "unilateral mode kills no one");
        if analyze_election(&trace).observed_anomalies > 0 {
            anomaly_seen = true;
            break;
        }
    }
    assert!(
        anomaly_seen,
        "unilateral detection never leaked an FS-impossible observation on threads"
    );
}
