//! Executable soundness evidence for sleep-set pruning (EXPERIMENTS.md
//! §E9/§E10): on tiny instances (`n ≤ 3`) where full unpruned
//! enumeration is feasible, the pruned DFS must report **exactly** the
//! same property verdicts — same certified set, same violated set — and
//! visit exactly the same happens-before class set, across random
//! feasible specs and ablations.
//!
//! This is the pinned counterpart of the argument in the `sfs-explore`
//! `dfs` module docs: pruning only ever skips schedules equivalent to an
//! explored one under adjacent-commutation, and every reported verdict
//! is invariant under exactly that relation.

use proptest::prelude::*;
use sfs::ClusterSpec;
use sfs_apps::scenarios::{ExploreInstance, ExploreOutcome};
use sfs_asys::ProcessId;
use sfs_explore::{ExploreConfig, Pruning};

/// A tiny instance: every shape here enumerates completely without
/// pruning (measured: ≤ ~1k schedules).
#[derive(Debug, Clone)]
struct TinyInstance {
    spec: ClusterSpec,
}

fn arb_tiny() -> impl Strategy<Value = TinyInstance> {
    (
        2usize..=3,
        5u64..40,
        5u64..40,
        prop::bool::ANY,
        prop::bool::ANY,
        prop::bool::ANY,
    )
        .prop_map(|(n, at_a, at_b, second_fault, no_gate, no_self_crash)| {
            let p = ProcessId::new;
            // One erroneous suspicion always; the second fault keeps the
            // unpruned tree small: a counter-suspicion on n = 2, a silent
            // crash of the bystander on n = 3.
            let mut spec = ClusterSpec::new(n, 1).suspect(p(1), p(0), at_a);
            if second_fault {
                spec = if n == 2 {
                    spec.suspect(p(0), p(1), at_b)
                } else {
                    spec.crash(p(2), at_b)
                };
            }
            if no_gate {
                spec = spec.without_gating();
            }
            if no_self_crash {
                spec = spec.without_self_crash();
            }
            TinyInstance { spec }
        })
}

fn explore_with(spec: &ClusterSpec, pruning: Pruning) -> ExploreOutcome {
    let mut inst = ExploreInstance::new(spec.clone());
    inst.config = ExploreConfig {
        max_steps: 600,
        max_schedules: 2_000_000,
        pruning,
    };
    inst.explore()
}

/// `(property, certified, violated-anywhere)` triples, sorted.
fn verdicts(out: &ExploreOutcome) -> Vec<(String, bool, bool)> {
    let mut v: Vec<(String, bool, bool)> = out
        .properties
        .iter()
        .map(|c| (c.property.clone(), c.certified, c.violations > 0))
        .collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pruned_dfs_matches_full_enumeration_on_tiny_instances(tiny in arb_tiny()) {
        let full = explore_with(&tiny.spec, Pruning::None);
        let pruned = explore_with(&tiny.spec, Pruning::SleepSets);
        // Both must be genuinely complete or the comparison proves nothing.
        prop_assert!(full.stats.complete, "unpruned enumeration did not finish: {:?}", full.stats);
        prop_assert!(pruned.stats.complete, "pruned enumeration did not finish: {:?}", pruned.stats);
        // Identical class universe...
        prop_assert_eq!(&full.fingerprints, &pruned.fingerprints,
            "pruning changed the visited class set on {:?}", tiny.spec);
        // ...and identical certify/violate verdicts for every property.
        prop_assert_eq!(verdicts(&full), verdicts(&pruned),
            "pruning changed a verdict on {:?}", tiny.spec);
        // Pruning must actually prune on instances with concurrency.
        prop_assert!(pruned.stats.schedules <= full.stats.schedules);
    }
}
