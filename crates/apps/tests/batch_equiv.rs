//! Trace equivalence of the batched delivery fast path (ISSUE E11): on
//! the deterministic simulator, running the *same* cluster spec with and
//! without batching must land in the **same happens-before class** —
//! identical per-process event sequences, identical send/receive
//! pairings. The class fingerprint from `sfs-explore` condenses exactly
//! that invariant, so fingerprint equality *is* the "batching is
//! invisible to the HB model" claim, machine-checked at the model level
//! (the simulator's flush is in fact byte-identical by construction —
//! see `SimConfig::batch_flush` — which makes this suite a regression
//! tripwire: any future "optimization" that reorders intra-instant
//! execution, and thereby the shared rng's draw order, fails here).

use sfs::{ClusterSpec, HeartbeatConfig};
use sfs_apps::workpool::WorkPoolApp;
use sfs_asys::ProcessId;
use sfs_explore::class_fingerprint;
use sfs_history::History;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Fingerprints of the model-level projection and of the full trace
/// (infrastructure traffic included — the stronger claim: even the
/// detector's own obituary/heartbeat traffic keeps its HB class).
fn fingerprints(trace: &sfs_asys::Trace) -> (u64, u64) {
    (
        class_fingerprint(&History::from_trace(trace)),
        class_fingerprint(&History::from_trace_full(trace)),
    )
}

#[test]
fn batching_preserves_the_hb_class_of_detection_rounds() {
    // Suspicion-driven detection rounds: obituary broadcasts are exactly
    // the same-instant same-destination storms batching coalesces.
    for seed in 0..20 {
        let spec = |batch: bool| {
            ClusterSpec::new(6, 2)
                .seed(seed)
                .batched(batch)
                .suspect(p(1), p(0), 10)
                .suspect(p(3), p(2), 25)
        };
        let plain = spec(false).run();
        let batched = spec(true).run();
        assert_eq!(
            fingerprints(&plain),
            fingerprints(&batched),
            "seed {seed}: batching changed the HB class\nplain:\n{}\nbatched:\n{}",
            plain.to_pretty_string(),
            batched.to_pretty_string()
        );
        // Outcome sets must match exactly; their *global trace order* may
        // not (cross-process interleaving within an instant is precisely
        // what batching is allowed to change).
        assert_eq!(
            sorted(plain.crashed()),
            sorted(batched.crashed()),
            "seed {seed}"
        );
        assert_eq!(
            sorted(plain.detections()),
            sorted(batched.detections()),
            "seed {seed}"
        );
    }
}

fn sorted<T: Ord>(mut v: Vec<T>) -> Vec<T> {
    v.sort();
    v
}

#[test]
fn batching_preserves_the_hb_class_under_application_load() {
    // Work-pool traffic on top of the detector: model-level sends and
    // receives must pair and order identically too.
    for seed in 0..10 {
        let spec = |batch: bool| {
            ClusterSpec::new(5, 2)
                .seed(seed)
                .batched(batch)
                .suspect(p(0), p(3), 30)
        };
        let plain = spec(false).run_apps(|_| WorkPoolApp::new(8));
        let batched = spec(true).run_apps(|_| WorkPoolApp::new(8));
        assert_eq!(
            fingerprints(&plain),
            fingerprints(&batched),
            "seed {seed}: batching changed the HB class under load"
        );
        assert_eq!(
            plain.stats().messages_delivered,
            batched.stats().messages_delivered,
            "seed {seed}"
        );
    }
}

#[test]
fn batching_preserves_the_hb_class_with_heartbeats_and_crashes() {
    // Heartbeats synchronize broadcasts across the whole system — the
    // maximal-coalescing case — and a real crash exercises the
    // crashed-target admission path inside a flush.
    for seed in 0..5 {
        let spec = |batch: bool| {
            ClusterSpec::new(5, 1)
                .seed(seed)
                .batched(batch)
                .heartbeat(HeartbeatConfig::default())
                .crash(p(2), 50)
                .max_time(1_000)
        };
        let plain = spec(false).run();
        let batched = spec(true).run();
        assert!(
            batched.stats().delivery_batches > 0,
            "seed {seed}: heartbeat storms must coalesce"
        );
        assert_eq!(
            fingerprints(&plain),
            fingerprints(&batched),
            "seed {seed}: batching changed the HB class under heartbeats"
        );
        assert_eq!(
            sorted(plain.detections()),
            sorted(batched.detections()),
            "seed {seed}"
        );
    }
}
