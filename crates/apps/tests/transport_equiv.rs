//! Trace equivalence of the transport-backed leg (ISSUE E12): on a
//! **loss-free** link, running the same cluster spec bare (reliable
//! channels assumed, per the paper's §2 axioms) and transport-wrapped
//! (channels *emulated* by the `sfs-transport` ARQ layer) must land in
//! the **same happens-before class** — identical per-process model-level
//! event sequences, identical send/receive pairings, identical logical
//! message numbering.
//!
//! This is the `batch_equiv`-style pin for the transport: the ARQ
//! wrapper's logical send/receive events mirror the engine's own message
//! numbering (one logical id per inner send, in action order), so on a
//! fault-free network the whole transport layer is invisible to the HB
//! model. Any future change that renumbers, reorders, or double-releases
//! payloads fails here.

use sfs::{AdaptiveConfig, ClusterSpec, NetSpec};
use sfs_apps::workpool::WorkPoolApp;
use sfs_asys::ProcessId;
use sfs_explore::class_fingerprint;
use sfs_history::History;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// The model-level fingerprint of a trace (infrastructure dropped: for
/// the transport run that is every wire frame; for the bare run the
/// detector's own obituary/heartbeat traffic).
fn model_fingerprint(trace: &sfs_asys::Trace) -> u64 {
    class_fingerprint(&History::from_trace(trace))
}

#[test]
fn transport_is_hb_invisible_on_detection_rounds() {
    // Suspicion-driven detection with no app traffic: the model alphabet
    // is crashes + detections, and the per-process detection orders must
    // match exactly. Fixed latency keeps both runs' delivery orders
    // structural (no rng dependence), so the fingerprints must be equal.
    for seed in 0..10 {
        let spec = ClusterSpec::new(6, 2)
            .seed(seed)
            .latency(1, 1)
            .suspect(p(1), p(0), 10)
            .suspect(p(4), p(3), 25);
        let bare = spec.clone().run();
        let wrapped = spec.net(NetSpec::faultless()).run_net();
        assert!(bare.stop_reason().is_complete());
        assert!(wrapped.stop_reason().is_complete());
        let (hb, hw) = (model_fingerprint(&bare), model_fingerprint(&wrapped));
        assert_eq!(
            hb,
            hw,
            "seed {seed}: transport changed the HB class\nbare:\n{}\nwrapped:\n{}",
            History::from_trace(&bare).to_pretty_string(),
            History::from_trace(&wrapped).to_pretty_string(),
        );
    }
}

#[test]
fn transport_is_hb_invisible_under_an_app_workload() {
    // A real application (work pool with a coordinator crash): app
    // messages — the events sFS2d gates — must pair and order
    // identically through the transport, logical ids included.
    for seed in 0..10 {
        let spec = ClusterSpec::new(5, 2)
            .seed(seed)
            .latency(1, 1)
            .suspect(p(2), p(0), 40)
            .max_time(20_000);
        let bare = spec.clone().run_apps(|_| WorkPoolApp::new(6));
        let wrapped = spec
            .net(NetSpec::faultless())
            .try_run_net(|_| WorkPoolApp::new(6))
            .expect("feasible");
        assert!(bare.stop_reason().is_complete(), "seed {seed}");
        assert!(wrapped.stop_reason().is_complete(), "seed {seed}");
        // Both histories are valid model runs...
        let (h_bare, h_wrapped) = (History::from_trace(&bare), History::from_trace(&wrapped));
        assert!(h_bare.validate().is_ok(), "seed {seed}");
        assert!(h_wrapped.validate().is_ok(), "seed {seed}");
        // ... in the same HB class.
        assert_eq!(
            class_fingerprint(&h_bare),
            class_fingerprint(&h_wrapped),
            "seed {seed}: transport changed the app-level HB class\nbare:\n{}\nwrapped:\n{}",
            h_bare.to_pretty_string(),
            h_wrapped.to_pretty_string(),
        );
    }
}

#[test]
fn adaptive_transport_is_hb_invisible_when_loss_free() {
    // The E13 acceptance pin: adaptive timeouts (Jacobson RTO +
    // learned suspicion thresholds) change *when* the transport would
    // retransmit or suspect — on a loss-free link neither ever fires,
    // so the adaptive run must land in the same HB class as the bare
    // run, jitter rng and all.
    for seed in 0..10 {
        let spec = ClusterSpec::new(6, 2)
            .seed(seed)
            .latency(1, 1)
            .suspect(p(1), p(0), 10)
            .suspect(p(4), p(3), 25);
        let bare = spec.clone().run();
        let wrapped = spec
            .net(NetSpec::faultless().adaptive(AdaptiveConfig::default()))
            .run_net();
        assert!(bare.stop_reason().is_complete());
        assert!(wrapped.stop_reason().is_complete());
        assert_eq!(
            model_fingerprint(&bare),
            model_fingerprint(&wrapped),
            "seed {seed}: the adaptive transport changed the HB class\nbare:\n{}\nwrapped:\n{}",
            History::from_trace(&bare).to_pretty_string(),
            History::from_trace(&wrapped).to_pretty_string(),
        );
    }
}

#[test]
fn adaptive_transport_is_hb_invisible_under_an_app_workload() {
    // Same pin under a real application: work-pool ops must pair and
    // order identically whether the ARQ deadlines are fixed or
    // RTT-estimated, as long as the link never forces a decision.
    for seed in 0..10 {
        let spec = ClusterSpec::new(5, 2)
            .seed(seed)
            .latency(1, 1)
            .suspect(p(2), p(0), 40)
            .max_time(20_000);
        let bare = spec.clone().run_apps(|_| WorkPoolApp::new(6));
        let wrapped = spec
            .net(NetSpec::faultless().adaptive(AdaptiveConfig::default()))
            .try_run_net(|_| WorkPoolApp::new(6))
            .expect("feasible");
        assert!(bare.stop_reason().is_complete(), "seed {seed}");
        assert!(wrapped.stop_reason().is_complete(), "seed {seed}");
        let (h_bare, h_wrapped) = (History::from_trace(&bare), History::from_trace(&wrapped));
        assert!(h_wrapped.validate().is_ok(), "seed {seed}");
        assert_eq!(
            class_fingerprint(&h_bare),
            class_fingerprint(&h_wrapped),
            "seed {seed}: the adaptive transport changed the app-level HB class\nbare:\n{}\nwrapped:\n{}",
            h_bare.to_pretty_string(),
            h_wrapped.to_pretty_string(),
        );
    }
}
