//! Behavioral tests of the membership view service (§6) on both
//! backends: survivors' view sequences must converge under the
//! simulator's schedules and under real-thread schedules alike, because
//! convergence only relies on FS1 + sFS2a — properties the detector
//! provides identically on either runtime.

use sfs::ClusterSpec;
use sfs_apps::membership::{check_convergence, view_log, MembershipApp};
use sfs_asys::ProcessId;
use std::time::Duration;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

#[test]
fn sim_views_converge_across_seeds_and_orders() {
    for seed in 0..10 {
        let trace = ClusterSpec::new(6, 2)
            .seed(seed)
            .suspect(p(1), p(0), 10)
            .suspect(p(2), p(5), 12)
            .run_apps(|_| MembershipApp::new());
        check_convergence(&trace)
            .unwrap_or_else(|(a, b)| panic!("seed {seed}: views of {a} and {b} diverged"));
        // Survivors end on the 4-member view.
        for (pid, views) in view_log(&trace) {
            if trace.crashed().contains(&pid) {
                continue;
            }
            let last = views.last().cloned().unwrap_or_default();
            assert!(
                !last.contains("p0") && !last.contains("p5"),
                "seed {seed}: {pid} final view still lists a victim: {last}"
            );
        }
    }
}

#[test]
fn threaded_views_converge() {
    let trace = ClusterSpec::new(5, 2)
        .suspect(p(3), p(4), 10)
        .run_threaded(|_| MembershipApp::new(), Duration::from_millis(400));
    assert_eq!(trace.crashed(), vec![p(4)], "{}", trace.to_pretty_string());
    check_convergence(&trace).unwrap_or_else(|(a, b)| {
        panic!(
            "threaded views of {a} and {b} diverged:\n{}",
            trace.to_pretty_string()
        )
    });
    // Every survivor installed the full view, then the shrunk view.
    for (pid, views) in view_log(&trace) {
        if pid == p(4) {
            continue;
        }
        assert_eq!(views.len(), 2, "{pid}: {views:?}");
        assert!(views[0].contains("p4"));
        assert!(!views[1].contains("p4"), "{pid}: {views:?}");
    }
}

#[test]
fn threaded_two_failures_still_converge() {
    let trace = ClusterSpec::new(6, 2)
        .suspect(p(1), p(0), 10)
        .suspect(p(2), p(5), 25)
        .run_threaded(|_| MembershipApp::new(), Duration::from_millis(500));
    let crashed = trace.crashed();
    assert!(
        crashed.contains(&p(0)) && crashed.contains(&p(5)),
        "{}",
        trace.to_pretty_string()
    );
    check_convergence(&trace).unwrap_or_else(|(a, b)| {
        panic!(
            "threaded views of {a} and {b} diverged:\n{}",
            trace.to_pretty_string()
        )
    });
}
