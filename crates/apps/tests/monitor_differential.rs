//! Differential testing of the streaming sFS monitors (ISSUE 10).
//!
//! Over bounded e9-style instances, every explored schedule — quiescent
//! or truncated, certifying or violating — is judged twice: once by the
//! post-hoc `check_sfs_suite` on the finished trace, once by an
//! [`SfsMonitor`] consuming the same events one at a time. The verdict
//! vectors must be **equal clause by clause**, on the instances within
//! the failure bound and, crucially, on the t-exceeded instances whose
//! schedule spaces contain genuine violations (failed-before cycles,
//! undetected silent crashes, self-detections under ablation).
//!
//! The post-hoc checkers are the spec transcription; the monitors are
//! an independent incremental implementation with O(n + active
//! failures) state. Agreement on every schedule of an exhaustively
//! enumerated space is the strongest equivalence this repo can test.

use sfs::{ClusterSpec, NullApp};
use sfs_asys::{FixedLatency, ProcessId};
use sfs_explore::{explore, ExploreConfig, Pruning};
use sfs_history::History;
use sfs_obs::{SfsMonitor, SuiteVerdicts};
use sfs_tlogic::properties;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Explores `spec`'s schedule space (bounded) and asserts
/// streaming == post-hoc on every schedule. Returns
/// `(schedules, schedules with ≥1 violated clause)`.
fn differential(n: usize, spec: &ClusterSpec, max_schedules: usize) -> (usize, usize) {
    let config = ExploreConfig {
        max_steps: 600,
        max_schedules,
        pruning: Pruning::SleepSets,
    };
    let mut schedules = 0usize;
    let mut violating = 0usize;
    explore(
        &config,
        || {
            spec.clone()
                .build_with_latency(FixedLatency(1), |_| NullApp)
        },
        |run| {
            schedules += 1;
            let complete = run.trace.stop_reason().is_complete();
            let monitor = SfsMonitor::new(n);
            monitor.ingest_trace(&run.trace);
            let online = monitor.finish(complete);
            let posthoc = SuiteVerdicts::from_reports(&properties::check_sfs_suite(
                &History::from_trace(&run.trace),
                complete,
            ));
            assert_eq!(
                online,
                posthoc,
                "streaming/post-hoc divergence on schedule {:?} (complete={complete}):\n{}",
                run.choices,
                run.trace.to_pretty_string()
            );
            if !online.all_ok() {
                violating += 1;
            }
        },
    );
    (schedules, violating)
}

#[test]
fn monitors_agree_on_the_within_bound_instance() {
    // n=3 t=1, one suspicion: every schedule certifies, and the monitor
    // must say so on each.
    let spec = ClusterSpec::new(3, 1).suspect(p(1), p(0), 10);
    let (schedules, violating) = differential(3, &spec, 400);
    // Sleep-set pruning collapses a single-suspicion instance to a
    // handful of canonical interleavings; each one was asserted.
    assert!(schedules >= 2, "exploration barely ran ({schedules})");
    assert_eq!(violating, 0, "a within-bound schedule was judged violated");
}

#[test]
fn monitors_agree_on_the_t_exceeded_chained_instance() {
    // n=3 t=1, chained suspicions: two crashes exceed the bound, and
    // some schedules contain real violations — the monitor must flag
    // exactly the same ones the post-hoc checker does.
    let spec = ClusterSpec::new(3, 1)
        .suspect(p(1), p(0), 10)
        .suspect(p(2), p(1), 12);
    let (schedules, violating) = differential(3, &spec, 400);
    assert!(schedules >= 2, "exploration barely ran ({schedules})");
    assert!(
        violating > 0,
        "the t-exceeded instance must exhibit violating schedules \
         ({schedules} explored, none violated)"
    );
}

#[test]
fn monitors_agree_on_the_mutual_suspicion_instance() {
    // n=3 t=1, mutual suspicion: the schedule space contains
    // failed-before cycles (sFS2b violations) in some interleavings.
    let spec = ClusterSpec::new(3, 1)
        .suspect(p(1), p(0), 10)
        .suspect(p(0), p(1), 10);
    let (schedules, _) = differential(3, &spec, 400);
    assert!(schedules >= 2, "exploration barely ran ({schedules})");
}

#[test]
fn monitors_agree_on_the_silent_crash_instance() {
    // n=3 t=1, suspicion + silent crash: complete schedules where the
    // crash goes undetected violate FS1 (no timeout mechanism in the
    // bounded instance) — liveness watermark territory.
    let spec = ClusterSpec::new(3, 1)
        .suspect(p(1), p(0), 10)
        .crash(p(2), 20);
    let (schedules, _) = differential(3, &spec, 400);
    assert!(schedules >= 2, "exploration barely ran ({schedules})");
}

#[test]
fn monitors_agree_on_the_no_self_crash_ablation() {
    // The ablation breaks sFS2a on every class; the monitor must track
    // the post-hoc verdicts through systematic violation, not just on
    // healthy runs.
    let spec = ClusterSpec::new(3, 1)
        .suspect(p(1), p(0), 10)
        .without_self_crash();
    let (schedules, violating) = differential(3, &spec, 400);
    assert!(schedules >= 2, "exploration barely ran ({schedules})");
    assert!(
        violating > 0,
        "the ablation must violate on explored schedules"
    );
}

mod random_instances {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        /// Random bounded instances: size, suspicion script (sometimes
        /// exceeding t), an optional silent crash. Every explored
        /// schedule must agree clause-by-clause.
        #[test]
        fn streaming_equals_posthoc_on_random_instances(
            n in 3usize..5,
            by1 in 1usize..4,
            at1 in 5u64..30,
            has_second in any::<bool>(),
            by2 in 0usize..4,
            at2 in 5u64..30,
            has_crash in any::<bool>(),
            victim in 0usize..4,
            crash_at in 10u64..40,
        ) {
            let mut spec = ClusterSpec::new(n, 1)
                .suspect(p(by1.min(n - 1)), p(0), at1);
            if has_second {
                // Suspect p1 by someone other than p1 itself.
                let by2 = if by2 % n == 1 { 2 % n } else { by2 % n };
                spec = spec.suspect(p(by2), p(1), at2);
            }
            if has_crash {
                spec = spec.crash(p(victim % n), crash_at);
            }
            // The assertion lives inside `differential`.
            let (schedules, _) = differential(n, &spec, 200);
            prop_assert!(schedules > 0);
        }
    }
}
