//! Execution-neutrality of the telemetry layer (ISSUE 9): an
//! obs-enabled run — the same cluster spec with a live `sfs-obs`
//! registry attached through the engine's `ObsSink` seam — must be
//! **HB-fingerprint-identical** to the bare run, on the simulator and on
//! the event-driven threaded runtime alike.
//!
//! This is the `transport_equiv`-style pin for observability: the sink
//! is write-only (no channel back into scheduling), the router's
//! wall-clock reads are gated on the sink's presence but never feed a
//! decision, and span notes are emitted by the apps themselves in both
//! runs. Any future change that lets a metrics read, a histogram
//! observation, or a flight-recorder append perturb delivery order,
//! timer arming, or message numbering fails here.
//!
//! On the simulator the pin is the strongest one expressible: the two
//! traces are **byte-identical** under JSON serialization, not merely in
//! the same HB class.

use sfs::{ClusterSpec, NetSpec, NullApp};
use sfs_apps::workpool::WorkPoolApp;
use sfs_asys::ProcessId;
use sfs_explore::class_fingerprint;
use sfs_history::History;
use sfs_obs::{metrics, Registry};
use std::time::Duration;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// The detection instance shared with `transport_equiv`: two scripted
/// suspicions, fixed latency, so delivery order is structural.
fn detect_spec(seed: u64) -> ClusterSpec {
    ClusterSpec::new(6, 2)
        .seed(seed)
        .latency(1, 1)
        .suspect(p(1), p(0), 10)
        .suspect(p(4), p(3), 25)
}

fn model_fingerprint(trace: &sfs_asys::Trace) -> u64 {
    class_fingerprint(&History::from_trace(trace))
}

#[test]
fn obs_is_byte_invisible_on_sim_detection_rounds() {
    for seed in 0..10 {
        let bare = detect_spec(seed).run();
        let registry = Registry::for_shard("sim", 0);
        let observed = detect_spec(seed).observe(registry.handle()).run();
        // Byte-identical traces — stronger than HB-class equality.
        assert_eq!(
            sfs_obs::trace_json::trace_to_json(&bare),
            sfs_obs::trace_json::trace_to_json(&observed),
            "seed {seed}: telemetry changed the simulator's trace"
        );
        assert_eq!(model_fingerprint(&bare), model_fingerprint(&observed));
        // ... and the registry really was live, not a disconnected sink.
        let report = registry.report();
        assert!(
            report.counter_total(metrics::SENT) > 0,
            "seed {seed}: the registry saw no sends — the seam is dead"
        );
    }
}

#[test]
fn obs_is_byte_invisible_under_an_app_workload() {
    // A real application on the simulator: work-pool ops, a coordinator
    // crash, and the app-emitted span notes present in BOTH runs (the
    // annotation API is part of the app, not of the observer).
    for seed in 0..10 {
        let spec = ClusterSpec::new(5, 2)
            .seed(seed)
            .latency(1, 1)
            .suspect(p(2), p(0), 40)
            .max_time(20_000);
        let bare = spec.clone().run_apps(|_| WorkPoolApp::new(6));
        let registry = Registry::for_shard("sim", 0);
        let observed = spec
            .observe(registry.handle())
            .run_apps(|_| WorkPoolApp::new(6));
        assert!(bare.stop_reason().is_complete(), "seed {seed}");
        assert_eq!(
            sfs_obs::trace_json::trace_to_json(&bare),
            sfs_obs::trace_json::trace_to_json(&observed),
            "seed {seed}: telemetry changed the app run's trace"
        );
    }
}

#[test]
fn obs_is_hb_invisible_on_the_threaded_runtime() {
    // The event-driven runtime schedules off its timer wheel at virtual
    // ticks, so a fixed-latency instance is deterministic — the
    // obs-enabled run must land in exactly the bare run's HB class.
    for seed in 0..6 {
        let bare = detect_spec(seed)
            .try_run_threaded(|_| NullApp, Duration::from_millis(400))
            .expect("bare threaded run");
        let registry = Registry::for_shard("threaded", 0);
        let observed = detect_spec(seed)
            .observe(registry.handle())
            .try_run_threaded(|_| NullApp, Duration::from_millis(400))
            .expect("observed threaded run");
        assert!(bare.stop_reason().is_complete(), "seed {seed}");
        assert!(observed.stop_reason().is_complete(), "seed {seed}");
        assert_eq!(
            model_fingerprint(&bare),
            model_fingerprint(&observed),
            "seed {seed}: telemetry changed the threaded HB class\nbare:\n{}\nobserved:\n{}",
            History::from_trace(&bare).to_pretty_string(),
            History::from_trace(&observed).to_pretty_string(),
        );
        assert!(
            registry.report().counter_total(metrics::SENT) > 0,
            "seed {seed}: the threaded router never fed the registry"
        );
    }
}

#[test]
fn obs_is_hb_invisible_through_the_transport() {
    // Telemetry and the ARQ transport stacked: the observed
    // transport-backed run must stay in the bare transport run's class
    // (which transport_equiv separately pins to the bare-channel class).
    for seed in 0..6 {
        let bare = detect_spec(seed).net(NetSpec::faultless()).run_net();
        let registry = Registry::for_shard("sim+net", 0);
        let observed = detect_spec(seed)
            .net(NetSpec::faultless())
            .observe(registry.handle())
            .run_net();
        assert_eq!(
            model_fingerprint(&bare),
            model_fingerprint(&observed),
            "seed {seed}: telemetry changed the transport-backed HB class"
        );
        assert!(
            registry.report().counter_total(metrics::SENT) > 0,
            "seed {seed}: the transport leg never fed the registry"
        );
    }
}

// ---- the streaming-monitor seam (ISSUE 10) ------------------------------
//
// Same neutrality pins for the `EventSink` seam the online sFS monitors
// ride: a monitored run must be byte-identical (sim) or
// HB-fingerprint-identical (threaded, transport) to the bare run, while
// the monitor demonstrably consumed every event and reached the same
// verdicts as the post-hoc checker.

use sfs_obs::{SfsMonitor, SuiteVerdicts};
use sfs_tlogic::properties;

fn posthoc(trace: &sfs_asys::Trace) -> SuiteVerdicts {
    let complete = trace.stop_reason().is_complete();
    SuiteVerdicts::from_reports(&properties::check_sfs_suite(
        &History::from_trace(trace),
        complete,
    ))
}

#[test]
fn sfs_monitor_is_byte_invisible_on_sim() {
    for seed in 0..10 {
        let bare = detect_spec(seed).run();
        let monitor = SfsMonitor::new(6);
        let monitored = detect_spec(seed).event_sink(monitor.handle()).run();
        assert_eq!(
            sfs_obs::trace_json::trace_to_json(&bare),
            sfs_obs::trace_json::trace_to_json(&monitored),
            "seed {seed}: the monitor changed the simulator's trace"
        );
        assert_eq!(
            monitor.events_seen(),
            monitored.events().len() as u64,
            "seed {seed}: the monitor missed events"
        );
        let online = monitor.finish(monitored.stop_reason().is_complete());
        assert_eq!(online, posthoc(&monitored), "seed {seed}");
        assert!(online.all_ok(), "seed {seed}: {online}");
    }
}

#[test]
fn sfs_monitor_is_hb_invisible_on_the_threaded_runtime() {
    for seed in 0..6 {
        let bare = detect_spec(seed)
            .try_run_threaded(|_| NullApp, Duration::from_millis(400))
            .expect("bare threaded run");
        let monitor = SfsMonitor::new(6);
        let monitored = detect_spec(seed)
            .event_sink(monitor.handle())
            .try_run_threaded(|_| NullApp, Duration::from_millis(400))
            .expect("monitored threaded run");
        assert_eq!(
            model_fingerprint(&bare),
            model_fingerprint(&monitored),
            "seed {seed}: the monitor changed the threaded HB class"
        );
        let online = monitor.finish(monitored.stop_reason().is_complete());
        assert_eq!(online, posthoc(&monitored), "seed {seed}");
    }
}

#[test]
fn sfs_monitor_is_hb_invisible_through_the_transport() {
    for seed in 0..6 {
        let bare = detect_spec(seed).net(NetSpec::faultless()).run_net();
        let monitor = SfsMonitor::new(6);
        let monitored = detect_spec(seed)
            .net(NetSpec::faultless())
            .event_sink(monitor.handle())
            .run_net();
        assert_eq!(
            model_fingerprint(&bare),
            model_fingerprint(&monitored),
            "seed {seed}: the monitor changed the transport-backed HB class"
        );
        let online = monitor.finish(monitored.stop_reason().is_complete());
        assert_eq!(online, posthoc(&monitored), "seed {seed}");
    }
}

#[test]
fn monitor_and_registry_stack_without_interference() {
    // Both seams attached at once — the telemetry registry on `ObsSink`,
    // the monitor on `EventSink` — still byte-identical to bare.
    for seed in 0..4 {
        let bare = detect_spec(seed).run();
        let registry = Registry::for_shard("sim", 0);
        let monitor = SfsMonitor::new(6);
        let both = detect_spec(seed)
            .observe(registry.handle())
            .event_sink(monitor.handle())
            .run();
        assert_eq!(
            sfs_obs::trace_json::trace_to_json(&bare),
            sfs_obs::trace_json::trace_to_json(&both),
            "seed {seed}"
        );
        assert!(registry.report().counter_total(metrics::SENT) > 0);
        assert!(monitor.events_seen() > 0);
    }
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Property form: over random small instances (size, budget,
        /// suspicion script, seed), attaching a registry never changes a
        /// byte of the simulator's trace.
        #[test]
        fn obs_never_changes_a_sim_trace(
            n in 3usize..7,
            seed in 0u64..1000,
            s1 in 5u64..60,
            s2 in 5u64..60,
        ) {
            // Feasibility needs n > t² under the fixed minimum quorum.
            let t = if n > 4 { 2 } else { 1 };
            let spec = ClusterSpec::new(n, t)
                .seed(seed)
                .latency(1, 2)
                .suspect(p(1), p(0), s1)
                .suspect(p(n - 1), p(n - 2), s2);
            let bare = spec.clone().run();
            let registry = Registry::for_shard("sim", 0);
            let observed = spec.observe(registry.handle()).run();
            prop_assert_eq!(
                sfs_obs::trace_json::trace_to_json(&bare),
                sfs_obs::trace_json::trace_to_json(&observed)
            );
        }

        /// Same property for the monitor seam: an `SfsMonitor` on the
        /// event sink never changes a byte of the simulator's trace.
        #[test]
        fn monitor_never_changes_a_sim_trace(
            n in 3usize..7,
            seed in 0u64..1000,
            s1 in 5u64..60,
            s2 in 5u64..60,
        ) {
            let t = if n > 4 { 2 } else { 1 };
            let spec = ClusterSpec::new(n, t)
                .seed(seed)
                .latency(1, 2)
                .suspect(p(1), p(0), s1)
                .suspect(p(n - 1), p(n - 2), s2);
            let bare = spec.clone().run();
            let monitor = sfs_obs::SfsMonitor::new(n);
            let monitored = spec.event_sink(monitor.handle()).run();
            prop_assert_eq!(
                sfs_obs::trace_json::trace_to_json(&bare),
                sfs_obs::trace_json::trace_to_json(&monitored)
            );
            prop_assert_eq!(monitor.events_seen(), monitored.events().len() as u64);
        }
    }
}
