//! Application behaviour over the faulty network (ISSUE E12): the
//! election, membership, and work-pool apps run unchanged on the
//! transport-backed legs of the [`NetScenario`] family — message loss,
//! duplication, healed transmit blackouts, and crash churn — with every
//! suspicion *endogenous* (transport heartbeat timeouts), never scripted.
//!
//! These suites pin the end-to-end claim of the transport layer: the
//! fail-stop programming model the apps were written against survives
//! the move from assumed channels to emulated ones.

use sfs_apps::election::{analyze_election, ElectionApp};
use sfs_apps::membership::{check_convergence, MembershipApp};
use sfs_apps::scenarios::NetScenario;
use sfs_apps::workpool::{analyze_workpool, WorkPoolApp};
use sfs_asys::ProcessId;
use sfs_history::History;
use sfs_tlogic::properties;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

#[test]
fn workpool_loses_no_tasks_under_message_loss() {
    // 15% i.i.d. loss plus a real worker crash: reassignment relies on
    // sFS2a, which the transport-backed protocol keeps.
    let trace = NetScenario::Loss(0.15)
        .spec(6, 2, 3)
        .try_run_net(|_| WorkPoolApp::new(12))
        .expect("feasible");
    assert!(trace.stats().messages_dropped > 0, "scenario was not lossy");
    assert_eq!(trace.crashed(), vec![p(5)], "{}", trace.to_pretty_string());
    let outcome = analyze_workpool(&trace);
    assert_eq!(
        outcome.tasks_executed.len(),
        12,
        "lost tasks:\n{}",
        trace.to_pretty_string()
    );
    assert!(outcome.all_done_observed, "completion never observed");
}

#[test]
fn workpool_survives_a_healed_coordinator_blackout() {
    // p0 — the initial coordinator — goes transmit-silent for a window
    // long past the probe timeout: an endogenous FALSE suspicion kills
    // it cleanly (it is alive!), failover reassigns, nothing is lost.
    let trace = NetScenario::HealedPartition {
        island: 1,
        cut_at: 50,
        heal_at: 1_200,
    }
    .spec(6, 2, 7)
    .try_run_net(|_| WorkPoolApp::new(10))
    .expect("feasible");
    assert_eq!(
        trace.crashed(),
        vec![p(0)],
        "the silenced coordinator must be killed:\n{}",
        trace.to_pretty_string()
    );
    let outcome = analyze_workpool(&trace);
    assert_eq!(outcome.tasks_executed.len(), 10, "lost tasks");
    assert!(outcome.all_done_observed, "failover never completed");
    // The false suspicion stayed a *clean* kill: the full safety suite
    // holds on the prefix.
    let h = History::from_trace(&trace);
    assert!(h.validate().is_ok());
    for r in properties::check_sfs_suite(&h, false) {
        assert!(r.is_ok(), "{r}\n{}", trace.to_pretty_string());
    }
}

#[test]
fn election_stays_anomaly_free_under_loss_and_duplication() {
    for scenario in [NetScenario::Loss(0.2), NetScenario::Duplicate(0.25)] {
        let trace = scenario
            .spec(5, 2, 11)
            .try_run_net(|_| ElectionApp::new())
            .expect("feasible");
        let outcome = analyze_election(&trace);
        assert_eq!(
            outcome.observed_anomalies,
            0,
            "{}: FS-impossible observation\n{}",
            scenario.label(),
            trace.to_pretty_string()
        );
        assert!(
            !outcome.claims.is_empty(),
            "{}: nobody ever led",
            scenario.label()
        );
    }
}

#[test]
fn election_fails_over_across_a_healed_leader_blackout() {
    // The leader p0 goes transmit-silent; the survivors elect p1 and no
    // FS-impossible observation occurs even after the network heals and
    // p0's stale traffic arrives.
    let trace = NetScenario::HealedPartition {
        island: 1,
        cut_at: 80,
        heal_at: 1_000,
    }
    .spec(5, 2, 5)
    .try_run_net(|_| ElectionApp::new())
    .expect("feasible");
    assert_eq!(trace.crashed(), vec![p(0)], "{}", trace.to_pretty_string());
    let outcome = analyze_election(&trace);
    assert_eq!(outcome.observed_anomalies, 0);
    let claimants: Vec<ProcessId> = outcome.claims.iter().map(|&(_, c)| c).collect();
    assert!(
        claimants.contains(&p(1)),
        "no failover claim: {claimants:?}\n{}",
        trace.to_pretty_string()
    );
}

#[test]
fn membership_converges_under_churn() {
    // Two staggered real crashes, detected endogenously: every survivor
    // must install the same final view.
    let trace = NetScenario::Churn {
        crashes: 2,
        every: 400,
    }
    .spec(7, 2, 9)
    .try_run_net(|_| MembershipApp::new())
    .expect("feasible");
    assert_eq!(trace.crashed().len(), 2, "{}", trace.to_pretty_string());
    check_convergence(&trace).unwrap_or_else(|(a, b)| {
        panic!(
            "views diverged between {a} and {b}:\n{}",
            trace.to_pretty_string()
        )
    });
}

#[test]
fn membership_converges_under_loss_with_churn() {
    // Loss and churn together: the composed worst case of this family.
    let mut spec = NetScenario::Churn {
        crashes: 2,
        every: 500,
    }
    .spec(7, 2, 13);
    let net = spec.net.take().expect("churn spec carries a net");
    let trace = spec
        .net(net.loss(0.1))
        .try_run_net(|_| MembershipApp::new())
        .expect("feasible");
    assert!(trace.stats().messages_dropped > 0);
    check_convergence(&trace).unwrap_or_else(|(a, b)| {
        panic!(
            "views diverged between {a} and {b}:\n{}",
            trace.to_pretty_string()
        )
    });
}
