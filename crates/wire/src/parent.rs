//! The parent side of the UDP backend: spawn one OS process per node,
//! barrier on their Hellos, script the faults, drive the quiescence
//! handshake, and assemble the nodes' event dumps into one
//! [`Trace`].
//!
//! The quiescence decision is the PR 7 outstanding-count handshake
//! lifted onto a socket: each [`ParentToNode::Poll`] round collects every
//! node's [`NodeStatus`]; the cluster is quiescent when every node is
//! idle, the global ledger balances (`Σ sent + Σ duplicated == Σ
//! delivered + Σ to_crashed + Σ dropped` — every offered copy was
//! conclusively consumed), and the counters were stable across two
//! consecutive rounds (the second round confirms no datagram was in
//! flight between the polls). Anything else at the settle deadline ends
//! the run as [`StopReason::MaxTime`] with the honest admission that the
//! prefix may not be maximal — kernel-dropped datagrams, for example,
//! leave the ledger permanently unbalanced, and the conformance oracle
//! then degrades to safety-only checks instead of reporting a fake
//! quiescence.

use crate::ctrl::{
    read_msg, write_msg, NodeDump, NodeStatus, NodeToParent, ParentToNode, WireEventKind,
};
use sfs_asys::{
    MsgId, Note, ProcessId, SimStats, StopReason, TimerId, Trace, TraceEvent, TraceEventKind,
    VirtualTime,
};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Environment variable through which the parent tells a spawned node
/// where the control listener is (`host:port`).
pub const ENV_CTRL_ADDR: &str = "SFS_WIRE_CTRL_ADDR";

/// Cluster-level knobs for one UDP run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes; must equal the number of spawn commands.
    pub n: usize,
    /// Wall-clock budget for reaching quiescence after `Start`.
    pub settle: Duration,
    /// Delay between quiescence polls.
    pub poll_every: Duration,
    /// Budget for every node to connect and say Hello.
    pub hello_timeout: Duration,
}

impl ClusterConfig {
    /// Defaults tuned for conformance runs: generous handshake budget,
    /// fast polls.
    pub fn new(n: usize, settle: Duration) -> Self {
        ClusterConfig {
            n,
            settle,
            poll_every: Duration::from_millis(5),
            hello_timeout: Duration::from_secs(10),
        }
    }
}

/// A scripted fault for one node, delivered over its control channel
/// before `Start`.
#[derive(Debug, Clone)]
pub enum NodeFault {
    /// Halt the node at the given local tick.
    Crash {
        /// Virtual tick of the halt.
        at: u64,
    },
    /// Deliver an encoded external stimulus at the given local tick.
    External {
        /// Virtual tick of the injection.
        at: u64,
        /// The node's message type, wire-encoded.
        body: Vec<u8>,
    },
}

/// The outcome of one UDP cluster run.
#[derive(Debug, Clone)]
pub struct UdpRun {
    /// The merged, causally ordered trace.
    pub trace: Trace,
    /// Whether the run reached confirmed quiescence within the settle
    /// budget (mirrors the threaded runtime's drain handshake result).
    pub quiesced: bool,
    /// Each node's final wire accounting, indexed by process — the
    /// per-node, per-message-class counters the `sfs-obs` registry folds
    /// into a `RunReport`, piggybacked on the same Status/Dump frames
    /// the control protocol already carries.
    pub node_status: Vec<NodeStatus>,
}

/// Child processes that must not outlive the run, whatever happens.
struct Children(Vec<Child>);

impl Drop for Children {
    fn drop(&mut self) {
        for child in &mut self.0 {
            if matches!(child.try_wait(), Ok(None)) {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

struct NodeLink {
    stream: TcpStream,
    udp_port: u16,
}

/// Spawns `commands` (one per node), runs the cluster to quiescence or
/// the settle deadline, and returns the assembled trace.
///
/// Each command is spawned with [`ENV_CTRL_ADDR`] pointing at the
/// parent's listener; everything else about the child (binary, node
/// config blob) is the caller's business. `faults[i] = (pid, fault)`
/// entries are delivered to their node between Hello and Start, in
/// order.
///
/// # Errors
///
/// Spawn failures, handshake timeouts, control-protocol violations, and
/// socket errors. All children are killed on every error path.
pub fn run_cluster(
    config: &ClusterConfig,
    commands: Vec<Command>,
    faults: &[(usize, NodeFault)],
) -> io::Result<UdpRun> {
    assert_eq!(
        commands.len(),
        config.n,
        "one spawn command per node is required"
    );
    let listener = TcpListener::bind("127.0.0.1:0")?;
    listener.set_nonblocking(true)?;
    let ctrl_addr = listener.local_addr()?.to_string();

    let mut children = Children(Vec::with_capacity(config.n));
    for mut cmd in commands {
        cmd.env(ENV_CTRL_ADDR, &ctrl_addr).stdin(Stdio::null());
        children.0.push(cmd.spawn()?);
    }

    // Barrier: every node connects and identifies itself before any
    // datagram can fly.
    let mut links: Vec<Option<NodeLink>> = (0..config.n).map(|_| None).collect();
    let deadline = Instant::now() + config.hello_timeout;
    let mut connected = 0;
    while connected < config.n {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                stream.set_nodelay(true)?;
                stream.set_read_timeout(Some(Duration::from_secs(10)))?;
                let mut stream = stream;
                let hello = read_msg::<NodeToParent, _>(&mut stream)?;
                let NodeToParent::Hello { pid, udp_port } = hello else {
                    return Err(protocol_err("expected Hello"));
                };
                let slot = links
                    .get_mut(pid as usize)
                    .ok_or_else(|| protocol_err("Hello pid out of range"))?;
                if slot.is_some() {
                    return Err(protocol_err("duplicate Hello pid"));
                }
                *slot = Some(NodeLink { stream, udp_port });
                connected += 1;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() > deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("{connected}/{} nodes said Hello in time", config.n),
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(e),
        }
    }
    let mut links: Vec<NodeLink> = links.into_iter().map(Option::unwrap).collect();

    // Script the faults, then lift the barrier.
    for (pid, fault) in faults {
        let link = links
            .get_mut(*pid)
            .ok_or_else(|| protocol_err("fault pid out of range"))?;
        let msg = match fault {
            NodeFault::Crash { at } => ParentToNode::Crash { at: *at },
            NodeFault::External { at, body } => ParentToNode::External {
                at: *at,
                body: body.clone(),
            },
        };
        write_msg(&mut link.stream, &msg)?;
    }
    let peers: Vec<u16> = links.iter().map(|l| l.udp_port).collect();
    for link in &mut links {
        write_msg(
            &mut link.stream,
            &ParentToNode::Start {
                peers: peers.clone(),
            },
        )?;
    }

    // The quiescence handshake: poll until idle + balanced + stable
    // across two consecutive rounds, or the settle budget runs out.
    let settle_deadline = Instant::now() + config.settle;
    let mut prev: Option<Vec<NodeStatus>> = None;
    let mut quiesced = false;
    while Instant::now() < settle_deadline {
        std::thread::sleep(config.poll_every);
        let mut round = Vec::with_capacity(config.n);
        for link in &mut links {
            write_msg(&mut link.stream, &ParentToNode::Poll)?;
            match read_msg::<NodeToParent, _>(&mut link.stream)? {
                NodeToParent::Status(s) => round.push(s),
                _ => return Err(protocol_err("expected Status")),
            }
        }
        let offered: u64 = round.iter().map(NodeStatus::offered).sum();
        let consumed: u64 = round.iter().map(NodeStatus::consumed).sum();
        let idle = round.iter().all(|s| s.idle);
        if idle && offered == consumed && prev.as_deref() == Some(&round[..]) {
            quiesced = true;
            break;
        }
        prev = Some(round);
    }

    // Stop everyone and collect the dumps.
    let mut dumps: Vec<NodeDump> = Vec::with_capacity(config.n);
    for link in &mut links {
        write_msg(&mut link.stream, &ParentToNode::Stop)?;
        match read_msg::<NodeToParent, _>(&mut link.stream)? {
            NodeToParent::Dump(d) => dumps.push(d),
            _ => return Err(protocol_err("expected Dump")),
        }
    }
    drop(links);
    let exit_deadline = Instant::now() + Duration::from_secs(5);
    for child in &mut children.0 {
        while matches!(child.try_wait(), Ok(None)) {
            if Instant::now() > exit_deadline {
                break; // the Children guard will kill it
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    Ok(UdpRun {
        trace: assemble(config.n, &dumps, quiesced),
        quiesced,
        node_status: dumps.iter().map(|d| d.status).collect(),
    })
}

fn protocol_err(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("control protocol: {what}"),
    )
}

/// Merges per-node event dumps into one trace, ordered by
/// `(lamport, node, local index)` — a deterministic linearisation
/// consistent with causality, timestamped in Lamport ticks.
fn assemble(n: usize, dumps: &[NodeDump], quiesced: bool) -> Trace {
    let mut merged: Vec<(u64, usize, usize, TraceEventKind)> = Vec::new();
    for (pid, dump) in dumps.iter().enumerate() {
        let p = ProcessId::new(pid);
        for (idx, ev) in dump.events.iter().enumerate() {
            let kind = match &ev.kind {
                WireEventKind::Send {
                    to,
                    src,
                    seq,
                    infra,
                } => TraceEventKind::Send {
                    from: p,
                    to: ProcessId::new(*to as usize),
                    msg: MsgId::new(ProcessId::new(*src as usize), *seq),
                    infra: *infra,
                    payload: None,
                },
                WireEventKind::Recv {
                    from,
                    src,
                    seq,
                    infra,
                } => TraceEventKind::Recv {
                    by: p,
                    from: ProcessId::new(*from as usize),
                    msg: MsgId::new(ProcessId::new(*src as usize), *seq),
                    infra: *infra,
                    payload: None,
                },
                WireEventKind::Crash => TraceEventKind::Crash { pid: p },
                WireEventKind::Failed { of } => TraceEventKind::Failed {
                    by: p,
                    of: ProcessId::new(*of as usize),
                },
                WireEventKind::TimerFired { timer } => TraceEventKind::TimerFired {
                    pid: p,
                    timer: TimerId::new(*timer),
                },
                WireEventKind::External => TraceEventKind::External {
                    pid: p,
                    payload: None,
                },
                WireEventKind::NoteKv { key, val } => TraceEventKind::Note {
                    pid: p,
                    note: Note::key_val(key.clone(), val.clone()),
                },
                WireEventKind::NoteSet { key, about, set } => TraceEventKind::Note {
                    pid: p,
                    note: Note::ProcessSet {
                        key: key.clone(),
                        about: about.map(|a| ProcessId::new(a as usize)),
                        set: set.iter().map(|&s| ProcessId::new(s as usize)).collect(),
                    },
                },
            };
            merged.push((ev.lamport, pid, idx, kind));
        }
    }
    merged.sort_by_key(|a| (a.0, a.1, a.2));
    let end_time = VirtualTime::from_ticks(merged.last().map_or(0, |e| e.0));
    let events = merged
        .into_iter()
        .enumerate()
        .map(|(seq, (lamport, _, _, kind))| TraceEvent {
            seq,
            time: VirtualTime::from_ticks(lamport),
            kind,
        })
        .collect();
    let mut stats = SimStats::default();
    for dump in dumps {
        stats.messages_sent += dump.status.sent;
        stats.messages_delivered += dump.status.delivered;
        stats.messages_to_crashed += dump.status.to_crashed;
        stats.messages_dropped += dump.status.dropped;
        stats.messages_duplicated += dump.status.duplicated;
        stats.wire_bytes += dump.status.wire_bytes;
        stats.timers_fired += dump.timers_fired;
        stats.detections += dump.detections;
        stats.crashes += u64::from(dump.status.halted);
    }
    let stop = if quiesced {
        StopReason::Quiescent
    } else {
        StopReason::MaxTime
    };
    Trace::from_parts(n, events, stop, end_time, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctrl::WireEvent;

    fn dump_with(events: Vec<WireEvent>, status: NodeStatus) -> NodeDump {
        NodeDump {
            events,
            status,
            timers_fired: 0,
            detections: 0,
        }
    }

    #[test]
    fn assemble_orders_by_lamport_then_node() {
        let d0 = dump_with(
            vec![WireEvent {
                lamport: 2,
                kind: WireEventKind::Send {
                    to: 1,
                    src: 0,
                    seq: 0,
                    infra: true,
                },
            }],
            NodeStatus {
                sent: 1,
                ..NodeStatus::default()
            },
        );
        let d1 = dump_with(
            vec![
                WireEvent {
                    lamport: 1,
                    kind: WireEventKind::TimerFired { timer: 0 },
                },
                WireEvent {
                    lamport: 3,
                    kind: WireEventKind::Recv {
                        from: 0,
                        src: 0,
                        seq: 0,
                        infra: true,
                    },
                },
            ],
            NodeStatus {
                delivered: 1,
                ..NodeStatus::default()
            },
        );
        let trace = assemble(2, &[d0, d1], true);
        assert_eq!(trace.stop_reason(), StopReason::Quiescent);
        assert_eq!(trace.end_time(), VirtualTime::from_ticks(3));
        assert!(trace.channels_drained());
        let kinds: Vec<_> = trace
            .events()
            .iter()
            .map(|e| (e.seq, e.time.ticks(), e.kind.process().index()))
            .collect();
        // Timer (lamport 1, node 1), send (2, node 0), recv (3, node 1);
        // seq positions are dense and the timestamps are Lamport ticks.
        assert_eq!(kinds, vec![(0, 1, 1), (1, 2, 0), (2, 3, 1)]);
    }

    #[test]
    fn assemble_totals_the_ledger_and_flags_incomplete_runs() {
        let d0 = dump_with(
            Vec::new(),
            NodeStatus {
                sent: 3,
                dropped: 1,
                duplicated: 1,
                wire_bytes: 120,
                halted: true,
                ..NodeStatus::default()
            },
        );
        let d1 = dump_with(
            Vec::new(),
            NodeStatus {
                delivered: 2,
                to_crashed: 1,
                ..NodeStatus::default()
            },
        );
        let trace = assemble(2, &[d0, d1], false);
        assert_eq!(trace.stop_reason(), StopReason::MaxTime);
        let stats = trace.stats();
        assert_eq!(stats.messages_sent, 3);
        assert_eq!(stats.messages_dropped, 1);
        assert_eq!(stats.messages_duplicated, 1);
        assert_eq!(stats.messages_delivered, 2);
        assert_eq!(stats.messages_to_crashed, 1);
        assert_eq!(stats.wire_bytes, 120);
        assert_eq!(stats.crashes, 1);
        assert!(trace.channels_drained());
    }
}
