//! A deterministic sender-side fault shim.
//!
//! Real localhost UDP rarely drops and never duplicates, so the shim
//! re-introduces those faults *deterministically* from a seed, on the
//! sending side, before the datagram reaches the kernel. This keeps the
//! UDP backend honest twice over: the wire is real (bytes cross a real
//! socket, the kernel is free to add its own loss on top), and the fault
//! schedule is reproducible enough for the conformance harness to compare
//! runs across seeds.

use crate::codec::{WireCodec, WireError, WireReader, WireWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of one node's [`FaultShim`], carried inside the node's
/// spawn blob.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShimConfig {
    /// Seed for the shim's private RNG stream.
    pub seed: u64,
    /// Probability a datagram copy is silently withheld.
    pub drop_p: f64,
    /// Probability a delivered datagram is transmitted twice.
    pub dup_p: f64,
}

impl WireCodec for ShimConfig {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.seed);
        w.f64(self.drop_p);
        w.f64(self.dup_p);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let cfg = ShimConfig {
            seed: r.u64()?,
            drop_p: r.f64()?,
            dup_p: r.f64()?,
        };
        if !(0.0..=1.0).contains(&cfg.drop_p) || !(0.0..=1.0).contains(&cfg.dup_p) {
            return Err(WireError::BadValue {
                what: "ShimConfig probability",
            });
        }
        Ok(cfg)
    }
}

/// What the shim decided for one outgoing datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShimVerdict {
    /// Transmit one copy.
    Deliver,
    /// Transmit nothing; the send counts as dropped.
    Drop,
    /// Transmit two copies sharing the same frame sequence.
    Duplicate,
}

/// The per-node shim: one seeded RNG, one verdict per send.
#[derive(Debug)]
pub struct FaultShim {
    rng: StdRng,
    drop_p: f64,
    dup_p: f64,
}

impl FaultShim {
    /// Builds the shim from its config.
    pub fn new(cfg: &ShimConfig) -> Self {
        FaultShim {
            rng: StdRng::seed_from_u64(cfg.seed),
            drop_p: cfg.drop_p,
            dup_p: cfg.dup_p,
        }
    }

    /// Rolls the dice for the next outgoing datagram. Drop is checked
    /// first, so `drop_p = 1.0` silences the node regardless of
    /// `dup_p` — the same precedence [`FaultyLink`](sfs_asys::FaultyLink)
    /// uses in the simulator.
    pub fn verdict(&mut self) -> ShimVerdict {
        if self.drop_p > 0.0 && self.rng.gen_bool(self.drop_p) {
            ShimVerdict::Drop
        } else if self.dup_p > 0.0 && self.rng.gen_bool(self.dup_p) {
            ShimVerdict::Duplicate
        } else {
            ShimVerdict::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shim_is_deterministic_per_seed() {
        let cfg = ShimConfig {
            seed: 42,
            drop_p: 0.3,
            dup_p: 0.2,
        };
        let a: Vec<_> = {
            let mut s = FaultShim::new(&cfg);
            (0..64).map(|_| s.verdict()).collect()
        };
        let b: Vec<_> = {
            let mut s = FaultShim::new(&cfg);
            (0..64).map(|_| s.verdict()).collect()
        };
        assert_eq!(a, b);
        assert!(a.contains(&ShimVerdict::Drop));
        assert!(a.contains(&ShimVerdict::Duplicate));
        assert!(a.contains(&ShimVerdict::Deliver));
    }

    #[test]
    fn faultless_shim_always_delivers() {
        let mut s = FaultShim::new(&ShimConfig {
            seed: 7,
            drop_p: 0.0,
            dup_p: 0.0,
        });
        assert!((0..256).all(|_| s.verdict() == ShimVerdict::Deliver));
    }

    #[test]
    fn config_rejects_probabilities_outside_unit_interval() {
        let mut bad = ShimConfig {
            seed: 1,
            drop_p: 1.5,
            dup_p: 0.0,
        }
        .to_wire_bytes();
        assert!(ShimConfig::from_wire_bytes(&bad).is_err());
        bad = ShimConfig {
            seed: 1,
            drop_p: 0.1,
            dup_p: -0.1,
        }
        .to_wire_bytes();
        assert!(ShimConfig::from_wire_bytes(&bad).is_err());
    }
}
