//! The parent ⇄ node control protocol, spoken over one TCP stream per
//! node, with every message encoded by the [`WireCodec`] itself
//! (dogfooding: the control plane exercises the same codec the data
//! plane does).
//!
//! Handshake: the node connects and sends [`NodeToParent::Hello`]; the
//! parent replies with scripted faults ([`ParentToNode::Crash`] /
//! [`ParentToNode::External`]) followed by [`ParentToNode::Start`]
//! carrying the peer port table — the barrier that guarantees every
//! socket is bound before the first datagram flies. During the run the
//! parent drives the PR 7 outstanding-count quiescence handshake with
//! [`ParentToNode::Poll`] / [`NodeToParent::Status`]; at the end,
//! [`ParentToNode::Stop`] elicits the node's full event
//! [`NodeToParent::Dump`].
//!
//! Stream framing is a u32 little-endian length prefix per message,
//! bounded by [`MAX_CTRL_MSG`].

use crate::codec::{WireCodec, WireError, WireReader, WireWriter};
use std::io::{self, Read, Write};

/// Upper bound on one control message (the event dump dominates).
pub const MAX_CTRL_MSG: usize = 64 << 20;

/// Aggregate wire accounting of one node, for the quiescence handshake
/// and the assembled trace's [`SimStats`](sfs_asys::SimStats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStatus {
    /// Send actions executed (the engine's `messages_sent`).
    pub sent: u64,
    /// Datagrams withheld by the fault shim or failed sends.
    pub dropped: u64,
    /// Extra copies transmitted by the fault shim.
    pub duplicated: u64,
    /// Datagrams admitted to the live process.
    pub delivered: u64,
    /// Datagrams consumed after this node halted.
    pub to_crashed: u64,
    /// Sender-paid frame bytes: one full frame per send, regardless of
    /// the shim's verdict (matching `SimStats::wire_bytes`).
    pub wire_bytes: u64,
    /// Of [`NodeStatus::sent`], the sends carrying application
    /// (model-level) payloads; the rest are infrastructure. This is the
    /// message-class split the `sfs-obs` registry keys on, piggybacked on
    /// the Status frames the quiescence handshake already exchanges.
    pub app_sent: u64,
    /// Of [`NodeStatus::delivered`], the application-payload deliveries.
    pub app_delivered: u64,
    /// No armed timers and no pending scripted injections remain.
    pub idle: bool,
    /// The node has crashed (and now only drains its socket).
    pub halted: bool,
}

impl NodeStatus {
    /// Copies put on a channel by this node's sends.
    pub fn offered(&self) -> u64 {
        self.sent + self.duplicated
    }

    /// Copies conclusively consumed (delivered, discarded at a crashed
    /// node, or dropped before transmission).
    pub fn consumed(&self) -> u64 {
        self.delivered + self.to_crashed + self.dropped
    }
}

impl WireCodec for NodeStatus {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.sent);
        w.u64(self.dropped);
        w.u64(self.duplicated);
        w.u64(self.delivered);
        w.u64(self.to_crashed);
        w.u64(self.wire_bytes);
        w.u64(self.app_sent);
        w.u64(self.app_delivered);
        w.bool(self.idle);
        w.bool(self.halted);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(NodeStatus {
            sent: r.u64()?,
            dropped: r.u64()?,
            duplicated: r.u64()?,
            delivered: r.u64()?,
            to_crashed: r.u64()?,
            wire_bytes: r.u64()?,
            app_sent: r.u64()?,
            app_delivered: r.u64()?,
            idle: r.bool()?,
            halted: r.bool()?,
        })
    }
}

/// One event a node recorded, stamped with its Lamport clock; the
/// parent merges all nodes' events into one causally consistent
/// [`Trace`](sfs_asys::Trace) ordered by `(lamport, node, local index)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireEvent {
    /// The recording node's Lamport clock at the event.
    pub lamport: u64,
    /// What happened.
    pub kind: WireEventKind,
}

/// The node-side event alphabet, mirroring
/// [`TraceEventKind`](sfs_asys::TraceEventKind) without payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireEventKind {
    /// A send by this node: datagram-level (infra) or model-level.
    Send {
        /// Destination process index.
        to: u16,
        /// Message-id source (the sender for datagrams; the layer's
        /// allocation for model events).
        src: u16,
        /// Message-id sequence.
        seq: u64,
        /// Infrastructure flag, as the engines record it.
        infra: bool,
    },
    /// A receive by this node.
    Recv {
        /// Logical sender.
        from: u16,
        /// Message-id source.
        src: u16,
        /// Message-id sequence.
        seq: u64,
        /// Infrastructure flag.
        infra: bool,
    },
    /// This node halted permanently.
    Crash,
    /// This node detected the failure of process `of`.
    Failed {
        /// The detected process.
        of: u16,
    },
    /// A timer fired on this node.
    TimerFired {
        /// Raw timer id.
        timer: u64,
    },
    /// A scripted environment injection was delivered to this node.
    External,
    /// A key/value protocol annotation.
    NoteKv {
        /// Annotation key.
        key: String,
        /// Annotation value.
        val: String,
    },
    /// A process-set protocol annotation (e.g. a detection quorum).
    NoteSet {
        /// Annotation key.
        key: String,
        /// The process the set is about, if any.
        about: Option<u16>,
        /// The set members.
        set: Vec<u16>,
    },
}

const EV_SEND: u8 = 0;
const EV_RECV: u8 = 1;
const EV_CRASH: u8 = 2;
const EV_FAILED: u8 = 3;
const EV_TIMER: u8 = 4;
const EV_EXTERNAL: u8 = 5;
const EV_NOTE_KV: u8 = 6;
const EV_NOTE_SET: u8 = 7;

impl WireCodec for WireEvent {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.lamport);
        match &self.kind {
            WireEventKind::Send {
                to,
                src,
                seq,
                infra,
            } => {
                w.u8(EV_SEND);
                w.u16(*to);
                w.u16(*src);
                w.u64(*seq);
                w.bool(*infra);
            }
            WireEventKind::Recv {
                from,
                src,
                seq,
                infra,
            } => {
                w.u8(EV_RECV);
                w.u16(*from);
                w.u16(*src);
                w.u64(*seq);
                w.bool(*infra);
            }
            WireEventKind::Crash => w.u8(EV_CRASH),
            WireEventKind::Failed { of } => {
                w.u8(EV_FAILED);
                w.u16(*of);
            }
            WireEventKind::TimerFired { timer } => {
                w.u8(EV_TIMER);
                w.u64(*timer);
            }
            WireEventKind::External => w.u8(EV_EXTERNAL),
            WireEventKind::NoteKv { key, val } => {
                w.u8(EV_NOTE_KV);
                key.encode(w);
                val.encode(w);
            }
            WireEventKind::NoteSet { key, about, set } => {
                w.u8(EV_NOTE_SET);
                key.encode(w);
                about.encode(w);
                set.encode(w);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let lamport = r.u64()?;
        let kind = match r.u8()? {
            EV_SEND => WireEventKind::Send {
                to: r.u16()?,
                src: r.u16()?,
                seq: r.u64()?,
                infra: r.bool()?,
            },
            EV_RECV => WireEventKind::Recv {
                from: r.u16()?,
                src: r.u16()?,
                seq: r.u64()?,
                infra: r.bool()?,
            },
            EV_CRASH => WireEventKind::Crash,
            EV_FAILED => WireEventKind::Failed { of: r.u16()? },
            EV_TIMER => WireEventKind::TimerFired { timer: r.u64()? },
            EV_EXTERNAL => WireEventKind::External,
            EV_NOTE_KV => WireEventKind::NoteKv {
                key: String::decode(r)?,
                val: String::decode(r)?,
            },
            EV_NOTE_SET => WireEventKind::NoteSet {
                key: String::decode(r)?,
                about: Option::<u16>::decode(r)?,
                set: Vec::<u16>::decode(r)?,
            },
            tag => {
                return Err(WireError::UnknownTag {
                    what: "WireEvent",
                    tag,
                })
            }
        };
        Ok(WireEvent { lamport, kind })
    }
}

/// The node's final report, sent in response to [`ParentToNode::Stop`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeDump {
    /// Every recorded event, in local order.
    pub events: Vec<WireEvent>,
    /// Final wire accounting.
    pub status: NodeStatus,
    /// Timer firings delivered to the process.
    pub timers_fired: u64,
    /// Failure detections this node declared.
    pub detections: u64,
}

impl WireCodec for NodeDump {
    fn encode(&self, w: &mut WireWriter) {
        self.events.encode(w);
        self.status.encode(w);
        w.u64(self.timers_fired);
        w.u64(self.detections);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(NodeDump {
            events: Vec::decode(r)?,
            status: NodeStatus::decode(r)?,
            timers_fired: r.u64()?,
            detections: r.u64()?,
        })
    }
}

/// Messages a node sends to the parent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeToParent {
    /// First message after connecting: who I am and where I listen.
    Hello {
        /// Process index.
        pid: u16,
        /// The node's bound UDP port on localhost.
        udp_port: u16,
    },
    /// Reply to [`ParentToNode::Poll`].
    Status(NodeStatus),
    /// Reply to [`ParentToNode::Stop`].
    Dump(NodeDump),
}

const NP_HELLO: u8 = 0;
const NP_STATUS: u8 = 1;
const NP_DUMP: u8 = 2;

impl WireCodec for NodeToParent {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            NodeToParent::Hello { pid, udp_port } => {
                w.u8(NP_HELLO);
                w.u16(*pid);
                w.u16(*udp_port);
            }
            NodeToParent::Status(s) => {
                w.u8(NP_STATUS);
                s.encode(w);
            }
            NodeToParent::Dump(d) => {
                w.u8(NP_DUMP);
                d.encode(w);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            NP_HELLO => Ok(NodeToParent::Hello {
                pid: r.u16()?,
                udp_port: r.u16()?,
            }),
            NP_STATUS => Ok(NodeToParent::Status(NodeStatus::decode(r)?)),
            NP_DUMP => Ok(NodeToParent::Dump(NodeDump::decode(r)?)),
            tag => Err(WireError::UnknownTag {
                what: "NodeToParent",
                tag,
            }),
        }
    }
}

/// Messages the parent sends to a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParentToNode {
    /// Script a crash of this node at the given local tick
    /// (pre-`Start` only).
    Crash {
        /// Virtual tick at which the node halts.
        at: u64,
    },
    /// Script an environment injection at the given local tick
    /// (pre-`Start` only). `body` is the node's wire-encoded message
    /// type, delivered through `on_external`.
    External {
        /// Virtual tick of the injection.
        at: u64,
        /// Encoded stimulus.
        body: Vec<u8>,
    },
    /// Start the run: every node is connected; `peers[i]` is process
    /// `i`'s UDP port on localhost.
    Start {
        /// UDP port table, indexed by process.
        peers: Vec<u16>,
    },
    /// Request a [`NodeStatus`] (the quiescence handshake's probe).
    Poll,
    /// End the run: dump events and exit.
    Stop,
}

const PN_CRASH: u8 = 0;
const PN_EXTERNAL: u8 = 1;
const PN_START: u8 = 2;
const PN_POLL: u8 = 3;
const PN_STOP: u8 = 4;

impl WireCodec for ParentToNode {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            ParentToNode::Crash { at } => {
                w.u8(PN_CRASH);
                w.u64(*at);
            }
            ParentToNode::External { at, body } => {
                w.u8(PN_EXTERNAL);
                w.u64(*at);
                body.encode(w);
            }
            ParentToNode::Start { peers } => {
                w.u8(PN_START);
                peers.encode(w);
            }
            ParentToNode::Poll => w.u8(PN_POLL),
            ParentToNode::Stop => w.u8(PN_STOP),
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            PN_CRASH => Ok(ParentToNode::Crash { at: r.u64()? }),
            PN_EXTERNAL => Ok(ParentToNode::External {
                at: r.u64()?,
                body: Vec::decode(r)?,
            }),
            PN_START => Ok(ParentToNode::Start {
                peers: Vec::decode(r)?,
            }),
            PN_POLL => Ok(ParentToNode::Poll),
            PN_STOP => Ok(ParentToNode::Stop),
            tag => Err(WireError::UnknownTag {
                what: "ParentToNode",
                tag,
            }),
        }
    }
}

/// Writes one length-prefixed control message to a stream.
///
/// # Errors
///
/// Propagates the stream's I/O errors.
pub fn write_msg<M: WireCodec, S: Write>(stream: &mut S, msg: &M) -> io::Result<()> {
    let body = msg.to_wire_bytes();
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    stream.write_all(&out)
}

/// Blocking-reads one length-prefixed control message from a stream.
///
/// # Errors
///
/// The stream's I/O errors; `InvalidData` on a length above
/// [`MAX_CTRL_MSG`] or a body the codec rejects.
pub fn read_msg<M: WireCodec, S: Read>(stream: &mut S) -> io::Result<M> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_CTRL_MSG {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("control message of {len} bytes exceeds bound"),
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    M::from_wire_bytes(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Incremental reassembly buffer for the node's **non-blocking** control
/// reads: bytes go in as they arrive; complete messages come out.
#[derive(Debug, Default)]
pub struct CtrlBuf {
    buf: Vec<u8>,
}

impl CtrlBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        CtrlBuf::default()
    }

    /// Appends freshly read bytes.
    pub fn ingest(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete message, if one has fully arrived.
    ///
    /// # Errors
    ///
    /// `InvalidData` on an oversized length prefix or an undecodable
    /// body.
    pub fn next_msg<M: WireCodec>(&mut self) -> io::Result<Option<M>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap()) as usize;
        if len > MAX_CTRL_MSG {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("control message of {len} bytes exceeds bound"),
            ));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let msg = M::from_wire_bytes(&self.buf[4..4 + len])
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.buf.drain(..4 + len);
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_messages_round_trip() {
        let msgs = vec![
            ParentToNode::Crash { at: 20 },
            ParentToNode::External {
                at: 10,
                body: vec![1, 2, 3],
            },
            ParentToNode::Start {
                peers: vec![4000, 4001, 4002],
            },
            ParentToNode::Poll,
            ParentToNode::Stop,
        ];
        for m in &msgs {
            assert_eq!(
                &ParentToNode::from_wire_bytes(&m.to_wire_bytes()).unwrap(),
                m
            );
        }
        let dump = NodeToParent::Dump(NodeDump {
            events: vec![
                WireEvent {
                    lamport: 3,
                    kind: WireEventKind::Send {
                        to: 1,
                        src: 0,
                        seq: 7,
                        infra: true,
                    },
                },
                WireEvent {
                    lamport: 4,
                    kind: WireEventKind::NoteSet {
                        key: "quorum".into(),
                        about: Some(2),
                        set: vec![0, 1],
                    },
                },
            ],
            status: NodeStatus {
                sent: 5,
                delivered: 4,
                idle: true,
                ..NodeStatus::default()
            },
            timers_fired: 2,
            detections: 1,
        });
        assert_eq!(
            NodeToParent::from_wire_bytes(&dump.to_wire_bytes()).unwrap(),
            dump
        );
    }

    #[test]
    fn ctrl_buf_reassembles_split_messages() {
        let mut framed = Vec::new();
        write_msg(&mut framed, &ParentToNode::Poll).unwrap();
        write_msg(
            &mut framed,
            &ParentToNode::Start {
                peers: vec![1, 2, 3],
            },
        )
        .unwrap();
        let mut buf = CtrlBuf::new();
        let mut seen = Vec::new();
        // Feed one byte at a time: messages must pop exactly at their
        // boundaries.
        for b in framed {
            buf.ingest(&[b]);
            while let Some(m) = buf.next_msg::<ParentToNode>().unwrap() {
                seen.push(m);
            }
        }
        assert_eq!(
            seen,
            vec![
                ParentToNode::Poll,
                ParentToNode::Start {
                    peers: vec![1, 2, 3],
                },
            ]
        );
    }

    #[test]
    fn stream_round_trip_through_read_msg() {
        let mut framed = Vec::new();
        write_msg(
            &mut framed,
            &NodeToParent::Hello {
                pid: 2,
                udp_port: 40_000,
            },
        )
        .unwrap();
        let mut cursor = io::Cursor::new(framed);
        assert_eq!(
            read_msg::<NodeToParent, _>(&mut cursor).unwrap(),
            NodeToParent::Hello {
                pid: 2,
                udp_port: 40_000,
            }
        );
    }
}
