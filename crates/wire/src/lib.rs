//! `sfs-wire` — bytes on a real wire.
//!
//! Every backend before this one kept the system inside a single OS
//! process: the deterministic simulator, the threaded router, the ARQ
//! transport in both. This crate takes the final step of the fidelity
//! ladder: each [`Process`](sfs_asys::Process) runs in its **own OS
//! process** and talks to its peers over **real localhost UDP sockets**,
//! with the ARQ transport recovering real kernel loss and reordering on
//! top of an optional deterministic fault shim.
//!
//! The crate has two halves:
//!
//! * **Codec** ([`codec`], [`frame`]) — a serde-free, length-prefixed,
//!   explicitly little-endian binary encoding. [`WireCodec`] is the
//!   byte-level trait; [`frame`] wraps one encoded message in a
//!   versioned, magic-tagged datagram header. Decoding returns typed
//!   [`WireError`]s and never panics or over-reads on truncated,
//!   oversized, or bit-flipped input — adversarial bytes are a fact of
//!   real sockets.
//! * **Backend** ([`node`], [`parent`], [`ctrl`], [`shim`]) — the
//!   multi-process runtime. The parent ([`run_cluster`]) spawns one
//!   child per node, barriers on their `Hello`s, scripts crashes and
//!   external suspicions over a TCP control channel, and then drives the
//!   outstanding-count quiescence handshake (Poll/Status rounds with a
//!   global ledger-balance check) before collecting per-node event dumps
//!   and assembling them — via Lamport-clock merge — into the same
//!   [`Trace`](sfs_asys::Trace) type every other engine produces. That
//!   is what lets the E10 conformance harness treat `net:udp` as just an
//!   eighth backend whose traces must sit inside the simulator envelope.
//!
//! What is deliberately *not* here: any dependency on the protocol
//! crates above `sfs-transport`. The node loop is generic over the
//! message type and automaton; `sfs` (core) supplies the concrete
//! `SfsProcess`-under-ARQ wiring and the spawnable node binary.

#![warn(missing_docs)]

pub mod codec;
pub mod ctrl;
pub mod frame;
pub mod node;
pub mod parent;
pub mod shim;

pub use codec::{WireCodec, WireError, WireReader, WireWriter};
pub use ctrl::{NodeDump, NodeStatus, NodeToParent, ParentToNode, WireEvent, WireEventKind};
pub use frame::{decode_frame, encode_frame, wire_cost, FrameHeader, HEADER_LEN, MAGIC, VERSION};
pub use node::{run_node, NodeConfig};
pub use parent::{run_cluster, ClusterConfig, NodeFault, UdpRun, ENV_CTRL_ADDR};
pub use shim::{FaultShim, ShimConfig, ShimVerdict};
