//! The datagram frame: a versioned header around one encoded message.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     2  magic     = 0xA5F5
//!      2     1  version   = 1
//!      3     2  src       sender process index
//!      5     2  dst       destination process index
//!      7     8  seq       per-sender datagram sequence (the engine-level
//!                         MsgId numbering: duplicate copies share it)
//!     15     8  lamport   sender's Lamport clock at transmission
//!     23     4  len       body length in bytes
//!     27   len  body      one WireCodec-encoded message
//! ```
//!
//! One datagram carries exactly one frame; trailing bytes after the body
//! are rejected, as is any body length that exceeds [`MAX_BODY`] or the
//! bytes actually present. Decoding never panics — corrupt datagrams
//! come back as typed [`WireError`]s and are dropped by the node loop
//! (indistinguishable from link loss, which the ARQ layer already
//! absorbs).

use crate::codec::{WireCodec, WireError, WireReader, WireWriter};

/// First two bytes of every frame.
pub const MAGIC: u16 = 0xA5F5;

/// The wire-format version this codec speaks.
pub const VERSION: u8 = 1;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 27;

/// Maximum body size: one frame must fit a single localhost UDP datagram
/// with headroom for the header.
pub const MAX_BODY: usize = 60_000;

/// The decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Sender process index.
    pub src: u16,
    /// Destination process index.
    pub dst: u16,
    /// Per-sender datagram sequence number (duplicated copies share it).
    pub seq: u64,
    /// Sender's Lamport clock at transmission.
    pub lamport: u64,
}

/// Encodes `msg` into one datagram-sized frame under `header`.
///
/// # Panics
///
/// Panics if the encoded body exceeds [`MAX_BODY`] — a protocol-design
/// error, not a runtime input: every message type this workspace puts on
/// the wire is a few dozen bytes.
pub fn encode_frame<M: WireCodec>(header: FrameHeader, msg: &M) -> Vec<u8> {
    let body = msg.to_wire_bytes();
    assert!(
        body.len() <= MAX_BODY,
        "frame body of {} bytes exceeds MAX_BODY",
        body.len()
    );
    let mut w = WireWriter::new();
    w.u16(MAGIC);
    w.u8(VERSION);
    w.u16(header.src);
    w.u16(header.dst);
    w.u64(header.seq);
    w.u64(header.lamport);
    w.u32(body.len() as u32);
    w.raw(&body);
    w.into_bytes()
}

/// Decodes one frame, returning its header and message.
///
/// # Errors
///
/// [`WireError::BadMagic`] / [`WireError::BadVersion`] on foreign bytes;
/// [`WireError::Truncated`] when the datagram ends inside the header or
/// body; [`WireError::OversizedLength`] when the length field exceeds
/// [`MAX_BODY`] or the bytes present; [`WireError::TrailingBytes`] when
/// the datagram continues past the body; plus whatever the body decoder
/// reports. Never panics, never reads past `bytes`.
pub fn decode_frame<M: WireCodec>(bytes: &[u8]) -> Result<(FrameHeader, M), WireError> {
    let mut r = WireReader::new(bytes);
    let magic = r.u16()?;
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let header = FrameHeader {
        src: r.u16()?,
        dst: r.u16()?,
        seq: r.u64()?,
        lamport: r.u64()?,
    };
    let len = r.u32()? as usize;
    if len > MAX_BODY || len > r.remaining() {
        return Err(WireError::OversizedLength {
            claimed: len as u64,
            max: r.remaining().min(MAX_BODY) as u64,
        });
    }
    let body = r.raw(len)?;
    r.finish()?;
    let msg = M::from_wire_bytes(body)?;
    Ok((header, msg))
}

/// The full on-wire cost of sending `msg` as one frame, in bytes — the
/// honest per-datagram byte counter behind E12's bytes/detection column.
pub fn wire_cost<M: WireCodec>(msg: &M) -> u64 {
    (HEADER_LEN + msg.encoded_len()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> FrameHeader {
        FrameHeader {
            src: 1,
            dst: 2,
            seq: 41,
            lamport: 99,
        }
    }

    #[test]
    fn frame_round_trips() {
        let frame = encode_frame(header(), &0xAB54_A98C_EB1F_0AD2u64);
        assert_eq!(frame.len(), HEADER_LEN + 8);
        assert_eq!(wire_cost(&0u64), (HEADER_LEN + 8) as u64);
        let (h, msg) = decode_frame::<u64>(&frame).unwrap();
        assert_eq!(h, header());
        assert_eq!(msg, 0xAB54_A98C_EB1F_0AD2);
    }

    #[test]
    fn every_truncation_point_is_an_error_not_a_panic() {
        let frame = encode_frame(header(), &7u64);
        for cut in 0..frame.len() {
            let err = decode_frame::<u64>(&frame[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    WireError::Truncated { .. } | WireError::OversizedLength { .. }
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn foreign_magic_and_future_versions_are_rejected() {
        let mut frame = encode_frame(header(), &7u64);
        frame[0] ^= 0xFF;
        assert!(matches!(
            decode_frame::<u64>(&frame).unwrap_err(),
            WireError::BadMagic(_)
        ));
        let mut frame = encode_frame(header(), &7u64);
        frame[2] = VERSION + 1;
        assert_eq!(
            decode_frame::<u64>(&frame).unwrap_err(),
            WireError::BadVersion(VERSION + 1)
        );
    }

    #[test]
    fn length_field_is_validated_before_the_body_is_touched() {
        let mut frame = encode_frame(header(), &7u64);
        // Claim a body far past the datagram's end.
        frame[23..27].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame::<u64>(&frame).unwrap_err(),
            WireError::OversizedLength { .. }
        ));
        // A datagram longer than header + body is not a valid frame.
        let mut frame = encode_frame(header(), &7u64);
        frame.push(0);
        assert_eq!(
            decode_frame::<u64>(&frame).unwrap_err(),
            WireError::TrailingBytes { extra: 1 }
        );
    }
}
