//! Serde-free length-prefixed binary codec for wire frames.
//!
//! Everything that crosses a socket in this workspace — transport frames,
//! control-channel messages, node configuration blobs — is encoded with
//! [`WireCodec`]: explicit little-endian integers, u32-length-prefixed
//! sequences, one tag byte per enum variant, and a versioned frame header
//! on the datagram path ([`frame`](crate::frame)). Decoding returns typed
//! [`WireError`]s and never panics or over-reads on truncated or corrupt
//! input: every read is bounds-checked against the remaining slice, and
//! length prefixes are validated against the bytes actually present
//! before any allocation.

use sfs_asys::{MsgId, ProcessId, VirtualTime};
use sfs_transport::TransportMsg;
use std::fmt;

/// Why a byte sequence was rejected by a [`WireCodec`] decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before a fixed-size field: `needed` more bytes
    /// were required, `have` remained.
    Truncated {
        /// Bytes the next field required.
        needed: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// The frame did not start with [`frame::MAGIC`](crate::frame::MAGIC).
    BadMagic(u16),
    /// The frame's version byte is not one this decoder speaks.
    BadVersion(u8),
    /// A length prefix exceeds the bytes present (or the frame bound):
    /// honouring it would over-read or over-allocate.
    OversizedLength {
        /// The claimed length.
        claimed: u64,
        /// The permitted maximum at this position.
        max: u64,
    },
    /// An enum tag byte matched no variant of the expected type.
    UnknownTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A value decoded but failed validation (e.g. non-UTF-8 string
    /// bytes, a boolean byte that is neither 0 nor 1).
    BadValue {
        /// The field being decoded.
        what: &'static str,
    },
    /// Input remained after the value was fully decoded.
    TrailingBytes {
        /// Unconsumed byte count.
        extra: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "truncated input: needed {needed} bytes, have {have}")
            }
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            WireError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            WireError::OversizedLength { claimed, max } => {
                write!(f, "length prefix {claimed} exceeds bound {max}")
            }
            WireError::UnknownTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::BadValue { what } => write!(f, "invalid value for {what}"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after value")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only encoder: explicit little-endian, no padding.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends an f64 as its IEEE-754 bit pattern, little-endian.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends raw bytes with **no** length prefix (frame bodies whose
    /// length travels in the header).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a u32-length-prefixed byte sequence.
    pub fn bytes(&mut self, bytes: &[u8]) {
        debug_assert!(bytes.len() <= u32::MAX as usize);
        self.u32(bytes.len() as u32);
        self.raw(bytes);
    }
}

/// Bounds-checked decoder over a byte slice. Every accessor either
/// returns the value or a typed [`WireError`]; nothing reads past the
/// slice.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a bool byte, rejecting anything but 0 and 1.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::BadValue { what: "bool" }),
        }
    }

    /// Reads an f64 from its little-endian bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads exactly `n` raw bytes (no length prefix).
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Reads a u32-length-prefixed byte sequence, validating the prefix
    /// against the bytes actually remaining before touching them.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(WireError::OversizedLength {
                claimed: len as u64,
                max: self.remaining() as u64,
            });
        }
        self.take(len)
    }

    /// A u32 sequence-length prefix for `len`-element decoding:
    /// validated against the remaining byte count so an adversarial
    /// prefix cannot force a huge allocation (every element is at least
    /// one byte).
    pub fn seq_len(&mut self) -> Result<usize, WireError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(WireError::OversizedLength {
                claimed: len as u64,
                max: self.remaining() as u64,
            });
        }
        Ok(len)
    }

    /// Asserts the input is fully consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                extra: self.remaining(),
            })
        }
    }
}

/// A value with a byte encoding on the wire.
///
/// Implementations must be total on encode and **never panic on
/// decode** — corrupt input comes back as [`WireError`].
pub trait WireCodec: Sized {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut WireWriter);

    /// Decodes one value from the reader's current position.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] the input forces; implementations must not
    /// read past the slice or allocate proportionally to unvalidated
    /// length prefixes.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// This value's encoding as a standalone byte vector.
    fn to_wire_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Decodes a standalone byte vector, requiring full consumption.
    ///
    /// # Errors
    ///
    /// Any decode error, or [`WireError::TrailingBytes`] when input
    /// remains after the value.
    fn from_wire_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }

    /// The length of this value's encoding, in bytes.
    fn encoded_len(&self) -> usize {
        self.to_wire_bytes().len()
    }
}

impl WireCodec for () {
    fn encode(&self, _w: &mut WireWriter) {}
    fn decode(_r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
    fn encoded_len(&self) -> usize {
        0
    }
}

impl WireCodec for u8 {
    fn encode(&self, w: &mut WireWriter) {
        w.u8(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u8()
    }
}

impl WireCodec for u16 {
    fn encode(&self, w: &mut WireWriter) {
        w.u16(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u16()
    }
}

impl WireCodec for u32 {
    fn encode(&self, w: &mut WireWriter) {
        w.u32(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u32()
    }
}

impl WireCodec for u64 {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u64()
    }
}

impl WireCodec for bool {
    fn encode(&self, w: &mut WireWriter) {
        w.bool(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.bool()
    }
}

impl WireCodec for f64 {
    fn encode(&self, w: &mut WireWriter) {
        w.f64(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.f64()
    }
}

impl WireCodec for usize {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(*self as u64);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        usize::try_from(r.u64()?).map_err(|_| WireError::BadValue { what: "usize" })
    }
}

impl WireCodec for String {
    fn encode(&self, w: &mut WireWriter) {
        w.bytes(self.as_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let bytes = r.bytes()?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| WireError::BadValue {
                what: "utf-8 string",
            })
    }
}

impl<T: WireCodec> WireCodec for Option<T> {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::UnknownTag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl<T: WireCodec> WireCodec for Vec<T> {
    fn encode(&self, w: &mut WireWriter) {
        debug_assert!(self.len() <= u32::MAX as usize);
        w.u32(self.len() as u32);
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.seq_len()?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: WireCodec, B: WireCodec> WireCodec for (A, B) {
    fn encode(&self, w: &mut WireWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl WireCodec for ProcessId {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.index() as u64);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        usize::try_from(r.u64()?)
            .map(ProcessId::new)
            .map_err(|_| WireError::BadValue { what: "ProcessId" })
    }
}

impl WireCodec for MsgId {
    fn encode(&self, w: &mut WireWriter) {
        self.source().encode(w);
        w.u64(self.seq());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let source = ProcessId::decode(r)?;
        let seq = r.u64()?;
        Ok(MsgId::new(source, seq))
    }
}

impl WireCodec for VirtualTime {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.ticks());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(VirtualTime::from_ticks(r.u64()?))
    }
}

// Tags of the `TransportMsg` wire encoding; a frozen part of the wire
// format (bump `frame::VERSION` to change them).
const TAG_DATA: u8 = 0;
const TAG_ACK: u8 = 1;
const TAG_PING: u8 = 2;
const TAG_CTL: u8 = 3;

impl<M: WireCodec> WireCodec for TransportMsg<M> {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            TransportMsg::Data {
                seq,
                logical,
                payload,
            } => {
                w.u8(TAG_DATA);
                w.u64(*seq);
                w.u64(*logical);
                payload.encode(w);
            }
            TransportMsg::Ack { upto } => {
                w.u8(TAG_ACK);
                w.u64(*upto);
            }
            TransportMsg::Ping => w.u8(TAG_PING),
            TransportMsg::Ctl(m) => {
                w.u8(TAG_CTL);
                m.encode(w);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            TAG_DATA => Ok(TransportMsg::Data {
                seq: r.u64()?,
                logical: r.u64()?,
                payload: M::decode(r)?,
            }),
            TAG_ACK => Ok(TransportMsg::Ack { upto: r.u64()? }),
            TAG_PING => Ok(TransportMsg::Ping),
            TAG_CTL => Ok(TransportMsg::Ctl(M::decode(r)?)),
            tag => Err(WireError::UnknownTag {
                what: "TransportMsg",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = WireWriter::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.bool(true);
        w.f64(0.25);
        w.bytes(b"abc");
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert!(r.bool().unwrap());
        assert_eq!(r.f64().unwrap(), 0.25);
        assert_eq!(r.bytes().unwrap(), b"abc");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut r = WireReader::new(&[1, 2]);
        assert_eq!(
            r.u64().unwrap_err(),
            WireError::Truncated { needed: 8, have: 2 }
        );
        // The failed read consumed nothing.
        assert_eq!(r.u16().unwrap(), 0x0201);
    }

    #[test]
    fn oversized_length_prefix_never_allocates_or_reads() {
        // Claims 4 GiB of payload; only 2 bytes present.
        let mut bytes = (u32::MAX).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[1, 2]);
        let mut r = WireReader::new(&bytes);
        assert_eq!(
            r.bytes().unwrap_err(),
            WireError::OversizedLength {
                claimed: u32::MAX as u64,
                max: 2,
            }
        );
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            Vec::<u64>::decode(&mut r).unwrap_err(),
            WireError::OversizedLength { .. }
        ));
    }

    #[test]
    fn transport_msg_round_trips_every_variant() {
        let msgs: Vec<TransportMsg<u32>> = vec![
            TransportMsg::Data {
                seq: 9,
                logical: 4,
                payload: 0xC0FFEE,
            },
            TransportMsg::Ack { upto: u64::MAX },
            TransportMsg::Ping,
            TransportMsg::Ctl(17),
        ];
        for m in &msgs {
            let bytes = m.to_wire_bytes();
            assert_eq!(bytes.len(), m.encoded_len());
            let back = TransportMsg::<u32>::from_wire_bytes(&bytes).unwrap();
            assert_eq!(&back, m);
        }
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_are_rejected() {
        assert_eq!(
            TransportMsg::<u32>::from_wire_bytes(&[9]).unwrap_err(),
            WireError::UnknownTag {
                what: "TransportMsg",
                tag: 9,
            }
        );
        let mut bytes = TransportMsg::<u32>::Ping.to_wire_bytes();
        bytes.push(0);
        assert_eq!(
            TransportMsg::<u32>::from_wire_bytes(&bytes).unwrap_err(),
            WireError::TrailingBytes { extra: 1 }
        );
    }
}
