//! The node side of the UDP backend: one OS process hosting one
//! [`Process`] automaton over a real localhost UDP socket.
//!
//! The loop mirrors the engines' semantics exactly — same counter
//! definitions, same event alphabet, same edge cases — so the parent can
//! assemble the nodes' dumps into a [`Trace`](sfs_asys::Trace) that the
//! conformance oracle compares against the simulator envelope:
//!
//! * **Counters.** `sent` increments once per [`Action::Send`] (the Send
//!   event is recorded even when the fault shim withholds the datagram,
//!   exactly like a lossy [`LinkModel`](sfs_asys::LinkModel)); `dropped`
//!   counts shim-withheld or kernel-refused copies; `duplicated` counts
//!   shim double-transmissions (both copies share the frame sequence, so
//!   they carry the same engine-level `MsgId`); `delivered` counts
//!   datagrams admitted to the live automaton; `to_crashed` counts
//!   datagrams consumed after the node halted — including messages that
//!   were parked behind a receive filter when the crash happened, the
//!   accounting rule the engines adopted for `channels_drained()`.
//! * **Virtual time.** One tick is `tick_micros` of wall clock from the
//!   `Start` barrier; timers and scripted injections fire off this clock.
//!   Event *timestamps*, however, come from a per-node Lamport clock
//!   (bumped per event, merged from frame headers), which gives the
//!   merged trace a causally consistent order without synchronised
//!   clocks.
//! * **Quiescence.** The node reports `idle` (no armed timers, no pending
//!   injections) plus its counters on every [`ParentToNode::Poll`]; the
//!   parent's balance check over all nodes decides global quiescence —
//!   the PR 7 outstanding-count handshake, spoken over a socket instead
//!   of an in-process channel.
//!
//! Corrupt or foreign datagrams decode to a typed error and are silently
//! discarded — indistinguishable from link loss, which the ARQ layer
//! above already absorbs. (Kernel loss, like any unconsumed copy, shows
//! up as an unbalanced ledger: the run then ends as `MaxTime`, never as a
//! fabricated quiescence.)

use crate::codec::{WireCodec, WireError, WireReader, WireWriter};
use crate::ctrl::{
    read_msg, write_msg, CtrlBuf, NodeDump, NodeStatus, NodeToParent, ParentToNode, WireEvent,
    WireEventKind,
};
use crate::frame::{decode_frame, encode_frame, FrameHeader};
use crate::shim::{FaultShim, ShimConfig, ShimVerdict};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sfs_asys::{Action, Context, Note, Process, ProcessId, ReceiveFilter, VirtualTime};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::io::{self, Read};
use std::net::{TcpStream, ToSocketAddrs, UdpSocket};
use std::time::{Duration, Instant};

/// Everything a spawned node needs to know, decoded from the blob the
/// parent passes through the environment.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeConfig {
    /// This node's process index.
    pub me: u16,
    /// Number of processes in the system.
    pub n: u16,
    /// Seed for this node's process-level RNG.
    pub seed: u64,
    /// Wall-clock length of one virtual tick, in microseconds.
    pub tick_micros: u64,
    /// Optional deterministic wire-fault shim.
    pub shim: Option<ShimConfig>,
}

impl WireCodec for NodeConfig {
    fn encode(&self, w: &mut WireWriter) {
        w.u16(self.me);
        w.u16(self.n);
        w.u64(self.seed);
        w.u64(self.tick_micros);
        self.shim.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let cfg = NodeConfig {
            me: r.u16()?,
            n: r.u16()?,
            seed: r.u64()?,
            tick_micros: r.u64()?,
            shim: Option::decode(r)?,
        };
        if cfg.n == 0 || cfg.me >= cfg.n || cfg.tick_micros == 0 {
            return Err(WireError::BadValue {
                what: "NodeConfig shape",
            });
        }
        Ok(cfg)
    }
}

/// A scripted injection, delivered over the control channel before
/// `Start` and fired at its local tick.
enum Scripted<M> {
    Crash,
    External(M),
}

struct NodeState<M, P, C> {
    me: usize,
    n: usize,
    tick_micros: u64,
    process: P,
    classify: C,
    rng: StdRng,
    next_timer: u64,
    lamport: u64,
    events: Vec<WireEvent>,
    /// Per-sender datagram sequence counter (the engine's `msg_seq`).
    msg_seq: u64,
    /// Armed timers ordered by (deadline tick, raw id)...
    armed: BTreeSet<(u64, u64)>,
    /// ...with the reverse map raw id → deadline for cancellation.
    deadlines: HashMap<u64, u64>,
    /// Scripted injections ordered by (tick, script position).
    injections: VecDeque<(u64, Scripted<M>)>,
    /// Stable `failed_i(j)` flags: re-declarations are idempotent.
    failed: HashSet<u16>,
    filter: Option<ReceiveFilter<M>>,
    /// Per-sender FIFO of filter-refused messages awaiting a receive.
    parked: Vec<VecDeque<(u16, u64, M)>>,
    shim: Option<FaultShim>,
    socket: UdpSocket,
    peers: Vec<std::net::SocketAddr>,
    halted: bool,
    epoch: Instant,
    sent: u64,
    dropped: u64,
    duplicated: u64,
    delivered: u64,
    to_crashed: u64,
    wire_bytes: u64,
    app_sent: u64,
    app_delivered: u64,
    timers_fired: u64,
    detections: u64,
}

impl<M, P, C> NodeState<M, P, C>
where
    M: WireCodec + Clone,
    P: Process<M>,
    C: Fn(&M) -> bool,
{
    fn now_tick(&self) -> u64 {
        (self.epoch.elapsed().as_micros() as u64) / self.tick_micros
    }

    fn record(&mut self, kind: WireEventKind) {
        self.lamport += 1;
        self.events.push(WireEvent {
            lamport: self.lamport,
            kind,
        });
    }

    fn status(&self) -> NodeStatus {
        NodeStatus {
            sent: self.sent,
            dropped: self.dropped,
            duplicated: self.duplicated,
            delivered: self.delivered,
            to_crashed: self.to_crashed,
            wire_bytes: self.wire_bytes,
            app_sent: self.app_sent,
            app_delivered: self.app_delivered,
            idle: self.halted
                || (self.armed.is_empty()
                    && self.injections.is_empty()
                    && self.parked.iter().all(VecDeque::is_empty)),
            halted: self.halted,
        }
    }

    fn dump(self) -> NodeDump {
        let status = self.status();
        NodeDump {
            events: self.events,
            status,
            timers_fired: self.timers_fired,
            detections: self.detections,
        }
    }

    /// Runs one process callback against a fresh [`Context`] and applies
    /// the actions it queued.
    fn invoke(&mut self, f: impl FnOnce(&mut P, &mut Context<'_, M>)) {
        let now = VirtualTime::from_ticks(self.now_tick());
        let (me, n) = (self.me, self.n);
        let actions = {
            let mut ctx = Context::new(
                ProcessId::new(me),
                n,
                now,
                &mut self.rng,
                &mut self.next_timer,
            );
            f(&mut self.process, &mut ctx);
            ctx.take_actions()
        };
        self.apply_actions(actions);
    }

    fn apply_actions(&mut self, actions: Vec<Action<M>>) {
        for action in actions {
            match action {
                Action::Send { to, msg } => self.do_send(to, msg),
                Action::SetTimer { id, delay } => {
                    // A timer armed by a crashing batch would never fire
                    // (and in the simulator its heap entry dissolves), so
                    // it must not hold `idle` false forever.
                    if !self.halted {
                        let at = self.now_tick() + delay.max(1);
                        self.armed.insert((at, id.raw()));
                        self.deadlines.insert(id.raw(), at);
                    }
                }
                Action::CancelTimer { id } => {
                    if let Some(at) = self.deadlines.remove(&id.raw()) {
                        self.armed.remove(&(at, id.raw()));
                    }
                }
                Action::CrashSelf => self.do_crash(),
                Action::DeclareFailed { of } => {
                    let of = of.index() as u16;
                    if self.failed.insert(of) {
                        self.record(WireEventKind::Failed { of });
                        self.detections += 1;
                    }
                }
                Action::Annotate(note) => {
                    let kind = match note {
                        Note::KeyVal { key, val } => WireEventKind::NoteKv { key, val },
                        Note::ProcessSet { key, about, set } => WireEventKind::NoteSet {
                            key,
                            about: about.map(|p| p.index() as u16),
                            set: set.iter().map(|p| p.index() as u16).collect(),
                        },
                    };
                    self.record(kind);
                }
                Action::SetReceiveFilter(filter) => {
                    self.filter = filter;
                    self.pump_parked();
                }
                Action::ModelSend { to, msg } => self.record(WireEventKind::Send {
                    to: to.index() as u16,
                    src: msg.source().index() as u16,
                    seq: msg.seq(),
                    infra: false,
                }),
                Action::ModelRecv { from, msg } => self.record(WireEventKind::Recv {
                    from: from.index() as u16,
                    src: msg.source().index() as u16,
                    seq: msg.seq(),
                    infra: false,
                }),
            }
        }
    }

    fn do_send(&mut self, to: ProcessId, msg: M) {
        let seq = self.msg_seq;
        self.msg_seq += 1;
        let infra = (self.classify)(&msg);
        // The send is recorded and counted unconditionally — a shim drop
        // is the network losing a sent message, exactly as in the
        // simulator's lossy link.
        self.record(WireEventKind::Send {
            to: to.index() as u16,
            src: self.me as u16,
            seq,
            infra,
        });
        self.sent += 1;
        if !infra {
            self.app_sent += 1;
        }
        let frame = encode_frame(
            FrameHeader {
                src: self.me as u16,
                dst: to.index() as u16,
                seq,
                lamport: self.lamport,
            },
            &msg,
        );
        // Sender-paid byte accounting, as `SimStats::wire_bytes`
        // specifies: charged once per send; duplicated and dropped
        // copies are the network's doing.
        self.wire_bytes += frame.len() as u64;
        let copies = match self.shim.as_mut().map(FaultShim::verdict) {
            Some(ShimVerdict::Drop) => {
                self.dropped += 1;
                return;
            }
            Some(ShimVerdict::Duplicate) => {
                self.duplicated += 1;
                2
            }
            _ => 1,
        };
        for _ in 0..copies {
            // A refused copy is a lost copy; count it so the parent's
            // ledger still balances.
            if self.socket.send_to(&frame, self.peers[to.index()]).is_err() {
                self.dropped += 1;
            }
        }
    }

    fn do_crash(&mut self) {
        if self.halted {
            return;
        }
        self.halted = true;
        self.record(WireEventKind::Crash);
        self.armed.clear();
        self.deadlines.clear();
        self.injections.clear();
        // Messages parked behind the receive filter can never be
        // received now: consume them as messages-to-crashed, the same
        // rule both engines apply at crash time.
        for q in &mut self.parked {
            self.to_crashed += q.len() as u64;
            q.clear();
        }
    }

    /// Admits one datagram's worth of message to the automaton, or parks
    /// it behind the receive filter.
    fn admit(&mut self, from: u16, seq: u64, msg: M) {
        if self.halted {
            self.to_crashed += 1;
            return;
        }
        if let Some(filter) = &self.filter {
            if !filter.accepts(&msg) {
                self.parked[from as usize].push_back((from, seq, msg));
                return;
            }
        }
        let infra = (self.classify)(&msg);
        self.record(WireEventKind::Recv {
            from,
            src: from,
            seq,
            infra,
        });
        self.delivered += 1;
        if !infra {
            self.app_delivered += 1;
        }
        let sender = ProcessId::new(from as usize);
        self.invoke(|p, ctx| p.on_message(ctx, sender, msg));
    }

    /// Re-offers parked messages after a filter change, preserving
    /// per-sender FIFO: each queue drains from the front until the
    /// filter refuses its head again.
    fn pump_parked(&mut self) {
        for from in 0..self.n {
            loop {
                if self.halted {
                    return;
                }
                let admissible = match (self.filter.as_ref(), self.parked[from].front()) {
                    (_, None) => false,
                    (None, Some(_)) => true,
                    (Some(f), Some((_, _, msg))) => f.accepts(msg),
                };
                if !admissible {
                    break;
                }
                let (sender, seq, msg) = self.parked[from].pop_front().unwrap();
                self.admit(sender, seq, msg);
            }
        }
    }

    /// One incoming datagram: decode, merge clocks, deliver.
    fn on_datagram(&mut self, bytes: &[u8]) {
        let Ok((header, msg)) = decode_frame::<M>(bytes) else {
            // Corrupt bytes are link loss; the ARQ above recovers.
            return;
        };
        if header.dst as usize != self.me || header.src as usize >= self.n {
            return;
        }
        // Lamport merge happens at arrival, even for messages a crashed
        // node merely discards — receipt is causally after the send.
        self.lamport = self.lamport.max(header.lamport);
        self.admit(header.src, header.seq, msg);
    }

    /// Fires every scripted injection and armed timer due at or before
    /// the current tick, injections first (they were scheduled first).
    fn fire_due(&mut self) {
        let now = self.now_tick();
        while let Some((at, _)) = self.injections.front() {
            if *at > now || self.halted {
                break;
            }
            let (_, scripted) = self.injections.pop_front().unwrap();
            match scripted {
                Scripted::Crash => self.do_crash(),
                Scripted::External(payload) => {
                    self.record(WireEventKind::External);
                    self.invoke(|p, ctx| p.on_external(ctx, payload));
                }
            }
        }
        while let Some(&(at, raw)) = self.armed.iter().next() {
            if at > now || self.halted {
                break;
            }
            self.armed.remove(&(at, raw));
            self.deadlines.remove(&raw);
            self.record(WireEventKind::TimerFired { timer: raw });
            self.timers_fired += 1;
            let id = sfs_asys::TimerId::new(raw);
            self.invoke(|p, ctx| p.on_timer(ctx, id));
        }
    }
}

/// Runs one node to completion against the parent at `ctrl_addr`.
///
/// Binds a UDP socket on localhost, performs the Hello/Start handshake,
/// runs the event loop (datagrams, timers, scripted faults, control
/// polls), and exits after answering [`ParentToNode::Stop`] with the
/// event dump.
///
/// `classify` marks infrastructure payloads for trace events, exactly
/// like `SimBuilder::classify` in the simulator.
///
/// # Errors
///
/// Propagates socket I/O errors and malformed control traffic; a clean
/// `Stop` returns `Ok(())`.
pub fn run_node<M, P, C, A>(
    cfg: &NodeConfig,
    ctrl_addr: A,
    process: P,
    classify: C,
) -> io::Result<()>
where
    M: WireCodec + Clone,
    P: Process<M>,
    C: Fn(&M) -> bool,
    A: ToSocketAddrs,
{
    let socket = UdpSocket::bind("127.0.0.1:0")?;
    socket.set_read_timeout(Some(Duration::from_micros(500)))?;
    let udp_port = socket.local_addr()?.port();
    let mut ctrl = TcpStream::connect(ctrl_addr)?;
    ctrl.set_nodelay(true)?;
    write_msg(
        &mut ctrl,
        &NodeToParent::Hello {
            pid: cfg.me,
            udp_port,
        },
    )?;

    // Pre-start phase: collect the fault script, wait for the barrier.
    let mut injections: Vec<(u64, Scripted<M>)> = Vec::new();
    let peers: Vec<u16> = loop {
        match read_msg::<ParentToNode, _>(&mut ctrl)? {
            ParentToNode::Crash { at } => injections.push((at, Scripted::Crash)),
            ParentToNode::External { at, body } => {
                let payload = M::from_wire_bytes(&body)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                injections.push((at, Scripted::External(payload)));
            }
            ParentToNode::Start { peers } => break peers,
            ParentToNode::Poll => {
                write_msg(&mut ctrl, &NodeToParent::Status(NodeStatus::default()))?
            }
            ParentToNode::Stop => {
                // Aborted before start: dump nothing and exit cleanly.
                write_msg(
                    &mut ctrl,
                    &NodeToParent::Dump(NodeDump {
                        events: Vec::new(),
                        status: NodeStatus {
                            idle: true,
                            ..NodeStatus::default()
                        },
                        timers_fired: 0,
                        detections: 0,
                    }),
                )?;
                return Ok(());
            }
        }
    };
    if peers.len() != cfg.n as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "peer table size disagrees with n",
        ));
    }
    injections.sort_by_key(|&(at, _)| at); // stable: ties keep script order

    let mut state = NodeState {
        me: cfg.me as usize,
        n: cfg.n as usize,
        tick_micros: cfg.tick_micros,
        process,
        classify,
        rng: StdRng::seed_from_u64(cfg.seed),
        next_timer: 0,
        lamport: 0,
        events: Vec::new(),
        msg_seq: 0,
        armed: BTreeSet::new(),
        deadlines: HashMap::new(),
        injections: injections.into(),
        failed: HashSet::new(),
        filter: None,
        parked: (0..cfg.n).map(|_| VecDeque::new()).collect(),
        shim: cfg.shim.as_ref().map(FaultShim::new),
        socket,
        peers: peers
            .iter()
            .map(|&port| std::net::SocketAddr::from(([127, 0, 0, 1], port)))
            .collect(),
        halted: false,
        epoch: Instant::now(),
        sent: 0,
        dropped: 0,
        duplicated: 0,
        delivered: 0,
        to_crashed: 0,
        wire_bytes: 0,
        app_sent: 0,
        app_delivered: 0,
        timers_fired: 0,
        detections: 0,
    };

    ctrl.set_nonblocking(true)?;
    let mut ctrl_buf = CtrlBuf::new();
    let mut read_buf = [0u8; 4096];
    let mut dgram = [0u8; 65_536];

    state.invoke(|p, ctx| p.on_start(ctx));

    loop {
        state.fire_due();
        // Drain a bounded burst of datagrams; the socket's 500µs read
        // timeout paces the loop when the wire is quiet.
        for _ in 0..64 {
            match state.socket.recv_from(&mut dgram) {
                Ok((len, _)) => state.on_datagram(&dgram[..len]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        match ctrl.read(&mut read_buf) {
            Ok(0) => {
                // Parent vanished; there is nobody left to report to.
                return Ok(());
            }
            Ok(k) => ctrl_buf.ingest(&read_buf[..k]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) => return Err(e),
        }
        while let Some(msg) = ctrl_buf.next_msg::<ParentToNode>()? {
            match msg {
                ParentToNode::Poll => {
                    let status = state.status();
                    ctrl.set_nonblocking(false)?;
                    write_msg(&mut ctrl, &NodeToParent::Status(status))?;
                    ctrl.set_nonblocking(true)?;
                }
                ParentToNode::Stop => {
                    ctrl.set_nonblocking(false)?;
                    write_msg(&mut ctrl, &NodeToParent::Dump(state.dump()))?;
                    return Ok(());
                }
                // Faults arrive only before Start; late ones are a
                // protocol error the node just ignores.
                ParentToNode::Crash { .. }
                | ParentToNode::External { .. }
                | ParentToNode::Start { .. } => {}
            }
        }
    }
}
