//! Property tests for the wire codec: round-trip fidelity for every
//! frame the backend can legally emit, and panic-freedom under
//! adversarial bytes — truncations, oversized length claims, wrong
//! versions, bit flips, and pure noise. A real socket hands the decoder
//! arbitrary datagrams; the decoder's contract is typed errors, never a
//! panic, never a read past the buffer.

use proptest::prelude::*;
use sfs_transport::TransportMsg;
use sfs_wire::{decode_frame, encode_frame, FrameHeader, WireCodec, WireError, MAGIC, VERSION};

fn arb_msg() -> impl Strategy<Value = TransportMsg<u64>> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(seq, logical, payload)| {
            TransportMsg::Data {
                seq,
                logical,
                payload,
            }
        }),
        any::<u64>().prop_map(|upto| TransportMsg::Ack { upto }),
        Just(TransportMsg::Ping),
        any::<u64>().prop_map(TransportMsg::Ctl),
    ]
}

fn arb_header() -> impl Strategy<Value = FrameHeader> {
    (any::<u16>(), any::<u16>(), any::<u64>(), any::<u64>()).prop_map(|(src, dst, seq, lamport)| {
        FrameHeader {
            src,
            dst,
            seq,
            lamport,
        }
    })
}

proptest! {
    /// Frames round-trip exactly: header and message survive
    /// encode/decode for every variant and every header value.
    #[test]
    fn frames_round_trip(header in arb_header(), msg in arb_msg()) {
        let frame = encode_frame(header, &msg);
        let (h, m) = decode_frame::<TransportMsg<u64>>(&frame)
            .expect("a freshly encoded frame must decode");
        prop_assert_eq!(h, header);
        prop_assert_eq!(m, msg);
        // The E12 byte counter agrees with the bytes actually produced.
        prop_assert_eq!(sfs_wire::wire_cost(&msg), frame.len() as u64);
    }

    /// Every proper prefix of a valid frame decodes to a typed error —
    /// never a panic, never an `Ok`.
    #[test]
    fn every_truncation_errors(header in arb_header(), msg in arb_msg(), cut in any::<u64>()) {
        let frame = encode_frame(header, &msg);
        let cut = (cut as usize) % frame.len();
        prop_assert!(decode_frame::<TransportMsg<u64>>(&frame[..cut]).is_err());
    }

    /// A single flipped byte never panics the decoder; flips inside the
    /// magic or version fields are always detected.
    #[test]
    fn bit_flips_never_panic(
        header in arb_header(),
        msg in arb_msg(),
        pos in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let mut frame = encode_frame(header, &msg);
        let pos = (pos as usize) % frame.len();
        frame[pos] ^= flip;
        // Decoding may legitimately succeed (a flip inside, say, the
        // lamport field yields a different valid frame) — the contract
        // under fire is "no panic, no over-read, typed error otherwise".
        let result = decode_frame::<TransportMsg<u64>>(&frame);
        if pos < 3 {
            // Magic (2 bytes) and version (1 byte) changes are always
            // caught, whatever the rest of the frame says.
            prop_assert!(matches!(
                result,
                Err(WireError::BadMagic(_)) | Err(WireError::BadVersion(_))
            ));
        }
    }

    /// Pure noise never panics; whenever it decodes, the bytes must be
    /// indistinguishable from a real frame (re-encoding reproduces them).
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        if let Ok((h, m)) = decode_frame::<TransportMsg<u64>>(&bytes) {
            prop_assert_eq!(encode_frame(h, &m), bytes);
        }
    }

    /// An adversarial length field (up to `u32::MAX`) is rejected before
    /// any allocation or read of the claimed body.
    #[test]
    fn oversized_length_claims_are_rejected(
        header in arb_header(),
        msg in arb_msg(),
        claimed in 60_001u32..=u32::MAX,
    ) {
        let mut frame = encode_frame(header, &msg);
        frame[23..27].copy_from_slice(&claimed.to_le_bytes());
        let oversized = matches!(
            decode_frame::<TransportMsg<u64>>(&frame),
            Err(WireError::OversizedLength { .. })
        );
        prop_assert!(oversized);
    }

    /// The primitive layer itself round-trips: the codec behind every
    /// message body is stable for arbitrary composite values.
    #[test]
    fn primitive_composites_round_trip(
        v in prop::collection::vec((any::<u64>(), any::<bool>()), 0..32),
        s in prop::collection::vec(any::<u8>(), 0..64),
        opt in prop_oneof![Just(None), any::<u32>().prop_map(Some)],
    ) {
        prop_assert_eq!(
            Vec::<(u64, bool)>::from_wire_bytes(&v.to_wire_bytes()).unwrap(),
            v
        );
        prop_assert_eq!(Vec::<u8>::from_wire_bytes(&s.to_wire_bytes()).unwrap(), s);
        prop_assert_eq!(
            Option::<u32>::from_wire_bytes(&opt.to_wire_bytes()).unwrap(),
            opt
        );
    }
}

/// Exhaustive (non-property) sweep: wrong version bytes 0 and 2..=255
/// are all rejected with the version error, proving the version gate
/// runs before anything else touches the payload.
#[test]
fn all_foreign_versions_are_rejected() {
    let frame = encode_frame(
        FrameHeader {
            src: 0,
            dst: 1,
            seq: 0,
            lamport: 0,
        },
        &TransportMsg::<u64>::Ping,
    );
    for v in (0..=255u8).filter(|&v| v != VERSION) {
        let mut bad = frame.clone();
        bad[2] = v;
        assert_eq!(
            decode_frame::<TransportMsg<u64>>(&bad).unwrap_err(),
            WireError::BadVersion(v)
        );
    }
    // And the magic constant is what the format doc says it is.
    assert_eq!(u16::from_le_bytes([frame[0], frame[1]]), MAGIC);
}
