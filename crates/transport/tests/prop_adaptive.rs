//! Property-based tests for the adaptive prober: under a *fair* link —
//! bounded delay, no permanent loss — it never suspects a live peer, and
//! once its gap statistics have converged it even rides out delay spikes
//! that overrun the fixed timeout it is floored at.

use proptest::prelude::*;
use sfs_asys::{
    Context, FaultyLink, PartitionSchedule, Process, ProcessId, Sim, StormSchedule, UniformLatency,
    VirtualTime,
};
use sfs_transport::{
    AdaptiveConfig, ArqConfig, ProbeConfig, Reliable, TransportMsg, NOTE_PROBE_SUSPECT,
};

#[derive(Debug, Clone, PartialEq, Eq)]
enum Msg {
    Suspect(ProcessId),
}

#[derive(Debug, Default)]
struct Idle;
impl Process<Msg> for Idle {
    fn on_start(&mut self, _: &mut Context<'_, Msg>) {}
    fn on_message(&mut self, _: &mut Context<'_, Msg>, _: ProcessId, _: Msg) {}
    fn on_external(&mut self, _: &mut Context<'_, Msg>, _: Msg) {}
}

/// Runs two adaptively-probed idle processes over `link` and returns the
/// number of suspicions raised anywhere.
fn suspicions(link: FaultyLink<UniformLatency>, seed: u64, horizon: u64) -> usize {
    let sim = Sim::<TransportMsg<Msg>>::builder(2)
        .seed(seed)
        .link(link)
        .max_time(VirtualTime::from_ticks(horizon))
        .classify(|_| true)
        .build(|_| {
            Box::new(
                Reliable::new(Idle, ArqConfig::default())
                    .suspicion(ProbeConfig::default(), Msg::Suspect)
                    .adaptive(AdaptiveConfig::default()),
            )
        });
    sim.run().notes_with_key(NOTE_PROBE_SUSPECT).count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(128)
    ))]

    /// Fair link, bounded delay: heartbeats arrive at most
    /// `interval + d_max` apart, under the fixed-timeout floor, so the
    /// adaptive prober (whose threshold never drops below that floor)
    /// must never suspect a live peer — regardless of convergence.
    #[test]
    fn bounded_delay_never_suspects_a_live_peer(
        d_max in 1u64..60,
        seed in 0u64..1_000,
    ) {
        let link = FaultyLink::new(UniformLatency::new(1, d_max));
        prop_assert_eq!(suspicions(link, seed, 2_000), 0);
    }

    /// Convergence: after a training cut of length `g` teaches the gap
    /// statistics that the peer can survive ~`g` of silence, a delay
    /// storm whose onset gap exceeds the fixed timeout (extra > 80 ⇒
    /// gap > 100) but stays inside the learned `2·gap_max` bound is
    /// ridden out without a single suspicion.
    #[test]
    fn converged_estimates_survive_supra_floor_delay_spikes(
        g in 66u64..70,
        extra_off in 0u64..13,
        d_max in 1u64..5,
        seed in 0u64..500,
    ) {
        // extra ∈ [85, 2g - 34]: above the fixed timeout's reach (the
        // onset gap is at least interval + extra + 1 - d_max > 100),
        // below the trained threshold (gap_max ≥ g - d_max + 1, so the
        // threshold is at least 2g - 8, and the onset gap is at most
        // extra + interval + 1 + d_max ≤ 2g - 8).
        let extra = 85 + extra_off.min(2 * g - 34 - 85);
        let pairs = [(ProcessId::new(1), ProcessId::new(0))];
        let t = VirtualTime::from_ticks;
        let link = FaultyLink::new(UniformLatency::new(1, d_max))
            .partitions(PartitionSchedule::new().cut_links(t(300), t(300 + g), &pairs))
            .storms(StormSchedule::new().surge_links(t(700), t(900), &pairs, extra));
        prop_assert_eq!(suspicions(link, seed, 1_400), 0);
    }
}
