//! Property-based tests for the ARQ layer: for *any* finite
//! drop/duplicate/delay pattern the transport delivers each payload
//! exactly once, in per-channel FIFO order, and the run converges.
//!
//! The pattern is a finite adversarial prefix (verdicts are consumed one
//! per send, wire-wide — data frames, acks, and retransmissions alike);
//! once exhausted, the link behaves (delivers with delay 1). This models
//! an arbitrary fault burst over a *fair* link, which is exactly the
//! assumption reliable transmission needs: a message retransmitted
//! forever is eventually delivered.

use proptest::prelude::*;
use sfs_asys::{Context, FnLink, LinkVerdict, Process, ProcessId, Sim, StopReason, TraceEventKind};
use sfs_transport::{ArqConfig, Reliable, TransportMsg};

/// One scripted verdict, compactly generated.
#[derive(Debug, Clone, Copy)]
enum Pat {
    Deliver(u64),
    Drop,
    Dup(u64, u64),
}

fn arb_pattern() -> impl Strategy<Value = Vec<Pat>> {
    let verdict = prop_oneof![
        (1u64..8).prop_map(Pat::Deliver),
        Just(Pat::Drop),
        ((1u64..8), (1u64..8)).prop_map(|(a, b)| Pat::Dup(a, b)),
    ];
    prop::collection::vec(verdict, 0..200)
}

/// Floods `count` payloads to the sink on start.
struct Flood {
    count: u32,
    target: ProcessId,
}
impl Process<u32> for Flood {
    fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
        for k in 0..self.count {
            ctx.send(self.target, k);
        }
    }
    fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
}

struct Quiet;
impl Process<u32> for Quiet {
    fn on_start(&mut self, _: &mut Context<'_, u32>) {}
    fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
}

/// Runs two flooders (p0, p1) into a sink (p2) over the scripted link and
/// returns the sink's model-level receives as (from, logical seq).
fn run(
    pattern: Vec<Pat>,
    counts: (u32, u32),
    window: usize,
    seed: u64,
) -> (Vec<(usize, u64)>, StopReason) {
    let mut pos = 0usize;
    let link = FnLink(move |_, _, _, _: &mut rand::rngs::StdRng| {
        let verdict = match pattern.get(pos) {
            Some(Pat::Deliver(d)) => LinkVerdict::Deliver(*d),
            Some(Pat::Drop) => LinkVerdict::Drop,
            Some(Pat::Dup(a, b)) => LinkVerdict::Duplicate(*a, *b),
            None => LinkVerdict::Deliver(1),
        };
        pos += 1;
        verdict
    });
    let config = ArqConfig {
        window,
        retransmit_after: 25,
    };
    let sim = Sim::<TransportMsg<u32>>::builder(3)
        .seed(seed)
        .link(link)
        .classify(|_| true)
        .build(move |pid| match pid.index() {
            0 => Box::new(Reliable::new(
                Flood {
                    count: counts.0,
                    target: ProcessId::new(2),
                },
                config,
            )) as Box<dyn Process<TransportMsg<u32>>>,
            1 => Box::new(Reliable::new(
                Flood {
                    count: counts.1,
                    target: ProcessId::new(2),
                },
                config,
            )),
            _ => Box::new(Reliable::new(Quiet, config)),
        });
    let trace = sim.run();
    let recvs = trace
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            TraceEventKind::Recv {
                by,
                from,
                msg,
                infra: false,
                ..
            } if by == ProcessId::new(2) => Some((from.index(), msg.seq())),
            _ => None,
        })
        .collect();
    (recvs, trace.stop_reason())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(128)
    ))]

    /// Exactly-once, per-channel FIFO delivery under any finite fault
    /// burst, with convergence to quiescence.
    #[test]
    fn any_fault_burst_yields_exactly_once_fifo(
        pattern in arb_pattern(),
        c0 in 0u32..25,
        c1 in 0u32..25,
        window in 1usize..40,
        seed in 0u64..1_000,
    ) {
        let (recvs, stop) = run(pattern, (c0, c1), window, seed);
        prop_assert_eq!(stop, StopReason::Quiescent);
        // Exactly once: every flooded payload is released precisely once.
        prop_assert_eq!(recvs.len() as u32, c0 + c1);
        // Per-channel FIFO: each sender's logical seqs ascend strictly.
        for sender in [0usize, 1] {
            let seqs: Vec<u64> = recvs
                .iter()
                .filter(|&&(f, _)| f == sender)
                .map(|&(_, s)| s)
                .collect();
            prop_assert_eq!(seqs.len() as u32, if sender == 0 { c0 } else { c1 });
            prop_assert!(seqs.windows(2).all(|w| w[0] < w[1]), "{:?}", seqs);
        }
    }
}
