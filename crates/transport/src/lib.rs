//! # sfs-transport — earning the reliable-FIFO channel abstraction
//!
//! The paper's §2 model *assumes* a reliable, infinite-buffer FIFO channel
//! between every ordered pair of processes, and leaves the source of
//! suspicions abstract ("e.g. due to a timeout at a lower level"). This
//! crate is the layer that **earns** both assumptions over a faulty
//! network (the [`LinkModel`](sfs_asys::LinkModel) seam in `sfs-asys`:
//! loss, duplication, partitions):
//!
//! * [`Reliable`] — a sliding-window ARQ wrapper around any
//!   [`Process<M>`]: per-channel sequence numbers, cumulative acks,
//!   retransmission on timeout, duplicate suppression, and in-order
//!   release. The wrapped process observes exactly the §2 contract —
//!   every payload delivered exactly once, per-channel FIFO — no matter
//!   what the link does (as long as it is *fair*: a message retransmitted
//!   forever is eventually delivered; a never-healing partition
//!   suspends the channel, exactly like the paper's unbounded delay).
//! * [`ProbeConfig`] + [`Reliable::suspicion`] — a heartbeat prober that
//!   turns missed-heartbeat timeouts into the `on_external` suspicions
//!   the §5 protocol otherwise only receives by script: the *endogenous*
//!   FS1 mechanism.
//!
//! ## Model-level events
//!
//! Trace consumers (the `sfs-history` projection, every property checker)
//! must see the *inner* protocol's sends and receives, not the wire
//! frames: a payload is received when the ARQ layer releases it in order,
//! which may be long after its first carrying frame arrived — or several
//! frames later, once a retransmission fills a loss gap. The wrapper
//! therefore emits [`Context::model_send`]/[`Context::model_recv`] events
//! with **logical** message ids that mirror the engine's own numbering
//! (one per inner send, in action order), while all wire frames are
//! classified as infrastructure. A loss-free transport-wrapped run
//! projects to a history isomorphic to the bare run's — pinned by the
//! `sfs-apps` HB-fingerprint equivalence test.
//!
//! # Examples
//!
//! Wrapping a trivial process and running it over a lossy link:
//!
//! ```
//! use sfs_asys::{Context, FaultyLink, Process, ProcessId, Sim, UniformLatency};
//! use sfs_transport::{ArqConfig, Reliable, TransportMsg};
//!
//! struct Echo;
//! impl Process<u32> for Echo {
//!     fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
//!         if ctx.id().index() == 0 {
//!             ctx.send(ProcessId::new(1), 7);
//!         }
//!     }
//!     fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: ProcessId, msg: u32) {
//!         if msg > 0 {
//!             ctx.send(from, msg - 1);
//!         }
//!     }
//! }
//!
//! let link = FaultyLink::new(UniformLatency::new(1, 5)).loss(0.2);
//! let sim = Sim::<TransportMsg<u32>>::builder(2)
//!     .seed(42)
//!     .link(link)
//!     .classify(|_| true) // wire frames are infrastructure
//!     .build(|_| Box::new(Reliable::new(Echo, ArqConfig::default())));
//! let trace = sim.run();
//! // Despite 20% loss, every payload ping-pongs through: 8 logical
//! // receives (7, 6, ..., 0), reconstructed by retransmission.
//! let model_recvs = trace.events().iter().filter(|e| {
//!     matches!(e.kind, sfs_asys::TraceEventKind::Recv { infra: false, .. })
//! }).count();
//! assert_eq!(model_recvs, 8);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use sfs_asys::{
    Action, Context, MsgId, Note, Process, ProcessId, ReceiveFilter, TimerId, VirtualTime,
};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// The wire alphabet of the transport: what actually crosses the faulty
/// network when the inner protocol speaks `M`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportMsg<M> {
    /// A sequenced data frame of channel `sender -> receiver`.
    Data {
        /// Per-channel sequence number (starting at 1).
        seq: u64,
        /// The sender's logical message counter at the inner send — the
        /// model-level [`MsgId`] sequence, mirroring the engine's own
        /// numbering so histories line up with bare runs.
        logical: u64,
        /// The inner payload.
        payload: M,
    },
    /// Cumulative acknowledgement: "I have contiguously received your
    /// frames up to `upto`" on the channel sender → acknowledger.
    Ack {
        /// Highest contiguously received sequence number.
        upto: u64,
    },
    /// Transport-level liveness beacon (not sequenced, not acked, not
    /// retransmitted): the raw material of endogenous suspicion.
    Ping,
    /// Environment stimulus passthrough: delivered via injection only
    /// (never sent on a channel); the wrapper unwraps it to the inner
    /// process's `on_external`.
    Ctl(M),
}

/// Why a transport configuration was rejected by the `try_new`
/// constructors. The plain `new` constructors instead clamp degenerate
/// values; validating call sites (`ClusterSpec::validate`) surface this
/// error like `LatencyError`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// An ARQ window of 0 could never transmit anything.
    ZeroWindow,
    /// A retransmit interval of 0 is a busy-loop timer.
    ZeroRetransmit,
    /// A heartbeat interval of 0 is a busy-loop broadcaster.
    ZeroInterval,
    /// A suspicion timeout of 0 suspects every peer instantly.
    ZeroTimeout,
    /// A check interval of 0 is a busy-loop scanner.
    ZeroCheck,
    /// An adaptive RTO floor of 0 permits busy-loop retransmission.
    ZeroMinRto,
    /// The adaptive RTO bounds are inverted: `max < min`.
    InvertedRtoBounds {
        /// The configured floor.
        min: u64,
        /// The configured ceiling.
        max: u64,
    },
    /// An adaptive suspicion ceiling of 0 suspects every peer instantly.
    ZeroMaxSuspicion,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::ZeroWindow => write!(f, "ARQ window must be at least 1"),
            TransportError::ZeroRetransmit => {
                write!(f, "retransmit interval must be at least 1 tick")
            }
            TransportError::ZeroInterval => {
                write!(f, "heartbeat interval must be at least 1 tick")
            }
            TransportError::ZeroTimeout => {
                write!(f, "suspicion timeout must be at least 1 tick")
            }
            TransportError::ZeroCheck => write!(f, "check interval must be at least 1 tick"),
            TransportError::ZeroMinRto => write!(f, "adaptive RTO floor must be at least 1 tick"),
            TransportError::InvertedRtoBounds { min, max } => {
                write!(f, "adaptive RTO bounds inverted: max {max} < min {min}")
            }
            TransportError::ZeroMaxSuspicion => {
                write!(f, "adaptive suspicion ceiling must be at least 1 tick")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// Sliding-window ARQ parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArqConfig {
    /// Maximum unacknowledged frames in flight per channel; further sends
    /// queue in a backlog until the window slides. Clamped to at least 1
    /// by [`Reliable::new`] — a zero window could transmit nothing, ever.
    pub window: usize,
    /// Ticks after which unacknowledged frames are retransmitted (one
    /// shared timer; every unacked frame on every channel is resent).
    /// Clamped to at least 1 by [`Reliable::new`].
    pub retransmit_after: u64,
}

impl ArqConfig {
    /// Validating constructor: rejects the degenerate values that
    /// [`Reliable::new`] would otherwise clamp silently.
    ///
    /// # Errors
    ///
    /// [`TransportError::ZeroWindow`] / [`TransportError::ZeroRetransmit`].
    pub fn try_new(window: usize, retransmit_after: u64) -> Result<Self, TransportError> {
        if window == 0 {
            return Err(TransportError::ZeroWindow);
        }
        if retransmit_after == 0 {
            return Err(TransportError::ZeroRetransmit);
        }
        Ok(ArqConfig {
            window,
            retransmit_after,
        })
    }

    /// Re-validates an already-built config (the `ClusterSpec::validate`
    /// entry point, where configs arrive via struct literals).
    pub fn validate(&self) -> Result<(), TransportError> {
        Self::try_new(self.window, self.retransmit_after).map(|_| ())
    }
}

impl Default for ArqConfig {
    fn default() -> Self {
        ArqConfig {
            window: 32,
            retransmit_after: 40,
        }
    }
}

/// Heartbeat-probe parameters for endogenous failure suspicion: the
/// transport-level mirror of the protocol's own FS1 mechanism, living
/// *below* the model like the paper's "timeout at a lower level".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeConfig {
    /// Ticks between [`TransportMsg::Ping`] broadcasts.
    pub interval: u64,
    /// Silence (in ticks) after which a peer is suspected.
    pub timeout: u64,
    /// Ticks between timeout scans.
    pub check_every: u64,
}

impl ProbeConfig {
    /// Validating constructor: rejects zero intervals and timeouts.
    ///
    /// # Errors
    ///
    /// [`TransportError::ZeroInterval`] / [`TransportError::ZeroTimeout`]
    /// / [`TransportError::ZeroCheck`].
    pub fn try_new(interval: u64, timeout: u64, check_every: u64) -> Result<Self, TransportError> {
        if interval == 0 {
            return Err(TransportError::ZeroInterval);
        }
        if timeout == 0 {
            return Err(TransportError::ZeroTimeout);
        }
        if check_every == 0 {
            return Err(TransportError::ZeroCheck);
        }
        Ok(ProbeConfig {
            interval,
            timeout,
            check_every,
        })
    }

    /// Re-validates an already-built config.
    pub fn validate(&self) -> Result<(), TransportError> {
        Self::try_new(self.interval, self.timeout, self.check_every).map(|_| ())
    }
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            interval: 20,
            timeout: 100,
            check_every: 25,
        }
    }
}

/// Adaptive-timeout parameters: Jacobson-style RTT estimation drives
/// per-channel retransmit deadlines (with exponential backoff and seeded
/// jitter), and per-peer heartbeat inter-arrival statistics drive the
/// suspicion threshold.
///
/// The learned suspicion threshold is **floored at the fixed
/// [`ProbeConfig::timeout`]** — adaptation only ever *extends* patience,
/// so an adaptive run never suspects earlier than the fixed config it
/// replaces — and capped at [`AdaptiveConfig::max_suspicion`] so a
/// genuinely dead peer is still detected in bounded time.
///
/// Jitter is drawn from the transport's own per-process rng (seeded from
/// the process id), never from the run's shared rng, so enabling
/// adaptation leaves the simulator's random stream — and hence every
/// loss-free run's HB fingerprint — untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveConfig {
    /// Floor of the computed RTO, in ticks.
    pub min_rto: u64,
    /// Ceiling of the computed (and backed-off) RTO, in ticks.
    pub max_rto: u64,
    /// Maximum seeded jitter added to each deadline, in ticks.
    pub jitter: u64,
    /// Ceiling of the learned suspicion threshold, in ticks.
    pub max_suspicion: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            min_rto: 20,
            max_rto: 2_000,
            jitter: 5,
            max_suspicion: 1_000,
        }
    }
}

impl AdaptiveConfig {
    /// Validating constructor.
    ///
    /// # Errors
    ///
    /// [`TransportError::ZeroMinRto`] /
    /// [`TransportError::InvertedRtoBounds`] /
    /// [`TransportError::ZeroMaxSuspicion`].
    pub fn try_new(
        min_rto: u64,
        max_rto: u64,
        jitter: u64,
        max_suspicion: u64,
    ) -> Result<Self, TransportError> {
        if min_rto == 0 {
            return Err(TransportError::ZeroMinRto);
        }
        if max_rto < min_rto {
            return Err(TransportError::InvertedRtoBounds {
                min: min_rto,
                max: max_rto,
            });
        }
        if max_suspicion == 0 {
            return Err(TransportError::ZeroMaxSuspicion);
        }
        Ok(AdaptiveConfig {
            min_rto,
            max_rto,
            jitter,
            max_suspicion,
        })
    }

    /// Re-validates an already-built config.
    pub fn validate(&self) -> Result<(), TransportError> {
        Self::try_new(self.min_rto, self.max_rto, self.jitter, self.max_suspicion).map(|_| ())
    }
}

/// Trace-note key under which the prober annotates each suspicion it
/// raises: `probe-suspect = <peer>`. Notes are invisible to the history
/// projection, so counting them never perturbs HB fingerprints.
pub const NOTE_PROBE_SUSPECT: &str = "probe-suspect";

/// Trace-note key under which the ARQ layer annotates each retransmission
/// burst: `retx = <frames resent>`.
pub const NOTE_RETX: &str = "retx";

/// Trace-note key under which the adaptive ARQ annotates its per-channel
/// retransmission timeout each time backoff re-arms it: `rto = <ticks>`.
/// The `sfs-obs` registry folds these into an RTO-evolution histogram;
/// like all notes, they never perturb HB fingerprints.
pub const NOTE_RTO: &str = "rto";

/// Outbound ARQ state of one channel `self -> peer`.
#[derive(Debug)]
struct OutChannel<M> {
    /// Next sequence number to assign (frames are numbered from 1).
    next_seq: u64,
    /// Sent frames not yet cumulatively acknowledged, ascending by seq.
    inflight: VecDeque<(u64, u64, M)>,
    /// Frames awaiting a window slot, ascending by seq (already
    /// numbered: ordering is fixed at the inner send).
    backlog: VecDeque<(u64, u64, M)>,
    /// Adaptive mode: smoothed round-trip time over this channel, in
    /// ticks (`None` until the first sample).
    srtt: Option<u64>,
    /// Adaptive mode: smoothed RTT deviation.
    rttvar: u64,
    /// Adaptive mode: consecutive retransmissions without progress
    /// (exponent of the backoff multiplier).
    backoff: u32,
    /// Adaptive mode: this channel's retransmit deadline, if armed.
    deadline: Option<VirtualTime>,
    /// Adaptive mode: the frame currently being timed for an RTT sample,
    /// as `(seq, sent_at)`. Cleared on retransmission (Karn's rule: an
    /// ack for a retransmitted frame is ambiguous).
    pending_sample: Option<(u64, VirtualTime)>,
}

impl<M> Default for OutChannel<M> {
    fn default() -> Self {
        OutChannel {
            next_seq: 1,
            inflight: VecDeque::new(),
            backlog: VecDeque::new(),
            srtt: None,
            rttvar: 0,
            backoff: 0,
            deadline: None,
            pending_sample: None,
        }
    }
}

/// Adaptive mode: Jacobson-style statistics over a peer's heartbeat
/// inter-arrival gaps, feeding the learned suspicion threshold.
#[derive(Debug, Clone, Copy, Default)]
struct GapStats {
    /// Smoothed inter-arrival gap (`None` until the first gap).
    srtt: Option<u64>,
    /// Smoothed gap deviation.
    var: u64,
    /// Largest gap ever survived — the peer proved it can fall this
    /// silent and still be alive.
    max: u64,
}

/// Inbound ARQ state of one channel `peer -> self`.
#[derive(Debug)]
struct InChannel<M> {
    /// Lowest sequence number not yet contiguously received.
    next_seq: u64,
    /// Frames received ahead of a gap, by seq.
    ooo: BTreeMap<u64, (u64, M)>,
    /// In-order payloads not yet released to the inner process (held by
    /// its receive filter — the sFS2d gate, honoured per channel exactly
    /// like the engine's own parking).
    ready: VecDeque<(u64, M)>,
}

impl<M> Default for InChannel<M> {
    fn default() -> Self {
        InChannel {
            next_seq: 1,
            ooo: BTreeMap::new(),
            ready: VecDeque::new(),
        }
    }
}

type Classifier<M> = Box<dyn Fn(&M) -> bool + Send>;
type SuspicionSource<M> = Box<dyn Fn(ProcessId) -> M + Send>;

/// The reliable-FIFO transport wrapper: runs any inner [`Process<M>`]
/// over the wire alphabet [`TransportMsg<M>`], re-exporting the §2
/// channel contract the inner process assumes. See the crate docs.
pub struct Reliable<P, M> {
    inner: P,
    config: ArqConfig,
    probe: Option<ProbeConfig>,
    /// Adaptive-timeout mode, if enabled. `None` leaves every fixed-mode
    /// code path untouched.
    adaptive: Option<AdaptiveConfig>,
    /// Adaptive mode: the transport's own jitter rng, seeded from the
    /// process id — never the run's shared rng.
    jitter_rng: Option<rand::rngs::StdRng>,
    /// Adaptive mode: per-peer heartbeat gap statistics.
    gap_stats: Vec<GapStats>,
    /// Adaptive mode: the deadline the shared retx timer is currently
    /// set for (earliest across channels).
    retx_deadline: Option<VirtualTime>,
    /// `true` = the inner payload is infrastructure (no model events);
    /// mirrors `SimBuilder::classify` one layer up.
    classify: Option<Classifier<M>>,
    /// Builds the `on_external` suspicion stimulus for a silent peer.
    suspect: Option<SuspicionSource<M>>,
    out: Vec<OutChannel<M>>,
    inp: Vec<InChannel<M>>,
    /// The model-level send counter, mirroring the engine's per-process
    /// `msg_seq`: incremented once per inner send action, in order.
    logical_seq: u64,
    /// The inner process's receive filter, applied at *release* time.
    inner_filter: Option<ReceiveFilter<M>>,
    retx_timer: Option<TimerId>,
    hb_timer: Option<TimerId>,
    check_timer: Option<TimerId>,
    last_heard: Vec<VirtualTime>,
    suspected: Vec<bool>,
    /// Peers the inner protocol has declared failed (`failed_i(j)`). By
    /// sFS2a a detected process really does crash, so the transport
    /// **abandons** their channels: pending frames are discarded, later
    /// sends go out untracked (fire-and-forget), retransmission and
    /// probing stop. This is the fail-stop knowledge that lets a
    /// reliable transport terminate: without it, frames to a dead peer
    /// would be retransmitted forever.
    given_up: Vec<bool>,
}

impl<P: fmt::Debug, M> fmt::Debug for Reliable<P, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Reliable")
            .field("inner", &self.inner)
            .field("config", &self.config)
            .field("logical_seq", &self.logical_seq)
            .finish_non_exhaustive()
    }
}

impl<P, M> Reliable<P, M> {
    /// Wraps `inner` with the given ARQ parameters, no probe, and no
    /// payload classification (every inner message is model-level).
    /// Degenerate parameters are clamped into the workable range: a
    /// window of 0 (which could never transmit anything) becomes 1, and
    /// a retransmit interval of 0 (a busy-loop timer) becomes 1.
    pub fn new(inner: P, config: ArqConfig) -> Self {
        let config = ArqConfig {
            window: config.window.max(1),
            retransmit_after: config.retransmit_after.max(1),
        };
        Reliable {
            inner,
            config,
            probe: None,
            adaptive: None,
            jitter_rng: None,
            gap_stats: Vec::new(),
            retx_deadline: None,
            classify: None,
            suspect: None,
            out: Vec::new(),
            inp: Vec::new(),
            logical_seq: 0,
            inner_filter: None,
            retx_timer: None,
            hb_timer: None,
            check_timer: None,
            last_heard: Vec::new(),
            suspected: Vec::new(),
            given_up: Vec::new(),
        }
    }

    /// Enables adaptive timeouts: RTT-driven per-channel retransmit
    /// deadlines (exponential backoff, Karn's rule, seeded jitter) and a
    /// learned per-peer suspicion threshold floored at the fixed
    /// [`ProbeConfig::timeout`]. See [`AdaptiveConfig`].
    pub fn adaptive(mut self, config: AdaptiveConfig) -> Self {
        self.adaptive = Some(config);
        self
    }

    /// Installs an infrastructure classifier for *inner* payloads:
    /// `true` marks a payload as protocol-internal, excluded from
    /// model-level trace events (the transport mirror of
    /// `SimBuilder::classify`).
    pub fn classify(mut self, f: impl Fn(&M) -> bool + Send + 'static) -> Self {
        self.classify = Some(Box::new(f));
        self
    }

    /// Enables heartbeat probing with `probe`, delivering
    /// `make_suspicion(peer)` to the inner process's `on_external` when a
    /// peer falls silent past the timeout — the endogenous replacement
    /// for scripted `Injection::External` suspicions.
    pub fn suspicion(
        mut self,
        probe: ProbeConfig,
        make_suspicion: impl Fn(ProcessId) -> M + Send + 'static,
    ) -> Self {
        self.probe = Some(probe);
        self.suspect = Some(Box::new(make_suspicion));
        self
    }

    /// Read access to the wrapped inner process.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    fn is_infra(&self, payload: &M) -> bool {
        self.classify.as_ref().is_some_and(|f| f(payload))
    }
}

impl<P, M> Reliable<P, M>
where
    P: Process<M>,
    M: Clone + 'static,
{
    fn ensure_init(&mut self, n: usize, now: VirtualTime, me: ProcessId) {
        if self.out.len() == n {
            return;
        }
        self.out = (0..n).map(|_| OutChannel::default()).collect();
        self.inp = (0..n).map(|_| InChannel::default()).collect();
        self.last_heard = vec![now; n];
        self.suspected = vec![false; n];
        self.given_up = vec![false; n];
        self.gap_stats = vec![GapStats::default(); n];
        if self.adaptive.is_some() && self.jitter_rng.is_none() {
            // Own rng, own seed: jitter must not perturb the run's
            // shared random stream (HB-fingerprint identity).
            use rand::SeedableRng;
            self.jitter_rng = Some(rand::rngs::StdRng::seed_from_u64(
                0xADA7_71E0_u64 ^ (me.index() as u64),
            ));
        }
    }

    /// Runs one inner callback against a derived context and translates
    /// the resulting actions into the wire alphabet.
    fn dispatch_inner(
        &mut self,
        ctx: &mut Context<'_, TransportMsg<M>>,
        f: impl FnOnce(&mut P, &mut Context<'_, M>),
    ) {
        let actions = {
            let mut inner_ctx = ctx.derive::<M>();
            f(&mut self.inner, &mut inner_ctx);
            inner_ctx.take_actions()
        };
        self.translate(ctx, actions);
    }

    /// Translates inner actions: sends go through the ARQ layer (with a
    /// model-level send event for non-infrastructure payloads); filter
    /// changes are absorbed (the gate lives here, not at the engine);
    /// everything else passes through verbatim.
    fn translate(&mut self, ctx: &mut Context<'_, TransportMsg<M>>, actions: Vec<Action<M>>) {
        for action in actions {
            match action {
                Action::Send { to, msg } => {
                    let logical = self.logical_seq;
                    self.logical_seq += 1;
                    if !self.is_infra(&msg) {
                        ctx.model_send(to, MsgId::new(ctx.id(), logical));
                    }
                    let adaptive = self.adaptive.is_some();
                    let now = ctx.now();
                    let ch = &mut self.out[to.index()];
                    let seq = ch.next_seq;
                    ch.next_seq += 1;
                    if self.given_up[to.index()] {
                        // Fire-and-forget to a detected-failed peer: the
                        // send still happens (the inner protocol asked for
                        // it), but reliability to a crashed process is
                        // vacuous, so nothing is tracked or retransmitted.
                        ctx.send(
                            to,
                            TransportMsg::Data {
                                seq,
                                logical,
                                payload: msg,
                            },
                        );
                    } else if ch.inflight.len() < self.config.window {
                        ch.inflight.push_back((seq, logical, msg.clone()));
                        if adaptive && ch.pending_sample.is_none() {
                            ch.pending_sample = Some((seq, now));
                        }
                        ctx.send(
                            to,
                            TransportMsg::Data {
                                seq,
                                logical,
                                payload: msg,
                            },
                        );
                        self.arm_retx_for(ctx, to.index());
                    } else {
                        ch.backlog.push_back((seq, logical, msg));
                        self.arm_retx_for(ctx, to.index());
                    }
                }
                Action::DeclareFailed { of } => {
                    // failed_self(of): by sFS2a the peer really does
                    // crash, so abandon its channel — discard pending
                    // frames and stop retransmitting/probing it.
                    self.given_up[of.index()] = true;
                    self.suspected[of.index()] = true;
                    self.out[of.index()].inflight.clear();
                    self.out[of.index()].backlog.clear();
                    self.maybe_cancel_retx(ctx);
                    ctx.push_action(Action::DeclareFailed { of });
                }
                Action::SetReceiveFilter(filter) => {
                    self.inner_filter = filter;
                    // The gate may have opened: release what it now admits.
                    self.pump(ctx);
                }
                other @ (Action::SetTimer { .. }
                | Action::CancelTimer { .. }
                | Action::CrashSelf
                | Action::Annotate(_)
                | Action::ModelSend { .. }
                | Action::ModelRecv { .. }) => {
                    ctx.push_action(retype(other));
                }
            }
        }
    }

    fn arm_retx(&mut self, ctx: &mut Context<'_, TransportMsg<M>>) {
        if self.retx_timer.is_none() {
            self.retx_timer = Some(ctx.set_timer(self.config.retransmit_after));
        }
    }

    /// Arms retransmission for `peer`'s channel: the fixed-mode shared
    /// timer, or (adaptive mode) the channel's own RTO deadline folded
    /// into the shared timer's earliest-deadline schedule.
    fn arm_retx_for(&mut self, ctx: &mut Context<'_, TransportMsg<M>>, peer: usize) {
        if self.adaptive.is_some() {
            if self.out[peer].deadline.is_none() {
                let rto = self.channel_rto(peer);
                self.out[peer].deadline = Some(ctx.now().saturating_add(rto));
            }
            self.rearm_retx_timer(ctx);
        } else {
            self.arm_retx(ctx);
        }
    }

    /// Adaptive mode: this channel's current retransmission timeout —
    /// Jacobson `srtt + 4·rttvar` clamped into `[min_rto, max_rto]`,
    /// doubled per unproductive retransmission (capped at `max_rto`),
    /// plus seeded jitter — the result never exceeds `max_rto`, even
    /// for ceilings near `u64::MAX`. Before the first RTT sample, the
    /// fixed `retransmit_after` seeds the estimate.
    fn channel_rto(&mut self, peer: usize) -> u64 {
        use rand::Rng;
        let Some(acfg) = self.adaptive else {
            return self.config.retransmit_after;
        };
        let ch = &self.out[peer];
        let base = match ch.srtt {
            Some(srtt) => srtt.saturating_add(ch.rttvar.max(1).saturating_mul(4)),
            None => self.config.retransmit_after,
        };
        let backed = base
            .clamp(acfg.min_rto, acfg.max_rto)
            .saturating_mul(1u64 << ch.backoff.min(20))
            .min(acfg.max_rto);
        let jitter = match &mut self.jitter_rng {
            Some(rng) if acfg.jitter > 0 => rng.gen_range(0..=acfg.jitter),
            _ => 0,
        };
        // Clamp at the source: jitter must not push the RTO past
        // `max_rto` (the configured ceiling is a promise to the timer
        // wheel), and near-`u64::MAX` configurations must not overflow.
        backed.saturating_add(jitter).min(acfg.max_rto)
    }

    /// Adaptive mode: points the shared retx timer at the earliest
    /// per-channel deadline (cancelling and re-setting only when the
    /// earliest actually moved).
    fn rearm_retx_timer(&mut self, ctx: &mut Context<'_, TransportMsg<M>>) {
        let earliest = self.out.iter().filter_map(|ch| ch.deadline).min();
        if earliest == self.retx_deadline && (earliest.is_none() || self.retx_timer.is_some()) {
            return;
        }
        if let Some(t) = self.retx_timer.take() {
            ctx.cancel_timer(t);
        }
        self.retx_deadline = earliest;
        if let Some(deadline) = earliest {
            let delay = deadline.since(ctx.now()).max(1);
            self.retx_timer = Some(ctx.set_timer(delay));
        }
    }

    /// Cancels the retransmit timer once nothing remains unacknowledged.
    fn maybe_cancel_retx(&mut self, ctx: &mut Context<'_, TransportMsg<M>>) {
        if self.adaptive.is_some() {
            for ch in self.out.iter_mut() {
                if ch.inflight.is_empty() && ch.backlog.is_empty() {
                    ch.deadline = None;
                    ch.pending_sample = None;
                }
            }
            self.rearm_retx_timer(ctx);
        } else if !self.has_unacked() {
            if let Some(t) = self.retx_timer.take() {
                ctx.cancel_timer(t);
            }
        }
    }

    /// Whether any channel still has unacknowledged or backlogged frames.
    fn has_unacked(&self) -> bool {
        self.out
            .iter()
            .any(|ch| !ch.inflight.is_empty() || !ch.backlog.is_empty())
    }

    /// Releases in-order payloads to the inner process, per channel in
    /// FIFO order, honouring the inner receive filter at the head (a
    /// refused head blocks its own channel only, like engine parking).
    fn pump(&mut self, ctx: &mut Context<'_, TransportMsg<M>>) {
        for s in 0..self.inp.len() {
            loop {
                let admit = match self.inp[s].ready.front() {
                    None => false,
                    Some((_, payload)) => self
                        .inner_filter
                        .as_ref()
                        .is_none_or(|f| f.accepts(payload)),
                };
                if !admit {
                    break;
                }
                let (logical, payload) = self.inp[s].ready.pop_front().expect("head admitted");
                let from = ProcessId::new(s);
                if !self.is_infra(&payload) {
                    ctx.model_recv(from, MsgId::new(from, logical));
                }
                self.dispatch_inner(ctx, |p, c| p.on_message(c, from, payload));
            }
        }
    }

    fn handle_data(
        &mut self,
        ctx: &mut Context<'_, TransportMsg<M>>,
        from: ProcessId,
        seq: u64,
        logical: u64,
        payload: M,
    ) {
        let ch = &mut self.inp[from.index()];
        if seq >= ch.next_seq {
            // New or ahead-of-gap frame; duplicates of buffered frames
            // are absorbed by the map insert.
            ch.ooo.entry(seq).or_insert((logical, payload));
            while let Some(entry) = ch.ooo.remove(&ch.next_seq) {
                ch.ready.push_back(entry);
                ch.next_seq += 1;
            }
        }
        // Cumulative ack — also re-sent for stale duplicates, so a lost
        // ack is recovered by the very retransmission it failed to stop.
        let upto = self.inp[from.index()].next_seq - 1;
        ctx.send(from, TransportMsg::Ack { upto });
        self.pump(ctx);
    }

    fn handle_ack(&mut self, ctx: &mut Context<'_, TransportMsg<M>>, from: ProcessId, upto: u64) {
        if self.given_up[from.index()] {
            return;
        }
        let adaptive = self.adaptive.is_some();
        let now = ctx.now();
        let window = self.config.window;
        let ch = &mut self.out[from.index()];
        if adaptive {
            // RTT sample, if this ack covers the timed frame. Karn's
            // rule holds by construction: pending_sample is cleared on
            // retransmission, so only a first-transmission ack samples.
            if let Some((seq, sent_at)) = ch.pending_sample {
                if seq <= upto {
                    let sample = now.since(sent_at).max(1);
                    match ch.srtt {
                        None => {
                            ch.srtt = Some(sample);
                            ch.rttvar = (sample / 2).max(1);
                        }
                        Some(srtt) => {
                            let delta = srtt.abs_diff(sample);
                            ch.rttvar = (3 * ch.rttvar + delta) / 4;
                            ch.srtt = Some((7 * srtt + sample) / 8);
                        }
                    }
                    ch.pending_sample = None;
                }
            }
        }
        let before = ch.inflight.len();
        while ch.inflight.front().is_some_and(|&(seq, _, _)| seq <= upto) {
            ch.inflight.pop_front();
        }
        if adaptive && ch.inflight.len() < before {
            // The window slid — progress, so the backoff resets.
            ch.backoff = 0;
        }
        // The window slid: promote backlogged frames.
        while ch.inflight.len() < window {
            let Some((seq, logical, payload)) = ch.backlog.pop_front() else {
                break;
            };
            ch.inflight.push_back((seq, logical, payload.clone()));
            if adaptive && ch.pending_sample.is_none() {
                ch.pending_sample = Some((seq, now));
            }
            ctx.send(
                from,
                TransportMsg::Data {
                    seq,
                    logical,
                    payload,
                },
            );
        }
        if adaptive {
            let empty = {
                let ch = &self.out[from.index()];
                ch.inflight.is_empty() && ch.backlog.is_empty()
            };
            self.out[from.index()].deadline = if empty {
                None
            } else {
                // Progress restarts the RTO from now (standard RFC 6298
                // timer management).
                let rto = self.channel_rto(from.index());
                Some(now.saturating_add(rto))
            };
            self.rearm_retx_timer(ctx);
        } else {
            self.maybe_cancel_retx(ctx);
        }
    }

    /// Retransmits every unacknowledged in-flight frame on every channel
    /// (the fixed-mode shared-timer path), annotating the burst size.
    fn retransmit_all(&mut self, ctx: &mut Context<'_, TransportMsg<M>>) {
        let mut count = 0u64;
        for (to, ch) in self.out.iter().enumerate() {
            for &(seq, logical, ref payload) in &ch.inflight {
                ctx.send(
                    ProcessId::new(to),
                    TransportMsg::Data {
                        seq,
                        logical,
                        payload: payload.clone(),
                    },
                );
                count += 1;
            }
        }
        if count > 0 {
            ctx.annotate(Note::key_val(NOTE_RETX, count));
        }
    }

    /// Adaptive mode: retransmits one channel's in-flight frames,
    /// annotating the burst size. Returns the number of frames resent.
    fn retransmit_channel(&mut self, ctx: &mut Context<'_, TransportMsg<M>>, peer: usize) -> u64 {
        let mut count = 0u64;
        for &(seq, logical, ref payload) in &self.out[peer].inflight {
            ctx.send(
                ProcessId::new(peer),
                TransportMsg::Data {
                    seq,
                    logical,
                    payload: payload.clone(),
                },
            );
            count += 1;
        }
        if count > 0 {
            ctx.annotate(Note::key_val(NOTE_RETX, count));
        }
        count
    }

    /// The silence (in ticks) after which peer `j` is suspected: the
    /// fixed `probe.timeout`, or — in adaptive mode, once gap statistics
    /// exist — the learned `gap_srtt + 4·gap_var + interval`, raised to
    /// twice the largest gap the peer ever survived, clamped into
    /// `[probe.timeout, max_suspicion]`. The floor means adaptation only
    /// ever *extends* patience; the ceiling bounds detection latency for
    /// a genuinely dead peer.
    fn suspicion_threshold(&self, j: usize, probe: ProbeConfig) -> u64 {
        match self.adaptive {
            None => probe.timeout,
            Some(acfg) => {
                let gs = self.gap_stats[j];
                let learned = match gs.srtt {
                    None => probe.timeout,
                    Some(srtt) => srtt
                        .saturating_add(gs.var.max(1).saturating_mul(4))
                        .saturating_add(probe.interval)
                        .max(gs.max.saturating_mul(2)),
                };
                learned.clamp(probe.timeout, acfg.max_suspicion)
            }
        }
    }

    fn run_probe_checks(&mut self, ctx: &mut Context<'_, TransportMsg<M>>) {
        let Some(probe) = self.probe else { return };
        let me = ctx.id();
        let now = ctx.now();
        for j in 0..self.last_heard.len() {
            let peer = ProcessId::new(j);
            if peer == me || self.suspected[j] || self.given_up[j] {
                continue;
            }
            if now.since(self.last_heard[j]) > self.suspicion_threshold(j, probe) {
                self.suspected[j] = true;
                ctx.annotate(Note::key_val(NOTE_PROBE_SUSPECT, peer));
                if let Some(make) = &self.suspect {
                    let stimulus = make(peer);
                    self.dispatch_inner(ctx, |p, c| p.on_external(c, stimulus));
                }
            }
        }
    }
}

/// Re-types a payload-free `Action<M>` into `Action<TransportMsg<M>>`.
/// `Send`, `SetReceiveFilter`, and `DeclareFailed` never reach here:
/// the translator handles each in its own arm (the first two carry `M`
/// payloads; the third triggers channel abandonment).
fn retype<M>(action: Action<M>) -> Action<TransportMsg<M>> {
    match action {
        Action::SetTimer { id, delay } => Action::SetTimer { id, delay },
        Action::CancelTimer { id } => Action::CancelTimer { id },
        Action::CrashSelf => Action::CrashSelf,
        Action::Annotate(note) => Action::Annotate(note),
        Action::ModelSend { to, msg } => Action::ModelSend { to, msg },
        Action::ModelRecv { from, msg } => Action::ModelRecv { from, msg },
        Action::Send { .. } | Action::SetReceiveFilter(_) | Action::DeclareFailed { .. } => {
            unreachable!("handled by the translator's dedicated arms")
        }
    }
}

impl<P, M> Process<TransportMsg<M>> for Reliable<P, M>
where
    P: Process<M>,
    M: Clone + fmt::Debug + 'static,
{
    fn on_start(&mut self, ctx: &mut Context<'_, TransportMsg<M>>) {
        self.ensure_init(ctx.n(), ctx.now(), ctx.id());
        if let Some(probe) = self.probe {
            ctx.broadcast(TransportMsg::Ping, false);
            self.hb_timer = Some(ctx.set_timer(probe.interval));
            self.check_timer = Some(ctx.set_timer(probe.check_every));
        }
        self.dispatch_inner(ctx, |p, c| p.on_start(c));
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, TransportMsg<M>>,
        from: ProcessId,
        msg: TransportMsg<M>,
    ) {
        self.ensure_init(ctx.n(), ctx.now(), ctx.id());
        if self.adaptive.is_some() {
            // Learn the peer's inter-arrival gap distribution *before*
            // refreshing last_heard — the gap just closed is the sample.
            let gap = ctx.now().since(self.last_heard[from.index()]);
            if gap > 0 {
                let gs = &mut self.gap_stats[from.index()];
                match gs.srtt {
                    None => {
                        gs.srtt = Some(gap);
                        gs.var = (gap / 2).max(1);
                    }
                    Some(srtt) => {
                        let delta = srtt.abs_diff(gap);
                        gs.var = (3 * gs.var + delta) / 4;
                        gs.srtt = Some((7 * srtt + gap) / 8);
                    }
                }
                gs.max = gs.max.max(gap);
            }
        }
        self.last_heard[from.index()] = ctx.now();
        match msg {
            TransportMsg::Data {
                seq,
                logical,
                payload,
            } => self.handle_data(ctx, from, seq, logical, payload),
            TransportMsg::Ack { upto } => self.handle_ack(ctx, from, upto),
            TransportMsg::Ping => {}
            TransportMsg::Ctl(_) => {
                // Control stimuli arrive via injection, never on a channel.
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, TransportMsg<M>>, timer: TimerId) {
        if Some(timer) == self.retx_timer {
            self.retx_timer = None;
            if self.adaptive.is_some() {
                self.retx_deadline = None;
                let now = ctx.now();
                for peer in 0..self.out.len() {
                    if self.out[peer].deadline.is_none_or(|d| d > now) {
                        continue;
                    }
                    if self.retransmit_channel(ctx, peer) > 0 {
                        let ch = &mut self.out[peer];
                        ch.backoff = ch.backoff.saturating_add(1);
                        // Karn: a retransmitted frame's ack is ambiguous.
                        ch.pending_sample = None;
                        let rto = self.channel_rto(peer);
                        ctx.annotate(Note::key_val(NOTE_RTO, rto));
                        self.out[peer].deadline = Some(now.saturating_add(rto));
                    } else {
                        self.out[peer].deadline = None;
                    }
                }
                self.rearm_retx_timer(ctx);
            } else if self.has_unacked() {
                self.retransmit_all(ctx);
                self.arm_retx(ctx);
            }
        } else if Some(timer) == self.hb_timer {
            ctx.broadcast(TransportMsg::Ping, false);
            if let Some(probe) = self.probe {
                self.hb_timer = Some(ctx.set_timer(probe.interval));
            }
        } else if Some(timer) == self.check_timer {
            self.run_probe_checks(ctx);
            if let Some(probe) = self.probe {
                self.check_timer = Some(ctx.set_timer(probe.check_every));
            }
        } else {
            self.dispatch_inner(ctx, |p, c| p.on_timer(c, timer));
        }
    }

    fn on_external(&mut self, ctx: &mut Context<'_, TransportMsg<M>>, payload: TransportMsg<M>) {
        self.ensure_init(ctx.n(), ctx.now(), ctx.id());
        match payload {
            TransportMsg::Ctl(m) | TransportMsg::Data { payload: m, .. } => {
                self.dispatch_inner(ctx, |p, c| p.on_external(c, m));
            }
            TransportMsg::Ack { .. } | TransportMsg::Ping => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_asys::{
        FaultyLink, FixedLatency, FnLink, LinkVerdict, PartitionSchedule, Sim, StopReason,
        TraceEventKind, UniformLatency,
    };

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// p0 floods `count` numbered payloads to p1 on start.
    struct Flood {
        count: u32,
    }
    impl Process<u32> for Flood {
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            for k in 0..self.count {
                ctx.send(p(1), k);
            }
        }
        fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
    }

    struct Quiet;
    impl Process<u32> for Quiet {
        fn on_start(&mut self, _: &mut Context<'_, u32>) {}
        fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
    }

    /// The logical receives at `by`, as (from, seq) pairs in trace order.
    fn model_recvs(trace: &sfs_asys::Trace, by: ProcessId) -> Vec<(ProcessId, u64)> {
        trace
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::Recv {
                    by: b,
                    from,
                    msg,
                    infra: false,
                    ..
                } if b == by => Some((from, msg.seq())),
                _ => None,
            })
            .collect()
    }

    fn flood_sim(
        count: u32,
        link: impl sfs_asys::LinkModel + 'static,
        seed: u64,
    ) -> Sim<TransportMsg<u32>> {
        Sim::<TransportMsg<u32>>::builder(2)
            .seed(seed)
            .link(link)
            .classify(|_| true)
            .build(move |pid| {
                if pid.index() == 0 {
                    Box::new(Reliable::new(Flood { count }, ArqConfig::default()))
                } else {
                    Box::new(Reliable::new(Quiet, ArqConfig::default()))
                }
            })
    }

    #[test]
    fn loss_free_link_delivers_in_order_and_quiesces() {
        let trace = flood_sim(20, FixedLatency(1), 0).run();
        assert_eq!(trace.stop_reason(), StopReason::Quiescent);
        let recvs = model_recvs(&trace, p(1));
        assert_eq!(recvs.len(), 20);
        assert!(recvs.windows(2).all(|w| w[0].1 < w[1].1), "{recvs:?}");
    }

    #[test]
    fn heavy_loss_is_repaired_by_retransmission() {
        for seed in 0..10 {
            let link = FaultyLink::new(UniformLatency::new(1, 8)).loss(0.4);
            let trace = flood_sim(25, link, seed).run();
            let recvs = model_recvs(&trace, p(1));
            assert_eq!(recvs.len(), 25, "seed {seed}: lost payloads");
            assert!(
                recvs.windows(2).all(|w| w[0].1 < w[1].1),
                "seed {seed}: out of order: {recvs:?}"
            );
            assert!(
                trace.stats().messages_dropped > 0,
                "seed {seed}: the link was supposed to be lossy"
            );
        }
    }

    #[test]
    fn duplication_is_suppressed() {
        for seed in 0..10 {
            let link = FaultyLink::new(UniformLatency::new(1, 8)).duplicate(0.5);
            let trace = flood_sim(25, link, seed).run();
            let recvs = model_recvs(&trace, p(1));
            assert_eq!(recvs.len(), 25, "seed {seed}: dup leaked or lost");
        }
    }

    #[test]
    fn healed_partition_suspends_then_releases_the_channel() {
        // The link is cut for [0, 200); the flood happens at time 0. All
        // payloads must arrive after the heal, in order.
        let link = FaultyLink::new(FixedLatency(1)).partitions(PartitionSchedule::new().split(
            VirtualTime::ZERO,
            VirtualTime::from_ticks(200),
            &[p(0)],
        ));
        let trace = flood_sim(10, link, 3).run();
        let recvs = model_recvs(&trace, p(1));
        assert_eq!(recvs.len(), 10, "{}", trace.to_pretty_string());
        let first_recv_at = trace
            .events()
            .iter()
            .find(|e| matches!(e.kind, TraceEventKind::Recv { infra: false, .. }))
            .expect("a model recv")
            .time;
        assert!(
            first_recv_at >= VirtualTime::from_ticks(200),
            "delivered across the cut at {first_recv_at}"
        );
    }

    #[test]
    fn never_healing_partition_never_delivers() {
        let link = FaultyLink::new(FixedLatency(1)).partitions(PartitionSchedule::new().split(
            VirtualTime::ZERO,
            VirtualTime::MAX,
            &[p(0)],
        ));
        let sim = flood_sim(5, link, 1);
        let trace = sim.run();
        // The run only ends at the horizon (retransmission never stops).
        assert_eq!(trace.stop_reason(), StopReason::MaxTime);
        assert!(model_recvs(&trace, p(1)).is_empty());
    }

    #[test]
    fn zero_window_is_clamped_not_livelocked() {
        // A window of 0 could never transmit anything; the constructor
        // clamps it to 1 so the flood still completes.
        let config = ArqConfig {
            window: 0,
            retransmit_after: 0,
        };
        let sim = Sim::<TransportMsg<u32>>::builder(2)
            .seed(1)
            .latency(FixedLatency(1))
            .classify(|_| true)
            .build(move |pid| {
                if pid.index() == 0 {
                    Box::new(Reliable::new(Flood { count: 5 }, config))
                        as Box<dyn Process<TransportMsg<u32>>>
                } else {
                    Box::new(Reliable::new(Quiet, config))
                }
            });
        let trace = sim.run();
        assert_eq!(trace.stop_reason(), StopReason::Quiescent);
        assert_eq!(model_recvs(&trace, p(1)).len(), 5);
    }

    #[test]
    fn window_backlog_preserves_order_under_a_tiny_window() {
        let config = ArqConfig {
            window: 2,
            retransmit_after: 30,
        };
        let link = FaultyLink::new(UniformLatency::new(1, 6)).loss(0.3);
        let sim = Sim::<TransportMsg<u32>>::builder(2)
            .seed(7)
            .link(link)
            .classify(|_| true)
            .build(move |pid| {
                if pid.index() == 0 {
                    Box::new(Reliable::new(Flood { count: 30 }, config))
                } else {
                    Box::new(Reliable::new(Quiet, config))
                }
            });
        let trace = sim.run();
        let recvs = model_recvs(&trace, p(1));
        assert_eq!(recvs.len(), 30);
        assert!(recvs.windows(2).all(|w| w[0].1 < w[1].1));
    }

    #[test]
    fn inner_receive_filter_gates_release_per_channel() {
        // The inner process refuses payloads >= 10 until it has seen 5.
        // The transport must hold channel heads without losing anything.
        struct Picky {
            seen: Vec<u32>,
        }
        impl Process<u32> for Picky {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.set_receive_filter(Some(ReceiveFilter::new(|m: &u32| *m < 10)));
            }
            fn on_message(&mut self, ctx: &mut Context<'_, u32>, _: ProcessId, msg: u32) {
                self.seen.push(msg);
                if msg == 5 {
                    ctx.set_receive_filter(None);
                }
            }
        }
        // p0 sends 20 (refused: blocks the channel), then 5 (would lift
        // the gate, but FIFO holds it behind 20) — p2 sends 5 on its own
        // channel, which lifts the gate and releases p0's queue.
        struct S0;
        impl Process<u32> for S0 {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.send(p(1), 20);
                ctx.send(p(1), 7);
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
        }
        struct S2;
        impl Process<u32> for S2 {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.set_timer(50);
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, u32>, _: TimerId) {
                ctx.send(p(1), 5);
            }
        }
        let sim = Sim::<TransportMsg<u32>>::builder(3)
            .seed(2)
            .latency(FixedLatency(1))
            .classify(|_| true)
            .build(|pid| match pid.index() {
                0 => Box::new(Reliable::new(S0, ArqConfig::default()))
                    as Box<dyn Process<TransportMsg<u32>>>,
                1 => Box::new(Reliable::new(
                    Picky { seen: Vec::new() },
                    ArqConfig::default(),
                )),
                _ => Box::new(Reliable::new(S2, ArqConfig::default())),
            });
        let trace = sim.run();
        let recvs = model_recvs(&trace, p(1));
        // p2's 5 first (gate lifts), then p0's 20 and 7 in channel order.
        assert_eq!(recvs.len(), 3, "{}", trace.to_pretty_string());
        let from_p0: Vec<u64> = recvs
            .iter()
            .filter(|(f, _)| *f == p(0))
            .map(|&(_, s)| s)
            .collect();
        assert_eq!(from_p0, vec![0, 1], "FIFO through the held gate");
        assert_eq!(recvs[0].0, p(2), "the gate-lifting payload releases first");
    }

    #[test]
    fn endogenous_suspicion_fires_for_a_silent_peer_only() {
        // Two wrapped processes with probing; p1 crashes at t=50 (via the
        // fault plan). p0's prober must suspect p1 — and nothing must
        // ever suspect the live p0.
        #[derive(Debug, Default)]
        struct Recorder {
            suspicions: Vec<ProcessId>,
        }
        #[derive(Debug, Clone, PartialEq, Eq)]
        enum Msg {
            Suspect(ProcessId),
        }
        impl Process<Msg> for Recorder {
            fn on_start(&mut self, _: &mut Context<'_, Msg>) {}
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: ProcessId, _: Msg) {}
            fn on_external(&mut self, ctx: &mut Context<'_, Msg>, payload: Msg) {
                let Msg::Suspect(peer) = payload;
                self.suspicions.push(peer);
                ctx.annotate(sfs_asys::Note::key_val("suspect", peer));
            }
        }
        let plan = sfs_asys::FaultPlan::new().crash_at(p(1), VirtualTime::from_ticks(50));
        let sim = Sim::<TransportMsg<Msg>>::builder(2)
            .seed(4)
            .latency(FixedLatency(1))
            .max_time(VirtualTime::from_ticks(2_000))
            .classify(|_| true)
            .faults(plan)
            .build(|_| {
                Box::new(
                    Reliable::new(Recorder::default(), ArqConfig::default())
                        .suspicion(ProbeConfig::default(), Msg::Suspect),
                )
            });
        let trace = sim.run();
        let notes: Vec<_> = trace.notes_with_key("suspect").collect();
        assert_eq!(notes.len(), 1, "{}", trace.to_pretty_string());
        let (_, by, note) = notes[0];
        assert_eq!(by, p(0));
        assert_eq!(*note, sfs_asys::Note::key_val("suspect", p(1)));
    }

    #[test]
    fn try_new_rejects_degenerate_configs() {
        assert_eq!(ArqConfig::try_new(0, 40), Err(TransportError::ZeroWindow));
        assert_eq!(
            ArqConfig::try_new(32, 0),
            Err(TransportError::ZeroRetransmit)
        );
        assert_eq!(ArqConfig::try_new(32, 40), Ok(ArqConfig::default()));
        assert_eq!(
            ProbeConfig::try_new(0, 100, 25),
            Err(TransportError::ZeroInterval)
        );
        assert_eq!(
            ProbeConfig::try_new(20, 0, 25),
            Err(TransportError::ZeroTimeout)
        );
        assert_eq!(
            ProbeConfig::try_new(20, 100, 0),
            Err(TransportError::ZeroCheck)
        );
        assert_eq!(
            AdaptiveConfig::try_new(0, 100, 5, 500),
            Err(TransportError::ZeroMinRto)
        );
        assert_eq!(
            AdaptiveConfig::try_new(50, 20, 5, 500),
            Err(TransportError::InvertedRtoBounds { min: 50, max: 20 })
        );
        assert_eq!(
            AdaptiveConfig::try_new(20, 2_000, 5, 0),
            Err(TransportError::ZeroMaxSuspicion)
        );
        assert!(AdaptiveConfig::default().validate().is_ok());
        assert!(ProbeConfig::default().validate().is_ok());
    }

    fn adaptive_flood_sim(
        count: u32,
        link: impl sfs_asys::LinkModel + 'static,
        seed: u64,
    ) -> Sim<TransportMsg<u32>> {
        Sim::<TransportMsg<u32>>::builder(2)
            .seed(seed)
            .link(link)
            .classify(|_| true)
            .build(move |pid| {
                let arq = ArqConfig::default();
                let adaptive = AdaptiveConfig::default();
                if pid.index() == 0 {
                    Box::new(Reliable::new(Flood { count }, arq).adaptive(adaptive))
                } else {
                    Box::new(Reliable::new(Quiet, arq).adaptive(adaptive))
                }
            })
    }

    #[test]
    fn adaptive_transport_repairs_heavy_loss() {
        for seed in 0..10 {
            let link = FaultyLink::new(UniformLatency::new(1, 8)).loss(0.4);
            let trace = adaptive_flood_sim(25, link, seed).run();
            let recvs = model_recvs(&trace, p(1));
            assert_eq!(recvs.len(), 25, "seed {seed}: lost payloads");
            assert!(
                recvs.windows(2).all(|w| w[0].1 < w[1].1),
                "seed {seed}: out of order: {recvs:?}"
            );
        }
    }

    #[test]
    fn adaptive_loss_free_runs_deliver_identically_to_fixed() {
        for seed in 0..5 {
            let fixed = flood_sim(20, FixedLatency(1), seed).run();
            let adaptive = adaptive_flood_sim(20, FixedLatency(1), seed).run();
            assert_eq!(adaptive.stop_reason(), StopReason::Quiescent);
            assert_eq!(
                model_recvs(&fixed, p(1)),
                model_recvs(&adaptive, p(1)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn adaptive_retransmissions_back_off_exponentially() {
        // A never-healing cut: every retransmission is unproductive, so
        // consecutive retx bursts must spread out (doubling RTO), unlike
        // the fixed mode's metronome.
        let link = FaultyLink::new(FixedLatency(1)).partitions(PartitionSchedule::new().split(
            VirtualTime::ZERO,
            VirtualTime::MAX,
            &[p(0)],
        ));
        let trace = adaptive_flood_sim(3, link, 2).run();
        let times: Vec<u64> = trace
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                TraceEventKind::Note {
                    note: sfs_asys::Note::KeyVal { key, .. },
                    ..
                } if key == NOTE_RETX => Some(e.time.ticks()),
                _ => None,
            })
            .collect();
        assert!(times.len() >= 3, "expected several retx bursts: {times:?}");
        let gaps: Vec<u64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(
            gaps.last().unwrap() >= &(2 * gaps.first().unwrap()),
            "no backoff visible in gaps {gaps:?}"
        );
    }

    /// The E13 discriminator in miniature: flapping cuts train the
    /// adaptive prober's gap statistics, then a delay storm opens an
    /// onset gap that overruns the fixed timeout but stays inside the
    /// learned threshold. Fixed mode falsely suspects the (live) peer;
    /// adaptive mode rides it out.
    #[test]
    fn adaptive_suspicion_survives_a_storm_that_fools_the_fixed_timeout() {
        #[derive(Debug, Clone, PartialEq, Eq)]
        enum Msg {
            Suspect(ProcessId),
        }
        #[derive(Debug, Default)]
        struct Recorder;
        impl Process<Msg> for Recorder {
            fn on_start(&mut self, _: &mut Context<'_, Msg>) {}
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: ProcessId, _: Msg) {}
            fn on_external(&mut self, _: &mut Context<'_, Msg>, _: Msg) {}
        }
        let t = VirtualTime::from_ticks;
        let gray_link = || {
            // Training flaps on p1 -> p0 (60 severed, 80 healed, x3),
            // then a +120 surcharge storm on the same link.
            let pairs = [(p(1), p(0))];
            let parts = PartitionSchedule::new()
                .cut_links(t(200), t(260), &pairs)
                .cut_links(t(340), t(400), &pairs)
                .cut_links(t(480), t(540), &pairs);
            let storms = sfs_asys::StormSchedule::new().surge_links(t(700), t(900), &pairs, 120);
            FaultyLink::new(FixedLatency(1))
                .partitions(parts)
                .storms(storms)
        };
        let run = |adaptive: bool| {
            let sim = Sim::<TransportMsg<Msg>>::builder(2)
                .seed(6)
                .link(gray_link())
                .max_time(t(1_200))
                .classify(|_| true)
                .build(move |_| {
                    let base = Reliable::new(Recorder, ArqConfig::default())
                        .suspicion(ProbeConfig::default(), Msg::Suspect);
                    if adaptive {
                        Box::new(base.adaptive(AdaptiveConfig::default()))
                            as Box<dyn Process<TransportMsg<Msg>>>
                    } else {
                        Box::new(base)
                    }
                });
            let trace = sim.run();
            trace.notes_with_key(NOTE_PROBE_SUSPECT).count()
        };
        assert!(
            run(false) >= 1,
            "the fixed timeout should falsely suspect the stormed peer"
        );
        assert_eq!(
            run(true),
            0,
            "the trained adaptive threshold must ride out the storm"
        );
    }

    #[test]
    fn adaptive_rto_is_clamped_at_the_source_even_near_u64_max() {
        // A ceiling two below u64::MAX: the backed-off base saturates at
        // the ceiling, and the old `backed + jitter` would overflow the
        // u64 (panicking in debug) or escape past `max_rto` (in release).
        let acfg = AdaptiveConfig {
            min_rto: 20,
            max_rto: u64::MAX - 2,
            jitter: 5,
            max_suspicion: 1_000,
        };
        let mut r = Reliable::new(Quiet, ArqConfig::default()).adaptive(acfg);
        r.ensure_init(2, VirtualTime::ZERO, p(0));
        let ch = &mut r.out[1];
        ch.srtt = Some(u64::MAX / 2);
        ch.rttvar = u64::MAX / 4;
        ch.backoff = 40;
        for _ in 0..32 {
            let rto = r.channel_rto(1);
            assert!(rto <= acfg.max_rto, "rto {rto} exceeds max_rto");
        }
        // With the default ceiling, jitter must not leak past it either
        // once backoff has pinned the base at the ceiling.
        let acfg = AdaptiveConfig::default();
        let mut r = Reliable::new(Quiet, ArqConfig::default()).adaptive(acfg);
        r.ensure_init(2, VirtualTime::ZERO, p(0));
        let ch = &mut r.out[1];
        ch.srtt = Some(acfg.max_rto);
        ch.backoff = 3;
        for _ in 0..64 {
            assert!(r.channel_rto(1) <= acfg.max_rto);
        }
    }

    #[test]
    fn retransmit_arms_cleanly_near_the_overflow_boundary() {
        // End to end: a never-healing cut forces repeated unproductive
        // retransmissions (backoff ratchets up) under an RTO ceiling near
        // u64::MAX. Deadlines must stay on the wheel without overflow and
        // the run must end at its horizon, not in a panic.
        let acfg = AdaptiveConfig {
            min_rto: 20,
            max_rto: u64::MAX - 1,
            jitter: 5,
            max_suspicion: 1_000,
        };
        let link = FaultyLink::new(FixedLatency(1)).partitions(PartitionSchedule::new().split(
            VirtualTime::ZERO,
            VirtualTime::MAX,
            &[p(0)],
        ));
        let sim = Sim::<TransportMsg<u32>>::builder(2)
            .seed(8)
            .link(link)
            .classify(|_| true)
            .build(move |pid| {
                let arq = ArqConfig::default();
                if pid.index() == 0 {
                    Box::new(Reliable::new(Flood { count: 3 }, arq).adaptive(acfg))
                        as Box<dyn Process<TransportMsg<u32>>>
                } else {
                    Box::new(Reliable::new(Quiet, arq).adaptive(acfg))
                }
            });
        let trace = sim.run();
        assert_eq!(trace.stop_reason(), StopReason::MaxTime);
        assert!(model_recvs(&trace, p(1)).is_empty());
    }

    #[test]
    fn scripted_drop_patterns_from_fn_link_are_survived() {
        // Drop every other data frame (acks pass): a worst-case regular
        // loss pattern.
        let mut k = 0u32;
        let link = FnLink(move |_, _, _, _: &mut rand::rngs::StdRng| {
            k += 1;
            if k.is_multiple_of(2) {
                LinkVerdict::Drop
            } else {
                LinkVerdict::Deliver(1)
            }
        });
        let trace = flood_sim(15, link, 5).run();
        let recvs = model_recvs(&trace, p(1));
        assert_eq!(recvs.len(), 15, "{}", trace.to_pretty_string());
        assert!(recvs.windows(2).all(|w| w[0].1 < w[1].1));
    }
}
