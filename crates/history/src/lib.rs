//! # sfs-history — formal event histories for the fail-stop simulation
//!
//! This crate implements the formal machinery of Sabel & Marzullo (1994),
//! §2 and the appendices:
//!
//! * [`Event`] — the paper's event alphabet (`send`, `recv`, `crash`,
//!   `failed`, plus internal events);
//! * [`History`] — finite run prefixes, their validity conditions
//!   (FIFO channels, crash finality, stable detection variables), process
//!   projections, and the isomorphism relation `x =_Q y`;
//! * [`HappensBefore`] — Lamport's relation, reflexive as in the paper,
//!   computed via vector clocks;
//! * [`FailedBefore`] — Definition 3's relation with cycle detection
//!   (sFS2b / Condition 2);
//! * [`rearrange_to_fs`] / [`rearrange_by_swaps`] — the Theorem 5
//!   construction: rewrite an sFS history into an isomorphic fail-stop
//!   history, or produce a certificate that none exists;
//! * [`scenarios`] — hand-built histories from the paper's proofs,
//!   including the Theorem 3 counterexample.
//!
//! # Examples
//!
//! Fix a single erroneous detection:
//!
//! ```
//! use sfs_asys::ProcessId;
//! use sfs_history::{scenarios, rearrange_to_fs};
//!
//! let run = scenarios::one_false_detection(3, ProcessId::new(1), ProcessId::new(0));
//! assert!(!run.is_fs_ordered()); // the detection precedes the crash
//! let fixed = rearrange_to_fs(&run).unwrap().history;
//! assert!(fixed.is_fs_ordered()); // ...but an isomorphic FS run exists
//! assert!(fixed.isomorphic(&run)); // and no process can tell the difference
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
mod failed_before;
mod hb;
mod history;
mod rearrange;
pub mod scenarios;

pub use event::Event;
pub use failed_before::FailedBefore;
pub use hb::HappensBefore;
pub use history::{History, ValidityError};
pub use rearrange::{rearrange_by_swaps, rearrange_to_fs, RearrangeError, RearrangeReport};
