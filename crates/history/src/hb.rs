//! The happens-before relation of [Lam78], reflexive as in the paper.
//!
//! The paper defines `e1 → e2` if (1) both are events of the same process
//! and `e1 = e2` or `e1` precedes `e2`; (2) `e1 = send_i(j, m)` and
//! `e2 = recv_j(i, m)`; or (3) transitivity. We compute vector clocks in
//! one pass; `e1 → e2` is then a constant-time comparison.
//!
//! Crucially, happens-before depends only on per-process event order and
//! send/receive matching — *not* on how events of different processes are
//! interleaved. The relation is therefore invariant under the reorderings
//! performed by the Theorem 5 rearrangement engine, which is what makes
//! "swap adjacent events unless related" a sound rewriting rule.

use crate::event::Event;
use crate::history::History;
use sfs_asys::MsgId;
use std::collections::HashMap;

/// Precomputed happens-before over the events of one history, queried by
/// event index.
///
/// # Examples
///
/// ```
/// use sfs_asys::{MsgId, ProcessId};
/// use sfs_history::{Event, HappensBefore, History};
///
/// let p0 = ProcessId::new(0);
/// let p1 = ProcessId::new(1);
/// let m = MsgId::new(p0, 0);
/// let h = History::new(2, vec![Event::send(p0, p1, m), Event::recv(p1, p0, m)]);
/// let hb = HappensBefore::compute(&h);
/// assert!(hb.leq(0, 1)); // send → recv
/// assert!(!hb.leq(1, 0));
/// ```
#[derive(Debug, Clone)]
pub struct HappensBefore {
    /// Vector clock per event, indexed by event position in the history.
    clocks: Vec<Vec<u32>>,
    /// Owning process index per event.
    owner: Vec<usize>,
}

impl HappensBefore {
    /// Computes vector clocks for every event of `h` in `O(len · n)`.
    ///
    /// # Panics
    ///
    /// Panics if a receive has no matching prior send (run
    /// [`History::validate`] first to get a proper error).
    pub fn compute(h: &History) -> Self {
        let n = h.n();
        let mut current: Vec<Vec<u32>> = vec![vec![0; n]; n];
        let mut send_clock: HashMap<MsgId, Vec<u32>> = HashMap::new();
        let mut clocks = Vec::with_capacity(h.len());
        let mut owner = Vec::with_capacity(h.len());
        for e in h.events() {
            let p = e.process().index();
            if let Event::Recv { msg, .. } = e {
                let sender = send_clock
                    .get(msg)
                    .unwrap_or_else(|| panic!("receive of unsent message {msg}"));
                for (c, s) in current[p].iter_mut().zip(sender) {
                    *c = (*c).max(*s);
                }
            }
            current[p][p] += 1;
            if let Event::Send { msg, .. } = e {
                send_clock.insert(*msg, current[p].clone());
            }
            clocks.push(current[p].clone());
            owner.push(p);
        }
        HappensBefore { clocks, owner }
    }

    /// Whether event `a` happens-before event `b` (reflexively): `a → b`.
    ///
    /// Indices refer to positions in the history the relation was computed
    /// from.
    pub fn leq(&self, a: usize, b: usize) -> bool {
        if a == b {
            return true;
        }
        let pa = self.owner[a];
        // b has seen a iff b's knowledge of pa's local clock is at least
        // a's own component.
        self.clocks[b][pa] >= self.clocks[a][pa]
    }

    /// Whether `a` and `b` are concurrent (neither happens before the
    /// other).
    pub fn concurrent(&self, a: usize, b: usize) -> bool {
        !self.leq(a, b) && !self.leq(b, a)
    }

    /// Number of events covered.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// Whether the relation covers no events.
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_asys::ProcessId;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn m(src: usize, seq: u64) -> MsgId {
        MsgId::new(p(src), seq)
    }

    /// p0: send m0 to p1; p1: recv m0, send m1 to p2; p2: recv m1.
    /// Also p2 has an earlier independent internal event.
    fn chain() -> History {
        History::new(
            3,
            vec![
                Event::Internal { pid: p(2), tag: 0 }, // 0: concurrent with all of p0/p1
                Event::send(p(0), p(1), m(0, 0)),      // 1
                Event::recv(p(1), p(0), m(0, 0)),      // 2
                Event::send(p(1), p(2), m(1, 0)),      // 3
                Event::recv(p(2), p(1), m(1, 0)),      // 4
            ],
        )
    }

    #[test]
    fn message_chains_are_transitive() {
        let h = chain();
        let hb = HappensBefore::compute(&h);
        assert!(hb.leq(1, 2));
        assert!(hb.leq(2, 3));
        assert!(hb.leq(1, 4), "transitive through the chain");
        assert!(!hb.leq(4, 1));
    }

    #[test]
    fn relation_is_reflexive() {
        let h = chain();
        let hb = HappensBefore::compute(&h);
        for i in 0..h.len() {
            assert!(hb.leq(i, i));
        }
    }

    #[test]
    fn independent_events_are_concurrent() {
        let h = chain();
        let hb = HappensBefore::compute(&h);
        assert!(hb.concurrent(0, 1));
        assert!(hb.concurrent(0, 3));
        // ...but the internal event precedes p2's receive (same process).
        assert!(hb.leq(0, 4));
    }

    #[test]
    fn program_order_within_one_process() {
        let h = History::new(
            1,
            vec![Event::Internal { pid: p(0), tag: 0 }, Event::Internal { pid: p(0), tag: 1 }],
        );
        let hb = HappensBefore::compute(&h);
        assert!(hb.leq(0, 1));
        assert!(!hb.leq(1, 0));
    }

    #[test]
    fn hb_is_invariant_under_valid_interleaving_changes() {
        // Same event set, different interleaving of concurrent events.
        let a = History::new(
            2,
            vec![
                Event::Internal { pid: p(0), tag: 0 },
                Event::Internal { pid: p(1), tag: 0 },
            ],
        );
        let b = History::new(
            2,
            vec![
                Event::Internal { pid: p(1), tag: 0 },
                Event::Internal { pid: p(0), tag: 0 },
            ],
        );
        let hb_a = HappensBefore::compute(&a);
        let hb_b = HappensBefore::compute(&b);
        // In `a`, event 0 is p0's internal; in `b`, event 1 is. Both report
        // the pair as concurrent.
        assert!(hb_a.concurrent(0, 1));
        assert!(hb_b.concurrent(0, 1));
    }

    #[test]
    #[should_panic(expected = "unsent message")]
    fn compute_panics_on_unmatched_recv() {
        let h = History::new(2, vec![Event::recv(p(1), p(0), m(0, 0))]);
        let _ = HappensBefore::compute(&h);
    }
}
