//! The happens-before relation of [Lam78], reflexive as in the paper.
//!
//! The paper defines `e1 → e2` if (1) both are events of the same process
//! and `e1 = e2` or `e1` precedes `e2`; (2) `e1 = send_i(j, m)` and
//! `e2 = recv_j(i, m)`; or (3) transitivity. We compute vector clocks in
//! one pass; `e1 → e2` is then a constant-time comparison.
//!
//! Crucially, happens-before depends only on per-process event order and
//! send/receive matching — *not* on how events of different processes are
//! interleaved. The relation is therefore invariant under the reorderings
//! performed by the Theorem 5 rearrangement engine, which is what makes
//! "swap adjacent events unless related" a sound rewriting rule.
//!
//! # Representation
//!
//! All `len` vector clocks live in **one flat `len × n` arena** (a single
//! `Vec<u32>`, row-major). Compared to the obvious `Vec<Vec<u32>>`, this
//! removes one heap allocation *per event* during construction, keeps the
//! clocks of consecutive events adjacent in memory (the access pattern of
//! both the rearrangement engine and the property checkers), and makes
//! [`HappensBefore::leq`] two array reads with no pointer chase.

use crate::event::Event;
use crate::history::History;
use sfs_asys::MsgId;
use std::collections::HashMap;

/// Precomputed happens-before over the events of one history, queried by
/// event index.
///
/// # Examples
///
/// ```
/// use sfs_asys::{MsgId, ProcessId};
/// use sfs_history::{Event, HappensBefore, History};
///
/// let p0 = ProcessId::new(0);
/// let p1 = ProcessId::new(1);
/// let m = MsgId::new(p0, 0);
/// let h = History::new(2, vec![Event::send(p0, p1, m), Event::recv(p1, p0, m)]);
/// let hb = HappensBefore::compute(&h);
/// assert!(hb.leq(0, 1)); // send → recv
/// assert!(!hb.leq(1, 0));
/// ```
#[derive(Debug, Clone)]
pub struct HappensBefore {
    /// Number of processes: the row width of the clock arena.
    n: usize,
    /// Row-major `len × n` arena; row `i` is the vector clock of event `i`.
    clocks: Vec<u32>,
    /// Owning process index per event.
    owner: Vec<u32>,
}

impl HappensBefore {
    /// Computes vector clocks for every event of `h` in `O(len · n)` time
    /// and **one** arena allocation (plus the per-process working clocks).
    ///
    /// Receives merge the *sender's clock at the send event*, which is a
    /// row already in the arena — so no clock is ever cloned: the send map
    /// stores event indices, not clock copies.
    ///
    /// # Panics
    ///
    /// Panics if a receive has no matching prior send (run
    /// [`History::validate`] first to get a proper error).
    pub fn compute(h: &History) -> Self {
        let n = h.n();
        let len = h.len();
        // Working clock of each process, one flat n × n block.
        let mut current: Vec<u32> = vec![0; n * n];
        // Send event index per message; the sender's clock is the arena row
        // written when the send was processed.
        let mut send_event: HashMap<MsgId, usize> = HashMap::new();
        let mut clocks: Vec<u32> = Vec::with_capacity(len * n);
        let mut owner: Vec<u32> = Vec::with_capacity(len);
        for (i, e) in h.events().iter().enumerate() {
            let p = e.process().index();
            let row = p * n;
            if let Event::Recv { msg, .. } = e {
                let s = *send_event
                    .get(msg)
                    .unwrap_or_else(|| panic!("receive of unsent message {msg}"));
                // Merge sender's clock (an arena row) into p's working clock.
                for (c, &sc) in current[row..row + n]
                    .iter_mut()
                    .zip(&clocks[s * n..s * n + n])
                {
                    if sc > *c {
                        *c = sc;
                    }
                }
            }
            current[row + p] += 1;
            clocks.extend_from_slice(&current[row..row + n]);
            if let Event::Send { msg, .. } = e {
                send_event.insert(*msg, i);
            }
            owner.push(p as u32);
        }
        HappensBefore { n, clocks, owner }
    }

    /// Whether event `a` happens-before event `b` (reflexively): `a → b`.
    ///
    /// Indices refer to positions in the history the relation was computed
    /// from. Branch-free on the comparison path: two arena reads and one
    /// integer compare.
    #[inline]
    pub fn leq(&self, a: usize, b: usize) -> bool {
        // b has seen a iff b's knowledge of pa's local clock is at least
        // a's own component; a == b degenerates to equality, which holds.
        let pa = self.owner[a] as usize;
        self.clocks[b * self.n + pa] >= self.clocks[a * self.n + pa]
    }

    /// Whether `a` and `b` are concurrent (neither happens before the
    /// other).
    pub fn concurrent(&self, a: usize, b: usize) -> bool {
        !self.leq(a, b) && !self.leq(b, a)
    }

    /// Number of processes (the clock width).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The vector clock of event `i`, as a view into the arena.
    pub fn clock(&self, i: usize) -> &[u32] {
        &self.clocks[i * self.n..(i + 1) * self.n]
    }

    /// The process index owning event `i`.
    pub fn owner(&self, i: usize) -> usize {
        self.owner[i] as usize
    }

    /// Number of events covered.
    pub fn len(&self) -> usize {
        self.owner.len()
    }

    /// Whether the relation covers no events.
    pub fn is_empty(&self) -> bool {
        self.owner.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_asys::ProcessId;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn m(src: usize, seq: u64) -> MsgId {
        MsgId::new(p(src), seq)
    }

    /// p0: send m0 to p1; p1: recv m0, send m1 to p2; p2: recv m1.
    /// Also p2 has an earlier independent internal event.
    fn chain() -> History {
        History::new(
            3,
            vec![
                Event::Internal { pid: p(2), tag: 0 }, // 0: concurrent with all of p0/p1
                Event::send(p(0), p(1), m(0, 0)),      // 1
                Event::recv(p(1), p(0), m(0, 0)),      // 2
                Event::send(p(1), p(2), m(1, 0)),      // 3
                Event::recv(p(2), p(1), m(1, 0)),      // 4
            ],
        )
    }

    #[test]
    fn message_chains_are_transitive() {
        let h = chain();
        let hb = HappensBefore::compute(&h);
        assert!(hb.leq(1, 2));
        assert!(hb.leq(2, 3));
        assert!(hb.leq(1, 4), "transitive through the chain");
        assert!(!hb.leq(4, 1));
    }

    #[test]
    fn relation_is_reflexive() {
        let h = chain();
        let hb = HappensBefore::compute(&h);
        for i in 0..h.len() {
            assert!(hb.leq(i, i));
        }
    }

    #[test]
    fn independent_events_are_concurrent() {
        let h = chain();
        let hb = HappensBefore::compute(&h);
        assert!(hb.concurrent(0, 1));
        assert!(hb.concurrent(0, 3));
        // ...but the internal event precedes p2's receive (same process).
        assert!(hb.leq(0, 4));
    }

    #[test]
    fn program_order_within_one_process() {
        let h = History::new(
            1,
            vec![
                Event::Internal { pid: p(0), tag: 0 },
                Event::Internal { pid: p(0), tag: 1 },
            ],
        );
        let hb = HappensBefore::compute(&h);
        assert!(hb.leq(0, 1));
        assert!(!hb.leq(1, 0));
    }

    #[test]
    fn hb_is_invariant_under_valid_interleaving_changes() {
        // Same event set, different interleaving of concurrent events.
        let a = History::new(
            2,
            vec![
                Event::Internal { pid: p(0), tag: 0 },
                Event::Internal { pid: p(1), tag: 0 },
            ],
        );
        let b = History::new(
            2,
            vec![
                Event::Internal { pid: p(1), tag: 0 },
                Event::Internal { pid: p(0), tag: 0 },
            ],
        );
        let hb_a = HappensBefore::compute(&a);
        let hb_b = HappensBefore::compute(&b);
        // In `a`, event 0 is p0's internal; in `b`, event 1 is. Both report
        // the pair as concurrent.
        assert!(hb_a.concurrent(0, 1));
        assert!(hb_b.concurrent(0, 1));
    }

    #[test]
    fn clock_rows_are_views_into_one_arena() {
        let h = chain();
        let hb = HappensBefore::compute(&h);
        assert_eq!(hb.n(), 3);
        assert_eq!(hb.clock(0), &[0, 0, 1]);
        assert_eq!(hb.clock(1), &[1, 0, 0]);
        assert_eq!(hb.clock(4), &[1, 2, 2]);
        assert_eq!(hb.owner(4), 2);
    }

    #[test]
    #[should_panic(expected = "unsent message")]
    fn compute_panics_on_unmatched_recv() {
        let h = History::new(2, vec![Event::recv(p(1), p(0), m(0, 0))]);
        let _ = HappensBefore::compute(&h);
    }
}
