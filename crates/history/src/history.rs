//! Finite histories of runs and their validity conditions.
//!
//! A paper run is an infinite sequence of global states; its history is the
//! corresponding event sequence. We work with finite prefixes, which is
//! sound for all safety properties and, for runs that reach quiescence,
//! also decides the eventually-properties (nothing further can happen).

use crate::event::Event;
use serde::{Deserialize, Serialize};
use sfs_asys::{MsgId, ProcessId, Trace, TraceEventKind};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Why a history fails to be (a prefix of) a valid run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidityError {
    /// An event names a process outside `0..n`.
    UnknownProcess {
        /// Position of the offending event.
        at: usize,
    },
    /// A receive with no matching prior send on the same channel.
    RecvWithoutSend {
        /// Position of the receive.
        at: usize,
        /// The unmatched message.
        msg: MsgId,
    },
    /// The same message was received twice.
    DuplicateRecv {
        /// Position of the second receive.
        at: usize,
        /// The duplicated message.
        msg: MsgId,
    },
    /// Receives on a channel are out of FIFO order.
    FifoViolation {
        /// Position of the out-of-order receive.
        at: usize,
        /// The message received out of order.
        msg: MsgId,
        /// The message that should have been received instead.
        expected: MsgId,
    },
    /// A process executed an event after its crash.
    EventAfterCrash {
        /// Position of the offending event.
        at: usize,
        /// The crashed process.
        pid: ProcessId,
    },
    /// A second crash event for the same process.
    DuplicateCrash {
        /// Position of the second crash.
        at: usize,
        /// The process.
        pid: ProcessId,
    },
    /// `failed_i(j)` appears twice for the same `(i, j)`; the variable is
    /// stable and becomes true only once.
    DuplicateFailed {
        /// Position of the second detection event.
        at: usize,
        /// Detecting process.
        by: ProcessId,
        /// Detected process.
        of: ProcessId,
    },
}

impl fmt::Display for ValidityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidityError::UnknownProcess { at } => write!(f, "unknown process at event {at}"),
            ValidityError::RecvWithoutSend { at, msg } => {
                write!(f, "receive of unsent message {msg} at event {at}")
            }
            ValidityError::DuplicateRecv { at, msg } => {
                write!(f, "second receive of message {msg} at event {at}")
            }
            ValidityError::FifoViolation { at, msg, expected } => {
                write!(
                    f,
                    "fifo violation at event {at}: got {msg}, expected {expected}"
                )
            }
            ValidityError::EventAfterCrash { at, pid } => {
                write!(f, "event of crashed process {pid} at event {at}")
            }
            ValidityError::DuplicateCrash { at, pid } => {
                write!(f, "second crash of {pid} at event {at}")
            }
            ValidityError::DuplicateFailed { at, by, of } => {
                write!(f, "second failed_{by}({of}) at event {at}")
            }
        }
    }
}

impl std::error::Error for ValidityError {}

/// A finite history: the event sequence of a run prefix over `n` processes.
///
/// # Examples
///
/// ```
/// use sfs_history::{Event, History};
/// use sfs_asys::{MsgId, ProcessId};
///
/// let p0 = ProcessId::new(0);
/// let p1 = ProcessId::new(1);
/// let m = MsgId::new(p0, 0);
/// let h = History::new(2, vec![
///     Event::send(p0, p1, m),
///     Event::recv(p1, p0, m),
/// ]);
/// assert!(h.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct History {
    n: usize,
    events: Vec<Event>,
}

impl History {
    /// Creates a history over `n` processes from an event sequence.
    /// Validity is *not* checked here; call [`History::validate`].
    pub fn new(n: usize, events: Vec<Event>) -> Self {
        History { n, events }
    }

    /// Projects a recorded [`Trace`] onto the paper's **model-level**
    /// event alphabet: application sends/receives plus `crash` and
    /// `failed` events. Messages marked as *infrastructure* at trace time
    /// (the failure detector's own obituaries and heartbeats — the
    /// "mechanism provided by the underlying system" in the paper's
    /// words) are below the model and are dropped, exactly as the paper's
    /// formal runs abstract the detector's implementation. Traces with no
    /// infrastructure marking project in full.
    pub fn from_trace(trace: &Trace) -> Self {
        let events = trace
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::Send {
                    from,
                    to,
                    msg,
                    infra: false,
                    ..
                } => Some(Event::send(from, to, msg)),
                TraceEventKind::Recv {
                    by,
                    from,
                    msg,
                    infra: false,
                    ..
                } => Some(Event::recv(by, from, msg)),
                TraceEventKind::Crash { pid } => Some(Event::crash(pid)),
                TraceEventKind::Failed { by, of } => Some(Event::failed(by, of)),
                _ => None,
            })
            .collect();
        History {
            n: trace.n(),
            events,
        }
    }

    /// Projects a trace onto the event alphabet *including* infrastructure
    /// messages — useful for debugging the detector itself (e.g. checking
    /// engine-level FIFO validity of protocol traffic).
    pub fn from_trace_full(trace: &Trace) -> Self {
        let events = trace
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::Send { from, to, msg, .. } => Some(Event::send(from, to, msg)),
                TraceEventKind::Recv { by, from, msg, .. } => Some(Event::recv(by, from, msg)),
                TraceEventKind::Crash { pid } => Some(Event::crash(pid)),
                TraceEventKind::Failed { by, of } => Some(Event::failed(by, of)),
                _ => None,
            })
            .collect();
        History {
            n: trace.n(),
            events,
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The event sequence.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the history has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks that this history is a prefix of a valid run: receives match
    /// sends in FIFO order, messages are received at most once, crashed
    /// processes execute nothing further, and the stable variables
    /// `crash_i` / `failed_i(j)` flip at most once.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidityError`] encountered, scanning in order.
    pub fn validate(&self) -> Result<(), ValidityError> {
        let mut sent: HashMap<(ProcessId, ProcessId), Vec<MsgId>> = HashMap::new();
        let mut next_recv: HashMap<(ProcessId, ProcessId), usize> = HashMap::new();
        let mut received: HashSet<MsgId> = HashSet::new();
        let mut crashed: HashSet<ProcessId> = HashSet::new();
        let mut failed: HashSet<(ProcessId, ProcessId)> = HashSet::new();
        for (at, e) in self.events.iter().enumerate() {
            let pid = e.process();
            if pid.index() >= self.n {
                return Err(ValidityError::UnknownProcess { at });
            }
            if crashed.contains(&pid) {
                return Err(ValidityError::EventAfterCrash { at, pid });
            }
            match *e {
                Event::Send { from, to, msg } => {
                    if to.index() >= self.n {
                        return Err(ValidityError::UnknownProcess { at });
                    }
                    sent.entry((from, to)).or_default().push(msg);
                }
                Event::Recv { by, from, msg } => {
                    if from.index() >= self.n {
                        return Err(ValidityError::UnknownProcess { at });
                    }
                    if !received.insert(msg) {
                        return Err(ValidityError::DuplicateRecv { at, msg });
                    }
                    let channel = (from, by);
                    let queue = sent.get(&channel).map(Vec::as_slice).unwrap_or(&[]);
                    let cursor = next_recv.entry(channel).or_insert(0);
                    match queue.get(*cursor) {
                        None => return Err(ValidityError::RecvWithoutSend { at, msg }),
                        Some(&expected) if expected != msg => {
                            // Either out of FIFO order or never sent at all.
                            if queue.contains(&msg) {
                                return Err(ValidityError::FifoViolation { at, msg, expected });
                            }
                            return Err(ValidityError::RecvWithoutSend { at, msg });
                        }
                        Some(_) => *cursor += 1,
                    }
                }
                Event::Crash { pid } => {
                    // EventAfterCrash above already rejects a second crash of
                    // a crashed process, but keep the dedicated error for
                    // clarity if events were reordered oddly.
                    if !crashed.insert(pid) {
                        return Err(ValidityError::DuplicateCrash { at, pid });
                    }
                }
                Event::Failed { by, of } => {
                    if of.index() >= self.n {
                        return Err(ValidityError::UnknownProcess { at });
                    }
                    if !failed.insert((by, of)) {
                        return Err(ValidityError::DuplicateFailed { at, by, of });
                    }
                }
                Event::Internal { .. } => {}
            }
        }
        Ok(())
    }

    /// The events of process `pid`, in order — the paper's `r_i`
    /// projection used to define isomorphism of runs.
    pub fn projection(&self, pid: ProcessId) -> Vec<Event> {
        self.events
            .iter()
            .copied()
            .filter(|e| e.process() == pid)
            .collect()
    }

    /// Whether `self` and `other` are isomorphic with respect to every
    /// process in `q` (the paper's `x =_Q y`): each process executes the
    /// same events in the same order in both.
    pub fn isomorphic_wrt<I>(&self, other: &History, q: I) -> bool
    where
        I: IntoIterator<Item = ProcessId>,
    {
        q.into_iter()
            .all(|pid| self.projection(pid) == other.projection(pid))
    }

    /// Whether `self` and `other` are isomorphic with respect to all of
    /// `P` (the paper's `x =_P y`): indistinguishable to every process.
    pub fn isomorphic(&self, other: &History) -> bool {
        self.n == other.n && self.isomorphic_wrt(other, ProcessId::all(self.n))
    }

    /// Index of the crash event of `pid`, if present.
    pub fn crash_index(&self, pid: ProcessId) -> Option<usize> {
        self.events.iter().position(|e| e.is_crash_of(pid))
    }

    /// All `(index, by, of)` detection events, in order.
    pub fn detections(&self) -> Vec<(usize, ProcessId, ProcessId)> {
        self.events
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match *e {
                Event::Failed { by, of } => Some((i, by, of)),
                _ => None,
            })
            .collect()
    }

    /// Processes whose crash event appears in the history.
    pub fn crashed(&self) -> Vec<ProcessId> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                Event::Crash { pid } => Some(pid),
                _ => None,
            })
            .collect()
    }

    /// Whether every detection `failed_j(i)` is preceded by `crash_i` —
    /// i.e. the history is ordered as a fail-stop (FS2-satisfying) run.
    pub fn is_fs_ordered(&self) -> bool {
        let mut crashed: HashSet<ProcessId> = HashSet::new();
        for e in &self.events {
            match *e {
                Event::Crash { pid } => {
                    crashed.insert(pid);
                }
                Event::Failed { of, .. } if !crashed.contains(&of) => {
                    return false;
                }
                _ => {}
            }
        }
        true
    }

    /// Appends crash events (at the end, in id order) for every process
    /// that was detected as failed but whose crash is missing from this
    /// finite prefix.
    ///
    /// Under sFS2a every detected process does eventually crash; this
    /// helper takes the longer prefix of the same run in which those
    /// crashes have occurred, which is what the Theorem 5 rearrangement
    /// needs as input.
    pub fn complete_missing_crashes(&self) -> History {
        let crashed: HashSet<ProcessId> = self.crashed().into_iter().collect();
        let mut detected: Vec<ProcessId> = self
            .detections()
            .into_iter()
            .map(|(_, _, of)| of)
            .filter(|of| !crashed.contains(of))
            .collect();
        detected.sort_unstable();
        detected.dedup();
        let mut events = self.events.clone();
        events.extend(detected.into_iter().map(Event::crash));
        History { n: self.n, events }
    }

    /// Renders one event per line, for debugging and test failures.
    pub fn to_pretty_string(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (i, e) in self.events.iter().enumerate() {
            let _ = writeln!(s, "{i:>4}: {e}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn m(src: usize, seq: u64) -> MsgId {
        MsgId::new(p(src), seq)
    }

    #[test]
    fn valid_send_recv_pair() {
        let h = History::new(
            2,
            vec![
                Event::send(p(0), p(1), m(0, 0)),
                Event::recv(p(1), p(0), m(0, 0)),
            ],
        );
        assert!(h.validate().is_ok());
    }

    #[test]
    fn recv_without_send_is_invalid() {
        let h = History::new(2, vec![Event::recv(p(1), p(0), m(0, 0))]);
        assert_eq!(
            h.validate(),
            Err(ValidityError::RecvWithoutSend {
                at: 0,
                msg: m(0, 0)
            })
        );
    }

    #[test]
    fn fifo_violation_detected() {
        let h = History::new(
            2,
            vec![
                Event::send(p(0), p(1), m(0, 0)),
                Event::send(p(0), p(1), m(0, 1)),
                Event::recv(p(1), p(0), m(0, 1)),
            ],
        );
        assert_eq!(
            h.validate(),
            Err(ValidityError::FifoViolation {
                at: 2,
                msg: m(0, 1),
                expected: m(0, 0)
            })
        );
    }

    #[test]
    fn duplicate_recv_detected() {
        let h = History::new(
            2,
            vec![
                Event::send(p(0), p(1), m(0, 0)),
                Event::recv(p(1), p(0), m(0, 0)),
                Event::recv(p(1), p(0), m(0, 0)),
            ],
        );
        assert_eq!(
            h.validate(),
            Err(ValidityError::DuplicateRecv {
                at: 2,
                msg: m(0, 0)
            })
        );
    }

    #[test]
    fn event_after_crash_detected() {
        let h = History::new(
            2,
            vec![Event::crash(p(0)), Event::send(p(0), p(1), m(0, 0))],
        );
        assert_eq!(
            h.validate(),
            Err(ValidityError::EventAfterCrash { at: 1, pid: p(0) })
        );
    }

    #[test]
    fn duplicate_failed_detected() {
        let h = History::new(
            2,
            vec![Event::failed(p(0), p(1)), Event::failed(p(0), p(1))],
        );
        assert_eq!(
            h.validate(),
            Err(ValidityError::DuplicateFailed {
                at: 1,
                by: p(0),
                of: p(1)
            })
        );
    }

    #[test]
    fn unknown_process_detected() {
        let h = History::new(2, vec![Event::crash(p(5))]);
        assert_eq!(h.validate(), Err(ValidityError::UnknownProcess { at: 0 }));
    }

    #[test]
    fn isomorphism_ignores_interleaving_of_other_processes() {
        // Two histories that differ only in the relative order of events of
        // different processes are isomorphic w.r.t. every process.
        let a = History::new(2, vec![Event::crash(p(0)), Event::failed(p(1), p(0))]);
        let b = History::new(2, vec![Event::failed(p(1), p(0)), Event::crash(p(0))]);
        assert!(a.isomorphic(&b));
        assert!(a.isomorphic_wrt(&b, [p(0)]));
        assert!(a.isomorphic_wrt(&b, [p(1)]));
    }

    #[test]
    fn isomorphism_detects_differing_local_order() {
        let a = History::new(
            2,
            vec![
                Event::send(p(0), p(1), m(0, 0)),
                Event::send(p(0), p(1), m(0, 1)),
            ],
        );
        let b = History::new(
            2,
            vec![
                Event::send(p(0), p(1), m(0, 1)),
                Event::send(p(0), p(1), m(0, 0)),
            ],
        );
        assert!(!a.isomorphic(&b));
        assert!(a.isomorphic_wrt(&b, [p(1)])); // p1 has no events in either
    }

    #[test]
    fn fs_ordering_check() {
        let fs = History::new(2, vec![Event::crash(p(0)), Event::failed(p(1), p(0))]);
        assert!(fs.is_fs_ordered());
        let not_fs = History::new(2, vec![Event::failed(p(1), p(0)), Event::crash(p(0))]);
        assert!(!not_fs.is_fs_ordered());
    }

    #[test]
    fn complete_missing_crashes_appends_once_per_process() {
        let h = History::new(
            3,
            vec![
                Event::failed(p(1), p(0)),
                Event::failed(p(2), p(0)),
                Event::crash(p(2)),
            ],
        );
        let completed = h.complete_missing_crashes();
        assert_eq!(completed.len(), 4);
        assert_eq!(completed.events()[3], Event::crash(p(0)));
        assert!(completed.validate().is_ok());
        // Idempotent:
        assert_eq!(completed.complete_missing_crashes(), completed);
    }

    #[test]
    fn projection_extracts_per_process_events() {
        let h = History::new(
            2,
            vec![
                Event::send(p(0), p(1), m(0, 0)),
                Event::failed(p(1), p(0)),
                Event::crash(p(0)),
            ],
        );
        assert_eq!(h.projection(p(0)).len(), 2);
        assert_eq!(h.projection(p(1)), vec![Event::failed(p(1), p(0))]);
    }
}
