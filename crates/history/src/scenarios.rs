//! Hand-built histories from the paper's proofs.

use crate::event::Event;
use crate::history::History;
use sfs_asys::{MsgId, ProcessId};

/// The Theorem 3 counterexample run.
///
/// The paper exhibits a run that satisfies the necessary Conditions 1–3 yet
/// is isomorphic to no fail-stop run:
///
/// ```text
/// failed_y(x); send_y(a, m_a); recv_a(y, m_a); crash_a;
/// failed_b(a); send_b(x, m_b); recv_x(b, m_b); crash_x
/// ```
///
/// Any isomorphic `r'` must keep `failed_y(x) → ... → crash_a` and
/// `failed_b(a) → ... → crash_x` (happens-before), while FS2 additionally
/// demands `crash_x` before `failed_y(x)` and `crash_a` before
/// `failed_b(a)` — a circular set of ordering constraints.
///
/// Processes are mapped as `x = 0`, `y = 1`, `a = 2`, `b = 3`.
///
/// # Examples
///
/// ```
/// use sfs_history::{scenarios, rearrange_to_fs, RearrangeError};
///
/// let run = scenarios::theorem3_run();
/// assert!(run.validate().is_ok());
/// assert!(matches!(
///     rearrange_to_fs(&run),
///     Err(RearrangeError::NoFsOrder { .. })
/// ));
/// ```
pub fn theorem3_run() -> History {
    let x = ProcessId::new(0);
    let y = ProcessId::new(1);
    let a = ProcessId::new(2);
    let b = ProcessId::new(3);
    let m_a = MsgId::new(y, 0);
    let m_b = MsgId::new(b, 0);
    History::new(
        4,
        vec![
            Event::failed(y, x),
            Event::send(y, a, m_a),
            Event::recv(a, y, m_a),
            Event::crash(a),
            Event::failed(b, a),
            Event::send(b, x, m_b),
            Event::recv(x, b, m_b),
            Event::crash(x),
        ],
    )
}

/// A well-behaved fail-stop reference history: `victims` crash, then every
/// survivor detects every victim (FS1 + FS2 hold outright).
///
/// # Panics
///
/// Panics if a victim id is out of range for `n`.
pub fn fs_reference_run(n: usize, victims: &[ProcessId]) -> History {
    assert!(victims.iter().all(|v| v.index() < n), "victim out of range");
    let mut events: Vec<Event> = victims.iter().map(|&v| Event::crash(v)).collect();
    for survivor in ProcessId::all(n) {
        if victims.contains(&survivor) {
            continue;
        }
        for &v in victims {
            events.push(Event::failed(survivor, v));
        }
    }
    History::new(n, events)
}

/// A minimal simulated-fail-stop-flavoured history with one erroneous
/// detection: `detector` declares `victim` failed *before* `victim`
/// crashes; the victim's crash follows (as sFS2a requires). Useful as the
/// smallest input with one bad pair.
pub fn one_false_detection(n: usize, detector: ProcessId, victim: ProcessId) -> History {
    assert!(detector.index() < n && victim.index() < n && detector != victim);
    History::new(
        n,
        vec![Event::failed(detector, victim), Event::crash(victim)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failed_before::FailedBefore;
    use crate::rearrange::rearrange_to_fs;

    #[test]
    fn theorem3_run_is_valid_and_satisfies_conditions_1_to_3() {
        let run = theorem3_run();
        assert!(run.validate().is_ok());
        // Condition 1: every detection's subject eventually crashes.
        let crashed = run.crashed();
        for (_, _, of) in run.detections() {
            assert!(crashed.contains(&of), "condition 1 violated for {of}");
        }
        // Condition 2: failed-before acyclic.
        assert!(FailedBefore::from_history(&run).is_acyclic());
        // Condition 3: no event of j causally after failed_i(j). Checked
        // here structurally: x (p0) has events only via b's message, and
        // failed_y(x) does not happen-before them.
        let hb = crate::hb::HappensBefore::compute(&run);
        let failed_y_x = 0;
        for (i, e) in run.events().iter().enumerate() {
            if e.process() == ProcessId::new(0) {
                assert!(!hb.leq(failed_y_x, i), "condition 3 violated at event {i}");
            }
        }
    }

    #[test]
    fn fs_reference_run_is_fs_ordered() {
        let run = fs_reference_run(4, &[ProcessId::new(1)]);
        assert!(run.validate().is_ok());
        assert!(run.is_fs_ordered());
        assert_eq!(run.detections().len(), 3);
    }

    #[test]
    fn one_false_detection_is_rearrangeable() {
        let run = one_false_detection(3, ProcessId::new(2), ProcessId::new(0));
        assert!(!run.is_fs_ordered());
        let fixed = rearrange_to_fs(&run).unwrap();
        assert!(fixed.history.is_fs_ordered());
    }
}
