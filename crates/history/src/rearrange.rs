//! The Theorem 5 rearrangement engine.
//!
//! Theorem 5 of the paper states that the simulated fail-stop model is
//! indistinguishable from fail-stop: for any run `r` satisfying FS1 and
//! sFS2a–d there is a run `r'` with `r =_P r'` that satisfies FS2 (every
//! detection preceded by the corresponding crash). The proof (Appendix
//! A.2) is constructive: events between a *bad pair* — a `failed_j(i)`
//! that precedes `crash_i` — are moved, one legal swap at a time, until
//! the crash precedes the detection.
//!
//! This module implements that construction twice:
//!
//! * [`rearrange_to_fs`] — a direct formulation: any linearization of
//!   happens-before plus the constraint edges `crash_i → failed_j(i)` is
//!   an isomorphic FS run, so we topologically sort the combined
//!   constraint graph. A cycle in that graph is a certificate that *no*
//!   isomorphic FS run exists (this is what the Theorem 3 counterexample
//!   produces).
//! * [`rearrange_by_swaps`] — the paper's literal inductive algorithm:
//!   repeatedly pick the first bad pair and bubble movable events (those
//!   not causally after the detection) in front of it.
//!
//! The two are differentially tested against each other: they must agree
//! on success/failure, and both outputs must be valid, isomorphic to the
//! input w.r.t. every process, and FS-ordered.

use crate::event::Event;
use crate::hb::HappensBefore;
use crate::history::{History, ValidityError};
use sfs_asys::ProcessId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Why a history could not be rearranged into an isomorphic FS history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RearrangeError {
    /// The input is not a valid run prefix.
    Invalid(ValidityError),
    /// A process was detected as failed but its crash never appears; call
    /// [`History::complete_missing_crashes`] first (sFS2a guarantees the
    /// crash exists in the full run).
    MissingCrash {
        /// The detecting process.
        detector: ProcessId,
        /// The detected process whose crash is absent.
        detected: ProcessId,
    },
    /// No isomorphic FS ordering exists: the combined constraint graph has
    /// a cycle (the paper's Theorem 3 situation).
    NoFsOrder {
        /// Event indices (into the input history) forming the cycle.
        witness: Vec<usize>,
    },
    /// The swap-based algorithm exceeded its step budget (only possible on
    /// histories violating the sFS conditions).
    StepLimit,
}

impl fmt::Display for RearrangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RearrangeError::Invalid(e) => write!(f, "invalid history: {e}"),
            RearrangeError::MissingCrash { detector, detected } => {
                write!(
                    f,
                    "failed_{detector}({detected}) has no matching crash_{detected}"
                )
            }
            RearrangeError::NoFsOrder { witness } => {
                write!(f, "no isomorphic fail-stop ordering (constraint cycle through events {witness:?})")
            }
            RearrangeError::StepLimit => write!(f, "swap step budget exceeded"),
        }
    }
}

impl std::error::Error for RearrangeError {}

impl From<ValidityError> for RearrangeError {
    fn from(e: ValidityError) -> Self {
        RearrangeError::Invalid(e)
    }
}

/// Outcome details from a successful rearrangement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RearrangeReport {
    /// The FS-ordered history, isomorphic to the input w.r.t. every
    /// process.
    pub history: History,
    /// Bad pairs present in the input (detections preceding their crash).
    pub bad_pairs: usize,
    /// Adjacent swaps performed (zero for the topological strategy).
    pub swaps: usize,
}

fn check_crashes_present(h: &History) -> Result<(), RearrangeError> {
    let crashed: std::collections::HashSet<ProcessId> = h.crashed().into_iter().collect();
    for (_, by, of) in h.detections() {
        if !crashed.contains(&of) {
            return Err(RearrangeError::MissingCrash {
                detector: by,
                detected: of,
            });
        }
    }
    Ok(())
}

fn count_bad_pairs(h: &History) -> usize {
    let mut crashed: std::collections::HashSet<ProcessId> = std::collections::HashSet::new();
    let mut bad = 0;
    for e in h.events() {
        match *e {
            Event::Crash { pid } => {
                crashed.insert(pid);
            }
            Event::Failed { of, .. } if !crashed.contains(&of) => {
                bad += 1;
            }
            _ => {}
        }
    }
    bad
}

/// Rearranges `h` into an isomorphic history in which every `failed_j(i)`
/// is preceded by `crash_i`, by linearizing happens-before together with
/// the FS constraint edges.
///
/// The output linearization prefers low original indices, so events move
/// as little as possible.
///
/// # Errors
///
/// * [`RearrangeError::Invalid`] if `h` is not a valid run prefix.
/// * [`RearrangeError::MissingCrash`] if a detected process never crashes
///   in `h` (complete the prefix first).
/// * [`RearrangeError::NoFsOrder`] if no isomorphic FS ordering exists.
///
/// # Examples
///
/// ```
/// use sfs_asys::ProcessId;
/// use sfs_history::{Event, History, rearrange_to_fs};
///
/// let p0 = ProcessId::new(0);
/// let p1 = ProcessId::new(1);
/// // A false detection: p1 declares p0 failed before p0 crashes.
/// let h = History::new(2, vec![Event::failed(p1, p0), Event::crash(p0)]);
/// let report = rearrange_to_fs(&h).unwrap();
/// assert!(report.history.is_fs_ordered());
/// assert!(report.history.isomorphic(&h));
/// ```
pub fn rearrange_to_fs(h: &History) -> Result<RearrangeReport, RearrangeError> {
    h.validate()?;
    check_crashes_present(h)?;
    let len = h.len();
    let n = h.n();
    let bad_pairs = count_bad_pairs(h);

    // Build the constraint DAG: covering edges of happens-before
    // (program order successors + send->recv) plus crash_i -> failed_j(i).
    // Per-process tables are flat vectors indexed by process id; only the
    // send map stays hashed (message ids are sparse).
    const NONE: usize = usize::MAX;
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); len];
    let mut indegree = vec![0usize; len];
    let add_edge = |adj: &mut Vec<Vec<usize>>, indegree: &mut Vec<usize>, a: usize, b: usize| {
        adj[a].push(b);
        indegree[b] += 1;
    };
    let mut last_of_process: Vec<usize> = vec![NONE; n];
    let mut send_index: std::collections::HashMap<sfs_asys::MsgId, usize> =
        std::collections::HashMap::with_capacity(len / 2);
    let mut crash_index: Vec<usize> = vec![NONE; n];
    for (i, e) in h.events().iter().enumerate() {
        let p = e.process().index();
        let prev = last_of_process[p];
        if prev != NONE {
            add_edge(&mut adj, &mut indegree, prev, i);
        }
        last_of_process[p] = i;
        match *e {
            Event::Send { msg, .. } => {
                send_index.insert(msg, i);
            }
            Event::Recv { msg, .. } => {
                let s = send_index[&msg];
                add_edge(&mut adj, &mut indegree, s, i);
            }
            Event::Crash { pid } => {
                crash_index[pid.index()] = i;
            }
            _ => {}
        }
    }
    for (i, e) in h.events().iter().enumerate() {
        if let Event::Failed { of, .. } = *e {
            let c = crash_index[of.index()];
            debug_assert!(c != NONE, "crash presence checked above");
            if c != i {
                add_edge(&mut adj, &mut indegree, c, i);
            }
        }
    }

    // Kahn's algorithm, min-heap on original index for a stable result.
    let mut ready: BinaryHeap<Reverse<usize>> = indegree
        .iter()
        .enumerate()
        .filter_map(|(i, &d)| (d == 0).then_some(Reverse(i)))
        .collect();
    let mut order = Vec::with_capacity(len);
    while let Some(Reverse(i)) = ready.pop() {
        order.push(i);
        for &j in &adj[i] {
            indegree[j] -= 1;
            if indegree[j] == 0 {
                ready.push(Reverse(j));
            }
        }
    }
    if order.len() != len {
        // Cycle: extract one among the unfinished nodes via DFS.
        let witness = extract_cycle(&adj, &indegree);
        return Err(RearrangeError::NoFsOrder { witness });
    }
    let events = order.iter().map(|&i| h.events()[i]).collect();
    let history = History::new(h.n(), events);
    debug_assert!(history.validate().is_ok());
    debug_assert!(history.is_fs_ordered());
    debug_assert!(history.isomorphic(h));
    Ok(RearrangeReport {
        history,
        bad_pairs,
        swaps: 0,
    })
}

fn extract_cycle(adj: &[Vec<usize>], indegree: &[usize]) -> Vec<usize> {
    // Nodes with indegree > 0 after Kahn form the cyclic core (plus
    // descendants). DFS restricted to them finds a cycle.
    let len = adj.len();
    let alive: Vec<bool> = indegree.iter().map(|&d| d > 0).collect();
    let mut color = vec![0u8; len];
    let mut parent = vec![usize::MAX; len];
    for start in 0..len {
        if !alive[start] || color[start] != 0 {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        color[start] = 1;
        while let Some(&mut (u, ref mut next)) = stack.last_mut() {
            let mut advanced = false;
            while *next < adj[u].len() {
                let v = adj[u][*next];
                *next += 1;
                if !alive[v] {
                    continue;
                }
                match color[v] {
                    0 => {
                        parent[v] = u;
                        color[v] = 1;
                        stack.push((v, 0));
                        advanced = true;
                        break;
                    }
                    1 => {
                        let mut cycle = vec![u];
                        let mut w = u;
                        while w != v {
                            w = parent[w];
                            cycle.push(w);
                        }
                        cycle.reverse();
                        return cycle;
                    }
                    _ => {}
                }
            }
            if !advanced {
                color[u] = 2;
                stack.pop();
            }
        }
    }
    Vec::new()
}

/// The paper's literal Appendix A.2 algorithm: repeatedly pick a bad pair
/// `(failed_j(i) ... crash_i)` and move the first event of the segment
/// that is *not* causally after the detection to just before it, until the
/// crash itself arrives in front.
///
/// `max_swaps` bounds total adjacent swaps; `None` uses a generous default
/// of `len² + 16`. Histories satisfying the sFS conditions always finish
/// within the default budget (the appendix proves the construction
/// terminates); the budget exists so that adversarial non-sFS inputs fail
/// cleanly instead of looping.
///
/// # Errors
///
/// As [`rearrange_to_fs`], plus [`RearrangeError::StepLimit`] and
/// [`RearrangeError::NoFsOrder`] when a bad pair has no movable event
/// (the detection happens-before the crash, violating Lemma 4).
pub fn rearrange_by_swaps(
    h: &History,
    max_swaps: Option<usize>,
) -> Result<RearrangeReport, RearrangeError> {
    h.validate()?;
    check_crashes_present(h)?;
    let len = h.len();
    let n = h.n();
    let budget = max_swaps.unwrap_or(len * len + 16);
    let bad_pairs = count_bad_pairs(h);
    // Happens-before is interleaving-invariant (see hb.rs), so the flat
    // clock arena computed once on the input stays valid across every
    // swap; no re-derivation is ever needed.
    let hb = HappensBefore::compute(h);
    // `order[pos]` = original event index occupying position `pos`, and
    // `pos_of` its inverse. Both are maintained incrementally: each
    // adjacent swap is two O(1) writes, replacing the O(len) position
    // scans of a naive implementation.
    let mut order: Vec<usize> = (0..len).collect();
    let mut pos_of: Vec<usize> = (0..len).collect();
    // Original index of crash_i per process — fixed for the whole run.
    const NONE: usize = usize::MAX;
    let mut crash_event_of: Vec<usize> = vec![NONE; n];
    for (i, e) in h.events().iter().enumerate() {
        if let Event::Crash { pid } = *e {
            crash_event_of[pid.index()] = i;
        }
    }
    let mut crashed_seen = vec![false; n];
    let mut swaps = 0usize;

    'outer: loop {
        // Find the first bad pair in the current order. The crash's
        // position needs no forward scan: it is pos_of of the process's
        // unique crash event.
        crashed_seen.iter_mut().for_each(|c| *c = false);
        let mut bad: Option<(usize, usize)> = None; // (failed_idx, crash_idx)
        'scan: for &idx in order.iter() {
            match h.events()[idx] {
                Event::Crash { pid } => {
                    crashed_seen[pid.index()] = true;
                }
                Event::Failed { of, .. } if !crashed_seen[of.index()] => {
                    let crash_idx = crash_event_of[of.index()];
                    debug_assert!(crash_idx != NONE, "crash presence checked above");
                    bad = Some((idx, crash_idx));
                    break 'scan;
                }
                _ => {}
            }
        }
        let Some((failed_idx, crash_idx)) = bad else {
            break;
        };
        // Fix THIS pair to completion, as in the appendix's inner
        // induction: rescanning for a different pair after each move can
        // oscillate between two pairs and never make progress.
        loop {
            let failed_pos = pos_of[failed_idx];
            let crash_pos = pos_of[crash_idx];
            if crash_pos < failed_pos {
                continue 'outer; // pair fixed; look for the next bad pair
            }
            // First event in (failed_pos, crash_pos] not causally after the
            // detection. Lemma 4 guarantees the crash itself qualifies in
            // sFS runs, so some u always exists there.
            let movable = order[failed_pos + 1..=crash_pos]
                .iter()
                .position(|&idx| !hb.leq(failed_idx, idx))
                .map(|offset| failed_pos + 1 + offset);
            let Some(u) = movable else {
                return Err(RearrangeError::NoFsOrder {
                    witness: vec![failed_idx, crash_idx],
                });
            };
            // Bubble order[u] left to failed_pos. Each adjacent swap is
            // legal: every event strictly between failed_pos and u is
            // causally after the detection (u was the first that is not),
            // and if such an event happened-before order[u], transitivity
            // would make order[u] causally after the detection too —
            // contradiction.
            for pos in (failed_pos..u).rev() {
                debug_assert!(
                    !hb.leq(order[pos], order[pos + 1]),
                    "illegal swap: {} -> {}",
                    h.events()[order[pos]],
                    h.events()[order[pos + 1]]
                );
                order.swap(pos, pos + 1);
                pos_of[order[pos]] = pos;
                pos_of[order[pos + 1]] = pos + 1;
                swaps += 1;
                if swaps > budget {
                    return Err(RearrangeError::StepLimit);
                }
            }
        }
    }

    let events = order.iter().map(|&i| h.events()[i]).collect();
    let history = History::new(h.n(), events);
    debug_assert!(history.validate().is_ok());
    debug_assert!(history.is_fs_ordered());
    debug_assert!(history.isomorphic(h));
    Ok(RearrangeReport {
        history,
        bad_pairs,
        swaps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_asys::MsgId;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn m(src: usize, seq: u64) -> MsgId {
        MsgId::new(p(src), seq)
    }

    #[test]
    fn already_fs_history_is_unchanged_by_topo() {
        let h = History::new(2, vec![Event::crash(p(0)), Event::failed(p(1), p(0))]);
        let report = rearrange_to_fs(&h).unwrap();
        assert_eq!(report.history, h);
        assert_eq!(report.bad_pairs, 0);
    }

    #[test]
    fn simple_bad_pair_is_fixed_by_both_engines() {
        let h = History::new(2, vec![Event::failed(p(1), p(0)), Event::crash(p(0))]);
        for report in [
            rearrange_to_fs(&h).unwrap(),
            rearrange_by_swaps(&h, None).unwrap(),
        ] {
            assert!(report.history.is_fs_ordered());
            assert!(report.history.isomorphic(&h));
            assert_eq!(report.bad_pairs, 1);
        }
    }

    /// The motivating sFS scenario: j detects i erroneously, tells i
    /// ("your obituary"), i receives it and crashes. The detection is not
    /// happens-before the crash's *earlier* events... but it IS
    /// happens-before the crash here via the message. Lemma 4 says that in
    /// sFS runs failed_j(i) never happens-before any event of i — so the
    /// obituary message pattern must place the recv at i BEFORE failed_j(i)
    /// is executed. This test builds the legal variant: j sends the
    /// suspicion, i receives and crashes, and j *later* executes
    /// failed_j(i) (after its quorum), still before crash in history order
    /// is impossible — crash is before. Instead we exercise a segment with
    /// interleaved independent events.
    #[test]
    fn bad_pair_with_intervening_concurrent_events() {
        // p1 detects p0 (bad: crash comes later); p2 does independent work
        // in between; p0 crashes last.
        let h = History::new(
            3,
            vec![
                Event::failed(p(1), p(0)),             // 0
                Event::Internal { pid: p(2), tag: 0 }, // 1 concurrent
                Event::send(p(2), p(1), m(2, 0)),      // 2 concurrent with 0
                Event::crash(p(0)),                    // 3
                Event::recv(p(1), p(2), m(2, 0)),      // 4
            ],
        );
        let topo = rearrange_to_fs(&h).unwrap();
        let swaps = rearrange_by_swaps(&h, None).unwrap();
        for report in [&topo, &swaps] {
            assert!(
                report.history.is_fs_ordered(),
                "{}",
                report.history.to_pretty_string()
            );
            assert!(report.history.isomorphic(&h));
            assert!(report.history.validate().is_ok());
        }
        assert!(swaps.swaps > 0);
    }

    /// Events causally after the detection must NOT be moved before it.
    #[test]
    fn causal_successors_of_detection_stay_after_it() {
        // p1 detects p0, then sends m to p2; p2 receives; p0 crashes.
        // The send/recv are causally after failed_1(0) and must remain so.
        let h = History::new(
            3,
            vec![
                Event::failed(p(1), p(0)),        // 0
                Event::send(p(1), p(2), m(1, 0)), // 1: after detection (program order)
                Event::recv(p(2), p(1), m(1, 0)), // 2: after detection (message)
                Event::crash(p(0)),               // 3
            ],
        );
        for report in [
            rearrange_to_fs(&h).unwrap(),
            rearrange_by_swaps(&h, None).unwrap(),
        ] {
            let events = report.history.events();
            let fpos = events
                .iter()
                .position(|e| matches!(e, Event::Failed { .. }))
                .unwrap();
            let spos = events
                .iter()
                .position(|e| matches!(e, Event::Send { .. }))
                .unwrap();
            let rpos = events
                .iter()
                .position(|e| matches!(e, Event::Recv { .. }))
                .unwrap();
            let cpos = events
                .iter()
                .position(|e| matches!(e, Event::Crash { .. }))
                .unwrap();
            assert!(cpos < fpos, "crash must move before detection");
            assert!(fpos < spos && spos < rpos, "causal order preserved");
        }
    }

    /// The paper's Theorem 3 counterexample: satisfies Conditions 1-3 but
    /// has no isomorphic FS run. Both engines must refuse.
    #[test]
    fn theorem3_counterexample_has_no_fs_order() {
        let h = crate::scenarios::theorem3_run();
        assert!(h.validate().is_ok());
        let err = rearrange_to_fs(&h).unwrap_err();
        assert!(
            matches!(err, RearrangeError::NoFsOrder { .. }),
            "got {err:?}"
        );
        let err2 = rearrange_by_swaps(&h, None).unwrap_err();
        assert!(
            matches!(
                err2,
                RearrangeError::NoFsOrder { .. } | RearrangeError::StepLimit
            ),
            "got {err2:?}"
        );
    }

    #[test]
    fn missing_crash_is_reported_and_fixable() {
        let h = History::new(2, vec![Event::failed(p(1), p(0))]);
        let err = rearrange_to_fs(&h).unwrap_err();
        assert_eq!(
            err,
            RearrangeError::MissingCrash {
                detector: p(1),
                detected: p(0)
            }
        );
        let completed = h.complete_missing_crashes();
        let report = rearrange_to_fs(&completed).unwrap();
        assert!(report.history.is_fs_ordered());
    }

    #[test]
    fn invalid_history_is_rejected() {
        let h = History::new(2, vec![Event::recv(p(1), p(0), m(0, 0))]);
        assert!(matches!(
            rearrange_to_fs(&h),
            Err(RearrangeError::Invalid(_))
        ));
        assert!(matches!(
            rearrange_by_swaps(&h, None),
            Err(RearrangeError::Invalid(_))
        ));
    }

    #[test]
    fn two_bad_pairs_fixed_together() {
        // failed_1(0), failed_0(1)? That would be a failed-before 2-cycle
        // combined with both crashes after - impossible in FS. Instead use
        // two independent bad pairs: p2 detects p0 and p3 detects p1.
        let h = History::new(
            4,
            vec![
                Event::failed(p(2), p(0)),
                Event::failed(p(3), p(1)),
                Event::crash(p(0)),
                Event::crash(p(1)),
            ],
        );
        for report in [
            rearrange_to_fs(&h).unwrap(),
            rearrange_by_swaps(&h, None).unwrap(),
        ] {
            assert!(report.history.is_fs_ordered());
            assert!(report.history.isomorphic(&h));
            assert_eq!(report.bad_pairs, 2);
        }
    }

    #[test]
    fn swap_budget_is_respected() {
        let h = History::new(
            3,
            vec![
                Event::failed(p(1), p(0)),
                Event::Internal { pid: p(2), tag: 0 },
                Event::Internal { pid: p(2), tag: 1 },
                Event::Internal { pid: p(2), tag: 2 },
                Event::crash(p(0)),
            ],
        );
        // Needs at least one swap; a zero budget must error.
        assert_eq!(
            rearrange_by_swaps(&h, Some(0)),
            Err(RearrangeError::StepLimit)
        );
        assert!(rearrange_by_swaps(&h, Some(100)).is_ok());
    }
}
