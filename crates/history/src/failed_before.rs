//! The failed-before relation (Definition 3) and its acyclicity.
//!
//! "If `r ⊨ ◇FAILED_j(i)` in some run `r`, we say that `i` failed before
//! `j` in `r`." Acyclicity of this relation is sFS2b, the property that
//! costs the paper its replication lower bounds (Theorems 6–7) and that
//! protocols such as last-process-to-fail recovery depend on (§6).

use crate::history::History;
use sfs_asys::ProcessId;

/// The failed-before relation extracted from one history.
///
/// # Examples
///
/// ```
/// use sfs_asys::ProcessId;
/// use sfs_history::{Event, FailedBefore, History};
///
/// let p0 = ProcessId::new(0);
/// let p1 = ProcessId::new(1);
/// let h = History::new(2, vec![Event::failed(p1, p0)]); // p1 detects p0
/// let fb = FailedBefore::from_history(&h);
/// assert!(fb.failed_before(p0, p1)); // p0 failed before p1
/// assert!(fb.find_cycle().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct FailedBefore {
    n: usize,
    /// `edges[i][j]` = true iff `i` failed before `j` (i.e. `failed_j(i)`
    /// occurs).
    edges: Vec<bool>,
}

impl FailedBefore {
    /// Extracts the relation from a history.
    pub fn from_history(h: &History) -> Self {
        let n = h.n();
        let mut edges = vec![false; n * n];
        for (_, by, of) in h.detections() {
            edges[of.index() * n + by.index()] = true;
        }
        FailedBefore { n, edges }
    }

    /// Builds the relation directly from `(detector, detected)` pairs.
    pub fn from_detections(n: usize, detections: &[(ProcessId, ProcessId)]) -> Self {
        let mut edges = vec![false; n * n];
        for &(by, of) in detections {
            edges[of.index() * n + by.index()] = true;
        }
        FailedBefore { n, edges }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether `i` failed before `j` (i.e. `failed_j(i)` occurred).
    pub fn failed_before(&self, i: ProcessId, j: ProcessId) -> bool {
        self.edges[i.index() * self.n + j.index()]
    }

    /// Returns a cycle `x1 → x2 → ... → xk → x1` in the relation if one
    /// exists (a violation of sFS2b / Condition 2), else `None`.
    ///
    /// The returned vector lists the processes along the cycle without
    /// repeating the starting process at the end.
    pub fn find_cycle(&self) -> Option<Vec<ProcessId>> {
        // Iterative DFS with colors: 0 = white, 1 = on stack, 2 = done.
        let n = self.n;
        let mut color = vec![0u8; n];
        let mut parent = vec![usize::MAX; n];
        for start in 0..n {
            if color[start] != 0 {
                continue;
            }
            // stack of (node, next-neighbor-to-try)
            let mut stack = vec![(start, 0usize)];
            color[start] = 1;
            while let Some(&mut (u, ref mut next)) = stack.last_mut() {
                let mut advanced = false;
                while *next < n {
                    let v = *next;
                    *next += 1;
                    if !self.edges[u * n + v] {
                        continue;
                    }
                    match color[v] {
                        0 => {
                            parent[v] = u;
                            color[v] = 1;
                            stack.push((v, 0));
                            advanced = true;
                            break;
                        }
                        1 => {
                            // Found a back edge u -> v: unwind the cycle.
                            let mut cycle = vec![ProcessId::new(u)];
                            let mut w = u;
                            while w != v {
                                w = parent[w];
                                cycle.push(ProcessId::new(w));
                            }
                            cycle.reverse();
                            return Some(cycle);
                        }
                        _ => {}
                    }
                }
                if !advanced {
                    color[u] = 2;
                    stack.pop();
                }
            }
        }
        None
    }

    /// Whether the relation is acyclic (sFS2b / Condition 2 holds).
    pub fn is_acyclic(&self) -> bool {
        self.find_cycle().is_none()
    }

    /// Whether the relation is transitive: `i fb j ∧ j fb k ⇒ i fb k`.
    ///
    /// The paper (§6) notes that the failed-before relation of sFS is
    /// *not* transitive, and that a hypothetical stronger model with a
    /// transitive relation would let last-to-fail recovery conclude as
    /// soon as the last processes recover. This predicate lets
    /// experiments measure how often sFS runs happen to be transitive
    /// anyway.
    pub fn is_transitive(&self) -> bool {
        let n = self.n;
        for i in 0..n {
            for j in 0..n {
                if !self.edges[i * n + j] {
                    continue;
                }
                for k in 0..n {
                    if self.edges[j * n + k] && !self.edges[i * n + k] {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// The transitive closure of the relation — the strengthened
    /// "stronger version of fail-stop" the paper's §6 sketches. On an
    /// acyclic relation the closure is still acyclic and has the same
    /// sinks; recovery over the closure can rank *chains* of failures
    /// rather than only immediate predecessors.
    pub fn transitive_closure(&self) -> FailedBefore {
        let n = self.n;
        let mut edges = self.edges.clone();
        // Floyd–Warshall style closure.
        for k in 0..n {
            for i in 0..n {
                if !edges[i * n + k] {
                    continue;
                }
                for j in 0..n {
                    if edges[k * n + j] {
                        edges[i * n + j] = true;
                    }
                }
            }
        }
        FailedBefore { n, edges }
    }

    /// Processes with no outgoing failed-before edge among `candidates`:
    /// no process in `candidates` recorded them as failed. For an acyclic
    /// relation over a totally failed system these are the *last to fail*
    /// candidates of \[Ske85\].
    pub fn sinks_among(&self, candidates: &[ProcessId]) -> Vec<ProcessId> {
        candidates
            .iter()
            .copied()
            .filter(|&i| {
                candidates
                    .iter()
                    .all(|&j| i == j || !self.failed_before(i, j))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn empty_relation_is_acyclic() {
        let fb = FailedBefore::from_detections(4, &[]);
        assert!(fb.is_acyclic());
    }

    #[test]
    fn two_cycle_detected() {
        // failed_0(1) and failed_1(0): 1 failed before 0 and 0 before 1.
        let fb = FailedBefore::from_detections(2, &[(p(0), p(1)), (p(1), p(0))]);
        let cycle = fb.find_cycle().expect("cycle");
        assert_eq!(cycle.len(), 2);
    }

    #[test]
    fn three_cycle_detected() {
        // 0 before 1, 1 before 2, 2 before 0.
        let fb = FailedBefore::from_detections(3, &[(p(1), p(0)), (p(2), p(1)), (p(0), p(2))]);
        let cycle = fb.find_cycle().expect("cycle");
        assert_eq!(cycle.len(), 3);
        // Verify the cycle is real: consecutive failed-before edges.
        for (k, &x) in cycle.iter().enumerate() {
            let y = cycle[(k + 1) % cycle.len()];
            assert!(fb.failed_before(x, y), "{x} should have failed before {y}");
        }
    }

    #[test]
    fn chain_is_acyclic() {
        let fb = FailedBefore::from_detections(4, &[(p(1), p(0)), (p(2), p(1)), (p(3), p(2))]);
        assert!(fb.is_acyclic());
        assert!(fb.failed_before(p(0), p(1)));
        assert!(!fb.failed_before(p(1), p(0)));
    }

    #[test]
    fn relation_reads_from_history_events() {
        let h = History::new(3, vec![Event::failed(p(2), p(0)), Event::crash(p(0))]);
        let fb = FailedBefore::from_history(&h);
        assert!(fb.failed_before(p(0), p(2)));
        assert!(!fb.failed_before(p(2), p(0)));
    }

    #[test]
    fn sinks_identify_last_to_fail() {
        // 0 failed before 1, 1 failed before 2 => 2 is the unique sink.
        let fb = FailedBefore::from_detections(3, &[(p(1), p(0)), (p(2), p(1))]);
        let all = [p(0), p(1), p(2)];
        assert_eq!(fb.sinks_among(&all), vec![p(2)]);
    }

    #[test]
    fn cyclic_relation_has_no_sink() {
        let fb = FailedBefore::from_detections(2, &[(p(0), p(1)), (p(1), p(0))]);
        let all = [p(0), p(1)];
        assert!(fb.sinks_among(&all).is_empty());
    }

    #[test]
    fn transitivity_detection_and_closure() {
        // 0 fb 1, 1 fb 2, missing 0 fb 2: not transitive.
        let fb = FailedBefore::from_detections(3, &[(p(1), p(0)), (p(2), p(1))]);
        assert!(!fb.is_transitive());
        let closed = fb.transitive_closure();
        assert!(closed.is_transitive());
        assert!(
            closed.failed_before(p(0), p(2)),
            "closure adds the chain edge"
        );
        // Closure of an acyclic relation stays acyclic with the same sinks.
        assert!(closed.is_acyclic());
        let all = [p(0), p(1), p(2)];
        assert_eq!(fb.sinks_among(&all), closed.sinks_among(&all));
    }

    #[test]
    fn closure_of_transitive_relation_is_identity() {
        let fb = FailedBefore::from_detections(3, &[(p(1), p(0)), (p(2), p(1)), (p(2), p(0))]);
        assert!(fb.is_transitive());
        let closed = fb.transitive_closure();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(
                    fb.failed_before(p(i), p(j)),
                    closed.failed_before(p(i), p(j))
                );
            }
        }
    }

    #[test]
    fn empty_relation_is_trivially_transitive() {
        assert!(FailedBefore::from_detections(4, &[]).is_transitive());
    }

    #[test]
    fn self_loops_are_cycles() {
        // failed_0(0): 0 failed before 0 — violates sFS2c and forms a cycle.
        let fb = FailedBefore::from_detections(2, &[(p(0), p(0))]);
        let cycle = fb.find_cycle().expect("self-loop cycle");
        assert_eq!(cycle, vec![p(0)]);
    }
}
