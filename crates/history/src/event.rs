//! The paper's event alphabet (§2, Appendix A.1).
//!
//! An event changes the local state of exactly one process and at most one
//! incident channel. The four named event kinds of the paper are
//! `send_i(j, m)`, `recv_i(j, m)`, `crash_i`, and `failed_i(j)`; we add an
//! `internal` kind for state changes that touch no channel (timer firings
//! and the like), which behaves like any other single-process event under
//! happens-before.

use serde::{Deserialize, Serialize};
use sfs_asys::{MsgId, ProcessId};
use std::fmt;

/// One event of a run, in the paper's alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Event {
    /// `send_from(to, msg)`: `from` appends `msg` to channel `C_{from,to}`.
    Send {
        /// The sending process (whose state changes).
        from: ProcessId,
        /// The destination process.
        to: ProcessId,
        /// The unique message.
        msg: MsgId,
    },
    /// `recv_by(from, msg)`: `by` removes `msg` from the head of
    /// `C_{from,by}`.
    Recv {
        /// The receiving process (whose state changes).
        by: ProcessId,
        /// The original sender.
        from: ProcessId,
        /// The unique message.
        msg: MsgId,
    },
    /// `crash_pid`: the variable `crash_pid` becomes true; the process
    /// executes no further events.
    Crash {
        /// The crashing process.
        pid: ProcessId,
    },
    /// `failed_by(of)`: the variable `failed_by(of)` becomes true.
    Failed {
        /// The detecting process (whose state changes).
        by: ProcessId,
        /// The process detected as failed.
        of: ProcessId,
    },
    /// A local state change touching no channel.
    Internal {
        /// The process whose state changes.
        pid: ProcessId,
        /// Discriminator so distinct internal events compare unequal.
        tag: u64,
    },
}

impl Event {
    /// The process whose local state this event changes.
    pub fn process(&self) -> ProcessId {
        match *self {
            Event::Send { from, .. } => from,
            Event::Recv { by, .. } => by,
            Event::Crash { pid } => pid,
            Event::Failed { by, .. } => by,
            Event::Internal { pid, .. } => pid,
        }
    }

    /// Convenience constructor for `send_from(to, msg)`.
    pub fn send(from: ProcessId, to: ProcessId, msg: MsgId) -> Self {
        Event::Send { from, to, msg }
    }

    /// Convenience constructor for `recv_by(from, msg)`.
    pub fn recv(by: ProcessId, from: ProcessId, msg: MsgId) -> Self {
        Event::Recv { by, from, msg }
    }

    /// Convenience constructor for `crash_pid`.
    pub fn crash(pid: ProcessId) -> Self {
        Event::Crash { pid }
    }

    /// Convenience constructor for `failed_by(of)`.
    pub fn failed(by: ProcessId, of: ProcessId) -> Self {
        Event::Failed { by, of }
    }

    /// Whether this is a crash event of `pid`.
    pub fn is_crash_of(&self, p: ProcessId) -> bool {
        matches!(*self, Event::Crash { pid } if pid == p)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Event::Send { from, to, msg } => write!(f, "send_{from}({to},{msg})"),
            Event::Recv { by, from, msg } => write!(f, "recv_{by}({from},{msg})"),
            Event::Crash { pid } => write!(f, "crash_{pid}"),
            Event::Failed { by, of } => write!(f, "failed_{by}({of})"),
            Event::Internal { pid, tag } => write!(f, "internal_{pid}#{tag}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_attribution() {
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        let m = MsgId::new(p0, 0);
        assert_eq!(Event::send(p0, p1, m).process(), p0);
        assert_eq!(Event::recv(p1, p0, m).process(), p1);
        assert_eq!(Event::crash(p1).process(), p1);
        assert_eq!(Event::failed(p0, p1).process(), p0);
        assert_eq!(Event::Internal { pid: p1, tag: 3 }.process(), p1);
    }

    #[test]
    fn display_matches_paper_notation() {
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        let m = MsgId::new(p0, 2);
        assert_eq!(Event::send(p0, p1, m).to_string(), "send_p0(p1,m0.2)");
        assert_eq!(Event::failed(p1, p0).to_string(), "failed_p1(p0)");
        assert_eq!(Event::crash(p0).to_string(), "crash_p0");
    }

    #[test]
    fn is_crash_of_distinguishes_processes() {
        let e = Event::crash(ProcessId::new(2));
        assert!(e.is_crash_of(ProcessId::new(2)));
        assert!(!e.is_crash_of(ProcessId::new(1)));
        assert!(!Event::failed(ProcessId::new(2), ProcessId::new(1)).is_crash_of(ProcessId::new(2)));
    }
}
