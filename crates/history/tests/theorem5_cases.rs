//! The Appendix A.2 case analysis as executable tests.
//!
//! Theorem 5's proof fixes a *bad pair* `(x, y)` — `failed_y(x)` preceding
//! `crash_x` — and analyses all twelve placements of a second pair
//! `(a, b)`'s events relative to it. These tests construct every
//! placement and verify the rearrangement engines handle each: bad pairs
//! are fixed, good pairs stay fixable, causality is never violated.

use sfs_asys::{MsgId, ProcessId};
use sfs_history::{rearrange_by_swaps, rearrange_to_fs, Event, History, RearrangeError};

// The four protagonists, as in the appendix: x, y, a, b.
const X: ProcessId = ProcessId::new(0);
const Y: ProcessId = ProcessId::new(1);
const A: ProcessId = ProcessId::new(2);
const B: ProcessId = ProcessId::new(3);

/// The four events of the two pairs.
fn failed_y_x() -> Event {
    Event::failed(Y, X)
}
fn crash_x() -> Event {
    Event::crash(X)
}
fn failed_b_a() -> Event {
    Event::failed(B, A)
}
fn crash_a() -> Event {
    Event::crash(A)
}

/// Verifies both engines succeed on `h` and produce sound outputs.
fn assert_rearrangeable(h: &History, label: &str) {
    assert!(h.validate().is_ok(), "{label}: invalid input");
    let topo = rearrange_to_fs(h).unwrap_or_else(|e| panic!("{label}: topo failed: {e}"));
    let swaps =
        rearrange_by_swaps(h, None).unwrap_or_else(|e| panic!("{label}: swaps failed: {e}"));
    for (engine, r) in [("topo", &topo), ("swaps", &swaps)] {
        assert!(
            r.history.is_fs_ordered(),
            "{label}/{engine}: not FS ordered"
        );
        assert!(r.history.isomorphic(h), "{label}/{engine}: not isomorphic");
        assert!(
            r.history.validate().is_ok(),
            "{label}/{engine}: invalid output"
        );
    }
    assert_eq!(
        topo.bad_pairs, swaps.bad_pairs,
        "{label}: engines disagree on bad pairs"
    );
}

/// All 24 interleavings of the four independent events (no messages, so
/// no happens-before constraints beyond the per-process singletons): the
/// twelve appendix placements and their mirrors. Every one must be
/// rearrangeable.
#[test]
fn all_placements_of_two_pairs_without_causality() {
    let events = [failed_y_x(), crash_x(), failed_b_a(), crash_a()];
    let mut count = 0;
    // Enumerate permutations of 4 indices.
    let mut idx = [0usize, 1, 2, 3];
    let mut perms = Vec::new();
    heap_permutations(&mut idx, 4, &mut perms);
    for perm in perms {
        let h = History::new(4, perm.iter().map(|&i| events[i]).collect());
        assert_rearrangeable(&h, &format!("permutation {perm:?}"));
        count += 1;
    }
    assert_eq!(count, 24);
}

fn heap_permutations(arr: &mut [usize; 4], k: usize, out: &mut Vec<[usize; 4]>) {
    if k == 1 {
        out.push(*arr);
        return;
    }
    for i in 0..k {
        heap_permutations(arr, k - 1, out);
        if k.is_multiple_of(2) {
            arr.swap(i, k - 1);
        } else {
            arr.swap(0, k - 1);
        }
    }
}

/// Case 7 of the appendix with real causality: the fix of `(x, y)` must
/// move `crash_x`'s cone without disturbing the still-bad `(a, b)` more
/// than a further application can fix.
///
/// History: `failed_b(a) … failed_y(x) … crash_x … crash_a`, where
/// `failed_y(x) → crash_a` through a message chain (the appendix's
/// "depends on whether failed_y(x) → crash_a" branch).
#[test]
fn case7_with_message_chain() {
    let m = MsgId::new(Y, 0);
    let h = History::new(
        4,
        vec![
            failed_b_a(),
            failed_y_x(),
            Event::send(Y, A, m),
            Event::recv(A, Y, m),
            crash_x(),
            crash_a(),
        ],
    );
    assert_rearrangeable(&h, "case 7");
}

/// Case 12's benign sibling: one pair's fix requires moving events past
/// the other pair, but no constraint cycle exists because only ONE of the
/// two message chains of Theorem 3 is present.
#[test]
fn half_of_theorem3_is_still_rearrangeable() {
    let m1 = MsgId::new(Y, 0);
    let h = History::new(
        4,
        vec![
            failed_y_x(),
            Event::send(Y, A, m1),
            Event::recv(A, Y, m1),
            failed_b_a(),
            crash_a(),
            crash_x(),
        ],
    );
    // Constraints: crash_x < failed_y(x) → … → recv_a < crash_a and
    // crash_a < failed_b(a). All satisfiable: crash_x first, then the
    // chain, then crash_a, then failed_b(a).
    assert_rearrangeable(&h, "half-theorem3");
    // Sanity: the rearranged order indeed begins with crash_x.
    let fixed = rearrange_to_fs(&h).expect("checked").history;
    assert_eq!(fixed.events()[0], crash_x());
}

/// Adding the second chain completes Theorem 3 and must flip the verdict
/// to NoFsOrder — the boundary between case 12's fixable and unfixable
/// branches.
#[test]
fn completing_theorem3_flips_to_no_fs_order() {
    let m1 = MsgId::new(Y, 0);
    let m2 = MsgId::new(B, 0);
    let h = History::new(
        4,
        vec![
            failed_y_x(),
            Event::send(Y, A, m1),
            Event::recv(A, Y, m1),
            crash_a(),
            failed_b_a(),
            Event::send(B, X, m2),
            Event::recv(X, B, m2),
            crash_x(),
        ],
    );
    assert!(h.validate().is_ok());
    assert!(matches!(
        rearrange_to_fs(&h),
        Err(RearrangeError::NoFsOrder { .. })
    ));
}

/// Three bad pairs at once: the outer induction of the appendix.
#[test]
fn three_simultaneous_bad_pairs() {
    let h = History::new(
        6,
        vec![
            Event::failed(ProcessId::new(3), ProcessId::new(0)),
            Event::failed(ProcessId::new(4), ProcessId::new(1)),
            Event::failed(ProcessId::new(5), ProcessId::new(2)),
            Event::crash(ProcessId::new(2)),
            Event::crash(ProcessId::new(0)),
            Event::crash(ProcessId::new(1)),
        ],
    );
    assert_rearrangeable(&h, "three bad pairs");
    let report = rearrange_to_fs(&h).expect("checked");
    assert_eq!(report.bad_pairs, 3);
}

/// A bad pair whose detection has a long causal tail: everything after
/// `failed_y(x)` in y's program order must stay after it.
#[test]
fn long_causal_tail_stays_ordered() {
    let msgs: Vec<MsgId> = (0..4).map(|k| MsgId::new(Y, k)).collect();
    let mut events = vec![failed_y_x()];
    // y sends a chain through a, b and back to y.
    events.push(Event::send(Y, A, msgs[0]));
    events.push(Event::recv(A, Y, msgs[0]));
    let ma = MsgId::new(A, 0);
    events.push(Event::send(A, B, ma));
    events.push(Event::recv(B, A, ma));
    events.push(crash_x());
    let h = History::new(4, events);
    assert_rearrangeable(&h, "long tail");
    let fixed = rearrange_to_fs(&h).expect("checked").history;
    // crash_x must be first; the causal chain order must be intact.
    assert_eq!(fixed.events()[0], crash_x());
    let pos = |e: &Event| fixed.events().iter().position(|x| x == e).expect("present");
    assert!(pos(&failed_y_x()) < pos(&Event::send(Y, A, msgs[0])));
    assert!(pos(&Event::send(Y, A, msgs[0])) < pos(&Event::recv(A, Y, msgs[0])));
    assert!(pos(&Event::recv(A, Y, msgs[0])) < pos(&Event::send(A, B, ma)));
}
