//! Property-based tests for the formal-history machinery: validity of
//! generated runs, happens-before laws, isomorphism under reordering, and
//! soundness of both rearrangement engines.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfs_asys::{MsgId, ProcessId};
use sfs_history::{
    rearrange_by_swaps, rearrange_to_fs, Event, FailedBefore, HappensBefore, History,
    RearrangeError,
};
use std::collections::HashMap;

/// Generates a random *valid* history by simulating the state machine of
/// the model directly: at each step pick a live process and a legal
/// action.
fn random_valid_history(n: usize, steps: usize, seed: u64) -> History {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = Vec::new();
    let mut crashed = vec![false; n];
    let mut failed: Vec<Vec<bool>> = vec![vec![false; n]; n];
    let mut msg_seq = vec![0u64; n];
    // Per-channel in-flight queues (FIFO): (from, to) -> msgs.
    let mut channels: HashMap<(usize, usize), Vec<MsgId>> = HashMap::new();
    for _ in 0..steps {
        let actor = rng.gen_range(0..n);
        if crashed[actor] {
            continue;
        }
        let p = ProcessId::new(actor);
        match rng.gen_range(0..100) {
            0..=39 => {
                // send to a random destination
                let dst = rng.gen_range(0..n);
                let m = MsgId::new(p, msg_seq[actor]);
                msg_seq[actor] += 1;
                channels.entry((actor, dst)).or_default().push(m);
                events.push(Event::send(p, ProcessId::new(dst), m));
            }
            40..=79 => {
                // receive the head of a random nonempty incoming channel
                let sources: Vec<usize> = (0..n)
                    .filter(|&s| channels.get(&(s, actor)).is_some_and(|q| !q.is_empty()))
                    .collect();
                if let Some(&src) = sources.get(
                    rng.gen_range(0..sources.len().max(1))
                        .min(sources.len().saturating_sub(1)),
                ) {
                    let m = channels.get_mut(&(src, actor)).expect("nonempty").remove(0);
                    events.push(Event::recv(p, ProcessId::new(src), m));
                }
            }
            80..=89 => {
                // detect a random other process (stable: once only)
                let of = rng.gen_range(0..n);
                if of != actor && !failed[actor][of] {
                    failed[actor][of] = true;
                    events.push(Event::failed(p, ProcessId::new(of)));
                }
            }
            90..=93 => {
                crashed[actor] = true;
                events.push(Event::crash(p));
            }
            _ => {
                events.push(Event::Internal {
                    pid: p,
                    tag: rng.gen(),
                });
            }
        }
    }
    History::new(n, events)
}

/// Reference happens-before: the textbook formulation with one cloned
/// `Vec<u32>` clock per event — exactly the representation the flat-arena
/// `HappensBefore` replaced. Kept naive on purpose; the property tests
/// below hold the optimized version to this one.
struct NaiveHb {
    clocks: Vec<Vec<u32>>,
    owner: Vec<usize>,
}

impl NaiveHb {
    fn compute(h: &History) -> Self {
        let n = h.n();
        let mut current: Vec<Vec<u32>> = vec![vec![0; n]; n];
        let mut send_clock: HashMap<MsgId, Vec<u32>> = HashMap::new();
        let mut clocks = Vec::new();
        let mut owner = Vec::new();
        for e in h.events() {
            let p = e.process().index();
            if let Event::Recv { msg, .. } = e {
                let sender = send_clock.get(msg).expect("valid history");
                for (c, s) in current[p].iter_mut().zip(sender) {
                    *c = (*c).max(*s);
                }
            }
            current[p][p] += 1;
            if let Event::Send { msg, .. } = e {
                send_clock.insert(*msg, current[p].clone());
            }
            clocks.push(current[p].clone());
            owner.push(p);
        }
        NaiveHb { clocks, owner }
    }

    fn leq(&self, a: usize, b: usize) -> bool {
        if a == b {
            return true;
        }
        let pa = self.owner[a];
        self.clocks[b][pa] >= self.clocks[a][pa]
    }
}

/// Reference swap engine: the pre-optimization implementation that
/// re-scans `order` for positions instead of maintaining the inverse
/// permutation. The optimized `rearrange_by_swaps` must reproduce its
/// output (event order AND swap count) exactly.
fn rearrange_by_swaps_reference(
    h: &History,
    max_swaps: Option<usize>,
) -> Result<(History, usize), ()> {
    h.validate().map_err(|_| ())?;
    let crashed: std::collections::HashSet<ProcessId> = h.crashed().into_iter().collect();
    for (_, _, of) in h.detections() {
        if !crashed.contains(&of) {
            return Err(());
        }
    }
    let len = h.len();
    let budget = max_swaps.unwrap_or(len * len + 16);
    let hb = HappensBefore::compute(h);
    let mut order: Vec<usize> = (0..len).collect();
    let mut swaps = 0usize;
    'outer: loop {
        let mut crashed_at: HashMap<ProcessId, usize> = HashMap::new();
        let mut bad: Option<(usize, usize)> = None;
        'scan: for (pos, &idx) in order.iter().enumerate() {
            match h.events()[idx] {
                Event::Crash { pid } => {
                    crashed_at.insert(pid, pos);
                }
                Event::Failed { of, .. } if !crashed_at.contains_key(&of) => {
                    let crash_pos = order[pos..]
                        .iter()
                        .position(|&k| h.events()[k].is_crash_of(of))
                        .map(|off| pos + off)
                        .expect("crash presence checked above");
                    bad = Some((idx, order[crash_pos]));
                    break 'scan;
                }
                _ => {}
            }
        }
        let Some((failed_idx, crash_idx)) = bad else {
            break;
        };
        loop {
            let failed_pos = order
                .iter()
                .position(|&k| k == failed_idx)
                .expect("present");
            let crash_pos = order.iter().position(|&k| k == crash_idx).expect("present");
            if crash_pos < failed_pos {
                continue 'outer;
            }
            let movable = order[failed_pos + 1..=crash_pos]
                .iter()
                .position(|&idx| !hb.leq(failed_idx, idx))
                .map(|offset| failed_pos + 1 + offset);
            let Some(u) = movable else { return Err(()) };
            for pos in (failed_pos..u).rev() {
                order.swap(pos, pos + 1);
                swaps += 1;
                if swaps > budget {
                    return Err(());
                }
            }
        }
    }
    let events = order.iter().map(|&i| h.events()[i]).collect();
    Ok((History::new(h.n(), events), swaps))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The generator's output is always a valid run prefix.
    #[test]
    fn generated_histories_are_valid(
        n in 2usize..6,
        steps in 1usize..120,
        seed in any::<u64>(),
    ) {
        let h = random_valid_history(n, steps, seed);
        prop_assert!(h.validate().is_ok(), "{:?}\n{}", h.validate(), h.to_pretty_string());
    }

    /// Happens-before is a partial order: reflexive, antisymmetric on
    /// distinct events, and transitive.
    #[test]
    fn happens_before_is_a_partial_order(
        n in 2usize..5,
        steps in 1usize..60,
        seed in any::<u64>(),
    ) {
        let h = random_valid_history(n, steps, seed);
        let hb = HappensBefore::compute(&h);
        let len = h.len();
        for a in 0..len {
            prop_assert!(hb.leq(a, a), "reflexivity at {a}");
        }
        // Sampled antisymmetry + transitivity (full cubic check is too
        // slow at the high end).
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabc);
        for _ in 0..200 {
            if len < 2 { break; }
            let a = rng.gen_range(0..len);
            let b = rng.gen_range(0..len);
            if a != b && hb.leq(a, b) && hb.leq(b, a) {
                prop_assert!(false, "antisymmetry violated between {a} and {b}");
            }
            let c = rng.gen_range(0..len);
            if hb.leq(a, b) && hb.leq(b, c) {
                prop_assert!(hb.leq(a, c), "transitivity violated {a}->{b}->{c}");
            }
        }
    }

    /// Happens-before respects history position: `a → b` implies `a`
    /// appears no later than `b`.
    #[test]
    fn happens_before_respects_program_position(
        n in 2usize..5,
        steps in 1usize..60,
        seed in any::<u64>(),
    ) {
        let h = random_valid_history(n, steps, seed);
        let hb = HappensBefore::compute(&h);
        for a in 0..h.len() {
            for b in 0..a {
                prop_assert!(!hb.leq(a, b), "later event {a} happens-before earlier {b}");
            }
        }
    }

    /// Swapping two adjacent hb-unrelated events yields a valid history
    /// isomorphic to the original.
    #[test]
    fn legal_adjacent_swaps_preserve_validity_and_isomorphism(
        n in 2usize..5,
        steps in 2usize..60,
        seed in any::<u64>(),
        pos_seed in any::<u64>(),
    ) {
        let h = random_valid_history(n, steps, seed);
        prop_assume!(h.len() >= 2);
        let hb = HappensBefore::compute(&h);
        let mut rng = StdRng::seed_from_u64(pos_seed);
        // Find a swappable adjacent pair.
        let candidates: Vec<usize> =
            (0..h.len() - 1).filter(|&i| !hb.leq(i, i + 1)).collect();
        prop_assume!(!candidates.is_empty());
        let i = candidates[rng.gen_range(0..candidates.len())];
        let mut events = h.events().to_vec();
        events.swap(i, i + 1);
        let swapped = History::new(h.n(), events);
        prop_assert!(swapped.validate().is_ok(), "swap at {i} broke validity");
        prop_assert!(swapped.isomorphic(&h), "swap at {i} broke isomorphism");
    }

    /// Rearrangement soundness: whenever either engine succeeds, its
    /// output is a valid, FS-ordered history isomorphic to the input; and
    /// the swap engine never succeeds where the topological engine proves
    /// no FS order exists.
    #[test]
    fn rearrangement_engines_are_sound_and_consistent(
        n in 2usize..5,
        steps in 1usize..80,
        seed in any::<u64>(),
    ) {
        let h = random_valid_history(n, steps, seed).complete_missing_crashes();
        let topo = rearrange_to_fs(&h);
        let swaps = rearrange_by_swaps(&h, None);
        match (&topo, &swaps) {
            (Ok(a), Ok(b)) => {
                for r in [a, b] {
                    prop_assert!(r.history.validate().is_ok());
                    prop_assert!(r.history.is_fs_ordered());
                    prop_assert!(r.history.isomorphic(&h));
                }
                prop_assert_eq!(a.bad_pairs, b.bad_pairs);
            }
            (Err(RearrangeError::NoFsOrder { .. }), Ok(_)) => {
                prop_assert!(false, "swap engine built an FS order the topo engine proved impossible");
            }
            (Ok(_), Err(RearrangeError::NoFsOrder { .. })) => {
                // Acceptable in principle only if the swap engine is
                // incomplete; the appendix algorithm is only guaranteed on
                // sFS runs. But flag StepLimit instead of NoFsOrder here:
                prop_assert!(false, "swap engine claimed NoFsOrder where one exists");
            }
            _ => {} // both failed, or swap hit its step budget
        }
    }

    /// `complete_missing_crashes` is idempotent and always yields a
    /// history on which rearrangement never fails with `MissingCrash`.
    #[test]
    fn completion_removes_missing_crash_errors(
        n in 2usize..5,
        steps in 1usize..80,
        seed in any::<u64>(),
    ) {
        let h = random_valid_history(n, steps, seed);
        let completed = h.complete_missing_crashes();
        prop_assert!(completed.validate().is_ok());
        prop_assert_eq!(completed.complete_missing_crashes(), completed.clone());
        let missing_crash =
            matches!(rearrange_to_fs(&completed), Err(RearrangeError::MissingCrash { .. }));
        prop_assert!(!missing_crash, "completion left a MissingCrash error");
    }

    /// The flat-arena `HappensBefore` agrees with the naive cloned-clock
    /// reference on every event pair of random valid histories, and its
    /// arena rows equal the reference's per-event clocks.
    #[test]
    fn flat_arena_hb_matches_naive_reference(
        n in 2usize..6,
        steps in 1usize..100,
        seed in any::<u64>(),
    ) {
        let h = random_valid_history(n, steps, seed);
        let fast = HappensBefore::compute(&h);
        let naive = NaiveHb::compute(&h);
        prop_assert_eq!(fast.len(), naive.clocks.len());
        for i in 0..h.len() {
            prop_assert_eq!(fast.clock(i), naive.clocks[i].as_slice(), "clock row {}", i);
            prop_assert_eq!(fast.owner(i), naive.owner[i], "owner of {}", i);
            for j in 0..h.len() {
                prop_assert_eq!(
                    fast.leq(i, j),
                    naive.leq(i, j),
                    "leq({}, {}) diverged", i, j
                );
            }
        }
    }

    /// Regression for the incremental-position rewrite: the optimized
    /// swap engine reproduces the reference implementation's output —
    /// same success/failure, same event order, same swap count.
    #[test]
    fn swap_engine_matches_reference_implementation(
        n in 2usize..5,
        steps in 1usize..80,
        seed in any::<u64>(),
    ) {
        let h = random_valid_history(n, steps, seed).complete_missing_crashes();
        let optimized = rearrange_by_swaps(&h, None);
        let reference = rearrange_by_swaps_reference(&h, None);
        match (optimized, reference) {
            (Ok(report), Ok((ref_history, ref_swaps))) => {
                prop_assert_eq!(report.history, ref_history);
                prop_assert_eq!(report.swaps, ref_swaps);
            }
            (Err(_), Err(())) => {}
            (opt, reference) => {
                prop_assert!(
                    false,
                    "engines diverged: optimized {:?} vs reference ok={}",
                    opt.map(|r| r.swaps), reference.is_ok()
                );
            }
        }
    }

    /// The failed-before relation extracted from a history agrees with a
    /// direct scan of its detection events, and `sinks_among` returns only
    /// processes nobody detected.
    #[test]
    fn failed_before_matches_detections(
        n in 2usize..6,
        steps in 1usize..100,
        seed in any::<u64>(),
    ) {
        let h = random_valid_history(n, steps, seed);
        let fb = FailedBefore::from_history(&h);
        for (_, by, of) in h.detections() {
            prop_assert!(fb.failed_before(of, by));
        }
        let everyone: Vec<ProcessId> = ProcessId::all(n).collect();
        for sink in fb.sinks_among(&everyone) {
            for (_, _, of) in h.detections() {
                prop_assert_ne!(of, sink, "sink {} was detected by someone", sink);
            }
        }
    }
}
