//! B1/B2 — protocol-level microbenchmarks: the cost of one simulated
//! detection round as the system grows, and the two quorum policies
//! side by side.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfs::{ClusterSpec, QuorumPolicy};
use sfs_asys::ProcessId;
use std::hint::black_box;

/// One full simulated run: a single erroneous suspicion, detection by all
/// survivors, quiescence.
fn one_round(n: usize, t: usize, policy: QuorumPolicy, seed: u64) -> u64 {
    let trace = ClusterSpec::new(n, t)
        .quorum(policy)
        .seed(seed)
        .suspect(ProcessId::new(1), ProcessId::new(0), 10)
        .run();
    trace.stats().messages_sent
}

fn bench_detection_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("detection_round");
    for &(n, t) in &[(5usize, 2usize), (10, 3), (17, 4), (26, 5), (37, 6)] {
        group.bench_with_input(BenchmarkId::new("fixed_min", n), &n, |b, &n| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(one_round(n, t, QuorumPolicy::FixedMinimum, seed))
            })
        });
        group.bench_with_input(BenchmarkId::new("wait_for_all", n), &n, |b, &n| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(one_round(n, t, QuorumPolicy::WaitForAll, seed))
            })
        });
    }
    group.finish();
}

fn bench_concurrent_suspicions(c: &mut Criterion) {
    let mut group = c.benchmark_group("concurrent_suspicions");
    for &victims in &[1usize, 2, 3, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(victims),
            &victims,
            |b, &victims| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    let mut spec = ClusterSpec::new(26, 5).seed(seed);
                    for v in 0..victims {
                        spec = spec.suspect(
                            ProcessId::new(victims + v),
                            ProcessId::new(v),
                            10 + v as u64,
                        );
                    }
                    black_box(spec.run().stats().detections)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_detection_round, bench_concurrent_suspicions);
criterion_main!(benches);
