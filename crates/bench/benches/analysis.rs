//! B3/B4 — formal-analysis microbenchmarks: happens-before construction,
//! the two Theorem 5 rearrangement engines, and the property-checker
//! suite, as a function of history length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfs_bench::{random_sfs_run, E1Variant};
use sfs_history::{rearrange_by_swaps, rearrange_to_fs, HappensBefore, History};
use sfs_tlogic::properties;
use std::hint::black_box;

/// Histories of growing size from real protocol runs.
fn histories() -> Vec<(usize, History)> {
    [(5usize, 2usize), (10, 3), (17, 4), (26, 5)]
        .iter()
        .map(|&(n, t)| {
            let trace = random_sfs_run(n, t, E1Variant::Standard, 7);
            let h = History::from_trace(&trace).complete_missing_crashes();
            (h.len(), h)
        })
        .collect()
}

fn bench_happens_before(c: &mut Criterion) {
    let mut group = c.benchmark_group("happens_before");
    for (len, h) in histories() {
        group.bench_with_input(BenchmarkId::from_parameter(len), &h, |b, h| {
            b.iter(|| black_box(HappensBefore::compute(h)))
        });
    }
    group.finish();
}

fn bench_rearrange(c: &mut Criterion) {
    let mut group = c.benchmark_group("rearrange");
    for (len, h) in histories() {
        group.bench_with_input(BenchmarkId::new("topological", len), &h, |b, h| {
            b.iter(|| black_box(rearrange_to_fs(h).expect("sFS run")))
        });
        group.bench_with_input(BenchmarkId::new("paper_swaps", len), &h, |b, h| {
            b.iter(|| black_box(rearrange_by_swaps(h, None).expect("sFS run")))
        });
    }
    group.finish();
}

fn bench_property_suite(c: &mut Criterion) {
    let mut group = c.benchmark_group("property_suite");
    for (len, h) in histories() {
        group.bench_with_input(BenchmarkId::from_parameter(len), &h, |b, h| {
            b.iter(|| black_box(properties::check_sfs_suite(h, true)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_happens_before,
    bench_rearrange,
    bench_property_suite
);
criterion_main!(benches);
