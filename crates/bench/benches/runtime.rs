//! B5 — threaded-runtime benchmark: round-trip of the same protocol
//! code over real threads and crossbeam channels, measured to genuine
//! quiescence through the runtime's outstanding-count handshake (no
//! sleeps — the event-driven router finishes at compute speed).

use criterion::{criterion_group, criterion_main, Criterion};
use sfs::{NullApp, SfsConfig, SfsProcess};
use sfs_asys::net::{Runtime, RuntimeConfig};
use std::hint::black_box;
use std::time::Duration;

fn bench_threaded_spawn_detect(c: &mut Criterion) {
    let mut group = c.benchmark_group("threaded_runtime");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    group.bench_function("spawn_inject_detect_n4", |b| {
        b.iter(|| {
            let n = 4;
            let rt = Runtime::spawn(n, RuntimeConfig::default(), |_| {
                let config = SfsConfig::new(n, 1).heartbeat(None);
                Box::new(SfsProcess::new(config, NullApp).expect("feasible"))
            });
            rt.inject_external(
                sfs_asys::ProcessId::new(1),
                sfs::SfsMsg::Control(sfs::Control::Suspect {
                    suspect: sfs_asys::ProcessId::new(0),
                }),
            );
            assert!(rt.drain(Duration::from_secs(10)), "cascade quiesces");
            let trace = rt.shutdown();
            black_box(trace.stats().detections)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_threaded_spawn_detect);
criterion_main!(benches);
