//! B6 — batched vs unbatched delivery (ISSUE E11 satellite): the same
//! traffic through the threaded router's per-destination coalescing fast
//! path and through the one-channel-send-per-message baseline, plus the
//! simulator's flush-grouping twin.
//!
//! The threaded workload is an all-to-all broadcast storm behind a small
//! link delay, so every drain of the router heap finds many same-instant
//! same-destination deliveries — the shape batching exists for (a
//! detection round is exactly such a storm).

use criterion::{criterion_group, criterion_main, Criterion};
use sfs_asys::net::{Runtime, RuntimeConfig};
use sfs_asys::{Context, Process, ProcessId, Sim, TimerId};
use std::hint::black_box;
use std::time::Duration;

/// Broadcasts `rounds` waves to every peer, one wave per timer tick.
struct Storm {
    rounds: u32,
    sent: u32,
}

impl Process<u32> for Storm {
    fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
        ctx.set_timer(2);
    }
    fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
    fn on_timer(&mut self, ctx: &mut Context<'_, u32>, _: TimerId) {
        ctx.broadcast(self.sent, false);
        self.sent += 1;
        if self.sent < self.rounds {
            ctx.set_timer(2);
        }
    }
}

/// Broadcasts `waves` waves to every peer immediately on start: behind
/// the link delay they all come due in one router drain, which is the
/// batching fast path's target shape (a detection round is such a storm,
/// at Θ(n²) messages).
struct FloodAll {
    waves: u32,
}

impl Process<u32> for FloodAll {
    fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
        for k in 0..self.waves {
            ctx.broadcast(k, false);
        }
    }
    fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
}

fn bench_router_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("router_delivery");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    let n = 8;
    let waves = 300; // 300 · 8 · 7 = 16 800 same-instant deliveries
    for batch in [false, true] {
        let id = format!(
            "same_instant_flood_n8/{}",
            if batch { "batched" } else { "plain" }
        );
        group.bench_function(id, |b| {
            b.iter(|| {
                let config = RuntimeConfig {
                    batch,
                    delay: Some(Box::new(|_, _| 5)),
                    ..RuntimeConfig::default()
                };
                let rt = Runtime::spawn(n, config, |_| {
                    Box::new(FloodAll { waves }) as Box<dyn Process<u32> + Send>
                });
                assert!(rt.drain(Duration::from_secs(20)), "flood must quiesce");
                let trace = rt.shutdown();
                debug_assert_eq!(
                    trace.stats().messages_delivered,
                    u64::from(waves) * (n as u64) * (n as u64 - 1)
                );
                black_box(trace.stats().messages_delivered)
            })
        });
    }
    group.finish();
}

fn bench_sim_flush(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_delivery");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(4));
    let n = 16;
    let rounds = 50;
    for batch in [false, true] {
        let id = format!(
            "broadcast_storm_n16/{}",
            if batch { "batched" } else { "plain" }
        );
        group.bench_function(id, |b| {
            b.iter(|| {
                let sim = Sim::<u32>::builder(n)
                    .seed(7)
                    .batch_deliveries(batch)
                    .build(|_| Box::new(Storm { rounds, sent: 0 }));
                let trace = sim.run();
                black_box(trace.stats().messages_delivered)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_router_batching, bench_sim_flush);
criterion_main!(benches);
