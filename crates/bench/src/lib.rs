//! # sfs-bench — experiment harness for the reproduction
//!
//! One experiment function per table in EXPERIMENTS.md (E1–E13), shared
//! by the `e*` binaries and the integration tests, plus the Criterion
//! microbenchmarks under `benches/`. Seed sweeps (E1–E8) fan out one
//! rayon task per seed, the E9 schedule exploration one rayon task per
//! root branch of the schedule tree, the E10 conformance sweep one rayon
//! task per instance, and the E11 service sweep one rayon task per
//! shard; all fold results in input order, so the tables are identical
//! to a serial run while using every core.
//!
//! Each binary also writes a machine-readable `BENCH_<exp>.json` summary
//! (wall time, simulator events, events/sec) via [`report`]; those files
//! are the repository's performance trajectory.
//!
//! Regenerate everything with:
//!
//! ```text
//! for e in e1_sfs_properties e2_witness_bound e3_replication_frontier \
//!          e4_necessary_conditions e5_cost_of_detection e6_last_to_fail \
//!          e7_election e8_transitivity e9_explore e10_conformance \
//!          e11_service e12_faulty_net e13_soak; do \
//!     cargo run --release -p sfs-bench --bin $e; done
//! cargo bench --workspace
//! ```

#![warn(missing_docs)]

pub mod e11;
pub mod e12;
pub mod e13;
pub mod experiments;
pub mod report;
pub mod table;

pub use e11::{run_e11, E11Row};
pub use e12::{e12_cell, e12_scenarios, run_e12, E12Cell};
pub use e13::{e13_cell, e13_spec, run_e13, E13Cell};
pub use experiments::{
    detection_cost, e10_cell, e1_cell, e9_cell, e9_instances, random_sfs_run, run_e1, run_e10,
    run_e2, run_e3, run_e4, run_e5, run_e6, run_e7, run_e8, run_e9, DetectionCost, E10Summary,
    E1Cell, E1Variant, E9Instance, GossipApp,
};
pub use report::{note_events, run_with_report, BenchRecord};
pub use table::Table;

/// Parses the optional first CLI argument as a seed/run count, with a
/// default.
pub fn seeds_arg(default: u64) -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}
