//! Machine-readable experiment reporting: `BENCH_*.json` emission and the
//! run-wide event counter behind the events/sec figure.
//!
//! Every `e*` binary wraps its table generation in [`run_with_report`],
//! which times the sweep, counts the simulator events produced (every
//! trace minted by the experiment helpers passes through [`note_trace`]),
//! and appends a criterion-style summary to `BENCH_<experiment>.json` in
//! the directory named by `SFS_BENCH_OUT` (default: the working
//! directory). The files are the perf trajectory of the repository: each
//! PR that touches a hot path regenerates them and compares.

use crate::table::Table;
use sfs_asys::Trace;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Simulator events recorded by traces minted since the last [`take_events`].
static EVENTS: AtomicU64 = AtomicU64::new(0);

/// Counts one run's events into the current report window. Called by every
/// trace-producing experiment helper; thread-safe so parallel sweeps count
/// correctly.
pub fn note_trace(trace: &Trace) {
    EVENTS.fetch_add(trace.events().len() as u64, Ordering::Relaxed);
}

/// Counts pre-aggregated events into the current report window, for
/// experiments whose traces never individually surface here (E9's
/// explorer visits thousands of schedules and reports one total).
pub fn note_events(count: u64) {
    EVENTS.fetch_add(count, Ordering::Relaxed);
}

/// Drains the event counter.
fn take_events() -> u64 {
    EVENTS.swap(0, Ordering::Relaxed)
}

/// One experiment's machine-readable summary.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Experiment id, e.g. `"E1"`.
    pub experiment: &'static str,
    /// Human-readable `(n, t)` sweep description, e.g. `"(5,2),(10,3)"`.
    pub configs: String,
    /// Seeds per cell (0 for deterministic experiments).
    pub seeds: u64,
    /// Wall-clock duration of the sweep in milliseconds.
    pub wall_ms: f64,
    /// Simulator events produced across every run of the sweep.
    pub events: u64,
    /// Worker threads the sweep could use.
    pub threads: usize,
    /// Data rows in the produced table.
    pub rows: usize,
    /// The full table as a JSON object (title, columns, rows, notes),
    /// produced by [`Table::to_json`], so `BENCH_*.json` carries every
    /// column of the experiment — not just the row count. Empty string
    /// when no table was attached (hand-built records in tests).
    pub table_json: String,
}

impl BenchRecord {
    /// Events per wall-clock second (0 when nothing was simulated).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.events as f64 / (self.wall_ms / 1_000.0)
        }
    }

    /// The record as one JSON object (hand-rolled: the workspace's serde
    /// is a no-op stand-in; see vendor/README.md).
    pub fn to_json(&self) -> String {
        let table = if self.table_json.is_empty() {
            "null".to_owned()
        } else {
            self.table_json.clone()
        };
        format!(
            "{{\n  \"experiment\": \"{}\",\n  \"configs\": \"{}\",\n  \"seeds\": {},\n  \
             \"wall_ms\": {:.3},\n  \"events\": {},\n  \"events_per_sec\": {:.1},\n  \
             \"threads\": {},\n  \"rows\": {},\n  \"table\": {}\n}}",
            self.experiment,
            self.configs.escape_default(),
            self.seeds,
            self.wall_ms,
            self.events,
            self.events_per_sec(),
            self.threads,
            self.rows,
            table,
        )
    }
}

/// Output directory for `BENCH_*.json` (override with `SFS_BENCH_OUT`).
fn out_dir() -> PathBuf {
    std::env::var_os("SFS_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Times `run`, prints its table, and writes `BENCH_<experiment>.json`.
///
/// Returns the record so callers (tests, meta-benchmarks) can inspect it.
pub fn run_with_report(
    experiment: &'static str,
    configs: &str,
    seeds: u64,
    run: impl FnOnce() -> Table,
) -> BenchRecord {
    let _ = take_events(); // open a fresh counting window
    let start = Instant::now();
    let table = run();
    let wall = start.elapsed();
    table.print();
    let record = BenchRecord {
        experiment,
        configs: configs.to_owned(),
        seeds,
        wall_ms: wall.as_secs_f64() * 1_000.0,
        events: take_events(),
        threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        rows: table.len(),
        table_json: table.to_json(),
    };
    let path = out_dir().join(format!("BENCH_{experiment}.json"));
    match std::fs::write(&path, record.to_json() + "\n") {
        Ok(()) => eprintln!(
            "[bench] {} -> {} ({:.0} ms, {} events, {:.0} events/sec)",
            experiment,
            path.display(),
            record.wall_ms,
            record.events,
            record.events_per_sec()
        ),
        Err(e) => eprintln!("[bench] could not write {}: {e}", path.display()),
    }
    record
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_renders_valid_json_shape() {
        let r = BenchRecord {
            experiment: "E0",
            configs: "(5,2)".into(),
            seeds: 10,
            wall_ms: 1500.0,
            events: 3_000_000,
            threads: 8,
            rows: 3,
            table_json: String::new(),
        };
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "experiment",
            "configs",
            "seeds",
            "wall_ms",
            "events_per_sec",
            "threads",
            "table",
        ] {
            assert!(
                json.contains(&format!("\"{key}\"")),
                "missing {key} in {json}"
            );
        }
        // No table attached -> explicit null, still valid JSON.
        assert!(json.contains("\"table\": null"), "{json}");
        assert!((r.events_per_sec() - 2_000_000.0).abs() < 1.0);
    }

    #[test]
    fn record_embeds_the_full_table() {
        let mut t = Table::new("cells", &["scenario", "bytes/det"]);
        t.row(["loss 20%", "5120"]);
        let r = BenchRecord {
            experiment: "E0",
            configs: "(5,2)".into(),
            seeds: 1,
            wall_ms: 1.0,
            events: 0,
            threads: 1,
            rows: t.len(),
            table_json: t.to_json(),
        };
        let json = r.to_json();
        assert!(
            json.contains("\"columns\": [\"scenario\", \"bytes/det\"]"),
            "{json}"
        );
        assert!(
            json.contains("\"rows\": [[\"loss 20%\", \"5120\"]]"),
            "{json}"
        );
    }

    #[test]
    fn event_counter_drains() {
        let _ = take_events();
        let trace = sfs::ClusterSpec::new(3, 1)
            .seed(1)
            .suspect(sfs_asys::ProcessId::new(1), sfs_asys::ProcessId::new(0), 10)
            .run();
        note_trace(&trace);
        assert_eq!(take_events(), trace.events().len() as u64);
        assert_eq!(take_events(), 0);
    }
}
