//! Minimal aligned-table printing for experiment output.

use std::fmt;

/// A printable experiment table, in the spirit of a paper table: a title,
/// a header row, and aligned data rows.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one data row; cell count should match the headers.
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: fmt::Display,
    {
        self.rows
            .push(cells.into_iter().map(|c| c.to_string()).collect());
    }

    /// Appends a footnote printed below the table.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rendered table.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n## {}\n\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!(" {cell:<w$} |", w = w));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("\n  note: {note}\n"));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// The table as one JSON object (hand-rolled: the workspace's serde
    /// is a no-op stand-in), embedded verbatim in `BENCH_*.json` so the
    /// machine-readable record carries every column, not just row counts.
    pub fn to_json(&self) -> String {
        // JSON string escaping by hand (`escape_default` emits Rust's
        // `\u{..}` form, which JSON parsers reject); non-ASCII passes
        // through untouched — the file is UTF-8.
        let quote = |s: &str| {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        };
        let list = |cells: &[String]| {
            let quoted: Vec<String> = cells.iter().map(|c| quote(c)).collect();
            format!("[{}]", quoted.join(", "))
        };
        let rows: Vec<String> = self.rows.iter().map(|r| list(r)).collect();
        let notes: Vec<String> = self.notes.iter().map(|n| quote(n)).collect();
        format!(
            "{{\"title\": {}, \"columns\": {}, \"rows\": [{}], \"notes\": [{}]}}",
            quote(&self.title),
            list(&self.headers),
            rows.join(", "),
            notes.join(", "),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("demo", &["n", "result"]);
        t.row(["4", "ok"]);
        t.row(["16", "also ok"]);
        t.note("a footnote");
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("| n  | result  |"));
        assert!(s.contains("| 16 | also ok |"));
        assert!(s.contains("note: a footnote"));
    }

    #[test]
    fn json_embeds_every_column_and_escapes_quotes() {
        let mut t = Table::new("demo \"quoted\"", &["n", "bytes/det"]);
        t.row(["4", "1234"]);
        t.note("a note");
        let j = t.to_json();
        assert!(j.contains("\"title\": \"demo \\\"quoted\\\"\""), "{j}");
        assert!(j.contains("\"columns\": [\"n\", \"bytes/det\"]"), "{j}");
        assert!(j.contains("\"rows\": [[\"4\", \"1234\"]]"), "{j}");
        assert!(j.contains("\"notes\": [\"a note\"]"), "{j}");
    }

    #[test]
    fn tolerates_ragged_rows() {
        let mut t = Table::new("ragged", &["a"]);
        t.row(["1", "2", "3"]);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
        let _ = t.render();
    }
}
