//! Minimal aligned-table printing for experiment output.

use std::fmt;

/// A printable experiment table, in the spirit of a paper table: a title,
/// a header row, and aligned data rows.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one data row; cell count should match the headers.
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: fmt::Display,
    {
        self.rows
            .push(cells.into_iter().map(|c| c.to_string()).collect());
    }

    /// Appends a footnote printed below the table.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rendered table.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n## {}\n\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!(" {cell:<w$} |", w = w));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("\n  note: {note}\n"));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("demo", &["n", "result"]);
        t.row(["4", "ok"]);
        t.row(["16", "also ok"]);
        t.note("a footnote");
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("| n  | result  |"));
        assert!(s.contains("| 16 | also ok |"));
        assert!(s.contains("note: a footnote"));
    }

    #[test]
    fn tolerates_ragged_rows() {
        let mut t = Table::new("ragged", &["a"]);
        t.row(["1", "2", "3"]);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
        let _ = t.render();
    }
}
