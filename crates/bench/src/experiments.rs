//! The experiment suite: one function per table of EXPERIMENTS.md.
//!
//! The paper is theory — its "evaluation" is a set of theorems plus one
//! figure (Figure 1, the sFS conditions). Each experiment here makes one
//! of those formal artifacts executable and regenerates a paper-shaped
//! table. See DESIGN.md §3 for the full index.

use crate::report::note_trace;
use crate::table::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use sfs::quorum::{is_feasible, max_tolerable, min_quorum};
use sfs::{AppApi, Application, ClusterSpec, HeartbeatConfig, ModeSpec, QuorumPolicy};
use sfs_apps::election::{analyze_election, ElectionApp};
use sfs_apps::last_to_fail::{recover_last_to_fail, true_last_to_fail, Recovery};
use sfs_apps::scenarios::{
    cycle_among_victims, ConformanceConfig, ConformanceOutcome, ExploreInstance, ExploreOutcome,
    WitnessAttack,
};
use sfs_asys::{ProcessId, Trace};
use sfs_explore::{ExploreConfig, Pruning, WalkConfig};
use sfs_history::{rearrange_to_fs, History, RearrangeError};
use sfs_tlogic::{properties, PropertyReport, Verdict};

/// Maps `f` over the seed range `0..seeds` on the rayon pool.
///
/// Each seed is an independent deterministic run, so the sweep
/// parallelizes embarrassingly; results come back **in seed order**
/// (guaranteed by the pool), which makes every fold below — and hence
/// every rendered table — byte-identical to a serial sweep.
pub(crate) fn par_seeds<R: Send>(seeds: u64, f: impl Fn(u64) -> R + Sync + Send) -> Vec<R> {
    (0..seeds).into_par_iter().map(f).collect()
}

/// An application that gossips on every failure notification — the exact
/// message pattern sFS2d constrains (sends *after* a detection).
#[derive(Debug, Default, Clone)]
pub struct GossipApp;

impl Application for GossipApp {
    type Msg = u8;

    fn on_message(&mut self, _: &mut AppApi<'_, '_, u8>, _: ProcessId, _: u8) {}

    fn on_failure(&mut self, api: &mut AppApi<'_, '_, u8>, failed: ProcessId) {
        api.broadcast(failed.index() as u8);
    }
}

/// Protocol variant under test in E1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum E1Variant {
    /// The full protocol.
    Standard,
    /// Ablation: sFS2d receive gating disabled.
    NoGate,
    /// Ablation: victims ignore their own obituaries.
    NoSelfCrash,
}

impl E1Variant {
    fn label(self) -> &'static str {
        match self {
            E1Variant::Standard => "sFS (full)",
            E1Variant::NoGate => "ablation: no receive gating",
            E1Variant::NoSelfCrash => "ablation: no self-crash",
        }
    }
}

/// One random E1 workload: up to `t` distinct victims suspected at random
/// times by random survivors, gossiping application on top.
pub fn random_sfs_run(n: usize, t: usize, variant: E1Variant, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5f5_f00d);
    let mut spec = ClusterSpec::new(n, t).seed(seed);
    spec = match variant {
        E1Variant::Standard => spec,
        E1Variant::NoGate => spec.without_gating(),
        E1Variant::NoSelfCrash => spec.without_self_crash(),
    };
    let victims = rng.gen_range(1..=t);
    let mut pool: Vec<usize> = (0..n).collect();
    for _ in 0..victims {
        let v = pool.remove(rng.gen_range(0..pool.len()));
        // The suspector must not be a victim (it must survive to suspect).
        let by = pool[rng.gen_range(0..pool.len())];
        let at = rng.gen_range(5..50);
        spec = spec.suspect(ProcessId::new(by), ProcessId::new(v), at);
    }
    let trace = spec.run_apps(|_| GossipApp);
    note_trace(&trace);
    trace
}

/// Aggregated E1 results for one configuration cell.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct E1Cell {
    /// Total runs.
    pub runs: usize,
    /// Runs on which every sFS property held (or was vacuous).
    pub suite_ok: usize,
    /// Per-property violation counts, in suite order.
    pub violations: Vec<(&'static str, usize)>,
    /// Runs successfully rearranged into an isomorphic FS history.
    pub rearranged: usize,
    /// Runs where rearrangement legitimately could not apply
    /// (a detected process never crashed — only in the no-self-crash
    /// ablation).
    pub rearrange_inapplicable: usize,
}

/// How one seed's rearrangement attempt ended (E1).
enum RearrangeOutcome {
    Rearranged,
    Inapplicable,
    Failed,
}

/// Runs E1 for one `(n, t, variant)` cell over `seeds` seeds, one rayon
/// task per seed.
pub fn e1_cell(n: usize, t: usize, variant: E1Variant, seeds: u64) -> E1Cell {
    let outcomes = par_seeds(seeds, |seed| {
        let trace = random_sfs_run(n, t, variant, seed);
        let complete = trace.stop_reason().is_complete();
        let h = History::from_trace(&trace);
        let reports = properties::check_sfs_suite(&h, complete);
        let ok = reports.iter().all(PropertyReport::is_ok);
        let violated: Vec<&'static str> = reports
            .iter()
            .filter(|r| r.verdict == Verdict::Violated)
            .map(|r| r.property)
            .collect();
        let completed = h.complete_missing_crashes();
        let rearrange = match rearrange_to_fs(&completed) {
            Ok(report) => {
                debug_assert!(report.history.isomorphic(&completed));
                RearrangeOutcome::Rearranged
            }
            Err(RearrangeError::MissingCrash { .. }) => RearrangeOutcome::Inapplicable,
            Err(_) => RearrangeOutcome::Failed,
        };
        (ok, violated, rearrange)
    });
    // Fold in seed order: identical counts (and table bytes) to a serial
    // sweep.
    let mut cell = E1Cell::default();
    let mut violation_counts: std::collections::BTreeMap<&'static str, usize> = Default::default();
    for (ok, violated, rearrange) in outcomes {
        cell.runs += 1;
        cell.suite_ok += usize::from(ok);
        for property in violated {
            *violation_counts.entry(property).or_default() += 1;
        }
        match rearrange {
            RearrangeOutcome::Rearranged => cell.rearranged += 1,
            RearrangeOutcome::Inapplicable => cell.rearrange_inapplicable += 1,
            RearrangeOutcome::Failed => {}
        }
    }
    cell.violations = violation_counts.into_iter().collect();
    cell
}

/// E1 — Figure 1 / Theorem 5: the protocol satisfies every sFS property,
/// and every run is isomorphic to a fail-stop run; the ablations break
/// exactly the property their mechanism exists for.
pub fn run_e1(seeds: u64) -> Table {
    let mut table = Table::new(
        "E1 — sFS property satisfaction and Theorem 5 rearrangement \
         (per paper Figure 1: FS1, sFS2a-d)",
        &[
            "variant",
            "n",
            "t",
            "runs",
            "suite ok",
            "violated properties",
            "FS-isomorphic",
        ],
    );
    for &(n, t) in &[(5usize, 2usize), (10, 3), (17, 4)] {
        for variant in [
            E1Variant::Standard,
            E1Variant::NoGate,
            E1Variant::NoSelfCrash,
        ] {
            let cell = e1_cell(n, t, variant, seeds);
            let violated = if cell.violations.is_empty() {
                "none".to_string()
            } else {
                cell.violations
                    .iter()
                    .map(|(p, c)| format!("{p}×{c}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let iso = format!(
                "{}/{}",
                cell.rearranged,
                cell.runs - cell.rearrange_inapplicable
            );
            table.row([
                variant.label().to_string(),
                n.to_string(),
                t.to_string(),
                cell.runs.to_string(),
                format!("{}/{}", cell.suite_ok, cell.runs),
                violated,
                iso,
            ]);
        }
    }
    table.note(
        "expected shape: the full protocol passes everything and rearranges 100%; \
         no-gating violates sFS2d; no-self-crash violates sFS2a (victims survive), \
         making rearrangement inapplicable.",
    );
    table
}

/// E2 — Theorems 6–7: below the quorum bound the A.3 adversary builds a
/// failed-before cycle; at the bound it cannot.
pub fn run_e2() -> Table {
    let mut table = Table::new(
        "E2 — tightness of the Theorem 7 quorum bound (A.3 adversary)",
        &[
            "n",
            "t",
            "quorum",
            "vs bound ⌊n(t-1)/t⌋+1",
            "detections",
            "failed-before cycle",
        ],
    );
    for &(n, t) in &[(6usize, 2usize), (10, 2), (9, 3), (12, 3), (16, 4), (20, 4)] {
        let safe = min_quorum(n, t);
        let attack_q = WitnessAttack {
            n,
            t,
            quorum: 0,
            seed: 0,
        }
        .max_available_votes();
        for quorum in [attack_q, safe] {
            if quorum == safe && !is_feasible(n, t) {
                table.row([
                    n.to_string(),
                    t.to_string(),
                    quorum.to_string(),
                    "at bound".into(),
                    "-".into(),
                    "infeasible (Cor. 8: n ≤ t²)".into(),
                ]);
                continue;
            }
            let attack = WitnessAttack {
                n,
                t,
                quorum,
                seed: 0,
            };
            let trace = attack.run();
            note_trace(&trace);
            let cycle = cycle_among_victims(&trace, t);
            let relation = if quorum >= safe {
                "at bound"
            } else {
                "below bound"
            };
            table.row([
                n.to_string(),
                t.to_string(),
                quorum.to_string(),
                relation.into(),
                trace.detections().len().to_string(),
                if cycle {
                    "CYCLE".into()
                } else {
                    "acyclic".to_string()
                },
            ]);
        }
    }
    table.note(
        "the concrete §5 protocol resists one vote below the abstract §4 bound \
         because a victim cannot ACK its own obituary — see scenarios.rs.",
    );
    table
}

/// E3 — Corollary 8: the replication frontier `n > t²`.
pub fn run_e3() -> Table {
    let mut table = Table::new(
        "E3 — replication frontier (Corollary 8: fixed-quorum protocols need n > t²)",
        &[
            "t",
            "min quorum at n=t²",
            "feasible at n=t²",
            "min feasible n",
            "quorum there",
            "max_tolerable(min n)",
        ],
    );
    for t in 1usize..=8 {
        let frontier = t * t;
        let min_n = frontier + 1;
        table.row([
            t.to_string(),
            if frontier > 0 {
                min_quorum(frontier.max(1), t).to_string()
            } else {
                "-".into()
            },
            is_feasible(frontier, t).to_string(),
            min_n.to_string(),
            min_quorum(min_n, t).to_string(),
            max_tolerable(min_n).to_string(),
        ]);
    }
    table.note("expected shape: infeasible at exactly n = t², feasible at n = t² + 1, and max_tolerable(t²+1) = t.");
    table
}

/// E4 — Theorems 2 and 3: Conditions 1–3 are necessary but not
/// sufficient.
pub fn run_e4(seeds: u64) -> Table {
    let mut table = Table::new(
        "E4 — necessary conditions (Thm 2) and their insufficiency (Thm 3)",
        &[
            "run",
            "Cond1",
            "Cond2",
            "Cond3",
            "FS2",
            "FS-isomorphic rearrangement",
        ],
    );
    // The Theorem 3 counterexample.
    let t3 = sfs_history::scenarios::theorem3_run();
    let c1 = properties::check_condition1(&t3, true).verdict;
    let c2 = properties::check_condition2(&t3).verdict;
    let c3 = properties::check_condition3(&t3).verdict;
    let fs2 = properties::check_fs2(&t3).verdict;
    let rearrange = match rearrange_to_fs(&t3) {
        Ok(_) => "found (unexpected!)".to_string(),
        Err(RearrangeError::NoFsOrder { .. }) => "NONE EXISTS (constraint cycle)".to_string(),
        Err(e) => format!("error: {e}"),
    };
    table.row([
        "Theorem 3 counterexample".to_string(),
        c1.to_string(),
        c2.to_string(),
        c3.to_string(),
        fs2.to_string(),
        rearrange,
    ]);
    // Random sFS runs: conditions hold AND rearrangement exists. One
    // rayon task per seed; counts folded in seed order.
    let outcomes = par_seeds(seeds, |seed| {
        let trace = random_sfs_run(10, 3, E1Variant::Standard, seed);
        let h = History::from_trace(&trace);
        let ok = properties::check_condition1(&h, true).is_ok()
            && properties::check_condition2(&h).is_ok()
            && properties::check_condition3(&h).is_ok();
        (ok, rearrange_to_fs(&h).is_ok())
    });
    let mut all_ok = 0usize;
    let mut rearranged = 0usize;
    for (ok, rearr) in outcomes {
        all_ok += usize::from(ok);
        rearranged += usize::from(rearr);
    }
    table.row([
        format!("{seeds} random sFS runs (n=10, t=3)"),
        format!("{all_ok}/{seeds}"),
        format!("{all_ok}/{seeds}"),
        format!("{all_ok}/{seeds}"),
        "violated (by design)".to_string(),
        format!("{rearranged}/{seeds}"),
    ]);
    table.note(
        "the Theorem 3 run satisfies all three necessary conditions yet admits no \
         isomorphic FS run — the conditions are not sufficient; sFS runs always do.",
    );
    table
}

/// Cost metrics for one detection run (E5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectionCost {
    /// Protocol messages sent over the whole run.
    pub messages: u64,
    /// Failure detections executed.
    pub detections: u64,
    /// Virtual time from the triggering suspicion to the last detection.
    pub latency: u64,
    /// Votes each detection had to wait for.
    pub votes_needed: usize,
}

/// Measures the cost of detecting one (erroneously) suspected process.
pub fn detection_cost(n: usize, t: usize, policy: QuorumPolicy, seed: u64) -> DetectionCost {
    let suspect_at = 10u64;
    let trace = ClusterSpec::new(n, t)
        .quorum(policy)
        .seed(seed)
        .suspect(ProcessId::new(1), ProcessId::new(0), suspect_at)
        .run();
    let last_detection = trace
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            sfs_asys::TraceEventKind::Failed { .. } => Some(e.time.ticks()),
            _ => None,
        })
        .max()
        .unwrap_or(suspect_at);
    let votes_needed = policy.fixed_threshold(n, t).unwrap_or(n - 1);
    note_trace(&trace);
    DetectionCost {
        messages: trace.stats().messages_sent,
        detections: trace.stats().detections,
        latency: last_detection - suspect_at,
        votes_needed,
    }
}

/// E5 — the §4 trade-off: wait-for-all vs minimum fixed quorums.
pub fn run_e5(seeds: u64) -> Table {
    let mut table = Table::new(
        "E5 — cost of one detection: wait-for-all vs fixed minimum quorum (§4)",
        &[
            "n",
            "t",
            "policy",
            "votes needed",
            "msgs (avg)",
            "msgs/detection",
            "latency avg (ticks)",
        ],
    );
    for &(n, t) in &[
        (5usize, 2usize),
        (10, 3),
        (17, 4),
        (26, 5),
        (37, 6),
        (50, 7),
    ] {
        for (label, policy) in [
            ("wait-for-all", QuorumPolicy::WaitForAll),
            ("fixed-min", QuorumPolicy::FixedMinimum),
        ] {
            let costs = par_seeds(seeds, |seed| detection_cost(n, t, policy, seed));
            let mut messages = 0u64;
            let mut detections = 0u64;
            let mut latency = 0u64;
            let mut votes = 0usize;
            for cost in costs {
                messages += cost.messages;
                detections += cost.detections;
                latency += cost.latency;
                votes = cost.votes_needed;
            }
            let runs = seeds.max(1);
            table.row([
                n.to_string(),
                t.to_string(),
                label.to_string(),
                votes.to_string(),
                (messages / runs).to_string(),
                format!("{:.1}", messages as f64 / detections.max(1) as f64),
                (latency / runs).to_string(),
            ]);
        }
    }
    table.note(
        "message complexity is Θ(n²) per suspicion either way (everyone re-broadcasts \
         the obituary once); the policies differ in how many votes — and hence how much \
         waiting — each detection needs.",
    );
    table
}

/// E6 — last-to-fail recovery (§6): consistent under acyclic detection,
/// broken under cyclic detection.
pub fn run_e6(seeds: u64) -> Table {
    let mut table = Table::new(
        "E6 — last-process-to-fail recovery after total failure (§6, [Ske85])",
        &[
            "detector",
            "runs",
            "recovery consistent",
            "true last in candidates",
        ],
    );
    for (label, mode) in [
        ("oracle (perfect)", ModeSpec::Oracle),
        ("sFS one-round", ModeSpec::SfsOneRound),
        ("cheap broadcast (no sFS2b)", ModeSpec::CheapBroadcast),
        ("unilateral", ModeSpec::Unilateral),
    ] {
        let outcomes = par_seeds(seeds, |seed| {
            let n = 4usize;
            let mut spec = ClusterSpec::new(n, 1)
                .mode(mode)
                .heartbeat(HeartbeatConfig {
                    interval: 10,
                    timeout: 50,
                    check_every: 10,
                })
                .seed(seed)
                .max_time(6_000);
            // A false mutual suspicion to provoke cycles where possible,
            // then staggered total failure.
            if matches!(mode, ModeSpec::CheapBroadcast | ModeSpec::Unilateral) {
                spec = spec
                    .without_self_crash()
                    .suspect(ProcessId::new(0), ProcessId::new(1), 20)
                    .suspect(ProcessId::new(1), ProcessId::new(0), 20);
            }
            for i in 0..n {
                spec = spec.crash(ProcessId::new(i), 500 + 400 * i as u64);
            }
            let trace = spec.run();
            note_trace(&trace);
            let truth = true_last_to_fail(&trace);
            match recover_last_to_fail(&trace) {
                Recovery::Candidates(c) => (true, truth.is_some_and(|t| c.contains(&t))),
                Recovery::Inconsistent(_) => (false, false),
            }
        });
        let mut consistent = 0usize;
        let mut truth_in = 0usize;
        for (ok, truth) in outcomes {
            consistent += usize::from(ok);
            truth_in += usize::from(truth);
        }
        table.row([
            label.to_string(),
            seeds.to_string(),
            format!("{consistent}/{seeds}"),
            format!("{truth_in}/{seeds}"),
        ]);
    }
    table.note(
        "under sFS the candidate set is consistent with SOME fail-stop run isomorphic \
         to what happened (that is all any process can know); cyclic detectors produce \
         either no consistent answer or a confidently wrong one.",
    );
    table
}

/// E7 — election (§1): observable split-brain by detector.
pub fn run_e7(seeds: u64) -> Table {
    let mut table = Table::new(
        "E7 — leader election under a false suspicion of the leader (§1)",
        &[
            "detector",
            "runs",
            "FS-impossible observations",
            "runs w/ global 2-leader window",
            "leader killed",
        ],
    );
    for (label, mode) in [
        ("oracle (perfect)", ModeSpec::Oracle),
        ("sFS one-round", ModeSpec::SfsOneRound),
        ("cheap broadcast", ModeSpec::CheapBroadcast),
        ("unilateral", ModeSpec::Unilateral),
    ] {
        let outcomes = par_seeds(seeds, |seed| {
            let trace = ClusterSpec::new(5, 2)
                .mode(mode)
                .seed(seed)
                .suspect(ProcessId::new(1), ProcessId::new(0), 10)
                .run_apps(|_| ElectionApp::new());
            note_trace(&trace);
            let outcome = analyze_election(&trace);
            (
                outcome.observed_anomalies,
                outcome.max_concurrent_leaders >= 2,
                trace.crashed().contains(&ProcessId::new(0)),
            )
        });
        let mut anomalies = 0usize;
        let mut windows = 0usize;
        let mut killed = 0usize;
        for (a, window, kill) in outcomes {
            anomalies += a;
            windows += usize::from(window);
            killed += usize::from(kill);
        }
        table.row([
            label.to_string(),
            seeds.to_string(),
            anomalies.to_string(),
            windows.to_string(),
            format!("{killed}/{seeds}"),
        ]);
    }
    table.note(
        "sFS may allow a brief global two-leader window but never an internal \
         observation inconsistent with fail-stop; unilateral detection leaks one \
         in essentially every run.",
    );
    table
}

/// E8 — §6 discussion: the sFS failed-before relation is not transitive.
///
/// The paper closes by noting that a *stronger* model whose failed-before
/// relation is transitive (as well as acyclic) would let last-to-fail
/// recovery conclude as soon as the last processes recover, and that sFS
/// does not provide this. This experiment quantifies the gap: how often
/// random sFS runs happen to produce transitive relations anyway, and how
/// many ordered pairs the transitive closure adds (each added pair is an
/// ordering a recovering process could not deduce locally under plain
/// sFS).
pub fn run_e8(seeds: u64) -> Table {
    use sfs_history::FailedBefore;
    let mut table = Table::new(
        "E8 — (non-)transitivity of the sFS failed-before relation (§6)",
        &[
            "n",
            "t",
            "runs w/ ≥2 victims",
            "already transitive",
            "avg edges",
            "avg closure edges",
            "avg orderings gained",
        ],
    );
    for &(n, t) in &[(5usize, 2usize), (10, 3), (17, 4)] {
        // (edges, closure edges, transitive?) per seed with >= 2 victims.
        let outcomes = par_seeds(seeds, |seed| {
            let trace = random_sfs_run(n, t, E1Variant::Standard, seed);
            let h = History::from_trace(&trace);
            let victims: std::collections::BTreeSet<_> = h.crashed().into_iter().collect();
            if victims.len() < 2 {
                return None; // transitivity is trivial with one victim
            }
            let fb = FailedBefore::from_history(&h);
            let closure = fb.transitive_closure();
            let count = |r: &FailedBefore| -> u64 {
                let mut c = 0;
                for i in ProcessId::all(n) {
                    for j in ProcessId::all(n) {
                        if r.failed_before(i, j) {
                            c += 1;
                        }
                    }
                }
                c
            };
            Some((count(&fb), count(&closure), fb.is_transitive()))
        });
        let mut considered = 0u64;
        let mut transitive = 0u64;
        let mut edges = 0u64;
        let mut closed_edges = 0u64;
        for (e, ce, is_transitive) in outcomes.into_iter().flatten() {
            considered += 1;
            edges += e;
            closed_edges += ce;
            if is_transitive {
                transitive += 1;
            }
        }
        let denom = considered.max(1);
        table.row([
            n.to_string(),
            t.to_string(),
            considered.to_string(),
            format!("{transitive}/{considered}"),
            format!("{:.1}", edges as f64 / denom as f64),
            format!("{:.1}", closed_edges as f64 / denom as f64),
            format!("{:.2}", (closed_edges - edges) as f64 / denom as f64),
        ]);
    }
    // Spec-level check: the sFS *axioms* do not require transitivity — a
    // hand-built run with failed_b(a), failed_c(b) and no failed_c(a)
    // satisfies every sFS2 condition.
    let a = ProcessId::new(0);
    let b = ProcessId::new(1);
    let c = ProcessId::new(2);
    let spec_run = History::new(
        4,
        vec![
            sfs_history::Event::failed(b, a),
            sfs_history::Event::crash(a),
            sfs_history::Event::failed(c, b),
            sfs_history::Event::crash(b),
        ],
    );
    let fb = sfs_history::FailedBefore::from_history(&spec_run);
    let suite_ok = [
        properties::check_sfs2a(&spec_run, true),
        properties::check_sfs2b(&spec_run),
        properties::check_sfs2c(&spec_run),
        properties::check_sfs2d(&spec_run),
    ]
    .iter()
    .all(PropertyReport::is_ok);
    table.row([
        "spec-level witness".to_string(),
        "-".to_string(),
        "1".to_string(),
        if suite_ok {
            "sFS2a-d all hold".to_string()
        } else {
            "BUG".to_string()
        },
        "2.0".to_string(),
        "3.0".to_string(),
        if fb.is_transitive() {
            "0 (BUG)".to_string()
        } else {
            "1.00".to_string()
        },
    ]);
    table.note(
        "each 'ordering gained' is a failed-before fact a recovering process could \
         use under a transitive (stronger-than-sFS) model but cannot deduce under \
         plain sFS. Finding: the sFS AXIOMS admit non-transitive runs (last row — \
         a hand-built run satisfying sFS2a-d with failed_b(a), failed_c(b) but no \
         failed_c(a)), yet the concrete §5 protocol produced a transitive relation \
         in every benign random run measured here. Conjecture recorded in \
         EXPERIMENTS.md: quorum intersection (2q > n) forces 2-chain transitivity \
         in the implemented protocol; the paper's §6 remark is about the model, \
         which makes no such promise.",
    );
    table
}

/// One E9 instance: a bounded cluster whose schedule space is explored.
#[derive(Debug, Clone)]
pub struct E9Instance {
    /// Row label.
    pub label: &'static str,
    /// The cluster under exploration.
    pub spec: ClusterSpec,
    /// `true`: bounded-exhaustive DFS (certification possible);
    /// `false`: random-walk sampling (violation search only).
    pub exhaustive: bool,
}

/// The E9 instance sweep: 3-process instances small enough to enumerate
/// completely — within the failure bound (everything certifies), beyond
/// it (a failed-before cycle exists and is found), one silent crash
/// (FS1's dependence on the timeout mechanism), the no-self-crash
/// ablation (sFS2a violated on every class) — plus a 5-process instance
/// explored by random walks.
pub fn e9_instances() -> Vec<E9Instance> {
    let p = ProcessId::new;
    vec![
        E9Instance {
            label: "n=3 t=1, 1 suspicion (within bound)",
            spec: ClusterSpec::new(3, 1).suspect(p(1), p(0), 10),
            exhaustive: true,
        },
        E9Instance {
            label: "n=3 t=1, chained suspicions (2 crashes > t)",
            spec: ClusterSpec::new(3, 1)
                .suspect(p(1), p(0), 10)
                .suspect(p(2), p(1), 12),
            exhaustive: true,
        },
        E9Instance {
            label: "n=3 t=1, mutual suspicion (2 crashes > t)",
            spec: ClusterSpec::new(3, 1)
                .suspect(p(1), p(0), 10)
                .suspect(p(0), p(1), 10),
            exhaustive: true,
        },
        E9Instance {
            label: "n=3 t=1, suspicion + silent crash",
            spec: ClusterSpec::new(3, 1)
                .suspect(p(1), p(0), 10)
                .crash(p(2), 20),
            exhaustive: true,
        },
        E9Instance {
            label: "n=3 t=1, ablation: no self-crash",
            spec: ClusterSpec::new(3, 1)
                .suspect(p(1), p(0), 10)
                .without_self_crash(),
            exhaustive: true,
        },
        E9Instance {
            label: "n=5 t=2, mutual suspicion (random walks)",
            spec: ClusterSpec::new(5, 2)
                .suspect(p(1), p(0), 10)
                .suspect(p(0), p(1), 10),
            exhaustive: false,
        },
    ]
}

/// Explores one E9 instance, one rayon task per root branch of its
/// schedule tree, with an order-preserving merge (byte-identical tables
/// regardless of thread count).
pub fn e9_cell(instance: &E9Instance, budget: u64) -> ExploreOutcome {
    let mut inst = ExploreInstance::new(instance.spec.clone());
    if instance.exhaustive {
        inst.config = ExploreConfig {
            max_steps: 600,
            max_schedules: budget as usize,
            pruning: Pruning::SleepSets,
        };
        let width = inst.width().max(1);
        let shared = &inst;
        (0..width as u32)
            .into_par_iter()
            .map(|branch| shared.explore_prefix(&[branch]))
            .collect::<Vec<_>>()
            .into_iter()
            .reduce(ExploreOutcome::merge)
            .expect("width >= 1")
    } else {
        // Sampling cells cap their walk count: walks are for finding
        // violations, and a few hundred deep walks already dwarf the
        // schedule diversity any latency-seeded sweep reaches.
        inst.random_walks(&WalkConfig {
            walks: (budget as usize).min(256),
            max_steps: 4096,
            seed: 9,
        })
    }
}

/// E9 — schedule-space exploration: per-property certify/violate
/// verdicts over *every* schedule of bounded instances.
///
/// `budget` is the schedule budget per exhaustive cell and the walk
/// count for sampling cells.
pub fn run_e9(budget: u64) -> Table {
    let mut table = Table::new(
        "E9 — schedule-space exploration (universal adversary; sFS suite + Theorem 5 per schedule class)",
        &[
            "instance",
            "mode",
            "schedules",
            "checked",
            "classes",
            "skipped (sleep/forced)",
            "complete",
            "certified",
            "violated",
        ],
    );
    let mut witness_note: Option<String> = None;
    for instance in e9_instances() {
        let out = e9_cell(&instance, budget);
        crate::report::note_events(out.trace_events);
        let certified: Vec<&str> = out
            .properties
            .iter()
            .filter(|c| c.certified)
            .map(|c| c.property.as_str())
            .collect();
        let violated: Vec<String> = out
            .properties
            .iter()
            .filter(|c| c.violations > 0)
            .map(|c| format!("{}×{}", c.property, c.violations))
            .collect();
        table.row([
            instance.label.to_string(),
            if instance.exhaustive {
                "DFS+sleep-sets"
            } else {
                "random walks"
            }
            .to_string(),
            out.stats.schedules.to_string(),
            out.stats.visited.to_string(),
            out.classes().to_string(),
            format!("{}/{}", out.stats.sleep_skips, out.stats.forced_skips),
            if out.stats.complete { "yes" } else { "no" }.to_string(),
            format!("{}/{}", certified.len(), out.properties.len()),
            if violated.is_empty() {
                "-".to_string()
            } else {
                violated.join(" ")
            },
        ]);
        // Reproduce the first discovered violation from its recorded
        // choice trace, once, to demonstrate replayability end to end.
        if witness_note.is_none() {
            if let Some(cert) = out.properties.iter().find(|c| c.witness.is_some()) {
                let witness = cert.witness.clone().expect("checked");
                let inst = ExploreInstance::new(instance.spec.clone());
                let trace = inst.replay(&witness);
                note_trace(&trace);
                let h = History::from_trace(&trace);
                let reproduced = if cert.property == "Theorem5" {
                    rearrange_to_fs(&h.complete_missing_crashes()).is_err()
                } else {
                    properties::check_sfs_suite(&h, trace.stop_reason().is_complete())
                        .iter()
                        .find(|r| r.property == cert.property)
                        .is_some_and(|r| r.verdict == Verdict::Violated)
                };
                witness_note = Some(format!(
                    "witness replay: `{}` violation on \"{}\" re-executed from its {}-choice \
                     trace — {}",
                    cert.property,
                    instance.label,
                    witness.len(),
                    if reproduced {
                        "reproduced"
                    } else {
                        "NOT REPRODUCED (BUG)"
                    },
                ));
            }
        }
    }
    table.note(
        "each exhaustive cell enumerates EVERY schedule (delivery order × crash placement) \
         of its instance, one rayon task per root branch, pruned by sleep sets to one \
         representative per commutation class; 'certified' counts properties proved to hold \
         on all schedules (FS1, sFS2a-d, Conditions 1-3, and 'Theorem5' = an isomorphic \
         fail-stop run exists). Findings: within the failure bound the full protocol \
         certifies everything; two crashes against t=1 create a replayable failed-before \
         cycle (sFS2b, and with it Theorem 5's premise, fails — the paper's t-boundedness \
         is load-bearing); a silent crash without heartbeats leaves FS1 unmet (detection \
         needs the timeout mechanism); the no-self-crash ablation violates sFS2a on every \
         class. Random-walk cells sample (never certify).",
    );
    if let Some(note) = witness_note {
        table.note(note);
    }
    table
}

/// Machine-checkable summary of one E10 sweep, for the binary's exit
/// status and the witness artifact.
#[derive(Debug, Clone, Default)]
pub struct E10Summary {
    /// Total divergences across every instance and backend (0 = full
    /// agreement; the `e10_conformance` binary exits nonzero otherwise).
    pub divergences: usize,
    /// Backend runs across the sweep.
    pub runs: usize,
    /// Every shrunk witness: `(instance, property, before, after,
    /// minimal choice trace)`.
    pub witnesses: Vec<(String, String, usize, usize, Vec<u32>)>,
    /// Rendered divergence descriptions, for the artifact file.
    pub divergence_reports: Vec<String>,
}

impl E10Summary {
    /// Median `(before, after)` witness length across all shrunk
    /// witnesses; `None` when no property was violated anywhere.
    pub fn median_witness_lengths(&self) -> Option<(usize, usize)> {
        if self.witnesses.is_empty() {
            return None;
        }
        let median = |mut v: Vec<usize>| -> usize {
            v.sort_unstable();
            v[v.len() / 2]
        };
        Some((
            median(self.witnesses.iter().map(|w| w.2).collect()),
            median(self.witnesses.iter().map(|w| w.3).collect()),
        ))
    }

    /// The witness artifact as hand-rolled JSON (the workspace serde is a
    /// no-op stand-in), written next to `BENCH_E10.json` so CI can upload
    /// minimized witnesses.
    pub fn witnesses_json(&self) -> String {
        let mut out = String::from("{\n  \"witnesses\": [\n");
        for (i, (instance, property, before, after, choices)) in self.witnesses.iter().enumerate() {
            let sep = if i + 1 == self.witnesses.len() {
                ""
            } else {
                ","
            };
            let rendered: Vec<String> = choices.iter().map(u32::to_string).collect();
            out.push_str(&format!(
                "    {{\"instance\": \"{}\", \"property\": \"{}\", \"before\": {}, \
                 \"after\": {}, \"choices\": [{}]}}{}\n",
                instance.escape_default(),
                property.escape_default(),
                before,
                after,
                rendered.join(","),
                sep,
            ));
        }
        out.push_str("  ],\n  \"divergences\": [\n");
        for (i, d) in self.divergence_reports.iter().enumerate() {
            let sep = if i + 1 == self.divergence_reports.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!("    \"{}\"{}\n", d.escape_default(), sep));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The per-instance conformance budget for E10. `budget` bounds the
/// reference exploration; the backend fan (random campaigns, threaded
/// repetitions) is fixed so tables stay comparable across budgets.
fn e10_conformance_config(seed: u64) -> ConformanceConfig {
    ConformanceConfig {
        random_runs: 24,
        threaded_runs: 2,
        // One multi-process run per instance: real sockets are the slow
        // column (wall-clock ticks), and one run per instance across the
        // whole E9 family set is already a broad sweep.
        udp_runs: 1,
        settle_ms: 300,
        seed,
        ..ConformanceConfig::default()
    }
}

/// One E10 cell: the full differential-conformance check of one E9
/// instance family (reference exploration → envelope → time-ordered,
/// random-campaign, replay, and threaded backends → witness shrinking).
pub fn e10_cell(instance: &E9Instance, budget: u64, seed: u64) -> ConformanceOutcome {
    let mut inst = ExploreInstance::new(instance.spec.clone());
    inst.config = ExploreConfig {
        max_steps: 600,
        // Sampling families get a token exploration budget: their
        // reference envelope is incomplete by design (nothing certified,
        // nothing universal), which leaves replay fidelity and the
        // certified-bound checks of the small families to carry E10's
        // assertions there.
        max_schedules: if instance.exhaustive {
            budget as usize
        } else {
            (budget as usize).min(2_000)
        },
        pruning: Pruning::SleepSets,
    };
    inst.conformance(&e10_conformance_config(seed))
}

/// E10 — differential conformance: every runtime (simulator strategies,
/// schedule replay, event-driven threaded — bare and over the link seam —
/// the transport-backed legs, and the multi-process UDP socket backend)
/// cross-checked per instance, with counterexample shrinking. One rayon
/// task per instance.
pub fn run_e10(budget: u64) -> (Table, E10Summary) {
    let mut table = Table::new(
        "E10 — differential conformance across backends (envelope oracle + ddmin shrinking)",
        &[
            "instance",
            "ref classes",
            "ref complete",
            "runs to/rnd/rpl/thr/thr+net/tp/tpa/udp",
            "complete runs",
            "divergent",
            "agreement",
            "witness shrink (before→after)",
        ],
    );
    let mut summary = E10Summary::default();
    let instances = e9_instances();
    let outcomes: Vec<ConformanceOutcome> = (0..instances.len())
        .into_par_iter()
        .map(|i| e10_cell(&instances[i], budget, 0x10 + i as u64))
        .collect();
    for (instance, out) in instances.iter().zip(&outcomes) {
        crate::report::note_events(out.reference.trace_events);
        for backend in &out.backends {
            for d in &backend.divergences {
                summary
                    .divergence_reports
                    .push(format!("{}: {}", instance.label, d));
            }
        }
        if !out.agreement() {
            // Black-box postmortem: when SFS_FLIGHT_DIR is set, leave a
            // per-instance dump of every divergence next to the CI
            // artifacts before the binary exits nonzero.
            let mut body = format!("E10 divergence on instance \"{}\"\n", instance.label);
            for backend in &out.backends {
                for d in &backend.divergences {
                    body.push_str(&format!("{}: {d}\n", backend.backend));
                }
            }
            sfs_obs::flight::dump_to_dir(&format!("e10-divergence-{}", instance.label), &body);
        }
        summary.divergences += out.divergences().count();
        summary.runs += out.total_runs();
        let runs: Vec<String> = out.backends.iter().map(|b| b.runs.to_string()).collect();
        let complete: Vec<String> = out
            .backends
            .iter()
            .map(|b| b.complete_runs.to_string())
            .collect();
        let shrinks: Vec<String> = out
            .shrunk
            .iter()
            .map(|s| {
                summary.witnesses.push((
                    instance.label.to_owned(),
                    s.property.clone(),
                    s.outcome.initial_len,
                    s.outcome.final_len,
                    s.outcome.run.choices.clone(),
                ));
                format!(
                    "{} {}→{}",
                    s.property, s.outcome.initial_len, s.outcome.final_len
                )
            })
            .collect();
        table.row([
            instance.label.to_string(),
            out.reference.classes().to_string(),
            if out.reference.stats.complete {
                "yes"
            } else {
                "no"
            }
            .to_string(),
            runs.join("/"),
            complete.join("/"),
            out.backends
                .iter()
                .map(|b| b.divergent_runs)
                .sum::<usize>()
                .to_string(),
            format!("{:.0}%", out.agreement_rate() * 100.0),
            if shrinks.is_empty() {
                "-".to_string()
            } else {
                shrinks.join(" ")
            },
        ]);
    }
    table.note(
        "each instance is explored into a reference envelope (class fingerprints + \
         certified/universal property bounds), then cross-checked against eight \
         backends: the time-ordered strategy (the default engine's schedule), 24 \
         random-strategy campaigns, strict byte-compare replay of every recording, \
         2 executions each on the event-driven threaded runtime (threaded:event) and \
         on its link-seam variant with ARQ-wrapped processes (threaded:event+net), \
         the simulated transport legs (fixed and adaptive timeouts), and one run per \
         instance on the UDP socket backend (net:udp) — one OS process per node over \
         real localhost datagrams. A divergence is any certified \
         property violated, any universal violation missed, any unknown happens-before \
         class on a complete run, or any replay that is not byte-identical — each \
         reported with both traces attached. Witness columns show the delta-debugging \
         shrinker (tail truncation + ddmin deletion + choice canonicalization, every \
         candidate re-validated by replay) minimizing the reference's violating \
         schedules.",
    );
    if let Some((before, after)) = summary.median_witness_lengths() {
        table.note(format!(
            "median witness length across violated properties: {before} choices before \
             shrinking, {after} after; every minimized witness replays strictly \
             (E10_WITNESSES.json holds the choice traces)."
        ));
    }
    table.note(if summary.divergences == 0 {
        format!(
            "RESULT: 100% backend agreement across {} runs, 0 divergences.",
            summary.runs
        )
    } else {
        format!(
            "RESULT: {} DIVERGENCES across {} runs — the backends disagree; see \
             E10_WITNESSES.json.",
            summary.divergences, summary.runs
        )
    });
    (table, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_standard_cell_is_clean() {
        let cell = e1_cell(5, 2, E1Variant::Standard, 10);
        assert_eq!(cell.suite_ok, cell.runs);
        assert_eq!(cell.rearranged, cell.runs);
        assert!(cell.violations.is_empty());
    }

    #[test]
    fn e1_no_self_crash_violates_sfs2a() {
        let cell = e1_cell(5, 2, E1Variant::NoSelfCrash, 10);
        assert!(
            cell.violations.iter().any(|&(p, c)| p == "sFS2a" && c > 0),
            "{cell:?}"
        );
    }

    #[test]
    fn e1_no_gate_violates_sfs2d_somewhere() {
        // Gossip right after detection races application messages against
        // open rounds; without gating some seed must violate sFS2d.
        let cell = e1_cell(10, 3, E1Variant::NoGate, 30);
        assert!(
            cell.violations.iter().any(|&(p, c)| p == "sFS2d" && c > 0),
            "{cell:?}"
        );
    }

    #[test]
    fn e9_within_bound_cell_certifies_everything() {
        let instances = e9_instances();
        let out = e9_cell(&instances[0], 100_000);
        assert!(out.stats.complete, "{:?}", out.stats);
        assert!(out.all_certified(), "{:#?}", out.properties);
    }

    #[test]
    fn e9_beyond_bound_cell_finds_a_replayable_cycle() {
        let instances = e9_instances();
        let out = e9_cell(&instances[1], 100_000);
        assert!(out.stats.complete);
        let cert = out.certificate("sFS2b").expect("sFS2b checked");
        assert!(cert.violations > 0 && cert.witness.is_some(), "{cert:?}");
        // The recorded witness replays to a genuine sFS2b violation.
        let inst = ExploreInstance::new(instances[1].spec.clone());
        let trace = inst.replay(cert.witness.as_ref().expect("checked"));
        let h = History::from_trace(&trace);
        assert_eq!(properties::check_sfs2b(&h).verdict, Verdict::Violated);
    }

    #[test]
    fn e9_parallel_cells_are_deterministic() {
        // The root-branch fan-out must fold in branch order: two runs of
        // the same cell produce identical outcomes (and hence tables).
        let instances = e9_instances();
        let a = e9_cell(&instances[2], 100_000);
        let b = e9_cell(&instances[2], 100_000);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.fingerprints, b.fingerprints);
        assert_eq!(a.properties, b.properties);
    }

    #[test]
    fn e10_within_bound_cell_fully_agrees() {
        let instances = e9_instances();
        let out = e10_cell(&instances[0], 100_000, 0x10);
        assert!(out.reference.stats.complete);
        assert!(
            out.agreement(),
            "{:#?}",
            out.divergences().collect::<Vec<_>>()
        );
        assert!((out.agreement_rate() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn e10_cycle_instance_agrees_and_shrinks_its_witness() {
        let instances = e9_instances();
        let out = e10_cell(&instances[2], 100_000, 0x12);
        assert!(
            out.agreement(),
            "{:#?}",
            out.divergences().collect::<Vec<_>>()
        );
        let cycle = out
            .shrunk
            .iter()
            .find(|s| s.property == "sFS2b")
            .expect("sFS2b witness shrunk");
        assert!(
            cycle.outcome.final_len < cycle.outcome.initial_len,
            "{} -> {}",
            cycle.outcome.initial_len,
            cycle.outcome.final_len
        );
    }

    #[test]
    fn e10_threaded_event_backends_agree_on_every_bounded_instance() {
        // The event-driven threaded backends (bare and over the link
        // seam) must produce zero divergences on the WHOLE E9 instance
        // set — exhaustive and sampling families alike. This is the pin
        // that the wheel-scheduled injections, the outstanding-count
        // quiescence protocol, and the virtual-clock horizon reproduce
        // the simulator's envelope, instance by instance.
        let config = ConformanceConfig {
            random_runs: 1,
            threaded_runs: 2,
            transport_runs: 1,
            settle_ms: 2_000,
            seed: 0x7E57,
            ..ConformanceConfig::default()
        };
        for instance in &e9_instances() {
            let mut inst = ExploreInstance::new(instance.spec.clone());
            inst.config = ExploreConfig {
                max_steps: 600,
                max_schedules: if instance.exhaustive { 100_000 } else { 2_000 },
                pruning: Pruning::SleepSets,
            };
            let out = inst.conformance(&config);
            for backend in out
                .backends
                .iter()
                .filter(|b| b.backend.starts_with("threaded:"))
            {
                assert_eq!(backend.runs, 2, "{}: {:?}", instance.label, backend);
                assert!(
                    backend.divergences.is_empty(),
                    "{} / {}: {:#?}",
                    instance.label,
                    backend.backend,
                    backend.divergences
                );
            }
        }
    }

    #[test]
    fn e5_wait_for_all_needs_more_votes() {
        let all = detection_cost(10, 3, QuorumPolicy::WaitForAll, 1);
        let fixed = detection_cost(10, 3, QuorumPolicy::FixedMinimum, 1);
        assert!(all.votes_needed > fixed.votes_needed);
        assert!(all.detections >= 9);
        assert!(fixed.detections >= 9);
    }

    #[test]
    fn tables_render_nonempty() {
        assert!(!run_e2().is_empty());
        assert!(!run_e3().is_empty());
        assert!(!run_e4(3).is_empty());
    }

    /// The rayon sweep must be a drop-in for the serial loop: same values,
    /// same order, hence byte-identical tables.
    #[test]
    fn parallel_sweep_matches_serial_order() {
        let parallel = par_seeds(24, |seed| {
            let trace = random_sfs_run(5, 2, E1Variant::Standard, seed);
            (trace.events().len(), trace.stats().messages_sent)
        });
        let serial: Vec<_> = (0..24)
            .map(|seed| {
                let trace = random_sfs_run(5, 2, E1Variant::Standard, seed);
                (trace.events().len(), trace.stats().messages_sent)
            })
            .collect();
        assert_eq!(parallel, serial);
    }

    /// Rendered experiment tables are reproducible run to run (no
    /// scheduling-dependent accumulation).
    #[test]
    fn parallel_tables_are_byte_identical_across_runs() {
        assert_eq!(run_e5(4).render(), run_e5(4).render());
        assert_eq!(run_e7(6).render(), run_e7(6).render());
    }
}
