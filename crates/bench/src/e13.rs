//! Experiment E13 — the chaos soak: a sharded sFS service under Poisson
//! crash arrivals, flapping partitions, delay storms, and a lossy link,
//! with adaptive transport timeouts compared against fixed ones (see
//! EXPERIMENTS.md §E13).
//!
//! Each cell runs `N ∈ {64, 256}` processes as `N/16` shards of 16
//! (`t = 2` locally) through three service epochs over a 2%-loss,
//! 2%-duplication link, with one [`ChaosSpec`] overlay per seed: a
//! Poisson crash stream (plus the deterministic floor crash), an epoch-1
//! *training flap* — a 70-tick cut of each shard's local p0 outbound
//! links, long enough to teach the adaptive prober that this peer can
//! fall silent, short enough that nobody suspects — and a 110-tick delay
//! storm that pushes the heartbeat gap past the fixed 100-tick timeout
//! but *not* past the learned threshold. The fixed rows therefore spend
//! one unit of every shard's failure budget on a false suspicion
//! (converted into a clean sFS kill, as the protocol demands); the
//! adaptive rows ride the storm out. Every kept shard trace is certified
//! against FS1/sFS2a–d on every seed, in both modes — chaos changes the
//! cost, never the properties.
//!
//! Every run also attaches the streaming [`sfs_obs::SfsMonitor`] to each shard
//! (`certify_online`): on the kept-trace rows its verdict vector is
//! asserted equal, clause by clause, to the post-hoc `check_sfs_suite`
//! on the same trace; the **certify-online** rows then drop trace
//! retention entirely (`keep_traces: false`) and certify from the
//! monitors alone — the soak's memory footprint no longer scales with
//! the event count.

use crate::report::{note_events, note_trace};
use crate::table::Table;
use rayon::prelude::*;
use sfs::{AdaptiveConfig, NetSpec, ProbeConfig, NOTE_PROBE_SUSPECT};
use sfs_asys::{Note, TraceEventKind};
use sfs_chaos::ChaosSpec;
use sfs_history::History;
use sfs_service::{run_service, LoadProfile, ServiceReport, ServiceSpec};
use sfs_tlogic::properties;
use std::collections::BTreeSet;

/// Epochs per soak.
const EPOCHS: u64 = 3;
/// Per-shard failure bound.
const T: usize = 2;
/// Shard size target (16-process shards, as in E11).
const SHARD: usize = 16;
/// The fixed heartbeat probe: 20-tick pings, 100-tick timeout, checked
/// every 5 ticks so a storm-length silence is never missed.
const PROBE: ProbeConfig = ProbeConfig {
    interval: 20,
    timeout: 100,
    check_every: 5,
};
/// The training flap: cut [150, 220) — observed gap ≈ 71–96 ticks,
/// under the fixed timeout (nobody suspects) but enough for the
/// adaptive prober to learn a ≈2× larger threshold.
const FLAP: (u64, u64) = (150, 220);
/// The delay storm: +110 ticks on [400, 560) — observed gap ≈ 111–136
/// ticks, over the fixed timeout (false suspicion) but under the
/// learned one.
const STORM: (u64, u64, u64) = (400, 560, 110);

/// One `(N, timeout mode)` cell of the E13 sweep, aggregated over seeds.
#[derive(Debug, Clone)]
pub struct E13Cell {
    /// Total processes.
    pub n: usize,
    /// Shards in the plan.
    pub shards: usize,
    /// `true` = adaptive (Jacobson RTO + learned suspicion threshold),
    /// `false` = fixed `ProbeConfig` timeouts.
    pub adaptive: bool,
    /// `true` = the certify-online mode: `keep_traces: false`, suite
    /// verdicts from the streaming monitors alone.
    pub online: bool,
    /// Seeds run.
    pub runs: usize,
    /// Runs on which *every* shard run certified the full suite (FS1,
    /// sFS2a–d, Conditions 1–3) — from its kept trace (with the
    /// streaming verdicts asserted equal), or, on certify-online rows,
    /// from the streaming monitor alone.
    pub suite_ok: usize,
    /// Shard traces certified across all runs (main + rescue passes).
    pub shard_runs: usize,
    /// Total kills across runs: Poisson/floor crashes plus converted
    /// false suspicions.
    pub kills: usize,
    /// Suspicions of still-live targets across runs (the storm's toll on
    /// the fixed prober; the adaptive rows must stay strictly lower).
    pub false_suspicions: usize,
    /// Detection events across runs (one per surviving detector per
    /// kill).
    pub detections: usize,
    /// Wire frames sent across runs.
    pub frames: u64,
    /// Distinct client ops completed across runs.
    pub ops_completed: u64,
    /// Ops rescued onto healthy donors after mid-epoch exhaustions.
    pub rescued_ops: u64,
    /// Shard-exhaustion events across runs (shards marked degraded).
    pub degraded: usize,
    /// Issue→completion latency of every completed client op across all
    /// runs, from the telemetry registries' log-bucket histograms (the
    /// merge is element-wise, so folding per run loses nothing).
    pub op_hist: sfs_obs::LogHistogram,
}

impl E13Cell {
    /// False suspicions per run.
    pub fn false_susp_rate(&self) -> f64 {
        self.false_suspicions as f64 / self.runs.max(1) as f64
    }

    /// Wire frames per detection event — the message cost of one unit of
    /// failure-detection work.
    pub fn msgs_per_detection(&self) -> f64 {
        self.frames as f64 / self.detections.max(1) as f64
    }

    /// 99th-percentile client-op latency (ticks) across every run of
    /// the cell — how much the chaos (and the timeout discipline riding
    /// it) cost the served load's tail.
    pub fn op_p99(&self) -> u64 {
        self.op_hist.p99()
    }
}

/// The service deployment of one E13 run: `n` processes, three epochs,
/// a lossy/duplicating link probed at fixed or adaptive timeouts, and
/// the per-seed chaos overlay described in the module docs.
pub fn e13_spec(n: usize, adaptive: bool, seed: u64) -> ServiceSpec {
    let shards = n / SHARD;
    let chaos = ChaosSpec::new(shards, T)
        .seed(0xE13 ^ seed)
        .horizon(EPOCHS as usize, 1_000)
        .flaps(vec![FLAP])
        .storm(STORM.0, STORM.1, STORM.2);
    let mut net = NetSpec::faultless().loss(0.02).duplicate(0.02).probe(PROBE);
    if adaptive {
        net = net.adaptive(AdaptiveConfig::default());
    }
    ServiceSpec::new(n, T, SHARD)
        .seed(0xE13 ^ seed)
        // Detection is endogenous: the transport probe suspects, the
        // protocol kills. The model-level heartbeat detector stays off
        // so the two timeout disciplines are compared in isolation.
        .heartbeat(None)
        .epochs(EPOCHS)
        .max_time(2_000)
        .keep_traces(true)
        .certify_online(true)
        // Anomaly watermarks armed: a queue-depth, RTO, or
        // suspicion-rate excursion past its learned baseline dumps the
        // shard's flight ring (under SFS_FLIGHT_DIR) before the
        // certification gate below ever sees a failed verdict.
        .watermarks(true)
        .load(LoadProfile::closed(2 * n as u64, 8))
        .net(net)
        .chaos(chaos)
}

/// Folds one service run (all epochs, all shard runs) into the cell.
/// Kept-trace rows certify post-hoc *and* assert the streaming monitor
/// agrees clause by clause; trace-free rows certify from the monitor
/// alone.
fn ingest(cell: &mut E13Cell, report: &ServiceReport) {
    cell.runs += 1;
    let mut all_ok = true;
    for s in report.epochs.iter().flat_map(|e| &e.shards) {
        let online = s.verdicts.as_ref().expect("E13 runs certify online");
        cell.shard_runs += 1;
        let ok = match s.trace.as_ref() {
            Some(trace) => {
                note_trace(trace);
                let h = History::from_trace(trace);
                let reports = properties::check_sfs_suite(&h, true);
                // The write-only monitor saw the same events the trace
                // recorded, so its verdict vector and the post-hoc
                // checker's must be *equal*, not merely consistent.
                assert_eq!(
                    online,
                    &sfs_obs::SuiteVerdicts::from_reports(&reports),
                    "online/post-hoc verdict divergence on shard {}",
                    s.shard
                );
                let ok = properties::suite_ok(&reports);
                if !ok {
                    // Black-box postmortem: when SFS_FLIGHT_DIR is set,
                    // dump the failed verdicts and the tail of the
                    // offending shard trace.
                    let mut body = format!(
                        "E13 certification failure: n={} shard={} adaptive={}\n",
                        report.total, s.shard, cell.adaptive
                    );
                    for r in &reports {
                        body.push_str(&format!("{}: {:?}\n", r.property, r.verdict));
                    }
                    body.push_str(&sfs_obs::flight::trace_tail(trace, 64));
                    sfs_obs::flight::dump_to_dir(
                        &format!(
                            "e13-cert-n{}-shard{}-run{}",
                            report.total, s.shard, cell.runs
                        ),
                        &body,
                    );
                }
                // A suspicion is false when its target had not crashed
                // yet at the moment the prober annotated it (event order
                // is causal).
                let mut crashed_so_far: BTreeSet<usize> = BTreeSet::new();
                for e in trace.events() {
                    match &e.kind {
                        TraceEventKind::Crash { pid } => {
                            crashed_so_far.insert(pid.index());
                        }
                        TraceEventKind::Note {
                            note: Note::KeyVal { key, val },
                            ..
                        } if key == NOTE_PROBE_SUSPECT => {
                            let target =
                                val.strip_prefix('p').and_then(|v| v.parse::<usize>().ok());
                            if target.is_none_or(|g| !crashed_so_far.contains(&g)) {
                                cell.false_suspicions += 1;
                            }
                        }
                        _ => {}
                    }
                }
                ok
            }
            // Certify-online row: no trace was retained; the streaming
            // verdicts are the certificate. (False suspicions need the
            // probe annotations, which live on the trace — those rows
            // display `-`.) The shard still simulated `s.events` events,
            // so the throughput record counts them like any other row.
            None => {
                note_events(s.events);
                online.all_ok()
            }
        };
        all_ok &= ok;
        cell.kills += s.stats.crashes as usize;
        cell.detections += s.stats.detections as usize;
        cell.frames += s.stats.messages_sent;
    }
    cell.suite_ok += usize::from(all_ok);
    cell.op_hist.merge(&report.op_latency_hist());
    cell.ops_completed += report.ops_completed();
    cell.rescued_ops += report.epochs.iter().map(|e| e.rescued_ops).sum::<u64>();
    cell.degraded += report.exhausted.len();
}

/// Runs one `(n, timeout mode, cert mode)` cell: `seeds` independent
/// soaks, one rayon task per seed (each soak fans out its own shard
/// runs), folded in seed order. `online` drops trace retention and
/// certifies from the streaming monitors alone.
pub fn e13_cell(n: usize, adaptive: bool, online: bool, seeds: u64) -> E13Cell {
    let reports: Vec<ServiceReport> = (0..seeds)
        .into_par_iter()
        .map(|seed| {
            run_service(&e13_spec(n, adaptive, seed).keep_traces(!online))
                .expect("E13 specs are feasible")
        })
        .collect();
    let mut cell = E13Cell {
        n,
        shards: n / SHARD,
        adaptive,
        online,
        runs: 0,
        suite_ok: 0,
        shard_runs: 0,
        kills: 0,
        false_suspicions: 0,
        detections: 0,
        frames: 0,
        ops_completed: 0,
        rescued_ops: 0,
        degraded: 0,
        op_hist: sfs_obs::LogHistogram::new(),
    };
    for report in &reports {
        ingest(&mut cell, report);
    }
    cell
}

/// Runs the full E13 table: `{64, 256} × {fixed, adaptive}` with kept
/// traces (streaming verdicts asserted equal to the post-hoc checker on
/// every shard run), plus `{64, 256} × {fixed, adaptive}` in
/// certify-online mode (`keep_traces: false`, verdicts from the
/// monitors alone). Every cell runs the same seeds, and so the same
/// chaos plans — the comparisons isolate the timeout discipline and the
/// certification mode.
pub fn run_e13(seeds: u64) -> (Table, Vec<E13Cell>) {
    let grid = [
        (64usize, false, false),
        (64, true, false),
        (256, false, false),
        (256, true, false),
        (64, false, true),
        (64, true, true),
        (256, false, true),
        (256, true, true),
    ];
    let cells: Vec<E13Cell> = grid
        .par_iter()
        .map(|&(n, adaptive, online)| e13_cell(n, adaptive, online, seeds))
        .collect();
    let mut table = Table::new(
        "E13 — chaos soak: Poisson crashes + flapping partitions + delay storms + 2% loss, \
         fixed vs adaptive transport timeouts, FS1/sFS2a-d certified on every seed \
         (trace-based and online-monitor rows)",
        &[
            "n",
            "shards",
            "timeouts",
            "cert",
            "runs",
            "suite ok",
            "kills",
            "f-susp/run",
            "msgs/det",
            "op p99",
            "ops done",
            "rescued",
            "degraded",
        ],
    );
    for c in &cells {
        table.row([
            c.n.to_string(),
            c.shards.to_string(),
            if c.adaptive { "adaptive" } else { "fixed" }.to_string(),
            if c.online { "online" } else { "trace" }.to_string(),
            c.runs.to_string(),
            format!("{}/{}", c.suite_ok, c.runs),
            c.kills.to_string(),
            if c.online {
                "-".to_string()
            } else {
                format!("{:.1}", c.false_susp_rate())
            },
            format!("{:.0}", c.msgs_per_detection()),
            c.op_p99().to_string(),
            c.ops_completed.to_string(),
            c.rescued_ops.to_string(),
            c.degraded.to_string(),
        ]);
    }
    table.note(
        "suite ok counts soaks on which every shard run (main and rescue passes, all \
         epochs) certified FS1 + sFS2a-d with eventualities discharged — on `trace` rows \
         from the kept trace, with the streaming monitor's verdicts asserted equal clause \
         by clause; on `online` rows from the streaming monitors alone, with no trace \
         retained at all. f-susp counts suspicions of still-live targets (the delay storm \
         pushes the heartbeat gap past the fixed 100-tick timeout, while the adaptive \
         prober, trained by the earlier sub-timeout flap, rides it out); the probe \
         annotations live on the trace, so online rows show `-`. degraded counts shards \
         that exhausted their budget and were shed by the directory, their stranded ops \
         rescued onto donors. op p99 is the 99th-percentile client-op latency (ticks) \
         from the telemetry registries' log-bucket histograms, merged across every seed.",
    );
    (table, cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_smoke_certifies_and_separates_the_timeout_modes() {
        // One seed at N = 64 in both modes: everything certifies, the
        // storm costs the fixed prober false suspicions (one per shard),
        // and the adaptive prober strictly fewer.
        let fixed = e13_cell(64, false, false, 1);
        let adaptive = e13_cell(64, true, false, 1);
        for c in [&fixed, &adaptive] {
            assert_eq!(c.runs, 1);
            assert_eq!(
                c.suite_ok,
                1,
                "{} mode failed to certify the suite",
                if c.adaptive { "adaptive" } else { "fixed" }
            );
            assert!(c.ops_completed > 0);
            assert!(c.op_p99() > 0, "op latencies flowed through the registry");
        }
        assert!(
            fixed.false_suspicions >= fixed.shards,
            "the storm must falsely suspect every shard's p0 under fixed timeouts \
             (got {} over {} shards)",
            fixed.false_suspicions,
            fixed.shards
        );
        assert!(
            adaptive.false_suspicions < fixed.false_suspicions,
            "adaptive timeouts must strictly reduce false suspicions \
             ({} vs {})",
            adaptive.false_suspicions,
            fixed.false_suspicions
        );
    }

    #[test]
    fn e13_certify_online_matches_the_trace_based_cell() {
        // The certify-online cell keeps no traces, yet must reach the
        // same verdict and the same engine counters as the kept-trace
        // cell on the same seed — certification without retention.
        let traced = e13_cell(64, true, false, 1);
        let online = e13_cell(64, true, true, 1);
        assert_eq!(online.runs, 1);
        assert_eq!(
            online.suite_ok, 1,
            "certify-online must certify without traces"
        );
        assert_eq!(online.suite_ok, traced.suite_ok);
        assert_eq!(online.shard_runs, traced.shard_runs);
        assert_eq!(online.kills, traced.kills);
        assert_eq!(online.detections, traced.detections);
        assert_eq!(online.frames, traced.frames);
        assert_eq!(online.ops_completed, traced.ops_completed);
    }

    #[test]
    fn e13_chaos_plan_is_shared_between_modes() {
        // The same seed must hand both modes the same chaos plan: the
        // comparison isolates the timeout discipline.
        let a = e13_spec(64, false, 7).chaos.unwrap().plan();
        let b = e13_spec(64, true, 7).chaos.unwrap().plan();
        assert_eq!(a, b);
        assert!(a.total_crashes() >= 1, "the crash floor guarantees one");
    }
}
