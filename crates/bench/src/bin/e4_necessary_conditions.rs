//! E4 — necessity (Thm 2) and insufficiency (Thm 3) of Conditions 1-3.
fn main() {
    let seeds = sfs_bench::seeds_arg(100);
    sfs_bench::run_with_report("E4", "Thm 3 counterexample + (10,3) random", seeds, || {
        sfs_bench::run_e4(seeds)
    });
}
