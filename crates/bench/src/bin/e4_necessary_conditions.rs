//! E4 — necessity (Thm 2) and insufficiency (Thm 3) of Conditions 1-3.
fn main() {
    sfs_bench::run_e4(sfs_bench::seeds_arg(100)).print();
}
