//! obs-smoke — the CI gate for the telemetry layer (ISSUE 9).
//!
//! Four checks, each fatal:
//!
//! 1. **E11 epoch with telemetry**: runs the N=64 E11 cell (sim backend,
//!    batched) through `sfs-service` and requires the merged per-shard
//!    registries to carry live op-latency and message-class data —
//!    `op_p99 > 0`, sends attributed, detections counted. Writes the
//!    merged [`RunReport`] to `OBS_REPORT.json`.
//! 2. **Four engines, one instance**: runs a common 6-process detection
//!    instance on the simulator, the event-driven threaded runtime, the
//!    ARQ transport leg, and (when the node binary is present) the UDP
//!    backend, folding every engine into one merged [`RunReport`]
//!    (`OBS_FOUR_ENGINES.json`). Set `SFS_OBS_SMOKE_REQUIRE_UDP=1` to
//!    make a missing node binary fatal (CI does).
//! 3. **Chrome trace export**: converts the obs-enabled sim run to
//!    Chrome trace-event JSON (`OBS_TRACE.json`), re-parses it with the
//!    crate's own JSON reader, and requires a non-empty `traceEvents`
//!    array — the same artifact `sfs-trace-export` emits for Perfetto.
//! 4. **Fingerprint drift**: the obs-enabled sim run must be
//!    byte-identical (serialized trace) to the bare run, and the
//!    obs-enabled threaded run must land in the bare threaded run's HB
//!    class. Any drift exits nonzero.
//!
//! Artifacts land in `SFS_BENCH_OUT` (default `.`).

use sfs::{ClusterSpec, HeartbeatConfig, NetSpec, NullApp};
use sfs_asys::ProcessId;
use sfs_explore::class_fingerprint;
use sfs_history::History;
use sfs_obs::{metrics, Json, Registry, RunReport};
use sfs_service::{plan_shards, run_service, Backend, LoadProfile, ServiceSpec};
use std::path::PathBuf;
use std::time::Duration;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn fail(msg: &str) -> ! {
    eprintln!("[obs-smoke] FAILED: {msg}");
    std::process::exit(1);
}

fn out_dir() -> PathBuf {
    std::env::var_os("SFS_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn write_artifact(name: &str, body: String) {
    let path = out_dir().join(name);
    match std::fs::write(&path, body + "\n") {
        Ok(()) => eprintln!("[obs-smoke] wrote {}", path.display()),
        Err(e) => fail(&format!("could not write {}: {e}", path.display())),
    }
}

/// The N=64 E11 cell (sim, batched): 4 shards of 16, t=2, shard 0
/// exhausted by two scripted crashes, two epochs of closed-loop ops.
fn e11_cell() -> ServiceSpec {
    let plan = plan_shards(64, 2, 16, 11).expect("E11 shape is feasible");
    let victims: Vec<usize> = plan.shards[0].members.iter().take(2).copied().collect();
    ServiceSpec::new(64, 2, 16)
        .seed(11)
        .backend(Backend::Sim)
        .batched(true)
        .heartbeat(Some(HeartbeatConfig {
            interval: 10,
            timeout: 60,
            check_every: 15,
        }))
        .max_time(600)
        .load(LoadProfile::closed(2 * 64, 8))
        .crash(victims[0], 40)
        .crash(victims[1], 55)
}

/// The common cross-engine instance (shared shape with the
/// `obs_equiv` / `transport_equiv` integration tests).
fn common_spec(seed: u64) -> ClusterSpec {
    ClusterSpec::new(6, 2)
        .seed(seed)
        .latency(1, 1)
        .suspect(p(1), p(0), 10)
        .suspect(p(4), p(3), 25)
}

fn main() {
    // ---- 1. E11 epoch with telemetry --------------------------------
    let report = run_service(&e11_cell()).unwrap_or_else(|e| fail(&format!("E11 cell: {e}")));
    let obs = report.obs_report();
    if report.op_p99() == 0 {
        fail("op_p99 is zero — op latencies never reached the registry");
    }
    if obs.counter_total(metrics::SENT) == 0 {
        fail("registry saw no sends from the service epoch loop");
    }
    if obs.counter_total(metrics::DETECTIONS) == 0 {
        fail("registry counted no detections despite scripted crashes");
    }
    eprintln!(
        "[obs-smoke] E11 N=64: op_p99={} ticks, {} sends, {} detections, {:.1} msgs/detection",
        report.op_p99(),
        obs.counter_total(metrics::SENT),
        obs.counter_total(metrics::DETECTIONS),
        report.msgs_per_detection(),
    );
    write_artifact("OBS_REPORT.json", obs.to_json());

    // ---- 2. Four engines, one RunReport -----------------------------
    let seed = 7u64;
    let mut merged = RunReport::empty("");

    let sim_reg = Registry::for_shard("sim", 0);
    let sim_obs_trace = common_spec(seed).observe(sim_reg.handle()).run();
    sim_reg.ingest_trace(&sim_obs_trace);
    merged.merge(&sim_reg.report());

    let thr_reg = Registry::for_shard("threaded", 0);
    let thr_obs_trace = common_spec(seed)
        .observe(thr_reg.handle())
        .try_run_threaded(|_| NullApp, Duration::from_millis(500))
        .unwrap_or_else(|e| fail(&format!("threaded leg: {e}")));
    thr_reg.ingest_trace(&thr_obs_trace);
    merged.merge(&thr_reg.report());

    let net_reg = Registry::for_shard("sim+net", 0);
    let net_trace = common_spec(seed)
        .net(NetSpec::faultless())
        .observe(net_reg.handle())
        .run_net();
    net_reg.ingest_trace(&net_trace);
    merged.merge(&net_reg.report());

    let mut engines = 3;
    match sfs::udp_node_binary() {
        Ok(_) => {
            let udp_reg = Registry::for_shard("udp", 0);
            let run = common_spec(seed)
                .net(NetSpec::faultless())
                .try_run_udp_full(Duration::from_secs(20))
                .unwrap_or_else(|e| fail(&format!("udp leg: {e}")));
            if !run.quiesced {
                fail("udp leg did not quiesce");
            }
            // The UDP engine's counters arrive as per-node Status-frame
            // ledgers, not through an in-process sink.
            udp_reg.ingest_node_status(&run.node_status);
            udp_reg.ingest_trace(&run.trace);
            merged.merge(&udp_reg.report());
            engines = 4;
        }
        Err(e) if std::env::var_os("SFS_OBS_SMOKE_REQUIRE_UDP").is_some() => {
            fail(&format!("udp node binary required but missing: {e}"))
        }
        Err(e) => eprintln!("[obs-smoke] udp leg skipped ({e})"),
    }
    if merged.counter_total(metrics::SENT) == 0 {
        fail("merged four-engine report carries no sends");
    }
    eprintln!(
        "[obs-smoke] merged report from {engines} engines [{}]: {} rows, {} sends",
        merged.engine(),
        merged.len(),
        merged.counter_total(metrics::SENT),
    );
    write_artifact("OBS_FOUR_ENGINES.json", merged.to_json());
    eprint!("{}", merged.to_table());

    // ---- 3. Chrome trace export -------------------------------------
    let chrome = sfs_obs::chrome::chrome_trace(&sim_obs_trace);
    match Json::parse(&chrome) {
        Ok(doc) => {
            let events = doc
                .get("traceEvents")
                .and_then(Json::as_arr)
                .unwrap_or_else(|| fail("chrome trace has no traceEvents array"));
            if events.is_empty() {
                fail("chrome trace exported zero events");
            }
            eprintln!("[obs-smoke] chrome trace: {} events", events.len());
        }
        Err(e) => fail(&format!("chrome trace does not parse: {e}")),
    }
    write_artifact("OBS_TRACE.json", chrome);
    // The interchange-format twin, consumable by `sfs-trace-export`
    // (and by `trace_from_json` anywhere else).
    write_artifact(
        "OBS_TRACE_RAW.json",
        sfs_obs::trace_json::trace_to_json(&sim_obs_trace),
    );

    // ---- 4. Fingerprint drift gate ----------------------------------
    let bare_sim = common_spec(seed).run();
    if sfs_obs::trace_json::trace_to_json(&bare_sim)
        != sfs_obs::trace_json::trace_to_json(&sim_obs_trace)
    {
        fail("telemetry changed the simulator's trace bytes");
    }
    let bare_thr = common_spec(seed)
        .try_run_threaded(|_| NullApp, Duration::from_millis(500))
        .unwrap_or_else(|e| fail(&format!("bare threaded leg: {e}")));
    let (fp_bare, fp_obs) = (
        class_fingerprint(&History::from_trace(&bare_thr)),
        class_fingerprint(&History::from_trace(&thr_obs_trace)),
    );
    if fp_bare != fp_obs {
        fail(&format!(
            "telemetry moved the threaded HB class: bare {fp_bare:#018x} vs obs {fp_obs:#018x}"
        ));
    }
    eprintln!("[obs-smoke] fingerprints clean: sim byte-identical, threaded class {fp_obs:#018x}");
    eprintln!("[obs-smoke] OK");
}
