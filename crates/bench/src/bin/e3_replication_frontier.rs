//! E3 — the Corollary 8 replication frontier.
fn main() {
    sfs_bench::run_e3().print();
}
