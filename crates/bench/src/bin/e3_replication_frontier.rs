//! E3 — the Corollary 8 replication frontier.
fn main() {
    sfs_bench::run_with_report("E3", "t=1..8 at n=t^2 and n=t^2+1", 0, sfs_bench::run_e3);
}
