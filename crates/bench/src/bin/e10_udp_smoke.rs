//! CI smoke for the UDP socket backend: run the E10 `net:udp` leg —
//! one OS process per node over real localhost datagrams — against the
//! bounded (exhaustive) E9 instances and exit nonzero on any divergence
//! from the reference envelope, or if the leg could not run at all
//! (missing `sfs-udp-node` binary counts as failure here, unlike the
//! library tests, which skip).
//!
//! The optional CLI argument is the exploration budget per instance
//! (schedule cap for the reference envelope; default 20 000). Writes
//! `BENCH_E10_UDP.json` (with the full table embedded) to
//! `SFS_BENCH_OUT`.

use sfs_apps::scenarios::{ConformanceConfig, ExploreInstance};
use sfs_bench::e9_instances;
use sfs_explore::{ExploreConfig, Pruning};

fn main() {
    let budget = sfs_bench::seeds_arg(20_000);
    if let Err(e) = sfs::udp_node_binary() {
        eprintln!("[bench] E10_UDP FAILED: node binary unavailable ({e})");
        eprintln!("[bench] build it first: cargo build --release -p sfs --bin sfs-udp-node");
        std::process::exit(1);
    }
    let mut failures = 0usize;
    sfs_bench::run_with_report(
        "E10_UDP",
        "bounded E9 instances x net:udp (multi-process, localhost datagrams)",
        budget,
        || {
            let mut table = sfs_bench::Table::new(
                "E10 net:udp smoke — multi-process UDP backend vs the reference envelope",
                &[
                    "instance",
                    "ref classes",
                    "udp runs",
                    "complete",
                    "divergent",
                ],
            );
            for (i, instance) in e9_instances().iter().filter(|i| i.exhaustive).enumerate() {
                let mut inst = ExploreInstance::new(instance.spec.clone());
                inst.config = ExploreConfig {
                    max_steps: 600,
                    max_schedules: budget as usize,
                    pruning: Pruning::SleepSets,
                };
                let out = inst.conformance(&ConformanceConfig {
                    random_runs: 0,
                    threaded_runs: 0,
                    transport_runs: 0,
                    udp_runs: 2,
                    settle_ms: 300, // UDP runs are floored to 5 s internally
                    seed: 0xD0 + i as u64,
                    ..ConformanceConfig::default()
                });
                sfs_bench::note_events(out.reference.trace_events);
                let udp = out
                    .backends
                    .iter()
                    .find(|b| b.backend == "net:udp")
                    .expect("net:udp backend is always reported");
                // A skipped leg (0 runs) is a failure for this job: CI
                // builds the node binary before invoking us.
                if udp.runs < 2 || udp.divergent_runs > 0 {
                    failures += 1;
                }
                for d in &udp.divergences {
                    eprintln!("[bench] {}: {}", instance.label, d);
                }
                table.row([
                    instance.label.to_string(),
                    out.reference.classes().to_string(),
                    udp.runs.to_string(),
                    udp.complete_runs.to_string(),
                    udp.divergent_runs.to_string(),
                ]);
            }
            table.note(
                "each bounded instance is explored into its reference envelope, then \
                 executed twice across real OS processes (one per node) exchanging \
                 sfs-wire datagrams over localhost UDP; the Lamport-merged trace must \
                 land in the envelope. Nonzero exit on any divergence or skipped run.",
            );
            table
        },
    );
    if failures > 0 {
        eprintln!("[bench] E10_UDP FAILED: {failures} instance(s) diverged or skipped");
        std::process::exit(1);
    }
}
