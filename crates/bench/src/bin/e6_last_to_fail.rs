//! E6 — last-process-to-fail recovery by detector.
fn main() {
    sfs_bench::run_e6(sfs_bench::seeds_arg(100)).print();
}
