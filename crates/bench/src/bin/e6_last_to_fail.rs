//! E6 — last-process-to-fail recovery by detector.
fn main() {
    let seeds = sfs_bench::seeds_arg(100);
    sfs_bench::run_with_report("E6", "(4,1) x 4 detectors", seeds, || {
        sfs_bench::run_e6(seeds)
    });
}
