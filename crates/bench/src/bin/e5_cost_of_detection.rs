//! E5 — cost of detection: wait-for-all vs fixed quorum.
fn main() {
    let seeds = sfs_bench::seeds_arg(50);
    sfs_bench::run_with_report(
        "E5",
        "(5,2),(10,3),(17,4),(26,5),(37,6),(50,7) x 2 policies",
        seeds,
        || sfs_bench::run_e5(seeds),
    );
}
