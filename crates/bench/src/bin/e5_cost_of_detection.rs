//! E5 — cost of detection: wait-for-all vs fixed quorum.
fn main() {
    sfs_bench::run_e5(sfs_bench::seeds_arg(50)).print();
}
