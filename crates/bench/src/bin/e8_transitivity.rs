//! E8 — (non-)transitivity of the failed-before relation (§6 discussion).
fn main() {
    let seeds = sfs_bench::seeds_arg(200);
    sfs_bench::run_with_report("E8", "(5,2),(10,3),(17,4) + spec witness", seeds, || {
        sfs_bench::run_e8(seeds)
    });
}
