//! E8 — (non-)transitivity of the failed-before relation (§6 discussion).
fn main() {
    sfs_bench::run_e8(sfs_bench::seeds_arg(200)).print();
}
