//! E1 — sFS property satisfaction and Theorem 5 rearrangement.
fn main() {
    let seeds = sfs_bench::seeds_arg(100);
    sfs_bench::run_with_report("E1", "(5,2),(10,3),(17,4) x 3 variants", seeds, || {
        sfs_bench::run_e1(seeds)
    });
}
