//! E1 — sFS property satisfaction and Theorem 5 rearrangement.
fn main() {
    sfs_bench::run_e1(sfs_bench::seeds_arg(100)).print();
}
