//! E12 — reliable-FIFO transport and endogenous failure detection over a
//! faulty network: FS1/sFS2a–d verdicts, detection latency, and message
//! cost as functions of loss rate and partition duration, with the §5
//! protocol's channels *emulated* by `sfs-transport` rather than assumed
//! (see EXPERIMENTS.md §E12).
//!
//! The optional CLI argument sets the seeds per scenario cell. Exits
//! nonzero when any cell fails to certify the suite, when FS1 is missed,
//! or when no scenario demonstrates an endogenous false-suspicion kill —
//! this is the CI `e12-faulty-net-smoke` entry point.
fn main() {
    let seeds = sfs_bench::seeds_arg(12);
    let mut cells = None;
    sfs_bench::run_with_report(
        "E12",
        "9 net scenarios (loss 0-20%, dup 25%, 3 partition durations, churn) x (6,2)",
        seeds,
        || {
            let (table, c) = sfs_bench::run_e12(seeds);
            cells = Some(c);
            table
        },
    );
    let cells = cells.expect("run_e12 ran");
    let mut failed = false;
    for c in &cells {
        // The sub-timeout cut kills nobody; every triggering scenario
        // must certify the full suite and FS1 on every seed.
        if c.suite_ok != c.runs || c.all_detect != c.runs {
            eprintln!(
                "[bench] E12 FAILED: {} certified {}/{} (FS1 {}/{})",
                c.scenario, c.suite_ok, c.runs, c.all_detect, c.runs
            );
            failed = true;
        }
    }
    let endogenous: usize = cells.iter().map(|c| c.endogenous_kills).sum();
    if endogenous == 0 {
        eprintln!("[bench] E12 FAILED: no endogenous false-suspicion kill demonstrated");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
