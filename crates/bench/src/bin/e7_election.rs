//! E7 — election safety by detector.
fn main() {
    sfs_bench::run_e7(sfs_bench::seeds_arg(200)).print();
}
