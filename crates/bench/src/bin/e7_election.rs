//! E7 — election safety by detector.
fn main() {
    let seeds = sfs_bench::seeds_arg(200);
    sfs_bench::run_with_report("E7", "(5,2) x 4 detectors", seeds, || {
        sfs_bench::run_e7(seeds)
    });
}
