//! E9 — schedule-space exploration: certify/violate verdicts per property
//! over every schedule of bounded instances (see EXPERIMENTS.md §E9).
//!
//! The optional CLI argument is the per-cell budget: the schedule cap for
//! exhaustive cells (they normally finish far below it) and the walk
//! count for sampling cells.
fn main() {
    let budget = sfs_bench::seeds_arg(200_000);
    sfs_bench::run_with_report(
        "E9",
        "five exhaustive 3-process instances + one sampled 5-process instance",
        budget,
        || sfs_bench::run_e9(budget),
    );
}
