//! E13 — the chaos soak: sharded sFS deployments at N ∈ {64, 256} under
//! Poisson crash arrivals, flapping partitions, delay storms, and a
//! lossy link, three service epochs per seed, with fixed and adaptive
//! transport timeouts compared head to head (see EXPERIMENTS.md §E13).
//!
//! The optional CLI argument sets the seeds per cell. Exits nonzero when
//! any soak fails to certify FS1/sFS2a–d on every kept shard trace, or
//! when the adaptive rows do not show *strictly fewer* false suspicions
//! than the fixed rows at the same N — this is the CI `e13-soak-smoke`
//! entry point.
fn main() {
    let seeds = sfs_bench::seeds_arg(4);
    let mut cells = None;
    sfs_bench::run_with_report(
        "E13",
        "(64,2) and (256,2) x 3 epochs x {fixed, adaptive} timeouts, chaos overlay per seed",
        seeds,
        || {
            let (table, c) = sfs_bench::run_e13(seeds);
            cells = Some(c);
            table
        },
    );
    let cells = cells.expect("run_e13 ran");
    let mut failed = false;
    for c in &cells {
        if c.suite_ok != c.runs {
            eprintln!(
                "[bench] E13 FAILED: n={} {} certified {}/{} soaks",
                c.n,
                if c.adaptive { "adaptive" } else { "fixed" },
                c.suite_ok,
                c.runs
            );
            failed = true;
        }
    }
    for n in [64usize, 256] {
        // False suspicions are counted from probe annotations on kept
        // traces, so the comparison uses the trace-based rows only.
        let fixed = cells
            .iter()
            .find(|c| c.n == n && !c.adaptive && !c.online)
            .unwrap();
        let adaptive = cells
            .iter()
            .find(|c| c.n == n && c.adaptive && !c.online)
            .unwrap();
        if adaptive.false_suspicions >= fixed.false_suspicions {
            eprintln!(
                "[bench] E13 FAILED: n={n} adaptive false suspicions not strictly lower \
                 ({} vs {})",
                adaptive.false_suspicions, fixed.false_suspicions
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
