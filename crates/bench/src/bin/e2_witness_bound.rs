//! E2 — tightness of the Theorem 7 quorum bound.
fn main() {
    sfs_bench::run_with_report(
        "E2",
        "(6,2),(10,2),(9,3),(12,3),(16,4),(20,4) x 2 quorums",
        0,
        sfs_bench::run_e2,
    );
}
