//! E2 — tightness of the Theorem 7 quorum bound.
fn main() {
    sfs_bench::run_e2().print();
}
