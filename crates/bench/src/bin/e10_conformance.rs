//! E10 — differential conformance: run every E9 instance family through
//! all the runtimes (simulator strategies, schedule replay, real
//! threads, transport legs, and — when the `sfs-udp-node` binary is
//! built — multi-process UDP over localhost), cross-check them against
//! the exploration's envelope, and minimize every violating witness
//! (see EXPERIMENTS.md §E10).
//!
//! The optional CLI argument bounds the reference exploration (schedule
//! cap per instance). Exits nonzero on any backend divergence — this is
//! the CI conformance-fuzz entry point — and writes the minimized
//! witnesses (and any divergences) to `E10_WITNESSES.json` next to
//! `BENCH_E10.json`.
fn main() {
    let budget = sfs_bench::seeds_arg(200_000);
    let mut summary = None;
    sfs_bench::run_with_report(
        "E10",
        "5 E9 instance families x (time-ordered + 24 random + replay + 2 threaded + udp)",
        budget,
        || {
            let (table, s) = sfs_bench::run_e10(budget);
            summary = Some(s);
            table
        },
    );
    let summary = summary.expect("run_e10 ran");
    let out_dir = std::env::var_os("SFS_BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let path = out_dir.join("E10_WITNESSES.json");
    match std::fs::write(&path, summary.witnesses_json()) {
        Ok(()) => eprintln!(
            "[bench] E10 witnesses -> {} ({} minimized, {} divergences)",
            path.display(),
            summary.witnesses.len(),
            summary.divergences
        ),
        Err(e) => eprintln!("[bench] could not write {}: {e}", path.display()),
    }
    if summary.divergences > 0 {
        eprintln!(
            "[bench] E10 FAILED: {} backend divergence(s)",
            summary.divergences
        );
        std::process::exit(1);
    }
}
