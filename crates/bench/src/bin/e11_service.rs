//! E11 — sharded service scale: N ∈ {64, 256, 1024} total processes as
//! independent 16-process quorum groups behind a replicated directory,
//! on both backends, batched and unbatched (see EXPERIMENTS.md §E11).
//!
//! CLI: `e11_service [max_n] [ops_per_proc]`. The CI smoke job runs
//! `e11_service 64 2` (only the N=64 cells, small op budget); the full
//! sweep defaults to `1024 4`.
//!
//! Writes `BENCH_E11.json` carrying the standard wall/events record
//! *plus* a per-cell table with throughput, detection-latency, and
//! batched-vs-unbatched speedup columns. Exits nonzero if any cell
//! completes zero ops (throughput regression to zero), or — when
//! `SFS_E11_THREADED_BUDGET_MS` is set — if the threaded cells together
//! exceed that wall-clock budget. The budget gate is what CI's
//! threaded-runtime smoke job pins: the event-driven router's wall cost
//! must track events executed, so a regression back toward
//! tick-paced sleeping blows the budget by orders of magnitude.

use sfs_service::Backend;
use std::fmt::Write as _;

fn main() {
    let mut args = std::env::args().skip(1);
    let max_n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1024);
    let ops_per_proc: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let mut rows = None;
    // Writes the standard BENCH_E11.json record (wall, events, rate).
    // E11 runs one fixed seed per cell (the op budget is in the configs
    // string, not the seeds field).
    let configs = format!(
        "N in {{64,256,1024}} capped at {max_n} x {{sim,threaded}} x {{batch off,on}}, \
         t=2, 16-process shards, ops_per_proc={ops_per_proc}"
    );
    let record = sfs_bench::run_with_report("E11", &configs, 1, || {
        let (table, r) = sfs_bench::run_e11(max_n, ops_per_proc);
        rows = Some(r);
        table
    });
    let rows = rows.expect("run_e11 ran");
    // ...then extends it in place with the per-cell measurement table the
    // experiment is actually about.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"E11\",");
    let _ = writeln!(
        json,
        "  \"configs\": \"{}\",",
        record.configs.escape_default()
    );
    let _ = writeln!(json, "  \"seeds\": {},", record.seeds);
    let _ = writeln!(json, "  \"wall_ms\": {:.3},", record.wall_ms);
    let _ = writeln!(json, "  \"events\": {},", record.events);
    let _ = writeln!(
        json,
        "  \"events_per_sec\": {:.1},",
        record.events_per_sec()
    );
    let _ = writeln!(json, "  \"threads\": {},", record.threads);
    let _ = writeln!(json, "  \"rows\": {},", record.rows);
    let _ = writeln!(json, "  \"table\": [");
    for (i, (row, speedup_wall, speedup_serving)) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {}{sep}",
            row.to_json(*speedup_wall, *speedup_serving)
        );
    }
    let _ = writeln!(json, "  ]");
    json.push('}');
    let out_dir = std::env::var_os("SFS_BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let path = out_dir.join("BENCH_E11.json");
    match std::fs::write(&path, json + "\n") {
        Ok(()) => eprintln!(
            "[bench] E11 table -> {} ({} cells)",
            path.display(),
            rows.len()
        ),
        Err(e) => {
            // The results file IS the experiment's deliverable: losing it
            // after a long sweep must not look like success.
            eprintln!(
                "[bench] E11 FAILED: could not write {}: {e}",
                path.display()
            );
            std::process::exit(1);
        }
    }
    let stalled: Vec<String> = rows
        .iter()
        .filter(|(r, _, _)| r.ops_completed == 0)
        .map(|(r, _, _)| format!("(n={}, {}, batch={})", r.n, r.backend, r.batch))
        .collect();
    if !stalled.is_empty() {
        eprintln!(
            "[bench] E11 FAILED: zero throughput in {}",
            stalled.join(", ")
        );
        std::process::exit(1);
    }
    if let Some(budget_ms) = std::env::var("SFS_E11_THREADED_BUDGET_MS")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
    {
        let threaded_wall: f64 = rows
            .iter()
            .filter(|(r, _, _)| r.backend == Backend::Threaded)
            .map(|(r, _, _)| r.wall_ms)
            .sum();
        if threaded_wall > budget_ms {
            eprintln!(
                "[bench] E11 FAILED: threaded cells took {threaded_wall:.0} ms \
                 wall, over the SFS_E11_THREADED_BUDGET_MS={budget_ms:.0} budget"
            );
            std::process::exit(1);
        }
        eprintln!(
            "[bench] E11 threaded wall {threaded_wall:.0} ms within budget {budget_ms:.0} ms"
        );
    }
}
