//! E11 — service-layer scale: sharded sFS deployments at N ∈ {64, 256,
//! 1024} total processes, on both backends, batched and unbatched (see
//! EXPERIMENTS.md §E11).
//!
//! Each cell plans `N/16` shards of 16 processes tolerating `t = 2`
//! locally, exhausts shard 0's budget with two scripted crashes, and
//! drives two epochs of closed-loop client ops through the
//! `sfs-service` engine — epoch 2 running on the directory's rebalanced
//! table. Measured per cell: completed ops, wall-clock throughput,
//! message rate, the crash→detection latency distribution, and the
//! batching fast path's wall-clock speedup against the unbatched
//! sibling. Both backends run the same virtual clock; the event-driven
//! threaded runtime advances it at compute speed, so its wall time is
//! proportional to events executed — not to the virtual horizon or a
//! drain budget — and the batching win (fewer channel handovers per
//! event) reads directly off its wall column.
//!
//! Every cell also certifies **online**: a streaming `SfsMonitor` rides
//! each shard run's write-only event sink and the `cert` column counts
//! shard runs whose full suite (FS1, sFS2a–d, Conditions 1–3) held —
//! including the N = 1024 cells, whose traces were never affordable to
//! retain. `mon ns/ev` reads the monitor-overhead gauge off the merged
//! telemetry.

use crate::report::note_events;
use crate::table::Table;
use sfs::HeartbeatConfig;
use sfs_obs::metrics;
use sfs_service::{plan_shards, run_service, Backend, LoadProfile, ServiceReport, ServiceSpec};

/// One measured E11 cell.
#[derive(Debug, Clone)]
pub struct E11Row {
    /// Total processes.
    pub n: usize,
    /// Shards in the plan.
    pub shards: usize,
    /// Backend.
    pub backend: Backend,
    /// Batching fast path on?
    pub batch: bool,
    /// Distinct client ops completed (both epochs).
    pub ops_completed: u64,
    /// Distinct client ops issued.
    pub ops_issued: u64,
    /// Wall-clock for the whole service run.
    pub wall_ms: f64,
    /// Completed ops per wall second.
    pub ops_per_sec: f64,
    /// Messages sent across all shard runs.
    pub messages: u64,
    /// Messages per wall second.
    pub msgs_per_sec: f64,
    /// Summed first-issue→last-completion windows (ticks).
    pub serving_ticks: u64,
    /// Detection-latency percentiles (ticks): p50.
    pub det_p50: u64,
    /// p95.
    pub det_p95: u64,
    /// Maximum.
    pub det_max: u64,
    /// 99th-percentile client-op latency across both epochs (ticks),
    /// from the telemetry registry's log-bucket histogram.
    pub op_p99: u64,
    /// Messages sent per detection event, from the registry counters.
    pub msgs_per_det: f64,
    /// Coalesced delivery batches (0 when batching is off).
    pub delivery_batches: u64,
    /// Shards that exhausted their budget (must be exactly shard 0).
    pub exhausted: usize,
    /// Shard runs across both epochs (main + rescue passes).
    pub shard_runs: usize,
    /// Shard runs whose streaming monitor certified the full sFS suite
    /// online (no traces retained).
    pub certified: usize,
    /// Monitor overhead: worst per-shard cost of one monitored event,
    /// nanoseconds (the `monitor_ns_per_event` gauge, merged by max).
    pub monitor_ns_per_event: u64,
}

impl E11Row {
    fn from_report(r: &ServiceReport) -> Self {
        E11Row {
            n: r.total,
            shards: r.shard_count,
            backend: r.backend,
            batch: r.batch,
            ops_completed: r.ops_completed(),
            ops_issued: r.ops_issued(),
            wall_ms: r.wall_ms,
            ops_per_sec: r.ops_per_sec(),
            messages: r.messages(),
            msgs_per_sec: r.msgs_per_sec(),
            serving_ticks: r.serving_ticks(),
            // Nearest-rank via linear-time selection — no full sort of
            // the latency distribution.
            det_p50: r.detection_p(50),
            det_p95: r.detection_p(95),
            det_max: r.detection_max(),
            op_p99: r.op_p99(),
            msgs_per_det: r.msgs_per_detection(),
            delivery_batches: r.delivery_batches(),
            exhausted: r.exhausted.len(),
            shard_runs: r.epochs.iter().flat_map(|e| &e.shards).count(),
            certified: r
                .epochs
                .iter()
                .flat_map(|e| &e.shards)
                .filter(|s| s.verdicts.as_ref().is_some_and(|v| v.all_ok()))
                .count(),
            monitor_ns_per_event: r.obs_report().gauge_max(metrics::MONITOR_NS_PER_EVENT),
        }
    }

    /// One JSON object for the `BENCH_E11.json` table array.
    pub fn to_json(&self, speedup_wall: f64, speedup_serving: f64) -> String {
        format!(
            "{{\"n\": {}, \"shards\": {}, \"backend\": \"{}\", \"batch\": {}, \
             \"ops_completed\": {}, \"ops_per_sec\": {:.1}, \"messages\": {}, \
             \"msgs_per_sec\": {:.1}, \"wall_ms\": {:.1}, \"serving_ticks\": {}, \
             \"det_p50\": {}, \"det_p95\": {}, \"det_max\": {}, \
             \"op_p99\": {}, \"msgs_per_det\": {:.1}, \
             \"delivery_batches\": {}, \"shard_runs\": {}, \"certified\": {}, \
             \"monitor_ns_per_event\": {}, \"speedup_wall\": {:.3}, \
             \"speedup_serving\": {:.3}}}",
            self.n,
            self.shards,
            self.backend,
            self.batch,
            self.ops_completed,
            self.ops_per_sec,
            self.messages,
            self.msgs_per_sec,
            self.wall_ms,
            self.serving_ticks,
            self.det_p50,
            self.det_p95,
            self.det_max,
            self.op_p99,
            self.msgs_per_det,
            self.delivery_batches,
            self.shard_runs,
            self.certified,
            self.monitor_ns_per_event,
            speedup_wall,
            speedup_serving,
        )
    }
}

/// The spec for one E11 cell.
fn e11_spec(n: usize, backend: Backend, batch: bool, ops_per_proc: u64) -> ServiceSpec {
    // Shard 0's first two members crash early, exhausting its t = 2 and
    // forcing an epoch-2 rebalance; the plan is deterministic, so the
    // victims are nameable up front.
    let plan = plan_shards(n, 2, 16, 11).expect("E11 shapes are feasible");
    let victims: Vec<usize> = plan.shards[0].members.iter().take(2).copied().collect();
    ServiceSpec::new(n, 2, 16)
        .seed(11)
        .backend(backend)
        .batched(batch)
        // Fast heartbeats keep crash→detection latency (and the threaded
        // drain budget riding on it) small.
        .heartbeat(Some(HeartbeatConfig {
            interval: 10,
            timeout: 60,
            check_every: 15,
        }))
        .max_time(600)
        // Online certification, no trace retention: the monitors carry
        // the suite verdicts even at N = 1024.
        .certify_online(true)
        .load(LoadProfile::closed(ops_per_proc * n as u64, 8))
        .crash(victims[0], 40)
        .crash(victims[1], 55)
}

/// Runs the E11 sweep. `max_n` bounds the deployment sizes swept (the CI
/// smoke job passes 64); `ops_per_proc` scales the per-epoch op count.
/// Returns the printable table and the rows (with per-pair speedups) for
/// `BENCH_E11.json`.
pub fn run_e11(max_n: usize, ops_per_proc: u64) -> (Table, Vec<(E11Row, f64, f64)>) {
    let mut table = Table::new(
        "E11 — sharded service scale (t=2 per shard, shard 0 exhausted, 2 epochs)",
        &[
            "N",
            "shards",
            "backend",
            "batch",
            "ops",
            "ops/s",
            "msgs",
            "msg/s",
            "det p50",
            "det p95",
            "det max",
            "op p99",
            "msg/det",
            "batches",
            "cert",
            "mon ns/ev",
            "speedup",
        ],
    );
    let mut rows = Vec::new();
    for n in [64usize, 256, 1024] {
        if n > max_n {
            continue;
        }
        for backend in [Backend::Sim, Backend::Threaded] {
            let mut baseline: Option<E11Row> = None;
            for batch in [false, true] {
                let spec = e11_spec(n, backend, batch, ops_per_proc);
                let report = run_service(&spec).unwrap_or_else(|e| {
                    panic!("E11 cell (n={n}, {backend}, batch={batch}) failed: {e}")
                });
                note_events(report.events());
                let row = E11Row::from_report(&report);
                // Speedup of this (batched) row against its unbatched
                // sibling, in wall-clock on both backends: the simulator's
                // wall is engine overhead, and the event-driven threaded
                // router's wall is compute per event executed — the thing
                // per-destination coalescing halves. (The serving window
                // is kept in the JSON but is degenerate on the bare
                // threaded backend: zero-delay delivery collapses the
                // message-driven closed loop onto a single virtual
                // instant.)
                let (speedup_wall, speedup_serving) = match &baseline {
                    Some(b) if batch => (
                        safe_ratio(b.wall_ms, row.wall_ms),
                        safe_ratio(b.serving_ticks as f64, row.serving_ticks as f64),
                    ),
                    _ => (1.0, 1.0),
                };
                let speedup_cell = if batch {
                    format!("{speedup_wall:.2}x wall")
                } else {
                    "-".to_owned()
                };
                table.row([
                    row.n.to_string(),
                    row.shards.to_string(),
                    row.backend.to_string(),
                    if row.batch { "on" } else { "off" }.to_owned(),
                    row.ops_completed.to_string(),
                    format!("{:.0}", row.ops_per_sec),
                    row.messages.to_string(),
                    format!("{:.0}", row.msgs_per_sec),
                    row.det_p50.to_string(),
                    row.det_p95.to_string(),
                    row.det_max.to_string(),
                    row.op_p99.to_string(),
                    format!("{:.0}", row.msgs_per_det),
                    row.delivery_batches.to_string(),
                    format!("{}/{}", row.certified, row.shard_runs),
                    row.monitor_ns_per_event.to_string(),
                    speedup_cell,
                ]);
                if !batch {
                    baseline = Some(row.clone());
                }
                rows.push((row, speedup_wall, speedup_serving));
            }
        }
    }
    table.note(
        "speedup: batched vs unbatched sibling, in wall time on both backends — \
         the event-driven threaded runtime's wall scales with events executed \
         (not the virtual horizon), so coalescing channel handovers shows up \
         directly (~2x on the threaded legs)",
    );
    table.note("detection latency in virtual ticks on both backends");
    table.note(
        "op p99 is the 99th-percentile client-op latency (ticks, both epochs) from the \
         telemetry registry's log-bucket histogram; msg/det divides messages sent by \
         detection events — both read off the per-shard registries merged across the \
         rayon fan-out",
    );
    table.note(
        "cert: shard runs whose streaming sFS monitor certified the full suite \
         (FS1 + sFS2a-d + Conditions 1-3) online, over the runs executed — no traces \
         retained, so the N=1024 cells certify for the first time; mon ns/ev is the \
         worst per-shard monitor cost per event from the telemetry gauges",
    );
    (table, rows)
}

fn safe_ratio(a: f64, b: f64) -> f64 {
    if b <= 0.0 {
        1.0
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_smoke_runs_the_smallest_cell() {
        // One N=64 sweep on the simulator only is cheap enough for the
        // unit suite and pins the cell invariants: full completion,
        // measured detections, exactly one exhausted shard.
        let spec = e11_spec(64, Backend::Sim, true, 1);
        let report = run_service(&spec).unwrap();
        let row = E11Row::from_report(&report);
        assert_eq!(row.shards, 4);
        assert_eq!(row.exhausted, 1);
        assert_eq!(row.ops_completed, 2 * 64, "both epochs complete");
        assert!(row.det_p50 > 0, "detections were measured");
        assert!(row.op_p99 > 0, "op latencies flowed through the registry");
        assert!(row.msgs_per_det > 0.0, "message cost per detection is live");
        assert!(row.delivery_batches > 0, "batching engaged");
        assert!(row.shard_runs > 0);
        assert_eq!(
            row.certified, row.shard_runs,
            "every shard run must certify the suite online"
        );
        let json = row.to_json(1.0, 1.0);
        assert!(json.contains("\"backend\": \"sim\""));
        assert!(json.contains("\"certified\""));
    }
}
