//! Experiment E12 — the §5 protocol over a *faulty* network: FS1 and
//! sFS2a–d verdicts, detection latency, and message cost as functions of
//! loss rate and partition duration, with channels **emulated** by the
//! `sfs-transport` ARQ layer rather than assumed (see EXPERIMENTS.md
//! §E12).
//!
//! Every run in this experiment detects endogenously: suspicions come
//! from transport heartbeat timeouts ([`ProbeConfig`](sfs::ProbeConfig)),
//! never from scripted `Injection::External` stimuli. The headline rows
//! are the healed-partition scenarios, where a transmit-silenced — but
//! perfectly alive — process is falsely suspected and the protocol
//! converts the false suspicion into a clean sFS kill.

use crate::report::note_trace;
use crate::table::Table;
use rayon::prelude::*;
use sfs_apps::scenarios::NetScenario;
use sfs_asys::{ProcessId, Trace, TraceEventKind};
use sfs_history::History;
use sfs_tlogic::properties;
use std::collections::BTreeSet;

/// One scenario cell of the E12 sweep, aggregated over its seeds.
#[derive(Debug, Clone)]
pub struct E12Cell {
    /// Scenario label (see [`NetScenario::label`]).
    pub scenario: String,
    /// System size.
    pub n: usize,
    /// Failure bound.
    pub t: usize,
    /// Seeds run.
    pub runs: usize,
    /// Runs on which the full suite — FS1, sFS2a–d, Conditions 1–3 —
    /// held *including the eventuality clauses* (judged on the prefix:
    /// a run only counts when every obligation was already discharged
    /// within the horizon).
    pub suite_ok: usize,
    /// Runs on which every survivor detected every killed process.
    pub all_detect: usize,
    /// Total kills across runs (scripted crashes + suspicion victims).
    pub kills: usize,
    /// Runs whose kills were triggered purely endogenously (no scripted
    /// crash preceding the first detection — i.e. a false suspicion from
    /// a heartbeat timeout, converted into a clean kill).
    pub endogenous_kills: usize,
    /// Mean trigger→settled detection latency in ticks (from the first
    /// trigger — scripted crash or partition cut — to the last
    /// detection event), over runs that detected anything.
    pub detect_latency: f64,
    /// Mean wire frames sent per run (the transport's message cost).
    pub frames: f64,
    /// Mean wire **bytes** sent per run: every frame charged its real
    /// encoded datagram size (`sfs-wire` header + body) on the sender's
    /// side — the same accounting the UDP backend reports, so these
    /// columns are comparable across emulated and real wires.
    pub wire_bytes: f64,
    /// Wire bytes per detection event across the cell (total bytes /
    /// total detections; 0 when nothing was detected) — the paper-level
    /// "cost of a failure notification" figure.
    pub bytes_per_detection: f64,
    /// Mean frames lost by the link per run.
    pub dropped: f64,
    /// Mean frames duplicated by the link per run.
    pub duplicated: f64,
    /// Mean *false* suspicions per run: `probe-suspect` annotations
    /// whose target had not crashed when the note was recorded (the
    /// islanded-but-alive victims of the partition scenarios).
    pub false_susp: f64,
    /// Mean frames retransmitted by the ARQ layer per run (summed from
    /// the `retx` burst annotations).
    pub retx: f64,
    /// Mean wire bytes per run on the **real** UDP wire, for scenarios
    /// whose fault vocabulary the real-wire backend can express (crash
    /// scripts; loss/duplication/partitions live on the sim link seam
    /// and have no real-wire counterpart). Summed from the per-node
    /// `NodeStatus` byte ledgers piggybacked on the control protocol's
    /// Status frames — the same sender-side
    /// `wire_cost` ruler as the emulated `wire_bytes` column, so the two
    /// figures are directly comparable. `None` when the scenario is not
    /// expressible on the real wire or the node binary is not built.
    pub udp_wire_bytes: Option<f64>,
}

/// When this scenario's environment first misbehaves — the latency
/// clock's zero point.
fn trigger_tick(scenario: &NetScenario) -> u64 {
    match *scenario {
        // Crash-ful scenarios script their first crash at tick 100.
        NetScenario::Loss(_) | NetScenario::Duplicate(_) | NetScenario::Churn { .. } => 100,
        NetScenario::HealedPartition { cut_at, .. } => cut_at,
    }
}

/// Runs one `(scenario, seed)` instance and folds it into the cell.
fn ingest(cell: &mut E12Cell, scenario: &NetScenario, trace: &Trace) {
    note_trace(trace);
    cell.runs += 1;
    let stats = trace.stats();
    cell.frames += stats.messages_sent as f64;
    cell.wire_bytes += stats.wire_bytes as f64;
    cell.dropped += stats.messages_dropped as f64;
    cell.duplicated += stats.messages_duplicated as f64;

    let crashed: BTreeSet<ProcessId> = trace.crashed().into_iter().collect();
    cell.kills += crashed.len();

    // Transport diagnostics, from the execution-neutral annotations: a
    // suspicion is *false* when its target had not crashed yet at the
    // moment the prober raised it (event order is causal order here),
    // and every `retx` note carries the size of one resend burst.
    let mut crashed_so_far: BTreeSet<usize> = BTreeSet::new();
    for e in trace.events() {
        match &e.kind {
            TraceEventKind::Crash { pid } => {
                crashed_so_far.insert(pid.index());
            }
            TraceEventKind::Note { note, .. } => match note {
                sfs_asys::Note::KeyVal { key, val } if key == sfs::NOTE_PROBE_SUSPECT => {
                    let target = val.strip_prefix('p').and_then(|v| v.parse::<usize>().ok());
                    if target.is_none_or(|g| !crashed_so_far.contains(&g)) {
                        cell.false_susp += 1.0;
                    }
                }
                sfs_asys::Note::KeyVal { key, val } if key == sfs::NOTE_RETX => {
                    cell.retx += val.parse::<f64>().unwrap_or(0.0);
                }
                _ => {}
            },
            _ => {}
        }
    }

    // FS1, empirically: every survivor detected every killed process.
    let survivors: Vec<ProcessId> = ProcessId::all(trace.n())
        .filter(|p| !crashed.contains(p))
        .collect();
    let detections: BTreeSet<(ProcessId, ProcessId)> = trace.detections().into_iter().collect();
    let all_detect = crashed
        .iter()
        .all(|&v| survivors.iter().all(|&s| detections.contains(&(s, v))));
    cell.all_detect += usize::from(all_detect);

    // The suite, with liveness judged on the prefix: `complete = true`
    // asserts every eventuality was already discharged — exactly the
    // strong claim the table makes, and a run that had not settled
    // within the horizon shows up as a violation here.
    let h = History::from_trace(trace);
    let reports = properties::check_sfs_suite(&h, true);
    let ok = properties::suite_ok(&reports);
    if !ok {
        // Black-box postmortem: dump the tail of the offending trace
        // (plus the failed verdicts) when SFS_FLIGHT_DIR is set.
        let mut body = format!("E12 certification failure: {}\n", cell.scenario);
        for r in &reports {
            body.push_str(&format!("{}: {:?}\n", r.property, r.verdict));
        }
        body.push_str(&sfs_obs::flight::trace_tail(trace, 64));
        sfs_obs::flight::dump_to_dir(
            &format!("e12-cert-{}-run{}", cell.scenario, cell.runs),
            &body,
        );
    }
    cell.suite_ok += usize::from(ok);

    // Endogenous trigger: a detection that precedes every scripted
    // crash means the suspicion came from a heartbeat timeout alone.
    let first_detection = trace.events().iter().find_map(|e| match e.kind {
        TraceEventKind::Failed { .. } => Some(e.time.ticks()),
        _ => None,
    });
    let first_crash = trace.events().iter().find_map(|e| match e.kind {
        TraceEventKind::Crash { .. } => Some(e.time.ticks()),
        _ => None,
    });
    if let Some(d) = first_detection {
        let endogenous = match (scenario, first_crash) {
            // The partition scenarios kill nobody by script: every kill
            // is a converted false suspicion.
            (NetScenario::HealedPartition { .. }, _) => !crashed.is_empty(),
            _ => first_crash.is_none_or(|c| d < c),
        };
        cell.endogenous_kills += usize::from(endogenous && !crashed.is_empty());
        let last_detection = trace
            .events()
            .iter()
            .rev()
            .find_map(|e| match e.kind {
                TraceEventKind::Failed { .. } => Some(e.time.ticks()),
                _ => None,
            })
            .unwrap_or(d);
        cell.detect_latency += last_detection.saturating_sub(trigger_tick(scenario)) as f64;
    }
}

/// Runs one scenario cell: `seeds` independent transport-backed runs,
/// one rayon task per seed, folded in seed order.
pub fn e12_cell(scenario: &NetScenario, n: usize, t: usize, seeds: u64) -> E12Cell {
    let traces: Vec<Trace> = (0..seeds)
        .into_par_iter()
        .map(|seed| {
            scenario
                .spec(n, t, 0xE12 ^ seed)
                // The measured net leg: identical schedule to
                // `try_run_net`, plus real encoded frame sizes charged
                // to the byte ledger for the bytes/detection columns.
                .try_run_net_measured()
                .expect("E12 scenarios are feasible by construction")
        })
        .collect();
    let mut cell = E12Cell {
        scenario: scenario.label(),
        n,
        t,
        runs: 0,
        suite_ok: 0,
        all_detect: 0,
        kills: 0,
        endogenous_kills: 0,
        detect_latency: 0.0,
        frames: 0.0,
        wire_bytes: 0.0,
        bytes_per_detection: 0.0,
        dropped: 0.0,
        duplicated: 0.0,
        false_susp: 0.0,
        retx: 0.0,
        udp_wire_bytes: None,
    };
    for trace in &traces {
        ingest(&mut cell, scenario, trace);
    }
    let detected_runs = traces
        .iter()
        .filter(|tr| !tr.detections().is_empty())
        .count()
        .max(1);
    cell.detect_latency /= detected_runs as f64;
    let total_detections: usize = traces.iter().map(|tr| tr.detections().len()).sum();
    cell.bytes_per_detection = if total_detections > 0 {
        cell.wire_bytes / total_detections as f64
    } else {
        0.0
    };
    cell.frames /= cell.runs.max(1) as f64;
    cell.wire_bytes /= cell.runs.max(1) as f64;
    cell.dropped /= cell.runs.max(1) as f64;
    cell.duplicated /= cell.runs.max(1) as f64;
    cell.false_susp /= cell.runs.max(1) as f64;
    cell.retx /= cell.runs.max(1) as f64;
    cell
}

/// The real-wire reference for the bytes columns: runs `scenario` on
/// the UDP backend — every process its own OS process, every frame a
/// real localhost datagram — and reports mean wire bytes per run,
/// summed from the per-node byte ledgers the control protocol's Status
/// frames piggyback. Eligible scenarios are those whose fault
/// vocabulary the real wire can express (crash scripts; emulated
/// loss/duplication/partitions live on the sim link seam); for the
/// rest, or when the `sfs-udp-node` binary is not built, returns
/// `None` and the table shows `-`.
pub fn e12_udp_bytes(scenario: &NetScenario, n: usize, t: usize, seeds: u64) -> Option<f64> {
    let expressible = matches!(scenario, NetScenario::Loss(p) if *p == 0.0)
        || matches!(scenario, NetScenario::Churn { .. });
    if !expressible || sfs::udp_node_binary().is_err() {
        return None;
    }
    // UDP ticks are real milliseconds, so cap the leg at two seeds: the
    // figure is a byte-accounting cross-check, not a distribution.
    let runs = seeds.clamp(1, 2);
    let mut total = 0u64;
    for seed in 0..runs {
        let run = scenario
            .spec(n, t, 0xE12 ^ seed)
            .try_run_udp_full(std::time::Duration::from_secs(10))
            .ok()?;
        total += run.node_status.iter().map(|s| s.wire_bytes).sum::<u64>();
    }
    Some(total as f64 / runs as f64)
}

/// The scenario grid of the E12 sweep: loss rates up to 20%,
/// duplication, healed partitions of three durations (one too short to
/// trigger the probe at all), and crash churn.
pub fn e12_scenarios() -> Vec<NetScenario> {
    vec![
        NetScenario::Loss(0.0),
        NetScenario::Loss(0.05),
        NetScenario::Loss(0.10),
        NetScenario::Loss(0.20),
        NetScenario::Duplicate(0.25),
        NetScenario::HealedPartition {
            island: 1,
            cut_at: 50,
            heal_at: 100, // shorter than the probe timeout: harmless
        },
        NetScenario::HealedPartition {
            island: 1,
            cut_at: 50,
            heal_at: 400,
        },
        NetScenario::HealedPartition {
            island: 1,
            cut_at: 50,
            heal_at: 1_500,
        },
        NetScenario::Churn {
            crashes: 2,
            every: 400,
        },
    ]
}

/// Runs the full E12 table: one rayon task per `(scenario, seed)`.
pub fn run_e12(seeds: u64) -> (Table, Vec<E12Cell>) {
    let (n, t) = (6usize, 2usize);
    let scenarios = e12_scenarios();
    let mut cells: Vec<E12Cell> = scenarios
        .par_iter()
        .map(|s| e12_cell(s, n, t, seeds))
        .collect();
    // The real-wire byte reference runs sequentially after the sweep:
    // each eligible run spawns n OS processes, which would fight the
    // rayon pool for cores.
    for (cell, scenario) in cells.iter_mut().zip(&scenarios) {
        cell.udp_wire_bytes = e12_udp_bytes(scenario, n, t, seeds);
    }
    let mut table = Table::new(
        "E12 — the §5 protocol over a faulty network (channels emulated by \
         sfs-transport, suspicions endogenous via heartbeat probing)",
        &[
            "scenario",
            "n",
            "t",
            "runs",
            "suite ok",
            "all-detect",
            "kills",
            "endog",
            "det lat",
            "frames/run",
            "bytes/run",
            "udp B/run",
            "bytes/det",
            "drop/run",
            "dup/run",
            "f-susp/run",
            "retx/run",
        ],
    );
    for c in &cells {
        table.row([
            c.scenario.clone(),
            c.n.to_string(),
            c.t.to_string(),
            c.runs.to_string(),
            format!("{}/{}", c.suite_ok, c.runs),
            format!("{}/{}", c.all_detect, c.runs),
            c.kills.to_string(),
            c.endogenous_kills.to_string(),
            format!("{:.0}", c.detect_latency),
            format!("{:.0}", c.frames),
            format!("{:.0}", c.wire_bytes),
            c.udp_wire_bytes
                .map_or_else(|| "-".to_owned(), |b| format!("{b:.0}")),
            format!("{:.0}", c.bytes_per_detection),
            format!("{:.0}", c.dropped),
            format!("{:.1}", c.duplicated),
            format!("{:.1}", c.false_susp),
            format!("{:.0}", c.retx),
        ]);
    }
    table.note(
        "suite ok counts runs where FS1 + sFS2a-d (and Conditions 1-3) held with every \
         eventuality already discharged within the horizon; det lat is trigger -> last \
         detection in ticks; endog counts runs whose kills were triggered by heartbeat \
         timeouts alone (the cut-[50,100) row is deliberately sub-timeout: no trigger, \
         no kill, nothing to certify beyond safety); f-susp counts suspicions of \
         still-live targets (the partition rows' islanded victims), retx the ARQ \
         frames resent against the link. bytes/run charges every sent frame its real \
         encoded datagram size (sfs-wire header + body) on the sender's side; bytes/det \
         divides the cell's total bytes by its detection events — the cost of one \
         failure notification, comparable to the UDP backend's accounting. udp B/run \
         re-runs the crash-expressible scenarios on the real UDP wire (one OS process \
         per node) and sums the per-node byte ledgers from the control protocol's \
         Status frames — the same wire_cost ruler, measured on real datagrams.",
    );
    (table, cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_smoke_certifies_the_lossy_cells() {
        for scenario in [
            NetScenario::Loss(0.2),
            NetScenario::HealedPartition {
                island: 1,
                cut_at: 50,
                heal_at: 400,
            },
        ] {
            let cell = e12_cell(&scenario, 6, 2, 2);
            assert_eq!(cell.runs, 2);
            assert_eq!(cell.suite_ok, 2, "{}: suite violated", cell.scenario);
            assert_eq!(cell.all_detect, 2, "{}: FS1 missed", cell.scenario);
            // Real frame sizes are charged to the ledger, and every cell
            // here detects a failure, so both byte figures are live.
            assert!(cell.wire_bytes > 0.0, "{}: no bytes charged", cell.scenario);
            assert!(
                cell.bytes_per_detection > 0.0,
                "{}: detections but no per-detection cost",
                cell.scenario
            );
        }
    }

    #[test]
    fn e12_partition_kills_are_endogenous() {
        let cell = e12_cell(
            &NetScenario::HealedPartition {
                island: 1,
                cut_at: 50,
                heal_at: 400,
            },
            6,
            2,
            2,
        );
        assert_eq!(cell.endogenous_kills, 2);
        assert_eq!(cell.kills, 2, "one converted false-suspicion kill per run");
        // The islanded victim is alive when suspected: the diagnostics
        // column must classify at least one suspicion per run as false.
        assert!(
            cell.false_susp >= 1.0,
            "partition suspicions are false by construction (got {})",
            cell.false_susp
        );
    }

    #[test]
    fn e12_lossy_link_forces_retransmissions() {
        let cell = e12_cell(&NetScenario::Loss(0.2), 6, 2, 2);
        assert!(
            cell.retx > 0.0,
            "a 20% lossy link must force ARQ resends (got {})",
            cell.retx
        );
    }

    #[test]
    fn e12_sub_timeout_cut_is_harmless() {
        let cell = e12_cell(
            &NetScenario::HealedPartition {
                island: 1,
                cut_at: 50,
                heal_at: 100,
            },
            6,
            2,
            2,
        );
        assert_eq!(cell.kills, 0, "a sub-timeout blackout must kill nobody");
        assert_eq!(cell.suite_ok, 2);
    }
}
