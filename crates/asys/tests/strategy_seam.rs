//! Regression tests for the `Strategy` scheduler seam.
//!
//! The seam refactor must be invisible to existing users: a scheduled run
//! under [`TimeOrderedStrategy`] has to reproduce the default heap loop's
//! trace **byte-identically** (events, timestamps, stats, stop reason),
//! and any scheduled run must be replayable from its recorded choices.

use sfs_asys::{
    Context, FaultPlan, FixedLatency, Process, ProcessId, RandomStrategy, ReplayStrategy, Sim,
    SimBuilder, StopReason, TimeOrderedStrategy, TimerId, Trace, UniformLatency, VirtualTime,
};

/// A process exercising every action kind: sends on start, re-sends on
/// receipt (bounded), arms and cancels timers, declares failures, and
/// crashes itself late.
struct Churn {
    hops: u32,
}

impl Process<u32> for Churn {
    fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
        for peer in ctx.peers().collect::<Vec<_>>() {
            ctx.send(peer, 0);
        }
        let keep = ctx.set_timer(7);
        let drop = ctx.set_timer(9);
        ctx.cancel_timer(drop);
        let _ = keep;
    }
    fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: ProcessId, msg: u32) {
        if msg < self.hops {
            ctx.send(from, msg + 1);
        }
        if msg == 2 && ctx.id().index() == 2 {
            ctx.declare_failed(from);
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, u32>, _timer: TimerId) {
        if ctx.id().index() == 1 {
            ctx.crash_self();
        }
    }
}

fn builder(seed: u64) -> SimBuilder<u32> {
    Sim::<u32>::builder(3)
        .seed(seed)
        .latency(UniformLatency::new(1, 20))
        .faults(FaultPlan::new().crash_at(ProcessId::new(0), VirtualTime::from_ticks(40)))
}

fn run_default(seed: u64) -> Trace {
    builder(seed).build(|_| Box::new(Churn { hops: 4 })).run()
}

#[test]
fn time_ordered_strategy_reproduces_default_trace_byte_identically() {
    for seed in 0..25u64 {
        let baseline = run_default(seed);
        let (scheduled, log) = builder(seed)
            .strategy(TimeOrderedStrategy)
            .build(|_| Box::new(Churn { hops: 4 }))
            .run_scheduled();
        assert_eq!(
            baseline, scheduled,
            "seed {seed}: scheduled run diverged from the pre-seam engine"
        );
        assert_eq!(
            log.len(),
            log.choices().len(),
            "one choice per scheduling decision"
        );
    }
}

#[test]
fn run_routes_through_installed_strategy() {
    // `run()` with a strategy installed is the scheduled run.
    let via_run = builder(3)
        .strategy(TimeOrderedStrategy)
        .build(|_| Box::new(Churn { hops: 4 }))
        .run();
    assert_eq!(via_run, run_default(3));
}

#[test]
fn random_strategy_runs_are_deterministic_and_replayable() {
    let run_random = || {
        builder(11)
            .strategy(RandomStrategy::new(99))
            .build(|_| Box::new(Churn { hops: 4 }))
            .run_scheduled()
    };
    let (a, log_a) = run_random();
    let (b, log_b) = run_random();
    assert_eq!(a, b, "same seeds: identical scheduled run");
    assert_eq!(log_a, log_b);

    // Replaying the recorded choices reproduces the run exactly.
    let (replayed, replay_log) = builder(11)
        .strategy(ReplayStrategy::new(log_a.choices()))
        .build(|_| Box::new(Churn { hops: 4 }))
        .run_scheduled();
    assert_eq!(replayed, a, "choice trace must replay byte-identically");
    assert_eq!(replay_log.choices(), log_a.choices());
}

#[test]
fn adversarial_schedules_reach_states_time_order_does_not() {
    // Under time order with symmetric fixed latency, p1's broadcast and
    // p2's broadcast deliver in lockstep. A random adversary can starve
    // one channel for many steps; assert that some seed produces an
    // event order the time-ordered schedule never shows.
    let time_ordered = builder(5)
        .latency(FixedLatency(3))
        .build(|_| Box::new(Churn { hops: 4 }))
        .run();
    let mut diverged = false;
    for seed in 0..10 {
        let (t, _) = builder(5)
            .latency(FixedLatency(3))
            .strategy(RandomStrategy::new(seed))
            .build(|_| Box::new(Churn { hops: 4 }))
            .run_scheduled();
        if t.events() != time_ordered.events() {
            diverged = true;
        }
    }
    assert!(diverged, "random scheduling never changed the event order");
}

#[test]
fn step_budget_stops_scheduled_runs() {
    let (trace, log) = builder(1)
        .max_steps(4)
        .strategy(TimeOrderedStrategy)
        .build(|_| Box::new(Churn { hops: 4 }))
        .run_scheduled();
    assert_eq!(trace.stop_reason(), StopReason::MaxSteps);
    assert_eq!(log.len(), 4);
    assert!(!trace.stop_reason().is_complete());
}

#[test]
fn enabled_sets_are_exposed_and_canonical() {
    // The log's first decision must offer every on-start send plus the
    // injected crash, in creation order (fault-plan entries first).
    let (_, log) = builder(2)
        .strategy(TimeOrderedStrategy)
        .build(|_| Box::new(Churn { hops: 4 }))
        .run_scheduled();
    let first = &log.steps[0];
    assert!(!first.enabled.is_empty());
    let orders: Vec<u64> = first.enabled.iter().map(|s| s.order).collect();
    let mut sorted = orders.clone();
    sorted.sort_unstable();
    assert_eq!(orders, sorted, "enabled list is creation-ordered");
    assert!(
        first
            .enabled
            .iter()
            .any(|s| matches!(s.kind, sfs_asys::StepKind::Inject { pid } if pid.index() == 0)),
        "the scheduled crash injection is visible as an enabled step"
    );
}
