//! Property-based tests for the simulation engine's core guarantees:
//! determinism, per-channel FIFO, crash finality, and message
//! conservation.

use proptest::prelude::*;
use sfs_asys::{
    Context, FaultPlan, Process, ProcessId, Sim, Trace, TraceEventKind, UniformLatency, VirtualTime,
};
use std::collections::HashMap;

/// A process that, on start, sends a scripted number of messages to each
/// peer, and echoes nothing.
struct Scripted {
    /// Messages to send to each destination index at start.
    plan: Vec<usize>,
}

impl Process<u32> for Scripted {
    fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
        for (dst, &count) in self.plan.iter().enumerate() {
            for k in 0..count {
                ctx.send(ProcessId::new(dst), k as u32);
            }
        }
    }
    fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
}

/// A process that relays each received message to a fixed next hop,
/// bounded by a hop counter in the payload.
struct Relay {
    next: usize,
}

impl Process<u32> for Relay {
    fn on_start(&mut self, _: &mut Context<'_, u32>) {}
    fn on_message(&mut self, ctx: &mut Context<'_, u32>, _: ProcessId, msg: u32) {
        if msg > 0 {
            ctx.send(ProcessId::new(self.next), msg - 1);
        }
    }
}

fn scripted_run(n: usize, plans: Vec<Vec<usize>>, seed: u64, lat_max: u64) -> Trace {
    let sim = Sim::<u32>::builder(n)
        .seed(seed)
        .latency(UniformLatency::new(1, lat_max.max(1)))
        .build(|pid| {
            Box::new(Scripted {
                plan: plans[pid.index()].clone(),
            })
        });
    sim.run()
}

fn arb_plans(n: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(prop::collection::vec(0usize..5, n), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Identical inputs produce identical traces, always.
    #[test]
    fn runs_are_deterministic(
        n in 2usize..6,
        seed in any::<u64>(),
        lat in 1u64..40,
        plans_seed in 0usize..1000,
    ) {
        let plans: Vec<Vec<usize>> =
            (0..n).map(|i| (0..n).map(|j| (i * 7 + j * 3 + plans_seed) % 4).collect()).collect();
        let a = scripted_run(n, plans.clone(), seed, lat);
        let b = scripted_run(n, plans, seed, lat);
        prop_assert_eq!(a, b);
    }

    /// Receives on every channel happen in send order (FIFO), and every
    /// receive has a prior matching send.
    #[test]
    fn fifo_per_channel(
        n in 2usize..6,
        seed in any::<u64>(),
        lat in 1u64..60,
        plans in (2usize..6).prop_flat_map(arb_plans),
    ) {
        prop_assume!(plans.len() >= n && plans.iter().all(|p| p.len() >= n));
        let plans: Vec<Vec<usize>> =
            plans.into_iter().take(n).map(|p| p.into_iter().take(n).collect()).collect();
        let trace = scripted_run(n, plans, seed, lat);
        let mut last_seq: HashMap<(ProcessId, ProcessId), u64> = HashMap::new();
        let mut sent: HashMap<(ProcessId, ProcessId), Vec<u64>> = HashMap::new();
        for e in trace.events() {
            match e.kind {
                TraceEventKind::Send { from, to, msg, .. } => {
                    sent.entry((from, to)).or_default().push(msg.seq());
                }
                TraceEventKind::Recv { by, from, msg, .. } => {
                    let channel = (from, by);
                    if let Some(&prev) = last_seq.get(&channel) {
                        prop_assert!(
                            msg.seq() > prev,
                            "channel {from}->{by}: {} after {}", msg.seq(), prev
                        );
                    }
                    last_seq.insert(channel, msg.seq());
                    prop_assert!(
                        sent.get(&channel).is_some_and(|s| s.contains(&msg.seq())),
                        "recv of unsent message"
                    );
                }
                _ => {}
            }
        }
    }

    /// A crashed process executes no further events, under arbitrary crash
    /// schedules.
    #[test]
    fn crash_finality(
        n in 2usize..6,
        seed in any::<u64>(),
        crash_times in prop::collection::vec(1u64..100, 1..4),
    ) {
        let mut plan = FaultPlan::new();
        for (i, &at) in crash_times.iter().enumerate() {
            plan = plan.crash_at(ProcessId::new(i % n), VirtualTime::from_ticks(at));
        }
        let sim = Sim::<u32>::builder(n)
            .seed(seed)
            .faults(plan)
            .build(|_| Box::new(Relay { next: 0 }));
        let trace = sim.run();
        let mut crashed_at: HashMap<ProcessId, usize> = HashMap::new();
        for e in trace.events() {
            if let TraceEventKind::Crash { pid } = e.kind {
                crashed_at.entry(pid).or_insert(e.seq);
            }
        }
        for e in trace.events() {
            let p = e.kind.process();
            if let Some(&c) = crashed_at.get(&p) {
                prop_assert!(
                    e.seq <= c,
                    "event {e} of {p} after its crash at {c}"
                );
            }
        }
    }

    /// Message conservation: delivered + to-crashed + still-in-channel
    /// equals sent. On a quiescent run with no crashes, delivered == sent.
    #[test]
    fn message_conservation_without_crashes(
        n in 2usize..6,
        seed in any::<u64>(),
        plans in (2usize..6).prop_flat_map(arb_plans),
    ) {
        prop_assume!(plans.len() >= n && plans.iter().all(|p| p.len() >= n));
        let plans: Vec<Vec<usize>> =
            plans.into_iter().take(n).map(|p| p.into_iter().take(n).collect()).collect();
        let trace = scripted_run(n, plans, seed, 10);
        prop_assert_eq!(trace.stats().messages_delivered, trace.stats().messages_sent);
        prop_assert_eq!(trace.stats().messages_to_crashed, 0);
    }

    /// Relay chains terminate and the hop budget bounds total traffic.
    #[test]
    fn relay_chains_terminate(
        n in 2usize..5,
        seed in any::<u64>(),
        hops in 1u32..20,
    ) {
        struct Kick { hops: u32 }
        impl Process<u32> for Kick {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.send(ProcessId::new(1 % ctx.n()), self.hops);
            }
            fn on_message(&mut self, ctx: &mut Context<'_, u32>, _: ProcessId, msg: u32) {
                if msg > 0 {
                    let next = (ctx.id().index() + 1) % ctx.n();
                    ctx.send(ProcessId::new(next), msg - 1);
                }
            }
        }
        let sim = Sim::<u32>::builder(n).seed(seed).build(|pid| {
            if pid.index() == 0 {
                Box::new(Kick { hops }) as Box<dyn Process<u32>>
            } else {
                Box::new(Relay { next: (pid.index() + 1) % n })
            }
        });
        let trace = sim.run();
        prop_assert!(trace.stop_reason().is_complete());
        prop_assert_eq!(trace.stats().messages_sent, u64::from(hops) + 1);
    }
}
