//! Race tests for the event-driven runtime's quiescence protocol.
//!
//! [`Runtime::drain`] answers `true` only when the router has judged the
//! system genuinely quiescent: its inbox empty, no handler reply
//! outstanding, and the timer wheel bare. The judgement is router-local,
//! but the *stimuli* arrive from arbitrary threads — so these tests storm
//! the runtime from an injector thread while the main thread hammers
//! `drain`, and then hold the runtime to exact message accounting: if a
//! drain ever declared quiescence with a relay chain still in flight, the
//! immediate shutdown that follows would truncate the chain and the
//! delivered count would fall short.

use sfs_asys::net::{Runtime, RuntimeConfig};
use sfs_asys::{Context, Process, ProcessId, StopReason};
use std::time::Duration;

/// Ping relay: an external stimulus launches a TTL-bounded token around
/// the ring; every hop forwards with the TTL decremented. One storm of
/// TTL `k` is therefore exactly `k` sends and `k` deliveries.
struct Relay {
    next: ProcessId,
}

impl Process<u32> for Relay {
    fn on_start(&mut self, _ctx: &mut Context<'_, u32>) {}

    fn on_message(&mut self, ctx: &mut Context<'_, u32>, _from: ProcessId, ttl: u32) {
        if ttl > 1 {
            ctx.send(self.next, ttl - 1);
        }
    }

    fn on_external(&mut self, ctx: &mut Context<'_, u32>, ttl: u32) {
        ctx.send(self.next, ttl);
    }
}

fn spawn_ring(n: usize) -> Runtime<u32> {
    Runtime::spawn(n, RuntimeConfig::default(), move |pid| {
        Box::new(Relay {
            next: ProcessId::new((pid.index() + 1) % n),
        })
    })
}

/// The core race: storms injected from another thread while the main
/// thread drains. The final `drain(..) == true` is taken at the exact
/// moment a stale quiescence verdict could still have a chain in flight;
/// shutting down right there must nevertheless observe every hop.
#[test]
fn drain_never_declares_quiescence_with_a_message_in_flight() {
    const ITERATIONS: usize = 200;
    const STORMS: u32 = 5;
    const TTL: u32 = 8;

    for iteration in 0..ITERATIONS {
        let n = 2 + iteration % 3; // small clusters: N in {2, 3, 4}
        let rt = spawn_ring(n);

        let injector = {
            let handle = rt.injector();
            std::thread::spawn(move || {
                for s in 0..STORMS {
                    handle.inject_external(ProcessId::new(s as usize % n), TTL);
                    if s % 2 == 0 {
                        std::thread::yield_now();
                    }
                }
            })
        };

        // Hammer the drain while the storm is still being injected; any
        // `true` here claims "nothing in flight" and must only reflect
        // injections that were fully processed at judgement time.
        for _ in 0..4 {
            let _ = rt.drain(Duration::from_micros(200));
        }
        injector.join().expect("injector thread");

        // All storms are now in the router's inbox or already processed.
        // This verdict is the one with teeth: a false `true` with a hop
        // in flight makes the accounting below fail.
        assert!(
            rt.drain(Duration::from_secs(10)),
            "iteration {iteration}: storm system failed to quiesce"
        );
        let trace = rt.shutdown();
        let expected = u64::from(STORMS * TTL);
        assert_eq!(
            trace.stats().messages_sent,
            expected,
            "iteration {iteration}: lost sends\n{}",
            trace.to_pretty_string()
        );
        assert_eq!(
            trace.stats().messages_delivered,
            expected,
            "iteration {iteration}: undelivered messages at quiescence\n{}",
            trace.to_pretty_string()
        );
        assert_eq!(trace.stop_reason(), StopReason::Quiescent);
    }
}

/// After a `true` drain, a fresh stimulus must wake the runtime back up
/// and drain to exactly one more chain — quiescence is a state, not a
/// latch.
#[test]
fn quiescence_is_reentrant_across_storm_waves() {
    const WAVES: u32 = 10;
    const TTL: u32 = 6;

    let rt = spawn_ring(3);
    assert!(rt.drain(Duration::from_secs(5)), "idle ring quiesces");
    for wave in 0..WAVES {
        rt.inject_external(ProcessId::new(wave as usize % 3), TTL);
        assert!(
            rt.drain(Duration::from_secs(5)),
            "wave {wave} failed to quiesce"
        );
    }
    let trace = rt.shutdown();
    assert_eq!(trace.stats().messages_sent, u64::from(WAVES * TTL));
    assert_eq!(trace.stats().messages_delivered, u64::from(WAVES * TTL));
}
