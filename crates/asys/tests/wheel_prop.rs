//! Property tests for the hierarchical timer wheel.
//!
//! The wheel is the event-driven runtime's single source of truth for
//! logical deadlines, so its ordering contract is load-bearing for every
//! threaded run: any finite deadline multiset must drain in nondecreasing
//! virtual-time order, with insertion order breaking ties, regardless of
//! how the clock is advanced or which entries are cancelled along the way.

use proptest::prelude::*;
use sfs_asys::{TimerWheel, VirtualTime};

proptest! {
    /// Any finite deadline multiset drains in nondecreasing virtual-time
    /// order, and coincident deadlines drain in insertion order.
    #[test]
    fn drains_in_nondecreasing_time_order(
        deadlines in proptest::collection::vec(0u64..50_000, 0..200),
    ) {
        let mut wheel = TimerWheel::new();
        for (i, &t) in deadlines.iter().enumerate() {
            wheel.insert(VirtualTime::from_ticks(t), i);
        }
        prop_assert_eq!(wheel.len(), deadlines.len());

        let mut drained = Vec::new();
        while let Some((at, items)) = wheel.pop_next_instant() {
            for item in items {
                drained.push((at, item));
            }
        }
        prop_assert!(wheel.is_empty());
        prop_assert_eq!(drained.len(), deadlines.len());

        // Nondecreasing time; ties in insertion order; every fired entry's
        // deadline matches what was scheduled.
        for pair in drained.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0);
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1);
            }
        }
        for &(at, idx) in &drained {
            prop_assert_eq!(at.ticks(), deadlines[idx]);
        }
    }

    /// Incremental advancement (arbitrary target steps) fires exactly the
    /// entries whose deadlines the clock has passed, in the same global
    /// order as a single drain.
    #[test]
    fn stepwise_advance_agrees_with_full_drain(
        deadlines in proptest::collection::vec(0u64..10_000, 1..100),
        steps in proptest::collection::vec(1u64..3_000, 1..20),
    ) {
        let mut whole = TimerWheel::new();
        let mut stepped = TimerWheel::new();
        for (i, &t) in deadlines.iter().enumerate() {
            whole.insert(VirtualTime::from_ticks(t), i);
            stepped.insert(VirtualTime::from_ticks(t), i);
        }
        let reference = whole.advance_to(VirtualTime::from_ticks(u64::MAX / 2));

        let mut collected = Vec::new();
        let mut target = 0u64;
        for &s in &steps {
            target += s;
            collected.extend(stepped.advance_to(VirtualTime::from_ticks(target)));
        }
        collected.extend(stepped.advance_to(VirtualTime::from_ticks(u64::MAX / 2)));
        prop_assert_eq!(collected, reference);
    }

    /// Cancelling an arbitrary subset removes exactly that subset: the
    /// survivors drain completely, in order, and no cancelled entry fires.
    #[test]
    fn cancelled_entries_never_fire(
        deadlines in proptest::collection::vec(0u64..20_000, 1..120),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..120),
    ) {
        let mut wheel = TimerWheel::new();
        let ids: Vec<_> = deadlines
            .iter()
            .enumerate()
            .map(|(i, &t)| wheel.insert(VirtualTime::from_ticks(t), i))
            .collect();
        let mut kept = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert!(wheel.cancel(*id));
            } else {
                kept.push(i);
            }
        }
        prop_assert_eq!(wheel.len(), kept.len());

        let fired = wheel.advance_to(VirtualTime::from_ticks(u64::MAX / 2));
        let fired_idx: Vec<usize> = fired.iter().map(|&(_, i)| i).collect();
        let mut expected = kept;
        expected.sort_by_key(|&i| (deadlines[i], i));
        prop_assert_eq!(fired_idx, expected);
        prop_assert!(wheel.is_empty());
    }
}
