//! The router-serialized threaded runtime.

use crate::id::{MsgId, ProcessId, TimerId};
use crate::link::{LinkModel, LinkVerdict};
use crate::process::{Action, Context, Process, ReceiveFilter};
use crate::sim::CrashRegistry;
use crate::time::VirtualTime;
use crate::timers::CancelledTimers;
use crate::trace::{SimStats, StopReason, Trace, TraceEvent, TraceEventKind};
use crossbeam::channel::{self, Receiver, Sender};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Shared progress counters behind [`Runtime::drain`]'s quiescence
/// handshake: the router counts every node event it forwards, each node
/// counts every event it has fully dispatched (handler run **and** its
/// action batch sent back to the router), and the router publishes
/// whether its own queue and heap are empty. The system is quiescent
/// exactly when the router is idle and the two counters agree — no step
/// is pending, in flight, or mid-dispatch.
#[derive(Debug, Default)]
struct Progress {
    /// Node events (messages, timers, externals) the router handed to
    /// node channels.
    forwarded: AtomicU64,
    /// Node events fully dispatched by node threads, action batches
    /// included.
    processed: AtomicU64,
    /// Router saw an empty inbox and an empty heap on its last poll.
    idle: AtomicBool,
}

/// Per-link artificial delay chosen by the router before forwarding.
pub type LinkDelay = Box<dyn Fn(ProcessId, ProcessId) -> Duration + Send>;

/// Predicate marking payloads as infrastructure; the threaded mirror of
/// `SimBuilder::classify`.
pub type Classify<M> = Box<dyn Fn(&M) -> bool + Send>;

/// Configuration for the threaded runtime.
pub struct RuntimeConfig<M = ()> {
    /// Seed feeding each node's deterministic rng (node `i` uses
    /// `seed + i`). Scheduling itself is real-concurrency nondeterminism.
    pub seed: u64,
    /// Optional artificial per-link delay applied by the router before
    /// forwarding a message, modelling a slow asynchronous network.
    /// Ignored when [`RuntimeConfig::link`] is set.
    pub delay: Option<LinkDelay>,
    /// Optional faulty-network model: the threaded mirror of the
    /// simulator's link seam. The router consults it once per send, in
    /// send order, with its own seeded rng; ticks map to wall-clock
    /// milliseconds (the runtime's clock convention), so the *same*
    /// [`LinkModel`] drives both backends — what E10's transport-backed
    /// conformance leg relies on. Takes precedence over
    /// [`RuntimeConfig::delay`].
    pub link: Option<Box<dyn LinkModel + Send>>,
    /// Whether to record payload `Debug` text in the trace.
    pub record_payloads: bool,
    /// Optional classifier marking payloads as infrastructure (`true`)
    /// vs model-level application messages; see `SimBuilder::classify`.
    pub classify: Option<Classify<M>>,
    /// Optional live crash view. When set, the router marks every crash
    /// in it — the threaded mirror of the simulator's built-in registry,
    /// so oracle-configured processes (which poll a
    /// [`CrashRegistry`]) can run on real threads too.
    pub registry: Option<CrashRegistry>,
    /// Batching fast path: when the router drains its due heap, deliveries
    /// and timer fires aimed at the same destination are coalesced into a
    /// single node-event batch — one channel send and one reply per
    /// flush-destination instead of one per message. Trace events are
    /// still recorded per message, in pop order, and each destination
    /// receives its events in exactly the order the unbatched router
    /// would have forwarded them, so per-process delivery order (and with
    /// it the happens-before model) is untouched. This is what lets one
    /// router serve Θ(n²) detection-round traffic at scale (experiment
    /// E11).
    pub batch: bool,
}

impl<M> Default for RuntimeConfig<M> {
    fn default() -> Self {
        RuntimeConfig {
            seed: 0,
            delay: None,
            link: None,
            record_payloads: false,
            classify: None,
            registry: None,
            batch: false,
        }
    }
}

impl<M> fmt::Debug for RuntimeConfig<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RuntimeConfig")
            .field("seed", &self.seed)
            .field("has_delay", &self.delay.is_some())
            .field("has_link", &self.link.is_some())
            .field("record_payloads", &self.record_payloads)
            .field("batch", &self.batch)
            .finish()
    }
}

enum NodeEvent<M> {
    Message {
        from: ProcessId,
        msg: M,
    },
    Timer {
        id: TimerId,
    },
    External {
        payload: M,
    },
    /// A coalesced run of events for one destination, in the exact order
    /// the unbatched router would have forwarded them individually.
    Batch(Vec<BatchItem<M>>),
    Halt,
}

/// One element of a coalesced [`NodeEvent::Batch`].
enum BatchItem<M> {
    Message { from: ProcessId, msg: M },
    Timer { id: TimerId },
}

enum ToRouter<M> {
    Actions {
        from: ProcessId,
        actions: Vec<Action<M>>,
        payload_reprs: Vec<Option<String>>,
    },
    InjectExternal {
        pid: ProcessId,
        payload: M,
        repr: Option<String>,
    },
    InjectCrash {
        pid: ProcessId,
    },
    Shutdown,
}

enum Due<M> {
    Deliver {
        from: ProcessId,
        to: ProcessId,
        msg: MsgId,
        payload: M,
        repr: Option<String>,
        infra: bool,
    },
    Fire {
        pid: ProcessId,
        id: TimerId,
    },
}

struct HeapItem<M> {
    at: Instant,
    order: u64,
    due: Due<M>,
}

impl<M> PartialEq for HeapItem<M> {
    fn eq(&self, other: &Self) -> bool {
        self.order == other.order
    }
}
impl<M> Eq for HeapItem<M> {}
impl<M> PartialOrd for HeapItem<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for HeapItem<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.order).cmp(&(other.at, other.order))
    }
}

/// A running system of `n` process threads plus a router thread.
///
/// Construct with [`Runtime::spawn`]; drive with [`Runtime::run_for`],
/// [`Runtime::inject_external`], and [`Runtime::crash`]; finish with
/// [`Runtime::shutdown`], which returns the recorded [`Trace`].
pub struct Runtime<M> {
    n: usize,
    to_router: Sender<ToRouter<M>>,
    router: Option<JoinHandle<Trace>>,
    nodes: Vec<JoinHandle<()>>,
    progress: Arc<Progress>,
}

impl<M> fmt::Debug for Runtime<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime")
            .field("n", &self.n)
            .finish_non_exhaustive()
    }
}

impl<M: Clone + fmt::Debug + Send + 'static> Runtime<M> {
    /// Spawns `n` process threads (built by `make`) and the router.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn spawn<F>(n: usize, config: RuntimeConfig<M>, mut make: F) -> Self
    where
        F: FnMut(ProcessId) -> Box<dyn Process<M> + Send>,
    {
        assert!(n > 0, "a system needs at least one process");
        let (to_router, router_rx) = channel::unbounded::<ToRouter<M>>();
        let progress = Arc::new(Progress::default());
        let mut node_txs = Vec::with_capacity(n);
        let mut nodes = Vec::with_capacity(n);
        let record_payloads = config.record_payloads;
        for pid in ProcessId::all(n) {
            let (tx, rx) = channel::unbounded::<NodeEvent<M>>();
            node_txs.push(tx);
            let process = make(pid);
            let to_router = to_router.clone();
            let seed = config.seed.wrapping_add(pid.index() as u64);
            let progress = progress.clone();
            nodes.push(
                std::thread::Builder::new()
                    .name(format!("node-{}", pid.index()))
                    .spawn(move || {
                        node_main(
                            pid,
                            n,
                            process,
                            rx,
                            to_router,
                            seed,
                            record_payloads,
                            progress,
                        )
                    })
                    .expect("spawn node thread"),
            );
        }
        let router_progress = progress.clone();
        let router = std::thread::Builder::new()
            .name("router".to_owned())
            .spawn(move || router_main(n, config, router_rx, node_txs, router_progress))
            .expect("spawn router thread");
        Runtime {
            n,
            to_router,
            router: Some(router),
            nodes,
            progress,
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Delivers an external stimulus to `pid` (e.g. a forced suspicion).
    pub fn inject_external(&self, pid: ProcessId, payload: M) {
        let repr = Some(format!("{payload:?}"));
        let _ = self
            .to_router
            .send(ToRouter::InjectExternal { pid, payload, repr });
    }

    /// Crashes `pid` permanently.
    pub fn crash(&self, pid: ProcessId) {
        let _ = self.to_router.send(ToRouter::InjectCrash { pid });
    }

    /// Lets the system run for the given wall-clock duration.
    pub fn run_for(&self, d: Duration) {
        std::thread::sleep(d);
    }

    /// Blocks until the system is **quiescent** — the router's inbox and
    /// heap are empty, and every node event the router ever forwarded has
    /// been fully dispatched (handler run, its action batch received) —
    /// or until `timeout` elapses. Returns whether quiescence was
    /// reached.
    ///
    /// Quiescence is judged by a stability double-check of shared
    /// progress counters, so a `true` here guarantees the trace a
    /// subsequent [`Runtime::shutdown`] returns is *maximal*: no recorded
    /// receive is missing its handler's effects, and the run is
    /// comparable to a [`Quiescent`](StopReason::Quiescent) simulator
    /// run. Systems with self-rearming timers (heartbeats, oracle polls)
    /// never quiesce; this returns `false` for them after the full
    /// timeout.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let processed = self.progress.processed.load(Ordering::Acquire);
            let forwarded = self.progress.forwarded.load(Ordering::Acquire);
            if self.progress.idle.load(Ordering::Acquire) && processed == forwarded {
                // Candidate quiescence: hold it across a settling pause to
                // rule out having read the counters mid-flight.
                std::thread::sleep(Duration::from_millis(5));
                if self.progress.idle.load(Ordering::Acquire)
                    && self.progress.processed.load(Ordering::Acquire) == processed
                    && self.progress.forwarded.load(Ordering::Acquire) == forwarded
                {
                    return true;
                }
            } else {
                std::thread::sleep(Duration::from_millis(2));
            }
            if Instant::now() >= deadline {
                return false;
            }
        }
    }

    /// Stops all threads and returns the recorded trace.
    ///
    /// # Panics
    ///
    /// Panics if the router thread panicked.
    pub fn shutdown(mut self) -> Trace {
        let _ = self.to_router.send(ToRouter::Shutdown);
        let trace = self
            .router
            .take()
            .expect("router already joined")
            .join()
            .expect("router panicked");
        for node in self.nodes.drain(..) {
            let _ = node.join();
        }
        trace
    }
}

#[allow(clippy::too_many_arguments)]
fn node_main<M: Clone + fmt::Debug + Send + 'static>(
    pid: ProcessId,
    n: usize,
    mut process: Box<dyn Process<M> + Send>,
    rx: Receiver<NodeEvent<M>>,
    to_router: Sender<ToRouter<M>>,
    seed: u64,
    record_payloads: bool,
    progress: Arc<Progress>,
) {
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(seed);
    // Namespace timer ids by process so they are globally unique.
    let mut next_timer: u64 = (pid.index() as u64) << 40;

    // on_start
    {
        let now = VirtualTime::ZERO;
        let mut ctx = Context::new(pid, n, now, &mut rng, &mut next_timer);
        process.on_start(&mut ctx);
        let actions = ctx.take_actions();
        let payload_reprs = render_payloads(&actions, record_payloads);
        let _ = to_router.send(ToRouter::Actions {
            from: pid,
            actions,
            payload_reprs,
        });
    }

    'events: while let Ok(event) = rx.recv() {
        let now = VirtualTime::from_ticks(start.elapsed().as_millis() as u64);
        let mut ctx = Context::new(pid, n, now, &mut rng, &mut next_timer);
        match event {
            NodeEvent::Message { from, msg } => process.on_message(&mut ctx, from, msg),
            NodeEvent::Timer { id } => process.on_timer(&mut ctx, id),
            NodeEvent::External { payload } => process.on_external(&mut ctx, payload),
            // A coalesced flush: run every handler back to back on one
            // context and answer with ONE combined action batch. The
            // actions accumulate in callback order, so the router applies
            // exactly what a one-reply-per-event node would have sent, in
            // the same order.
            NodeEvent::Batch(items) => {
                for item in items {
                    match item {
                        BatchItem::Message { from, msg } => process.on_message(&mut ctx, from, msg),
                        BatchItem::Timer { id } => process.on_timer(&mut ctx, id),
                    }
                }
            }
            NodeEvent::Halt => break 'events,
        }
        let actions = ctx.take_actions();
        let payload_reprs = render_payloads(&actions, record_payloads);
        let _ = to_router.send(ToRouter::Actions {
            from: pid,
            actions,
            payload_reprs,
        });
        // Count the event only after its action batch is on the router
        // channel: `processed == forwarded` then means no handler effect
        // is still in flight (the drain handshake's invariant).
        progress.processed.fetch_add(1, Ordering::Release);
    }
}

/// `Debug`-renders the payload of each send action, or nothing at all when
/// payload recording is off (the common case pays zero allocations here).
fn render_payloads<M: fmt::Debug>(
    actions: &[Action<M>],
    record_payloads: bool,
) -> Vec<Option<String>> {
    if !record_payloads {
        return Vec::new();
    }
    actions
        .iter()
        .map(|a| match a {
            Action::Send { msg, .. } => Some(format!("{msg:?}")),
            _ => None,
        })
        .collect()
}

struct Parked<M> {
    from: ProcessId,
    msg: MsgId,
    payload: M,
    repr: Option<String>,
    infra: bool,
}

struct RouterState<M> {
    n: usize,
    start: Instant,
    crashed: Vec<bool>,
    failed_flags: Vec<bool>,
    cancelled: CancelledTimers,
    heap: BinaryHeap<Reverse<HeapItem<M>>>,
    order: u64,
    msg_seq: Vec<u64>,
    events: Vec<TraceEvent>,
    stats: SimStats,
    node_txs: Vec<Sender<NodeEvent<M>>>,
    delay: Option<LinkDelay>,
    link: Option<Box<dyn LinkModel + Send>>,
    /// Rng feeding link-model verdicts (seeded from the config; node rngs
    /// are independent, so link draws never perturb process behaviour).
    link_rng: StdRng,
    classify: Option<Classify<M>>,
    registry: Option<CrashRegistry>,
    progress: Arc<Progress>,
    filters: Vec<Option<ReceiveFilter<M>>>,
    /// Per-channel FIFO queues of messages the receiver's filter refused,
    /// indexed `from * n + to`.
    parked: std::collections::HashMap<usize, std::collections::VecDeque<Parked<M>>>,
    /// Per-destination staging buffers for the batching fast path
    /// ([`RuntimeConfig::batch`]); drained by `flush_staged` after every
    /// heap drain.
    staged: Vec<Vec<BatchItem<M>>>,
    /// Destinations with staged items, in first-staging order.
    staged_order: Vec<ProcessId>,
}

impl<M: Clone + fmt::Debug + Send + 'static> RouterState<M> {
    fn now(&self) -> VirtualTime {
        VirtualTime::from_ticks(self.start.elapsed().as_millis() as u64)
    }

    /// Hands a node event to its channel, counting it for the drain
    /// handshake. All Message/Timer/External forwards go through here;
    /// `Halt` is uncounted on both sides (nodes never ack it).
    fn forward(&self, pid: ProcessId, event: NodeEvent<M>) {
        self.progress.forwarded.fetch_add(1, Ordering::Release);
        let _ = self.node_txs[pid.index()].send(event);
    }

    fn record(&mut self, kind: TraceEventKind) {
        let seq = self.events.len();
        let time = self.now();
        self.events.push(TraceEvent { seq, time, kind });
    }

    fn push(&mut self, at: Instant, due: Due<M>) {
        let order = self.order;
        self.order += 1;
        self.heap.push(Reverse(HeapItem { at, order, due }));
    }

    fn crash(&mut self, pid: ProcessId) {
        if self.crashed[pid.index()] {
            return;
        }
        self.crashed[pid.index()] = true;
        if let Some(registry) = &self.registry {
            registry.mark(pid);
        }
        self.record(TraceEventKind::Crash { pid });
        self.stats.crashes += 1;
        let _ = self.node_txs[pid.index()].send(NodeEvent::Halt);
    }

    fn handle_actions(
        &mut self,
        from: ProcessId,
        actions: Vec<Action<M>>,
        reprs: Vec<Option<String>>,
    ) {
        // `reprs` is either empty (payload recording off) or parallel to
        // `actions`; pad with `None` so the two cases unify.
        let mut reprs = reprs.into_iter();
        for action in actions {
            let repr = reprs.next().unwrap_or(None);
            if self.crashed[from.index()] {
                break;
            }
            match action {
                Action::Send { to, msg } => {
                    let seq = self.msg_seq[from.index()];
                    self.msg_seq[from.index()] += 1;
                    let id = MsgId::new(from, seq);
                    let infra = self.classify.as_ref().is_some_and(|f| f(&msg));
                    self.record(TraceEventKind::Send {
                        from,
                        to,
                        msg: id,
                        infra,
                        payload: repr.clone(),
                    });
                    self.stats.messages_sent += 1;
                    // The link seam, mirroring the simulator: a LinkModel
                    // verdict (ticks = milliseconds here) when one is
                    // installed, else the legacy per-link delay fn.
                    let now = VirtualTime::from_ticks(self.start.elapsed().as_millis() as u64);
                    let verdict = match &mut self.link {
                        Some(link) => link.verdict(from, to, now, &mut self.link_rng),
                        None => {
                            let delay = self
                                .delay
                                .as_ref()
                                .map(|f| f(from, to))
                                .unwrap_or(Duration::ZERO);
                            LinkVerdict::Deliver(delay.as_millis() as u64)
                        }
                    };
                    match verdict {
                        LinkVerdict::Deliver(ms) => {
                            let at = Instant::now() + Duration::from_millis(ms);
                            self.push(
                                at,
                                Due::Deliver {
                                    from,
                                    to,
                                    msg: id,
                                    payload: msg,
                                    repr,
                                    infra,
                                },
                            );
                        }
                        LinkVerdict::Drop => {
                            self.stats.messages_dropped += 1;
                        }
                        LinkVerdict::Duplicate(ms1, ms2) => {
                            self.stats.messages_duplicated += 1;
                            for ms in [ms1, ms2] {
                                let at = Instant::now() + Duration::from_millis(ms);
                                self.push(
                                    at,
                                    Due::Deliver {
                                        from,
                                        to,
                                        msg: id,
                                        payload: msg.clone(),
                                        repr: repr.clone(),
                                        infra,
                                    },
                                );
                            }
                        }
                    }
                }
                Action::SetTimer { id, delay } => {
                    let at = Instant::now() + Duration::from_millis(delay);
                    self.push(at, Due::Fire { pid: from, id });
                }
                Action::CancelTimer { id } => {
                    self.cancelled.cancel(id);
                }
                Action::CrashSelf => self.crash(from),
                Action::DeclareFailed { of } => {
                    let flag = from.index() * self.n + of.index();
                    if !self.failed_flags[flag] {
                        self.failed_flags[flag] = true;
                        self.record(TraceEventKind::Failed { by: from, of });
                        self.stats.detections += 1;
                    }
                }
                Action::Annotate(note) => self.record(TraceEventKind::Note { pid: from, note }),
                Action::SetReceiveFilter(filter) => {
                    self.filters[from.index()] = filter;
                    self.drain_parked_to(from);
                }
                Action::ModelSend { to, msg } => {
                    self.record(TraceEventKind::Send {
                        from,
                        to,
                        msg,
                        infra: false,
                        payload: None,
                    });
                }
                Action::ModelRecv { from: source, msg } => {
                    self.record(TraceEventKind::Recv {
                        by: from,
                        from: source,
                        msg,
                        infra: false,
                        payload: None,
                    });
                }
            }
        }
    }

    /// Whether `to`'s filter currently refuses `payload`.
    fn refused(&self, to: ProcessId, payload: &M) -> bool {
        self.filters[to.index()]
            .as_ref()
            .is_some_and(|f| !f.accepts(payload))
    }

    /// After `to`'s filter changed, re-deliver parked messages in FIFO
    /// order per channel, stopping at the first message still refused.
    // Not a `while let`: the queue borrow must be dropped before the
    // filter check and the record/send below re-borrow `self`.
    #[allow(clippy::while_let_loop)]
    fn drain_parked_to(&mut self, to: ProcessId) {
        for from in ProcessId::all(self.n) {
            let ch = from.index() * self.n + to.index();
            loop {
                let Some(queue) = self.parked.get_mut(&ch) else {
                    break;
                };
                let Some(head) = queue.front() else { break };
                if self.crashed[to.index()] {
                    break;
                }
                if self.filters[to.index()]
                    .as_ref()
                    .is_some_and(|f| !f.accepts(&head.payload))
                {
                    break;
                }
                let p = self
                    .parked
                    .get_mut(&ch)
                    .expect("queue present")
                    .pop_front()
                    .expect("head");
                self.record(TraceEventKind::Recv {
                    by: to,
                    from: p.from,
                    msg: p.msg,
                    infra: p.infra,
                    payload: p.repr,
                });
                self.stats.messages_delivered += 1;
                self.forward(
                    to,
                    NodeEvent::Message {
                        from: p.from,
                        msg: p.payload,
                    },
                );
            }
        }
    }

    /// Fires one due step immediately (the unbatched path).
    fn fire_due(&mut self, due: Due<M>) {
        if let Some((to, item)) = self.admit_due(due) {
            match item {
                BatchItem::Message { from, msg } => {
                    self.forward(to, NodeEvent::Message { from, msg })
                }
                BatchItem::Timer { id } => self.forward(to, NodeEvent::Timer { id }),
            }
        }
    }

    /// Stages one due step into the current flush's per-destination batch
    /// (the [`RuntimeConfig::batch`] path); `flush_staged` sends them.
    fn stage_due(&mut self, due: Due<M>) {
        if let Some((to, item)) = self.admit_due(due) {
            if self.staged[to.index()].is_empty() {
                self.staged_order.push(to);
            }
            self.staged[to.index()].push(item);
        }
    }

    /// Shared admission logic for a due step: records the trace event and
    /// stats, and returns the node-event item to hand over — or `None`
    /// when the step dissolves here (crashed target, cancelled timer,
    /// refused/parked message). Admission order IS trace order, so the
    /// batched path records the exact per-message events the unbatched
    /// path would.
    fn admit_due(&mut self, due: Due<M>) -> Option<(ProcessId, BatchItem<M>)> {
        match due {
            Due::Deliver {
                from,
                to,
                msg,
                payload,
                repr,
                infra,
            } => {
                if self.crashed[to.index()] {
                    self.stats.messages_to_crashed += 1;
                    return None;
                }
                let ch = from.index() * self.n + to.index();
                let channel_blocked = self.parked.get(&ch).is_some_and(|q| !q.is_empty());
                if channel_blocked || self.refused(to, &payload) {
                    // FIFO: once anything on the channel is parked, later
                    // messages queue behind it regardless of the filter.
                    self.parked.entry(ch).or_default().push_back(Parked {
                        from,
                        msg,
                        payload,
                        repr,
                        infra,
                    });
                    return None;
                }
                self.record(TraceEventKind::Recv {
                    by: to,
                    from,
                    msg,
                    infra,
                    payload: repr,
                });
                self.stats.messages_delivered += 1;
                Some((to, BatchItem::Message { from, msg: payload }))
            }
            Due::Fire { pid, id } => {
                if self.cancelled.take(id) || self.crashed[pid.index()] {
                    return None;
                }
                self.record(TraceEventKind::TimerFired { pid, timer: id });
                self.stats.timers_fired += 1;
                Some((pid, BatchItem::Timer { id }))
            }
        }
    }

    /// Sends every staged per-destination run: a singleton goes out as the
    /// plain event the unbatched path would send; a longer run goes out as
    /// one [`NodeEvent::Batch`] — one channel send, one node wakeup, one
    /// combined action reply for the whole run.
    fn flush_staged(&mut self) {
        for to in std::mem::take(&mut self.staged_order) {
            let mut items = std::mem::take(&mut self.staged[to.index()]);
            if items.len() == 1 {
                match items.pop().expect("length checked") {
                    BatchItem::Message { from, msg } => {
                        self.forward(to, NodeEvent::Message { from, msg })
                    }
                    BatchItem::Timer { id } => self.forward(to, NodeEvent::Timer { id }),
                }
            } else if !items.is_empty() {
                self.stats.delivery_batches += 1;
                self.forward(to, NodeEvent::Batch(items));
            }
        }
    }
}

fn router_main<M: Clone + fmt::Debug + Send + 'static>(
    n: usize,
    config: RuntimeConfig<M>,
    rx: Receiver<ToRouter<M>>,
    node_txs: Vec<Sender<NodeEvent<M>>>,
    progress: Arc<Progress>,
) -> Trace {
    let batch = config.batch;
    let mut state = RouterState {
        n,
        start: Instant::now(),
        crashed: vec![false; n],
        failed_flags: vec![false; n * n],
        cancelled: CancelledTimers::new(),
        heap: BinaryHeap::new(),
        order: 0,
        msg_seq: vec![0; n],
        events: Vec::new(),
        stats: SimStats::default(),
        node_txs,
        delay: config.delay,
        link: config.link,
        link_rng: StdRng::seed_from_u64(config.seed ^ 0x11AC_C01D),
        classify: config.classify,
        registry: config.registry,
        progress,
        filters: (0..n).map(|_| None).collect(),
        parked: std::collections::HashMap::new(),
        staged: (0..n).map(|_| Vec::new()).collect(),
        staged_order: Vec::new(),
    };
    loop {
        // Fire everything due — staged per destination in batch mode, one
        // channel send per message otherwise.
        let mut drained = false;
        while let Some(Reverse(top)) = state.heap.peek() {
            if top.at <= Instant::now() {
                state.progress.idle.store(false, Ordering::Release);
                let Reverse(item) = state.heap.pop().expect("peeked");
                if batch {
                    state.stage_due(item.due);
                    drained = true;
                } else {
                    state.fire_due(item.due);
                }
            } else {
                break;
            }
        }
        if drained {
            state.flush_staged();
        }
        let wait = state
            .heap
            .peek()
            .map(|Reverse(item)| item.at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(wait.min(Duration::from_millis(50))) {
            Ok(ToRouter::Actions {
                from,
                actions,
                payload_reprs,
            }) => {
                state.progress.idle.store(false, Ordering::Release);
                state.handle_actions(from, actions, payload_reprs);
            }
            Ok(ToRouter::InjectExternal { pid, payload, repr }) => {
                state.progress.idle.store(false, Ordering::Release);
                if !state.crashed[pid.index()] {
                    state.record(TraceEventKind::External { pid, payload: repr });
                    state.forward(pid, NodeEvent::External { payload });
                }
            }
            Ok(ToRouter::InjectCrash { pid }) => {
                state.progress.idle.store(false, Ordering::Release);
                state.crash(pid);
            }
            Ok(ToRouter::Shutdown) => break,
            Err(channel::RecvTimeoutError::Timeout) => {
                // Idle is only ever *published* here: an empty inbox poll
                // with an empty heap. Anything that changes state clears
                // it first, so a steady `true` plus matched forward/
                // processed counters is the drain handshake's quiescence.
                state
                    .progress
                    .idle
                    .store(state.heap.is_empty(), Ordering::Release);
            }
            Err(channel::RecvTimeoutError::Disconnected) => break,
        }
    }
    for tx in &state.node_txs {
        let _ = tx.send(NodeEvent::Halt);
    }
    let end = state.now();
    let all_crashed = state.crashed.iter().all(|&c| c);
    let stop = if all_crashed {
        StopReason::AllCrashed
    } else {
        StopReason::MaxTime
    };
    Trace::from_parts(n, state.events, stop, end, state.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Process;

    #[derive(Clone, Debug)]
    enum Msg {
        Ping,
        Pong,
    }

    struct PingPong {
        is_pinger: bool,
        rounds: u32,
    }

    impl Process<Msg> for PingPong {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            if self.is_pinger {
                ctx.send(ProcessId::new(1), Msg::Ping);
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: ProcessId, msg: Msg) {
            match msg {
                Msg::Ping => ctx.send(from, Msg::Pong),
                Msg::Pong => {
                    self.rounds += 1;
                    if self.rounds < 5 {
                        ctx.send(from, Msg::Ping);
                    }
                }
            }
        }
    }

    #[test]
    fn ping_pong_round_trips() {
        let rt = Runtime::spawn(2, RuntimeConfig::default(), |pid| {
            Box::new(PingPong {
                is_pinger: pid.index() == 0,
                rounds: 0,
            })
        });
        rt.run_for(Duration::from_millis(200));
        let trace = rt.shutdown();
        // 5 pings and 5 pongs.
        assert_eq!(
            trace.stats().messages_sent,
            10,
            "{}",
            trace.to_pretty_string()
        );
        assert_eq!(trace.stats().messages_delivered, 10);
    }

    #[test]
    fn crash_stops_deliveries() {
        struct Chatter;
        impl Process<Msg> for Chatter {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(10);
            }
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: ProcessId, _: Msg) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _: TimerId) {
                ctx.broadcast(Msg::Ping, false);
                ctx.set_timer(10);
            }
        }
        let rt = Runtime::spawn(2, RuntimeConfig::default(), |_| Box::new(Chatter));
        rt.run_for(Duration::from_millis(50));
        rt.crash(ProcessId::new(1));
        rt.run_for(Duration::from_millis(100));
        let trace = rt.shutdown();
        let crash_seq = trace
            .events()
            .iter()
            .find_map(|e| match e.kind {
                TraceEventKind::Crash { pid } if pid == ProcessId::new(1) => Some(e.seq),
                _ => None,
            })
            .expect("crash recorded");
        for e in trace.events() {
            if e.seq > crash_seq {
                if let TraceEventKind::Recv { by, .. } = e.kind {
                    assert_ne!(by, ProcessId::new(1), "delivery to crashed process");
                }
            }
        }
    }

    #[test]
    fn receive_filter_parks_and_drains_in_fifo_order() {
        use crate::process::ReceiveFilter;

        // p1 refuses odd payloads until it sees 100 from p2; p0's odd
        // message parks its whole channel (FIFO), and everything drains in
        // order once the filter lifts.
        struct Sender(u32);
        impl Process<u32> for Sender {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                if self.0 == 0 {
                    ctx.send(ProcessId::new(1), 2);
                    ctx.send(ProcessId::new(1), 3); // parked
                    ctx.send(ProcessId::new(1), 6); // queues behind 3
                } else if self.0 == 2 {
                    ctx.set_timer(150); // fires long after p0's sends
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, u32>, _: TimerId) {
                ctx.send(ProcessId::new(1), 100);
            }
        }
        struct Picky;
        impl Process<u32> for Picky {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.set_receive_filter(Some(ReceiveFilter::new(|m: &u32| m.is_multiple_of(2))));
            }
            fn on_message(&mut self, ctx: &mut Context<'_, u32>, _: ProcessId, msg: u32) {
                if msg == 100 {
                    ctx.set_receive_filter(None);
                }
            }
        }
        let rt = Runtime::spawn(3, RuntimeConfig::default(), |pid| {
            if pid.index() == 1 {
                Box::new(Picky) as Box<dyn Process<u32> + Send>
            } else {
                Box::new(Sender(pid.index() as u32))
            }
        });
        rt.run_for(Duration::from_millis(400));
        let trace = rt.shutdown();
        // All four messages delivered; p0's arrive at p1 in FIFO order.
        assert_eq!(
            trace.stats().messages_delivered,
            4,
            "{}",
            trace.to_pretty_string()
        );
        let from_p0: Vec<u64> = trace
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::Recv { by, from, msg, .. }
                    if by == ProcessId::new(1) && from == ProcessId::new(0) =>
                {
                    Some(msg.seq())
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            from_p0,
            vec![0, 1, 2],
            "FIFO preserved through router parking"
        );
    }

    #[test]
    fn drain_detects_quiescence_and_timers_prevent_it() {
        // Ping-pong quiesces after 5 rounds: drain must see it without
        // needing the full window, and the resulting trace is coherent
        // (every delivered message's effects included).
        let rt = Runtime::spawn(2, RuntimeConfig::default(), |pid| {
            Box::new(PingPong {
                is_pinger: pid.index() == 0,
                rounds: 0,
            })
        });
        assert!(rt.drain(Duration::from_secs(5)), "ping-pong must quiesce");
        let trace = rt.shutdown();
        assert_eq!(trace.stats().messages_sent, 10);
        assert_eq!(trace.stats().messages_delivered, 10);
        assert!(trace.channels_drained());

        // A self-rearming timer never quiesces: drain must say so.
        struct Ticker;
        impl Process<Msg> for Ticker {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(10);
            }
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: ProcessId, _: Msg) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _: TimerId) {
                ctx.set_timer(10);
            }
        }
        let rt = Runtime::spawn(1, RuntimeConfig::default(), |_| Box::new(Ticker));
        assert!(!rt.drain(Duration::from_millis(150)));
        let _ = rt.shutdown();
    }

    #[test]
    fn router_marks_crashes_in_the_shared_registry() {
        let registry = CrashRegistry::new(2);
        let config = RuntimeConfig {
            registry: Some(registry.clone()),
            ..RuntimeConfig::default()
        };
        let rt = Runtime::spawn(2, config, |pid| {
            Box::new(PingPong {
                is_pinger: pid.index() == 0,
                rounds: 0,
            })
        });
        assert!(!registry.is_crashed(ProcessId::new(1)));
        rt.crash(ProcessId::new(1));
        rt.run_for(Duration::from_millis(100));
        let trace = rt.shutdown();
        assert!(trace.crashed().contains(&ProcessId::new(1)));
        assert!(registry.is_crashed(ProcessId::new(1)));
        assert_eq!(registry.iter_crashed().count(), 1);
    }

    #[test]
    fn batched_router_coalesces_and_preserves_fifo() {
        // A 30-message flood behind a 10 ms link delay: all 30 come due in
        // the same heap drain, so the batching router must coalesce them
        // into (at least one) NodeEvent batch while keeping per-message
        // trace events and strict FIFO delivery order.
        struct Flood;
        impl Process<u32> for Flood {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                for k in 0..30u32 {
                    ctx.send(ProcessId::new(1), k);
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
        }
        struct Quiet;
        impl Process<u32> for Quiet {
            fn on_start(&mut self, _: &mut Context<'_, u32>) {}
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
        }
        let config = RuntimeConfig {
            batch: true,
            delay: Some(Box::new(|_, _| Duration::from_millis(10))),
            ..RuntimeConfig::default()
        };
        let rt = Runtime::spawn(2, config, |pid| {
            if pid.index() == 0 {
                Box::new(Flood) as Box<dyn Process<u32> + Send>
            } else {
                Box::new(Quiet)
            }
        });
        assert!(rt.drain(Duration::from_secs(5)), "flood must quiesce");
        let trace = rt.shutdown();
        assert_eq!(trace.stats().messages_delivered, 30);
        let seqs: Vec<u64> = trace
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::Recv { by, msg, .. } if by == ProcessId::new(1) => Some(msg.seq()),
                _ => None,
            })
            .collect();
        assert_eq!(seqs, (0..30).collect::<Vec<u64>>(), "FIFO through batching");
        assert!(
            trace.stats().delivery_batches >= 1,
            "a same-instant flood must actually coalesce; stats: {:?}",
            trace.stats()
        );
    }

    #[test]
    fn batched_ping_pong_and_drain_handshake() {
        // Request/response traffic under batching: the combined action
        // replies must keep the forwarded/processed counters matched so
        // the drain handshake still detects quiescence.
        let config = RuntimeConfig {
            batch: true,
            ..RuntimeConfig::default()
        };
        let rt = Runtime::spawn(2, config, |pid| {
            Box::new(PingPong {
                is_pinger: pid.index() == 0,
                rounds: 0,
            })
        });
        assert!(rt.drain(Duration::from_secs(5)), "ping-pong must quiesce");
        let trace = rt.shutdown();
        assert_eq!(trace.stats().messages_sent, 10);
        assert_eq!(trace.stats().messages_delivered, 10);
    }

    #[test]
    fn router_link_model_drops_and_duplicates() {
        use crate::link::{FnLink, LinkVerdict};
        use rand::rngs::StdRng;

        // Scripted verdicts, mirroring the sim test: drop the 1st send,
        // duplicate the 2nd, deliver the rest.
        struct Flood;
        impl Process<u32> for Flood {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                for k in 0..3u32 {
                    ctx.send(ProcessId::new(1), k);
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
        }
        struct Quiet;
        impl Process<u32> for Quiet {
            fn on_start(&mut self, _: &mut Context<'_, u32>) {}
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
        }
        let mut k = 0u32;
        let config = RuntimeConfig {
            link: Some(Box::new(FnLink(move |_, _, _, _: &mut StdRng| {
                k += 1;
                match k {
                    1 => LinkVerdict::Drop,
                    2 => LinkVerdict::Duplicate(1, 2),
                    _ => LinkVerdict::Deliver(1),
                }
            }))),
            ..RuntimeConfig::default()
        };
        let rt = Runtime::spawn(2, config, |pid| {
            if pid.index() == 0 {
                Box::new(Flood) as Box<dyn Process<u32> + Send>
            } else {
                Box::new(Quiet)
            }
        });
        assert!(rt.drain(Duration::from_secs(5)), "flood must settle");
        let trace = rt.shutdown();
        let stats = trace.stats();
        assert_eq!(stats.messages_sent, 3);
        assert_eq!(stats.messages_dropped, 1);
        assert_eq!(stats.messages_duplicated, 1);
        assert_eq!(stats.messages_delivered, 3, "{}", trace.to_pretty_string());
        assert!(trace.channels_drained());
    }

    #[test]
    fn external_injection_reaches_process() {
        struct Reactor;
        impl Process<Msg> for Reactor {
            fn on_start(&mut self, _: &mut Context<'_, Msg>) {}
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: ProcessId, _: Msg) {}
            fn on_external(&mut self, ctx: &mut Context<'_, Msg>, _: Msg) {
                ctx.declare_failed(ProcessId::new(1));
            }
        }
        let rt = Runtime::spawn(2, RuntimeConfig::default(), |_| Box::new(Reactor));
        rt.inject_external(ProcessId::new(0), Msg::Ping);
        rt.run_for(Duration::from_millis(100));
        let trace = rt.shutdown();
        assert_eq!(
            trace.detections(),
            vec![(ProcessId::new(0), ProcessId::new(1))]
        );
    }
}
